// Ablation A2: the consistent result cache for deterministic read-only
// functions (§4.2.2). GetTimeline with a skewed read mix: with the cache
// on, repeated reads of the same timelines are served from recorded
// results and invalidated precisely by overlapping writes.
#include <cstdio>

#include "bench/harness.h"

using namespace lo;
using namespace lo::bench;

int main() {
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});
  // A read-heavy mix with some writes and Zipf-skewed targets (hot
  // timelines get read repeatedly): shows both the hit-rate win and that
  // invalidation keeps results exact.
  config.workload.zipf_reads = true;
  config.workload.zipf_alpha = 1.1;
  retwis::Workload workload(config.workload);

  PrintHeader("Ablation A2: consistent result cache (GetTimeline-heavy mix)");
  PrintRow("%-8s %12s %10s %10s %12s %12s %12s", "Cache", "jobs/sec", "p50(ms)",
           "p99(ms)", "hits", "misses", "invalidations");
  for (bool cache_on : {false, true}) {
    ExperimentConfig run_config = config;
    run_config.result_cache = cache_on;
    AggregatedSystem system(run_config, workload);

    std::vector<retwis::Invoker> invokers;
    for (int i = 0; i < run_config.num_clients; i++) {
      cluster::Client* client = &system.deployment().NewClient();
      invokers.push_back([client](const retwis::Request& request) {
        return client->Invoke(request.oid, request.method, request.argument);
      });
    }
    retwis::DriverConfig driver;
    driver.warmup = run_config.warmup;
    driver.measure = run_config.measure;
    driver.mix = {{retwis::OpType::kGetTimeline, 0.9}, {retwis::OpType::kPost, 0.1}};
    auto result =
        retwis::RunClosedLoop(system.sim(), workload, std::move(invokers), driver);

    auto stats = system.deployment().node(0).runtime().cache_stats();
    PrintRow("%-8s %12.0f %10.2f %10.2f %12llu %12llu %12llu",
             cache_on ? "on" : "off", result.Throughput(),
             static_cast<double>(result.latency_us.Percentile(0.5)) / 1000.0,
             static_cast<double>(result.latency_us.Percentile(0.99)) / 1000.0,
             static_cast<unsigned long long>(stats.hits),
             static_cast<unsigned long long>(stats.misses),
             static_cast<unsigned long long>(stats.invalidations));
  }
  PrintRow("\nexpected: higher read throughput with the cache; invalidations");
  PrintRow("track the write mix (co-location makes the cache *consistent*)");
  return 0;
}
