// Caching ablations.
//
// A2: the consistent result cache for deterministic read-only functions
// (§4.2.2). GetTimeline with a skewed read mix: with the cache on,
// repeated reads of the same timelines are served from recorded results
// and invalidated precisely by overlapping writes.
//
// A2b: the MiniLSM block cache under the same access shape, measured
// directly against the storage engine in wall-clock time (the simulator
// charges I/O through the CPU model, so sim throughput cannot see the
// block cache — wall clock can). A Zipf(0.8)-skewed point-read + short-
// scan mix over ~10x more table data than fits in the memtable, across
// three cache configs: off, sized (~2/3 of the data set, the realistic
// operating point), and oversized (everything fits, upper bound).
//
// Every row is also emitted as a machine-readable JSON line
// (`{"bench":...}`) so sweeps can scrape results without parsing the
// human table.
//
// Flags:
//   --block-cache-only   run just A2b and exit nonzero if the sized
//                        config's hit rate regresses below 0.9 (used as
//                        a ctest smoke under LO_BENCH_QUICK=1)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/harness.h"
#include "common/log.h"
#include "common/rng.h"
#include "storage/db.h"
#include "storage/env.h"

using namespace lo;
using namespace lo::bench;

namespace {

std::string KeyOf(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

struct BlockCacheRun {
  double ops_per_sec = 0;
  double hit_rate = 0;
  uint64_t evictions = 0;
  uint64_t cache_bytes = 0;
};

// One config: fresh DB, populate + compact so every read hits the table
// path, warm the cache on the measured distribution, then time the mix.
BlockCacheRun RunBlockCacheConfig(size_t cache_mb, uint64_t num_keys,
                                  uint64_t warm_ops, uint64_t measure_ops) {
  storage::MemEnv env;
  storage::Options options;
  options.env = &env;
  options.write_buffer_size = 1 << 20;  // data must live in SSTables
  options.block_cache_bytes = cache_mb << 20;
  auto opened = storage::DB::Open(options, "/bench");
  LO_CHECK(opened.ok());
  std::unique_ptr<storage::DB> db = std::move(*opened);

  std::string value(100, 'v');
  for (uint64_t i = 0; i < num_keys; i++) {
    LO_CHECK(db->Put({.sync = false}, KeyOf(i), value).ok());
  }
  LO_CHECK(db->CompactAll().ok());

  // Timeline-shaped mix: 80% point reads, 20% seek + 10-entry scans, both
  // Zipf-skewed (rank 0 = hottest key; ranks map to adjacent keys, so hot
  // keys share blocks the way one user's timeline does).
  ZipfGenerator zipf(num_keys, 0.8);
  Rng rng(7);
  auto one_op = [&](uint64_t op) {
    uint64_t rank = zipf.Sample(rng);
    if (op % 5 != 0) {
      auto got = db->Get({}, KeyOf(rank));
      LO_CHECK(got.ok());
    } else {
      auto iter = db->NewIterator({});
      iter->Seek(KeyOf(rank));
      int n = 0;
      for (; iter->Valid() && n < 10; iter->Next()) n++;
      LO_CHECK(n > 0);
    }
  };

  for (uint64_t op = 0; op < warm_ops; op++) one_op(op);

  storage::DB::Stats before = db->GetStats();
  auto started = std::chrono::steady_clock::now();
  for (uint64_t op = 0; op < measure_ops; op++) one_op(op);
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - started)
                     .count();
  storage::DB::Stats after = db->GetStats();

  BlockCacheRun run;
  run.ops_per_sec = static_cast<double>(measure_ops) / elapsed;
  uint64_t hits = after.block_cache_hits - before.block_cache_hits;
  uint64_t misses = after.block_cache_misses - before.block_cache_misses;
  run.hit_rate = hits + misses == 0
                     ? 0.0
                     : static_cast<double>(hits) /
                           static_cast<double>(hits + misses);
  run.evictions = after.block_cache_evictions;
  run.cache_bytes = after.block_cache_bytes;
  return run;
}

// Returns false on a hit-rate regression (checked in --block-cache-only).
bool RunBlockCacheAblation() {
  bool quick = false;
  if (const char* q = std::getenv("LO_BENCH_QUICK")) quick = q[0] == '1';
  // ~24 MiB of table data (quick: ~4.8 MiB); "sized" holds ~85% of it —
  // small enough that the LRU keeps evicting the Zipf tail, big enough
  // that the hot set stays resident.
  const uint64_t num_keys = quick ? 40000 : 200000;
  const uint64_t warm_ops = quick ? 30000 : 150000;
  const uint64_t measure_ops = quick ? 60000 : 400000;
  const size_t sized_mb = quick ? 4 : 20;
  const size_t oversized_mb = quick ? 64 : 256;

  PrintHeader("Ablation A2b: MiniLSM block cache (Zipf(0.8) reads, wall clock)");
  PrintRow("%-10s %10s %12s %10s %12s %14s", "Cache", "MB", "ops/sec",
           "hit rate", "evictions", "cached bytes");

  struct Config {
    const char* name;
    size_t mb;
  };
  const Config configs[] = {
      {"off", 0}, {"sized", sized_mb}, {"oversized", oversized_mb}};
  double off_ops_per_sec = 0;
  double sized_hit_rate = 0;
  double sized_speedup = 0;
  for (const Config& config : configs) {
    BlockCacheRun run =
        RunBlockCacheConfig(config.mb, num_keys, warm_ops, measure_ops);
    PrintRow("%-10s %10zu %12.0f %10.3f %12llu %14llu", config.name, config.mb,
             run.ops_per_sec, run.hit_rate,
             static_cast<unsigned long long>(run.evictions),
             static_cast<unsigned long long>(run.cache_bytes));
    PrintRow("{\"bench\":\"block_cache\",\"config\":\"%s\",\"cache_mb\":%zu,"
             "\"ops\":%llu,\"ops_per_sec\":%.0f,\"hit_rate\":%.4f,"
             "\"evictions\":%llu,\"cache_bytes\":%llu}",
             config.name, config.mb,
             static_cast<unsigned long long>(measure_ops), run.ops_per_sec,
             run.hit_rate, static_cast<unsigned long long>(run.evictions),
             static_cast<unsigned long long>(run.cache_bytes));
    if (std::strcmp(config.name, "off") == 0) off_ops_per_sec = run.ops_per_sec;
    if (std::strcmp(config.name, "sized") == 0) {
      sized_hit_rate = run.hit_rate;
      sized_speedup = run.ops_per_sec / off_ops_per_sec;
    }
  }
  PrintRow("\nsized vs off speedup: %.2fx (hit rate %.3f)", sized_speedup,
           sized_hit_rate);
  PrintRow("expected: a sized cache smaller than the data set captures the");
  PrintRow("Zipf mass (>=0.9 hit rate); oversized shows the no-eviction bound");

  if (sized_hit_rate < 0.9) {
    std::fprintf(stderr,
                 "block cache hit-rate regression: sized config %.3f < 0.9\n",
                 sized_hit_rate);
    return false;
  }
  return true;
}

void RunResultCacheAblation() {
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});
  // A read-heavy mix with some writes and Zipf-skewed targets (hot
  // timelines get read repeatedly): shows both the hit-rate win and that
  // invalidation keeps results exact.
  config.workload.zipf_reads = true;
  config.workload.zipf_alpha = 1.1;
  retwis::Workload workload(config.workload);

  PrintHeader("Ablation A2: consistent result cache (GetTimeline-heavy mix)");
  PrintRow("%-8s %12s %10s %10s %12s %12s %12s", "Cache", "jobs/sec", "p50(ms)",
           "p99(ms)", "hits", "misses", "invalidations");
  for (bool cache_on : {false, true}) {
    ExperimentConfig run_config = config;
    run_config.result_cache = cache_on;
    AggregatedSystem system(run_config, workload);

    std::vector<retwis::Invoker> invokers;
    for (int i = 0; i < run_config.num_clients; i++) {
      cluster::Client* client = &system.deployment().NewClient();
      invokers.push_back([client](const retwis::Request& request) {
        return client->Invoke(request.oid, request.method, request.argument);
      });
    }
    retwis::DriverConfig driver;
    driver.warmup = run_config.warmup;
    driver.measure = run_config.measure;
    driver.mix = {{retwis::OpType::kGetTimeline, 0.9}, {retwis::OpType::kPost, 0.1}};
    auto result =
        retwis::RunClosedLoop(system.sim(), workload, std::move(invokers), driver);

    auto stats = system.deployment().node(0).runtime().cache_stats();
    double p50 = static_cast<double>(result.latency_us.Percentile(0.5)) / 1000.0;
    double p99 = static_cast<double>(result.latency_us.Percentile(0.99)) / 1000.0;
    PrintRow("%-8s %12.0f %10.2f %10.2f %12llu %12llu %12llu",
             cache_on ? "on" : "off", result.Throughput(), p50, p99,
             static_cast<unsigned long long>(stats.hits),
             static_cast<unsigned long long>(stats.misses),
             static_cast<unsigned long long>(stats.invalidations));
    PrintRow("{\"bench\":\"result_cache\",\"config\":\"%s\","
             "\"jobs_per_sec\":%.0f,\"p50_ms\":%.2f,\"p99_ms\":%.2f,"
             "\"hits\":%llu,\"misses\":%llu,\"invalidations\":%llu}",
             cache_on ? "on" : "off", result.Throughput(), p50, p99,
             static_cast<unsigned long long>(stats.hits),
             static_cast<unsigned long long>(stats.misses),
             static_cast<unsigned long long>(stats.invalidations));
  }
  PrintRow("\nexpected: higher read throughput with the cache; invalidations");
  PrintRow("track the write mix (co-location makes the cache *consistent*)");
}

}  // namespace

int main(int argc, char** argv) {
  bool block_cache_only = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--block-cache-only") == 0) {
      block_cache_only = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  if (!block_cache_only) RunResultCacheAblation();
  bool ok = RunBlockCacheAblation();
  return block_cache_only && !ok ? 1 : 0;
}
