// Ablation A8: execution lanes × WAL group commit. The paper's
// co-location argument leaves the storage engine's write path as the
// throughput ceiling; this sweep shows the two mechanisms that raise it:
//   - lanes: read-write invocations on distinct objects execute
//     concurrently (hash(object) % lanes), instead of one at a time per
//     node — lanes=1 is the pre-parallelism serial runtime;
//   - group commit: commits arriving while the WAL device is busy share
//     the next fsync (and the replication round behind it), so
//     fsyncs/commit drops well below 1 at saturation.
// Retwis mixed workload (post-heavy enough that the write path is the
// bottleneck). Sweep 1: lanes at the default group-commit bounds.
// Sweep 2: group-commit batch-size bound at 8 lanes, including a bound so
// small that every commit syncs alone — isolating what grouping buys.
#include <cstdio>

#include "bench/harness.h"

using namespace lo;
using namespace lo::bench;

namespace {

struct GcTotals {
  unsigned long long commits = 0;
  unsigned long long groups = 0;
  unsigned long long max_group = 0;
  unsigned long long max_busy_lanes = 0;
  double FsyncsPerCommit() const {
    return commits == 0 ? 0.0 : static_cast<double>(groups) / commits;
  }
};

GcTotals Collect(cluster::AggregatedDeployment& deployment) {
  GcTotals totals;
  for (int i = 0; i < deployment.num_nodes(); i++) {
    const auto& gc = deployment.node(i).group_committer().stats();
    totals.commits += gc.commits;
    totals.groups += gc.groups;
    if (gc.max_group_commits > totals.max_group) {
      totals.max_group = gc.max_group_commits;
    }
    const auto& rt = deployment.node(i).runtime().metrics();
    if (rt.max_busy_lanes > totals.max_busy_lanes) {
      totals.max_busy_lanes = rt.max_busy_lanes;
    }
  }
  return totals;
}

retwis::DriverResult RunMixed(AggregatedSystem& system,
                              const ExperimentConfig& config,
                              const retwis::Workload& workload) {
  std::vector<retwis::Invoker> invokers;
  for (int i = 0; i < config.num_clients; i++) {
    cluster::Client* client = &system.deployment().NewClient();
    invokers.push_back([client](const retwis::Request& request) {
      return client->Invoke(request.oid, request.method, request.argument);
    });
  }
  retwis::DriverConfig driver;
  driver.warmup = config.warmup;
  driver.measure = config.measure;
  driver.seed = config.seed;
  driver.mix = {{retwis::OpType::kPost, 0.5},
                {retwis::OpType::kGetTimeline, 0.35},
                {retwis::OpType::kFollow, 0.15}};
  return retwis::RunClosedLoop(system.sim(), workload, std::move(invokers),
                               driver);
}

void PrintResult(const char* label, const retwis::DriverResult& result,
                 const GcTotals& gc) {
  PrintRow("%-12s %12.0f %10.2f %10.2f %10.3f %10llu %10llu", label,
           result.Throughput(),
           static_cast<double>(result.latency_us.Percentile(0.5)) / 1000.0,
           static_cast<double>(result.latency_us.Percentile(0.99)) / 1000.0,
           gc.FsyncsPerCommit(), gc.max_group, gc.max_busy_lanes);
}

}  // namespace

int main() {
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});
  retwis::Workload workload(config.workload);

  PrintHeader("Ablation A8: execution lanes x WAL group commit (Retwis mix)");
  PrintRow("%-12s %12s %10s %10s %10s %10s %10s", "Config", "jobs/sec",
           "p50(ms)", "p99(ms)", "fsync/cmt", "max_grp", "max_lanes");

  double throughput_1_lane = 0, throughput_8_lanes = 0;
  for (size_t lanes : {1, 2, 4, 8, 16}) {
    ExperimentConfig run_config = config;
    run_config.lanes = lanes;
    AggregatedSystem system(run_config, workload);
    auto result = RunMixed(system, run_config, workload);
    char label[32];
    std::snprintf(label, sizeof(label), "lanes=%zu", lanes);
    PrintResult(label, result, Collect(system.deployment()));
    if (lanes == 1) throughput_1_lane = result.Throughput();
    if (lanes == 8) throughput_8_lanes = result.Throughput();
  }

  PrintRow("%s", "");
  for (size_t gc_bytes : {64, 4096, 1 << 20}) {
    ExperimentConfig run_config = config;
    run_config.lanes = 8;
    run_config.gc_max_batch_bytes = gc_bytes;
    AggregatedSystem system(run_config, workload);
    auto result = RunMixed(system, run_config, workload);
    char label[32];
    std::snprintf(label, sizeof(label), "8l,gc=%zuB", gc_bytes);
    PrintResult(label, result, Collect(system.deployment()));
  }

  PrintRow("\nspeedup 8 lanes vs 1: %.2fx  (acceptance: >= 2x, fsync/cmt < 0.5)",
           throughput_1_lane > 0 ? throughput_8_lanes / throughput_1_lane : 0.0);
  PrintRow("expected: throughput scales with lanes until the WAL device or");
  PrintRow("cores saturate; fsyncs/commit falls as backpressure grows groups;");
  PrintRow("a tiny gc byte-bound forces one fsync per commit and gives the");
  PrintRow("un-amortized cost back");
  return 0;
}
