// Ablation A1: primary-backup vs chain replication (§4.2.1 — the paper
// chose primary-backup "as it provides low latencies compared to, e.g.,
// chain replication"). Same cluster, same workload, only the replication
// protocol differs. Expectation: chain pays one extra sequential hop per
// commit, visible in write-path (Follow/Post) latency.
#include <cstdio>

#include "bench/harness.h"

using namespace lo;
using namespace lo::bench;

int main() {
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});

  PrintHeader("Ablation A1: replication protocol (aggregated cluster)");
  PrintRow("%-12s %-16s %12s %10s %10s", "Workload", "Protocol", "jobs/sec",
           "p50(ms)", "p99(ms)");
  for (retwis::OpType op : {retwis::OpType::kFollow, retwis::OpType::kPost}) {
    for (auto mode : {replication::Mode::kPrimaryBackup, replication::Mode::kChain}) {
      ExperimentConfig run_config = config;
      run_config.replication_mode = mode;
      auto result = RunExperiment(/*aggregated=*/true, op, run_config);
      PrintRow("%-12s %-16s %12.0f %10.2f %10.2f", retwis::OpName(op),
               mode == replication::Mode::kPrimaryBackup ? "primary-backup"
                                                         : "chain",
               result.Throughput(),
               static_cast<double>(result.latency_us.Percentile(0.5)) / 1000.0,
               static_cast<double>(result.latency_us.Percentile(0.99)) / 1000.0);
    }
  }
  PrintRow("\nexpected: chain adds ~one sequential replica hop per commit");
  return 0;
}
