// Ablation A3: objects as microshards (§4.2, Akkio-style directory
// placement) vs hash sharding. A community of users whose members
// interact mostly with each other is migrated onto one shard; under hash
// placement its create_post fan-outs cross shards constantly, under
// microshard placement they stay node-local.
#include <cstdio>

#include "bench/harness.h"

using namespace lo;
using namespace lo::bench;

namespace {

retwis::DriverResult RunCommunity(bool colocate, const ExperimentConfig& config,
                                  const retwis::Workload& workload,
                                  uint64_t community_size) {
  sim::Simulator sim(config.seed);
  runtime::TypeRegistry types;
  LO_CHECK(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  cluster::DeploymentOptions options;
  options.num_shards = 3;  // one shard per node: cross-shard = cross-node
  options.client.request_timeout = sim::Seconds(5);
  cluster::AggregatedDeployment deployment(sim, &types, options);
  deployment.WaitUntilReady();
  for (int i = 0; i < deployment.num_nodes(); i++) {
    LO_CHECK(workload.SeedDb(&deployment.node(i).db()).ok());
  }
  // NOTE on the data model: every node holds all objects' bytes (3-way
  // replica sets rotated across the same 3 nodes), but *execution*
  // routes to the shard primary, so cross-shard invocations pay network
  // hops — exactly the locality effect microsharding controls.
  cluster::Client& admin = deployment.NewClient();
  if (colocate) {
    bool done = false;
    sim::Detach([](cluster::Client* admin, const retwis::Workload* workload,
                   uint64_t community_size, bool* done) -> sim::Task<void> {
      for (uint64_t i = 0; i < community_size; i++) {
        Status s = co_await admin->MigrateObject(workload->UserId(i), 0);
        LO_CHECK_MSG(s.ok(), "migration failed: " + s.ToString());
      }
      *done = true;
    }(&admin, &workload, community_size, &done));
    while (!done) LO_CHECK(sim.Step());
    sim.RunFor(sim::Millis(100));  // directory propagation
  }

  std::vector<retwis::Invoker> invokers;
  for (int i = 0; i < config.num_clients; i++) {
    cluster::Client* client = &deployment.NewClient();
    invokers.push_back([client](const retwis::Request& request) {
      return client->Invoke(request.oid, request.method, request.argument);
    });
  }
  retwis::DriverConfig driver;
  driver.warmup = config.warmup;
  driver.measure = config.measure;
  driver.mix = {{retwis::OpType::kPost, 1.0}};
  // Community-only workload: authors drawn from the community.
  struct CommunityWorkload : retwis::Workload {
    using retwis::Workload::Workload;
  };
  retwis::WorkloadConfig community_config = config.workload;
  community_config.num_users = community_size;  // requests target user/0..N
  retwis::Workload community(community_config);
  return retwis::RunClosedLoop(sim, community, std::move(invokers), driver);
}

}  // namespace

int main() {
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});
  uint64_t community = config.quick ? 50 : 300;
  config.workload.community_size = community;  // closed subgraph

  retwis::Workload workload(config.workload);
  PrintHeader("Ablation A3: microshard placement vs hash sharding (Post, "
              "community workload)");
  PrintRow("%-22s %12s %10s %10s", "Placement", "jobs/sec", "p50(ms)", "p99(ms)");
  for (bool colocate : {false, true}) {
    auto result = RunCommunity(colocate, config, workload, community);
    PrintRow("%-22s %12.0f %10.2f %10.2f",
             colocate ? "microshard (migrated)" : "hash (scattered)",
             result.Throughput(),
             static_cast<double>(result.latency_us.Percentile(0.5)) / 1000.0,
             static_cast<double>(result.latency_us.Percentile(0.99)) / 1000.0);
  }
  PrintRow("\nexpected: migrating the community onto one shard removes the");
  PrintRow("cross-node hops from every create_post fan-out (data locality)");
  return 0;
}
