// Ablation A4: isolation-mechanism overhead (real wall-clock, via
// google-benchmark). The paper relies on WebAssembly executing "at
// almost native speed" (§4.2); here we measure our stand-in, LambdaVM:
// native C++ vs interpreted bytecode, the incremental cost of fuel
// metering being always-on, instantiation cost, and host-call dispatch.
#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>

#include "sim/simulator.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"

namespace {

using namespace lo;

// sum of i*i for i in 1..n, natively.
uint64_t NativeSumSquares(uint64_t n) {
  uint64_t sum = 0;
  for (uint64_t i = 1; i <= n; i++) sum += i * i;
  return sum;
}

constexpr std::string_view kSumSquaresAsm = R"(
func main export locals i sum n
  push 0x0
  push 8
  arg
  drop
  push 0
  load64
  local.set n
  push 1
  local.set i
loop:
  local.get sum
  local.get i
  local.get i
  mul
  add
  local.set sum
  local.get i
  push 1
  add
  local.tee i
  local.get n
  le_u
  br_if loop
  push 8
  local.get sum
  store64
  push 8
  push 8
  ret
end
)";

class NullHost : public vm::HostApi {
 public:
  sim::Task<Result<std::string>> KvGet(std::string_view) override {
    co_return Status::NotFound("");
  }
  sim::Task<Status> KvPut(std::string_view, std::string_view) override {
    co_return Status::OK();
  }
  sim::Task<Status> KvDelete(std::string_view) override { co_return Status::OK(); }
  sim::Task<Result<std::string>> InvokeObject(std::string_view, std::string_view,
                                              std::string_view) override {
    co_return std::string();
  }
  uint64_t TimeMillis() override { return 0; }
};

std::string EncodeArg(uint64_t n) {
  std::string arg(8, '\0');
  for (int i = 0; i < 8; i++) arg[i] = static_cast<char>((n >> (8 * i)) & 0xff);
  return arg;
}

uint64_t RunVm(const vm::Module& module, uint64_t n, vm::VmLimits limits) {
  NullHost host;
  vm::Instance instance(&module, limits);
  Result<std::string> out = Status::Unavailable("");
  bool done = false;
  sim::Detach([](vm::Instance& inst, std::string arg, NullHost* host,
                 Result<std::string>* out, bool* done) -> sim::Task<void> {
    *out = co_await inst.Invoke("main", std::move(arg), host);
    *done = true;
  }(instance, EncodeArg(n), &host, &out, &done));
  // No sim events are involved: the task completes synchronously.
  LO_CHECK(done);
  LO_CHECK(out.ok());
  uint64_t v = 0;
  memcpy(&v, out->data(), 8);
  return v;
}

void BM_NativeSumSquares(benchmark::State& state) {
  auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NativeSumSquares(n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_NativeSumSquares)->Arg(1000)->Arg(100000);

void BM_LambdaVmSumSquares(benchmark::State& state) {
  auto module = vm::Assemble(kSumSquaresAsm);
  LO_CHECK(module.ok());
  auto n = static_cast<uint64_t>(state.range(0));
  LO_CHECK(RunVm(*module, n, {}) == NativeSumSquares(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunVm(*module, n, {}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_LambdaVmSumSquares)->Arg(1000)->Arg(100000);

void BM_VmInstantiation(benchmark::State& state) {
  auto module = vm::Assemble(kSumSquaresAsm);
  LO_CHECK(module.ok());
  for (auto _ : state) {
    vm::Instance instance(&*module, {});
    benchmark::DoNotOptimize(&instance);
  }
}
BENCHMARK(BM_VmInstantiation);

void BM_ModuleValidationAndDecode(benchmark::State& state) {
  auto module = vm::Assemble(kSumSquaresAsm);
  LO_CHECK(module.ok());
  std::string bytes = module->Serialize();
  for (auto _ : state) {
    auto restored = vm::Module::Deserialize(bytes);
    benchmark::DoNotOptimize(restored.ok());
  }
}
BENCHMARK(BM_ModuleValidationAndDecode);

void BM_HostCallDispatch(benchmark::State& state) {
  // A program that is nothing but host calls: measures ABI crossing cost.
  auto module = vm::Assemble(R"(
data key 0 "k"
func main export locals i
loop:
  push @key
  push #key
  push 64
  push 8
  kv.get
  drop
  local.get i
  push 1
  add
  local.tee i
  push 100
  lt_u
  br_if loop
  push 0
  push 0
  ret
end
)");
  LO_CHECK(module.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunVm(*module, 0, {}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_HostCallDispatch);

}  // namespace

BENCHMARK_MAIN();
