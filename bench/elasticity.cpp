// A9 — elasticity: live microshard migration under a load hotspot, on
// the real multi-process cluster (paper §4.2.1, Akkio-style
// rebalancing).
//
// Topology: one lambdastore-coordinator + 3 lambdastore-server
// processes over loopback TCP, every server seeded with the same ReTwis
// graph (hash placement splits ownership three ways). The driver runs
// closed-loop client threads through clusterd::Client (cached directory,
// kWrongShard -> refresh-and-resend) and emits one JSON line per
// measurement window.
//
// Phases:
//   baseline  uniform GetTimeline + a trickle of posts; establishes the
//             steady-state throughput.
//   hotspot   85% of reads pinned to 8 "celebrity" users chosen so they
//             all hash-place onto server 1; simultaneously a 4th server
//             is spawned and registers (directory-only shard — hash
//             placements never remap). The coordinator's rebalancer sees
//             the skewed load reports and live-migrates the celebrities
//             off the hot node, a few per round, while the workload
//             keeps running; bounced requests redirect via directory
//             refresh. Throughput recovers as the celebrities spread.
//
// The run ends when throughput has recovered to --recover x baseline
// for two consecutive windows after at least one migration (or at
// --max-windows). --smoke (or LO_BENCH_QUICK=1) shrinks everything and
// turns on the lenient structural assertions used by ctest: at least
// one migration happened, the error rate stayed low, and the cluster
// was not left slower than a third of baseline.
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "clusterd/client.h"
#include "clusterd/wire.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/log.h"
#include "common/rng.h"
#include "net/rpc_client.h"
#include "retwis/retwis.h"
#include "retwis/workload.h"

extern char** environ;

namespace {

using namespace lo;

std::string SiblingBin(const char* name) {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return name;
  buf[n] = '\0';
  std::string path(buf);
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return name;
  return path.substr(0, slash) + "/../tools/" + name;
}

// Owns a spawned cluster process; SIGKILLed on scope exit unless waited.
struct Proc {
  pid_t pid = -1;
  int stdout_fd = -1;
  uint16_t port = 0;

  Proc() = default;
  Proc(Proc&& other) noexcept { *this = std::move(other); }
  Proc& operator=(Proc&& other) noexcept {
    std::swap(pid, other.pid);
    std::swap(stdout_fd, other.stdout_fd);
    std::swap(port, other.port);
    return *this;
  }
  ~Proc() {
    if (stdout_fd >= 0) close(stdout_fd);
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
  }
};

Proc Spawn(const std::string& bin, std::vector<std::string> args) {
  args.insert(args.begin(), bin);
  int pipefd[2];
  LO_CHECK_MSG(pipe(pipefd) == 0, "pipe");
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, pipefd[1], STDOUT_FILENO);
  posix_spawn_file_actions_addclose(&actions, pipefd[0]);
  posix_spawn_file_actions_addclose(&actions, pipefd[1]);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  Proc proc;
  int rc = posix_spawn(&proc.pid, args[0].c_str(), &actions, nullptr,
                       argv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  close(pipefd[1]);
  if (rc != 0) {
    close(pipefd[0]);
    std::fprintf(stderr, "posix_spawn %s: %s\n", args[0].c_str(), strerror(rc));
    LO_CHECK_MSG(false, "cannot spawn cluster process");
  }
  proc.stdout_fd = pipefd[0];

  std::string out;
  while (true) {
    size_t pos = out.find("READY port=");
    if (pos != std::string::npos && out.find('\n', pos) != std::string::npos) {
      proc.port = static_cast<uint16_t>(
          std::atoi(out.c_str() + pos + strlen("READY port=")));
      return proc;
    }
    struct pollfd pfd = {proc.stdout_fd, POLLIN, 0};
    LO_CHECK_MSG(poll(&pfd, 1, 30'000) > 0, "process did not print READY in 30s");
    char buf[256];
    ssize_t n = read(proc.stdout_fd, buf, sizeof(buf));
    LO_CHECK_MSG(n > 0, "process exited before READY");
    out.append(buf, static_cast<size_t>(n));
  }
}

// Pulls "<key>=<value>\n" out of an admin.stats body.
uint64_t StatsField(const std::string& stats, const std::string& key) {
  std::string needle = key + "=";
  size_t pos = 0;
  while (pos < stats.size()) {
    size_t eol = stats.find('\n', pos);
    if (eol == std::string::npos) eol = stats.size();
    if (stats.compare(pos, needle.size(), needle) == 0) {
      return std::strtoull(stats.c_str() + pos + needle.size(), nullptr, 10);
    }
    pos = eol + 1;
  }
  return 0;
}

struct BenchConfig {
  uint64_t users = 2000;
  uint64_t posts_per_user = 5;
  int clients = 16;
  int64_t window_ms = 500;
  int baseline_windows = 6;
  int max_windows = 60;
  double recover = 0.8;      // recovery target, fraction of baseline
  size_t lanes = 2;          // few lanes => a hot node saturates visibly
  int64_t report_interval_ms = 100;
  int64_t rebalance_interval_ms = 200;
  double skew = 1.5;
  uint64_t min_requests = 200;
  int migrations_per_round = 2;
  uint64_t seed = 42;
  bool smoke = false;
};

struct ClientSlot {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> directory_refreshes{0};
  std::atomic<uint64_t> redirects{0};
  std::mutex mu;
  Histogram latency_us;  // guarded by mu; swapped out per window
};

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  const char* quick_env = std::getenv("LO_BENCH_QUICK");
  if (quick_env != nullptr && quick_env[0] == '1') config.smoke = true;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--smoke") == 0) config.smoke = true;
  }
  if (config.smoke) {
    config.users = 300;
    config.posts_per_user = 2;
    config.clients = 8;
    config.window_ms = 250;
    config.baseline_windows = 4;
    config.max_windows = 40;
    config.recover = 0.3;  // structural gate only; the full run uses 0.8
    config.rebalance_interval_ms = 100;
    config.skew = 1.6;  // uniform baseline at low volume is noisy
    config.min_requests = 100;
  }

  const std::string server_bin = [] {
    const char* env = std::getenv("LO_NET_SERVER_BIN");
    return env != nullptr && env[0] != '\0' ? std::string(env)
                                            : SiblingBin("lambdastore-server");
  }();
  const std::string coord_bin = [] {
    const char* env = std::getenv("LO_COORD_BIN");
    return env != nullptr && env[0] != '\0'
               ? std::string(env)
               : SiblingBin("lambdastore-coordinator");
  }();

  // --- cluster up: coordinator + 3 hash-placed servers -----------------
  const int initial_servers = 3;
  Proc coordinator = Spawn(
      coord_bin,
      {"--hash-servers=" + std::to_string(initial_servers),
       "--rebalance-interval-ms=" + std::to_string(config.rebalance_interval_ms),
       "--skew=" + std::to_string(config.skew),
       "--min-requests=" + std::to_string(config.min_requests),
       "--migrations-per-round=" + std::to_string(config.migrations_per_round)});
  const std::string coord_address =
      "127.0.0.1:" + std::to_string(coordinator.port);

  auto spawn_server = [&] {
    return Spawn(server_bin,
                 {"--coordinator=" + coord_address,
                  "--lanes=" + std::to_string(config.lanes),
                  "--report-interval-ms=" + std::to_string(config.report_interval_ms),
                  "--seed-users=" + std::to_string(config.users),
                  "--seed-posts=" + std::to_string(config.posts_per_user),
                  "--seed=" + std::to_string(config.seed)});
  };
  std::vector<Proc> servers;
  for (int i = 0; i < initial_servers; i++) servers.push_back(spawn_server());

  // Celebrities: 8 users that all hash-place onto the first server
  // (shard 0), so the hotspot phase concentrates on one node.
  retwis::WorkloadConfig workload_config;
  workload_config.num_users = config.users;
  workload_config.initial_posts_per_user = config.posts_per_user;
  workload_config.seed = config.seed;
  retwis::Workload workload(workload_config);
  std::vector<std::string> celebrities;
  for (uint64_t i = 0; i < config.users && celebrities.size() < 8; i++) {
    std::string oid = workload.UserId(i);
    if (Fnv1a64(oid) % initial_servers == 0) celebrities.push_back(oid);
  }
  LO_CHECK_MSG(celebrities.size() == 8, "graph too small for 8 celebrities");

  // --- closed-loop clients --------------------------------------------
  net::RpcClient rpc;  // one loop thread multiplexes all client threads
  std::atomic<int> phase{0};  // 0 = baseline, 1 = hotspot, 2 = done
  std::vector<std::unique_ptr<ClientSlot>> slots;
  for (int i = 0; i < config.clients; i++) {
    slots.push_back(std::make_unique<ClientSlot>());
  }
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  for (int i = 0; i < config.clients; i++) {
    threads.emplace_back([&, i] {
      clusterd::ClientOptions options;
      options.remote.seed = config.seed * 1000003 + static_cast<uint64_t>(i);
      options.remote.request_timeout_us = 5'000'000;
      options.remote.retry_budget_us = 10'000'000;
      clusterd::Client client(&rpc, coord_address, options);
      Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1)));
      ClientSlot& slot = *slots[static_cast<size_t>(i)];
      const std::string limit = retwis::EncodeU64(workload_config.timeline_limit);
      while (true) {
        int p = phase.load(std::memory_order_acquire);
        if (p == 2) break;
        retwis::Request request;
        uint64_t dice = rng.Uniform(100);
        if (p == 1 && dice < 85) {
          request = {celebrities[rng.Uniform(celebrities.size())],
                     "get_timeline", limit};
        } else if (dice < 95) {
          request = workload.Next(retwis::OpType::kGetTimeline, rng);
        } else {
          request = workload.Next(retwis::OpType::kPost, rng);
        }
        auto started = std::chrono::steady_clock::now();
        Result<std::string> result =
            client.Invoke(request.oid, request.method, request.argument);
        int64_t elapsed_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - started)
                .count();
        if (result.ok()) {
          slot.completed.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(slot.mu);
          slot.latency_us.Record(elapsed_us);
        } else {
          slot.errors.fetch_add(1, std::memory_order_relaxed);
        }
        slot.directory_refreshes.store(client.metrics().directory_refreshes,
                                       std::memory_order_relaxed);
        slot.redirects.store(client.remote_metrics().redirects,
                             std::memory_order_relaxed);
      }
    });
  }

  // --- window loop -----------------------------------------------------
  auto sum = [&](auto member) {
    uint64_t total = 0;
    for (auto& slot : slots) total += ((*slot).*member).load(std::memory_order_relaxed);
    return total;
  };
  auto coordinator_stats = [&] {
    auto reply = rpc.CallSync(coord_address, "admin.stats", "", 2'000'000);
    return reply.ok() ? *reply : std::string();
  };

  double baseline_throughput = 0;
  int baseline_counted = 0;
  uint64_t total_errors = 0, total_completed = 0;
  uint64_t migrations_seen = 0;
  int recovered_streak = 0;
  bool spawned_fourth = false;
  double recovered_at_fraction = 0;

  uint64_t prev_completed = 0;
  for (int window = 0; window < config.max_windows; window++) {
    bool hotspot = window >= config.baseline_windows;
    if (hotspot && !spawned_fourth) {
      // Elastic scale-out at the moment the hotspot begins: the new
      // server registers (directory-only shard) and becomes the
      // rebalancer's natural target.
      servers.push_back(spawn_server());
      spawned_fourth = true;
      phase.store(1, std::memory_order_release);
    }
    auto window_start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(config.window_ms));
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - window_start)
                         .count();

    uint64_t completed = sum(&ClientSlot::completed);
    uint64_t errors = sum(&ClientSlot::errors);
    uint64_t window_completed = completed - prev_completed;
    prev_completed = completed;
    Histogram window_latency;
    for (auto& slot : slots) {
      std::lock_guard<std::mutex> lock(slot->mu);
      window_latency.Merge(slot->latency_us);
      slot->latency_us.Clear();
    }
    std::string stats = coordinator_stats();
    migrations_seen = StatsField(stats, "migrations_done");
    double throughput = static_cast<double>(window_completed) / seconds;
    total_errors = errors;
    total_completed = completed;

    std::printf(
        "{\"experiment\":\"A9\",\"window\":%d,\"phase\":\"%s\","
        "\"seconds\":%.3f,\"throughput\":%.1f,\"p50_us\":%lld,"
        "\"p99_us\":%lld,\"errors\":%llu,\"migrations\":%llu,"
        "\"directory_refreshes\":%llu,\"redirects\":%llu,\"servers\":%zu}\n",
        window, hotspot ? "hotspot" : "baseline", seconds, throughput,
        static_cast<long long>(window_latency.Percentile(0.5)),
        static_cast<long long>(window_latency.Percentile(0.99)),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(migrations_seen),
        static_cast<unsigned long long>(sum(&ClientSlot::directory_refreshes)),
        static_cast<unsigned long long>(sum(&ClientSlot::redirects)),
        servers.size());
    std::fflush(stdout);

    if (!hotspot && window > 0) {  // window 0 is warmup
      baseline_throughput += throughput;
      baseline_counted++;
    }
    if (hotspot && baseline_counted > 0) {
      double baseline = baseline_throughput / baseline_counted;
      double fraction = baseline > 0 ? throughput / baseline : 0;
      if (migrations_seen >= 1 && fraction >= config.recover) {
        recovered_streak++;
        recovered_at_fraction = fraction;
        if (recovered_streak >= 2) break;
      } else {
        recovered_streak = 0;
      }
    }
  }
  phase.store(2, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  double baseline =
      baseline_counted > 0 ? baseline_throughput / baseline_counted : 0;
  std::printf(
      "{\"experiment\":\"A9\",\"summary\":true,\"baseline_throughput\":%.1f,"
      "\"migrations\":%llu,\"recovered\":%s,\"recovered_fraction\":%.2f,"
      "\"errors\":%llu,\"completed\":%llu}\n",
      baseline, static_cast<unsigned long long>(migrations_seen),
      recovered_streak >= 2 ? "true" : "false", recovered_at_fraction,
      static_cast<unsigned long long>(total_errors),
      static_cast<unsigned long long>(total_completed));
  std::fflush(stdout);

  // --- teardown --------------------------------------------------------
  for (Proc& server : servers) {
    (void)rpc.CallSync("127.0.0.1:" + std::to_string(server.port),
                       "admin.shutdown", "", 2'000'000);
  }
  (void)rpc.CallSync(coord_address, "admin.shutdown", "", 2'000'000);
  auto reap = [](Proc& proc) {
    for (int i = 0; i < 100; i++) {
      if (waitpid(proc.pid, nullptr, WNOHANG) == proc.pid) {
        proc.pid = -1;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };
  for (Proc& server : servers) reap(server);
  reap(coordinator);

  if (config.smoke) {
    // Structural gates, deliberately lenient: the smoke run proves the
    // machinery (migration fired, redirects worked, cluster stayed
    // correct), not the performance claim — that is the full run's job.
    bool ok = true;
    if (migrations_seen < 1) {
      std::fprintf(stderr, "SMOKE FAIL: no load-driven migration happened\n");
      ok = false;
    }
    if (total_completed == 0 ||
        total_errors * 20 > total_completed) {  // >5% errors
      std::fprintf(stderr, "SMOKE FAIL: error rate too high (%llu/%llu)\n",
                   static_cast<unsigned long long>(total_errors),
                   static_cast<unsigned long long>(total_completed));
      ok = false;
    }
    return ok ? 0 : 1;
  }
  return 0;
}
