// Figure 1 reproduction: normalized throughput of the ReTwis benchmark
// (Post / GetTimeline / Follow) for the aggregated LambdaStore design vs
// the disaggregated serverless baseline.
//
// Paper's measured values (CloudLab, jobs/sec):
//     Post:        aggregated 1309,  disaggregated   492   (2.7x)
//     GetTimeline: aggregated 30799, disaggregated  9106   (3.4x)
//     Follow:      aggregated 55600, disaggregated 11355   (4.9x)
// We reproduce the *shape*: aggregated wins every workload, Post is the
// slowest workload in both systems (one job = 1 + #followers calls).
#include <cstdio>

#include "bench/harness.h"

using namespace lo;
using namespace lo::bench;

int main() {
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});

  PrintHeader("Figure 1: ReTwis throughput (jobs/sec), normalized to aggregated");
  PrintRow("%-12s %14s %14s %12s %12s", "Workload", "Aggregated", "Disaggregated",
           "Norm.Agg", "Norm.Disagg");

  for (retwis::OpType op : {retwis::OpType::kPost, retwis::OpType::kGetTimeline,
                            retwis::OpType::kFollow}) {
    auto aggregated = RunExperiment(/*aggregated=*/true, op, config);
    auto disaggregated = RunExperiment(/*aggregated=*/false, op, config);
    double agg = aggregated.Throughput();
    double dis = disaggregated.Throughput();
    PrintRow("%-12s %14.0f %14.0f %12.2f %12.2f", retwis::OpName(op), agg, dis,
             1.0, agg > 0 ? dis / agg : 0.0);
    if (aggregated.errors + disaggregated.errors > 0) {
      PrintRow("  (errors: aggregated=%llu disaggregated=%llu)",
               static_cast<unsigned long long>(aggregated.errors),
               static_cast<unsigned long long>(disaggregated.errors));
    }
  }
  PrintRow("\npaper (absolute): Post 1309/492, GetTimeline 30799/9106, "
           "Follow 55600/11355");
  PrintRow("paper (normalized disagg): Post 0.38, GetTimeline 0.30, Follow 0.20");

  // LO_NET=real: repeat the aggregated runs against a real
  // lambdastore-server over loopback TCP (wall-clock, real threads).
  if (RealNetFromEnv().enabled) {
    PrintHeader("Figure 1 (LO_NET=real): aggregated over loopback TCP");
    PrintRow("%-12s %14s %10s %10s %10s", "Workload", "jobs/sec", "errors",
             "p50(us)", "p99(us)");
    for (retwis::OpType op : {retwis::OpType::kPost, retwis::OpType::kGetTimeline,
                              retwis::OpType::kFollow}) {
      auto real = RunRealNetExperiment(op, config);
      PrintRow("%-12s %14.0f %10llu %10lld %10lld", retwis::OpName(op),
               real.Throughput(), static_cast<unsigned long long>(real.errors),
               static_cast<long long>(real.latency_us.Percentile(0.5)),
               static_cast<long long>(real.latency_us.Percentile(0.99)));
    }
  }
  return 0;
}
