// Figure 2 reproduction: ReTwis request latencies — median (big bars)
// and 99th percentile (small bars) per workload and system.
//
// Paper's shape: aggregated median is <= 50% of disaggregated for every
// workload, and the disaggregated p99 shows much higher variance.
#include <cstdio>

#include "bench/harness.h"

using namespace lo;
using namespace lo::bench;

int main() {
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});

  PrintHeader("Figure 2: ReTwis latencies (ms)");
  PrintRow("%-12s %-14s %10s %10s %10s %10s", "Workload", "System", "p50",
           "p99", "mean", "stddev");

  for (retwis::OpType op : {retwis::OpType::kPost, retwis::OpType::kGetTimeline,
                            retwis::OpType::kFollow}) {
    double medians[2] = {0, 0};
    for (int aggregated = 1; aggregated >= 0; aggregated--) {
      auto result = RunExperiment(aggregated != 0, op, config);
      const auto& h = result.latency_us;
      medians[aggregated] = static_cast<double>(h.Percentile(0.5)) / 1000.0;
      PrintRow("%-12s %-14s %10.2f %10.2f %10.2f %10.2f", retwis::OpName(op),
               aggregated ? "Aggregated" : "Disaggregated",
               static_cast<double>(h.Percentile(0.5)) / 1000.0,
               static_cast<double>(h.Percentile(0.99)) / 1000.0,
               h.Mean() / 1000.0, h.StdDev() / 1000.0);
    }
    PrintRow("%-12s -> aggregated median is %.0f%% of disaggregated", "",
             medians[0] > 0 ? 100.0 * medians[1] / medians[0] : 0.0);
  }
  PrintRow("\npaper: aggregated median <= 50%% of disaggregated on every "
           "workload; higher variance for disaggregated");
  return 0;
}
