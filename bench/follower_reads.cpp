// A11 — follower reads: read throughput vs replica count at a fixed
// write rate (see EXPERIMENTS.md).
//
// Each arm runs a pure get_timeline closed loop against a fresh
// aggregated deployment — reads routed through Client::InvokeRead under
// one staleness contract (docs/replication.md) — while paced writers
// append posts at a fixed aggregate rate, feeding the replication
// stream. The sweep answers the tentpole question — how
// much read throughput do epoch-gated backup replicas add — and pins the
// cost of each contract: strict bounces when replication lags, bounded
// trades slack for fewer bounces, eventual never bounces, chain-tail is
// the linearizable-read ablation arm.
//
// Knobs: LO_FOLLOWER_READS / LO_STALENESS_EPOCHS append an extra
// env-selected arm; LO_BENCH_QUICK=1 shrinks the sweep. `--smoke` is the
// ctest regression guard: it fails if eventual mode stops serving the
// majority of reads from followers, or if a sequential strict client
// ever fails read-your-writes.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/log.h"
#include "replication/replicator.h"

namespace lo::bench {
namespace {

// Fixed write load across every arm: paced writers, not part of the
// measured closed loop, so the read throughput axis is not polluted by
// create_post's celebrity fan-out tail.
constexpr int kWriters = 10;
constexpr int kWritesPerWriterPerSec = 50;  // 500 writes/s aggregate

struct ArmSpec {
  std::string label;
  int replicas;
  replication::Mode repl_mode;
  replication::ReadMode read_mode;
  uint64_t staleness_epochs;
  /// The headline arms run uncached so the axis is read *execution*
  /// capacity (the §4.2.2 cache is A2's win and hides it: a cached hit
  /// never reaches the CPU model). One cached arm shows the compounding
  /// and the remote-invalidation traffic.
  bool result_cache = false;
};

struct ArmResult {
  retwis::DriverResult run;
  uint64_t reads_issued = 0;
  uint64_t writes_issued = 0;
  // Client-side view: reads answered by a backup / bounced to the primary.
  uint64_t follower_reads = 0;
  uint64_t read_bounces = 0;
  // Node-side counters summed over the replica set.
  double node_follower_reads = 0;
  double node_epoch_bounces = 0;
  double remote_invalidations = 0;
  double read_tput = 0;
  double write_tput = 0;
  double follower_fraction = 0;  // follower-served share of issued reads
  double primary_cpu_util = 0;   // node 0 busy-core share of the whole run
};

// One paced writer: create_post at a fixed rate until the run ends
// (the frame is torn down with the simulator).
sim::Task<void> WriterTask(cluster::Client* client,
                           const retwis::Workload* workload, sim::Simulator* sim,
                           uint64_t seed, sim::Duration interval,
                           uint64_t* writes, uint64_t* errors) {
  Rng rng(seed);
  // Zipf-targeted appends, so the cached arm's hot timelines keep being
  // invalidated over the replication stream while they are read hot.
  ZipfGenerator zipf(workload->config().num_users,
                     workload->config().zipf_alpha);
  uint64_t n = 0;
  for (;;) {
    retwis::Post post{"writer", 0, "post-" + std::to_string(++n)};
    std::string oid = workload->UserId(zipf.Sample(rng));
    auto result = co_await client->Invoke(oid, "store_post", post.Encode());
    if (result.ok()) {
      (*writes)++;
    } else {
      (*errors)++;
    }
    co_await sim->Sleep(interval);
  }
}

ArmResult RunArm(const ArmSpec& arm, const ExperimentConfig& config) {
  retwis::Workload workload(config.workload);
  sim::Simulator sim(config.seed);
  runtime::TypeRegistry types;
  LO_CHECK(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  obs::MetricsRegistry registry;

  cluster::DeploymentOptions options;
  options.num_storage_nodes = arm.replicas;
  options.node.replication_mode = arm.repl_mode;
  // Small nodes, so the primary's read path is the binding constraint:
  // the default 20-core nodes never saturate under this closed loop and
  // every arm measures client-side latency instead of read capacity.
  options.node.cores = 4;
  options.node.runtime.enable_result_cache = arm.result_cache;
  ApplyParallelismKnobs(config, &options.node);
  options.client.request_timeout = sim::Seconds(5);
  options.client.read_mode = arm.read_mode;
  options.client.staleness_epochs = arm.staleness_epochs;
  options.metrics_registry = &registry;
  cluster::AggregatedDeployment deployment(sim, &types, options);
  deployment.WaitUntilReady();
  for (int i = 0; i < deployment.num_nodes(); i++) {
    LO_CHECK(workload.SeedDb(&deployment.node(i).db()).ok());
  }

  ArmResult out;
  uint64_t write_errors = 0;
  for (int i = 0; i < kWriters; i++) {
    cluster::Client* writer = &deployment.NewClient();
    sim::Detach(WriterTask(writer, &workload, &sim, config.seed * 31 + i,
                           sim::Micros(1'000'000 / kWritesPerWriterPerSec),
                           &out.writes_issued, &write_errors));
  }
  std::vector<retwis::Invoker> invokers;
  std::vector<cluster::Client*> clients;
  for (int i = 0; i < config.num_clients; i++) {
    cluster::Client* client = &deployment.NewClient();
    clients.push_back(client);
    invokers.push_back([client, &out](const retwis::Request& request) {
      out.reads_issued++;
      return client->InvokeRead(request.oid, request.method, request.argument);
    });
  }
  retwis::DriverConfig driver;
  driver.warmup = config.warmup;
  driver.measure = config.measure;
  driver.seed = config.seed;
  out.run = retwis::RunClosedLoop(sim, workload, retwis::OpType::kGetTimeline,
                                  std::move(invokers), driver);

  for (const cluster::Client* client : clients) {
    out.follower_reads += client->metrics().follower_reads;
    out.read_bounces += client->metrics().read_bounces;
  }
  for (const auto& sample : registry.Snapshot()) {
    if (sample.name == "repl.follower_reads") {
      out.node_follower_reads += sample.value;
    } else if (sample.name == "repl.epoch_bounces") {
      out.node_epoch_bounces += sample.value;
    } else if (sample.name == "result_cache.remote_invalidations") {
      out.remote_invalidations += sample.value;
    }
  }
  LO_CHECK_MSG(write_errors == 0, "paced writers hit request errors");
  out.read_tput = out.run.Throughput();
  out.write_tput =
      sim.Now() > 0 ? out.writes_issued / (sim.Now() / 1e9) : 0;
  out.follower_fraction =
      out.reads_issued > 0
          ? static_cast<double>(out.follower_reads) / out.reads_issued
          : 0;
  const sim::CpuModel& cpu = deployment.node(0).cpu();
  if (sim.Now() > 0) {
    out.primary_cpu_util = static_cast<double>(cpu.busy_core_ns()) /
                           (static_cast<double>(cpu.cores()) * sim.Now());
  }
  return out;
}

// Sequential strict client: every read after an acked write must see it.
// Run as a coroutine with by-value parameters (the frame outlives main's
// scope between Steps).
sim::Task<void> StrictProbeTask(cluster::Client* client, std::string oid,
                                int iterations, uint64_t* violations,
                                uint64_t* errors, bool* done) {
  for (int i = 0; i < iterations; i++) {
    std::string msg = "ryw-probe-" + std::to_string(i);
    auto write = co_await client->Invoke(oid, "create_post", msg);
    if (!write.ok()) {
      (*errors)++;
      continue;
    }
    auto read =
        co_await client->InvokeRead(oid, "get_timeline", retwis::EncodeU64(1));
    if (!read.ok()) {
      (*errors)++;
    } else if (read->find(msg) == std::string::npos) {
      (*violations)++;
    }
  }
  *done = true;
}

uint64_t StrictProbe(const ExperimentConfig& config, int iterations) {
  retwis::Workload workload(config.workload);
  sim::Simulator sim(config.seed + 1);
  runtime::TypeRegistry types;
  LO_CHECK(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  cluster::DeploymentOptions options;
  options.num_storage_nodes = 3;
  options.node.runtime.enable_result_cache = true;
  options.client.request_timeout = sim::Seconds(5);
  options.client.read_mode = replication::ReadMode::kStrict;
  cluster::AggregatedDeployment deployment(sim, &types, options);
  deployment.WaitUntilReady();
  for (int i = 0; i < deployment.num_nodes(); i++) {
    LO_CHECK(workload.SeedDb(&deployment.node(i).db()).ok());
  }
  cluster::Client& client = deployment.NewClient();
  uint64_t violations = 0, errors = 0;
  bool done = false;
  sim::Detach(StrictProbeTask(&client, workload.UserId(0), iterations,
                              &violations, &errors, &done));
  while (!done) sim.Step();
  LO_CHECK_MSG(errors == 0, "strict probe hit request errors");
  return violations;
}

int Main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});
  if (smoke && !config.quick) {
    config.quick = true;
    config.workload.num_users = 500;
    config.measure = sim::Millis(300);
    config.warmup = sim::Millis(50);
  }
  // Read capacity only shows once the primary saturates: this sweep
  // runs more closed-loop clients than the headline figures so the
  // offered read load exceeds one node's cores (cf. primary_cpu_util
  // in the output — ~1.0 for primary_only, lower once follower serving
  // spreads the same load).
  config.num_clients = config.quick ? 80 : 300;

  using replication::Mode;
  using replication::ReadMode;
  std::vector<ArmSpec> arms = {
      {"primary_only_3", 3, Mode::kPrimaryBackup, ReadMode::kPrimaryOnly, 0},
      {"eventual_2", 2, Mode::kPrimaryBackup, ReadMode::kEventual, 0},
      {"eventual_3", 3, Mode::kPrimaryBackup, ReadMode::kEventual, 0},
      {"eventual_3_cached", 3, Mode::kPrimaryBackup, ReadMode::kEventual, 0,
       /*result_cache=*/true},
      {"strict_3", 3, Mode::kPrimaryBackup, ReadMode::kStrict, 0},
      {"bounded_3", 3, Mode::kPrimaryBackup, ReadMode::kBounded, 8},
      {"chain_tail_3", 3, Mode::kChain, ReadMode::kTail, 0},
  };
  const char* mode_env = std::getenv("LO_FOLLOWER_READS");
  if (mode_env != nullptr && mode_env[0] != '\0') {
    ReadMode mode = replication::ParseReadMode(mode_env, ReadMode::kEventual);
    uint64_t slack = 0;
    const char* slack_env = std::getenv("LO_STALENESS_EPOCHS");
    if (slack_env != nullptr && slack_env[0] != '\0') {
      slack = std::strtoull(slack_env, nullptr, 10);
    }
    arms.push_back({"env_" + std::string(replication::ReadModeName(mode)) +
                        "_3",
                    3, Mode::kPrimaryBackup, mode, slack});
  }
  if (smoke) {
    std::vector<ArmSpec> kept;
    for (const auto& arm : arms) {
      if (arm.label == "primary_only_3" || arm.label == "eventual_3" ||
          arm.label == "strict_3") {
        kept.push_back(arm);
      }
    }
    arms = std::move(kept);
  }

  PrintHeader(
      "A11 — follower reads: get_timeline throughput vs replicas "
      "(500 store_post/s paced)");
  PrintRow("%-16s %5s %9s %9s %7s %7s %9s %9s %8s %8s %7s", "config", "repl",
           "read/s", "write/s", "p50us", "p99us", "follower", "bounces",
           "f.frac", "rem.inv", "p.util");

  double primary_read_tput = 0, eventual3_read_tput = 0;
  double eventual3_fraction = -1;
  for (const auto& arm : arms) {
    ArmResult r = RunArm(arm, config);
    PrintRow("%-16s %5d %9.0f %9.0f %7" PRId64 " %7" PRId64
             " %9" PRIu64 " %9" PRIu64 " %8.3f %8.0f %7.2f",
             arm.label.c_str(), arm.replicas, r.read_tput, r.write_tput,
             r.run.latency_us.Percentile(0.5), r.run.latency_us.Percentile(0.99),
             r.follower_reads, r.read_bounces, r.follower_fraction,
             r.remote_invalidations, r.primary_cpu_util);
    std::printf(
        "{\"experiment\":\"A11\",\"config\":\"%s\",\"replicas\":%d,"
        "\"read_mode\":\"%s\",\"staleness_epochs\":%" PRIu64
        ",\"read_tput\":%.1f,\"write_tput\":%.1f,\"total_tput\":%.1f,"
        "\"p50_us\":%" PRId64 ",\"p99_us\":%" PRId64
        ",\"repl.follower_reads\":%.0f,\"repl.epoch_bounces\":%.0f,"
        "\"result_cache.remote_invalidations\":%.0f,"
        "\"client_follower_reads\":%" PRIu64 ",\"client_read_bounces\":%" PRIu64
        ",\"follower_fraction\":%.3f,\"primary_cpu_util\":%.3f,\"errors\":%"
        PRIu64 "}\n",
        arm.label.c_str(), arm.replicas,
        std::string(replication::ReadModeName(arm.read_mode)).c_str(),
        arm.staleness_epochs, r.read_tput, r.write_tput, r.run.Throughput(),
        r.run.latency_us.Percentile(0.5), r.run.latency_us.Percentile(0.99),
        r.node_follower_reads, r.node_epoch_bounces, r.remote_invalidations,
        r.follower_reads, r.read_bounces, r.follower_fraction,
        r.primary_cpu_util, r.run.errors);
    if (arm.label == "primary_only_3") primary_read_tput = r.read_tput;
    if (arm.label == "eventual_3") {
      eventual3_read_tput = r.read_tput;
      eventual3_fraction = r.follower_fraction;
    }
  }
  if (primary_read_tput > 0 && eventual3_read_tput > 0) {
    PrintRow("eventual_3 / primary_only_3 read throughput: %.2fx",
             eventual3_read_tput / primary_read_tput);
  }

  if (smoke) {
    int failures = 0;
    if (eventual3_fraction < 0.5) {
      std::fprintf(stderr,
                   "FAIL: eventual_3 follower-served fraction %.3f < 0.5\n",
                   eventual3_fraction);
      failures++;
    }
    uint64_t violations = StrictProbe(config, /*iterations=*/25);
    if (violations > 0) {
      std::fprintf(stderr,
                   "FAIL: %" PRIu64 " strict read-your-writes violations\n",
                   violations);
      failures++;
    } else {
      PrintRow("strict probe: 25/25 read-your-writes reads consistent");
    }
    return failures == 0 ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace lo::bench

int main(int argc, char** argv) { return lo::bench::Main(argc, argv); }
