#include "bench/harness.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"
#include "obs/export.h"

namespace lo::bench {

namespace {

obs::TracerOptions TracerOptionsFromEnv() {
  obs::TracerOptions options;
  options.sample_every = 16;
  const char* sample = std::getenv("LO_OBS_SAMPLE");
  if (sample != nullptr && sample[0] != '\0') {
    options.sample_every = std::strtoull(sample, nullptr, 10);
  }
  return options;
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  LO_CHECK_MSG(f != nullptr, path.c_str());
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
}

// Root-span wrapper for the disaggregated invokers: the aggregated
// system's Client mints "invoke" spans itself, but here clients are raw
// RpcEndpoints, so the harness plays that role.
sim::Task<Result<std::string>> TracedEntryCall(sim::RpcEndpoint* rpc,
                                               obs::Tracer* tracer,
                                               sim::NodeId entry,
                                               std::string service,
                                               std::string payload) {
  obs::TraceContext trace =
      tracer != nullptr ? tracer->StartTrace() : obs::TraceContext{};
  sim::Time started = rpc->sim().Now();
  Result<std::string> result = co_await rpc->Call(
      entry, std::move(service), std::move(payload), sim::Seconds(5), trace);
  if (obs::Tracing(tracer, trace)) {
    tracer->Record(trace, "invoke", rpc->node(), started, rpc->sim().Now());
  }
  co_return result;
}

}  // namespace

ObsHooks::ObsHooks() : tracer_(TracerOptionsFromEnv()) {
  const char* dir = std::getenv("LO_OBS_OUT");
  if (dir != nullptr && dir[0] != '\0') {
    enabled_ = true;
    out_dir_ = dir;
  }
}

void ObsHooks::Dump(const std::string& label) {
  if (!enabled_) return;
  WriteFileOrDie(out_dir_ + "/BENCH_" + label + "_metrics.json",
                 registry_.SnapshotJson());
  WriteFileOrDie(out_dir_ + "/BENCH_" + label + "_trace.json",
                 obs::ExportChromeTrace(tracer_.Spans()));
}

void ApplyParallelismKnobs(const ExperimentConfig& config,
                           cluster::StorageNodeOptions* node) {
  auto int_env = [](const char* name, int64_t fallback) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' ? std::strtoll(v, nullptr, 10) : fallback;
  };
  int64_t lanes = int_env("LO_LANES", -1);
  if (lanes > 0) node->runtime.lanes = static_cast<size_t>(lanes);
  int64_t gc_bytes = int_env("LO_GC_BYTES", -1);
  if (gc_bytes > 0) node->gc_max_batch_bytes = static_cast<size_t>(gc_bytes);
  int64_t gc_delay = int_env("LO_GC_DELAY_US", -1);
  if (gc_delay >= 0) node->gc_max_batch_delay = sim::Micros(gc_delay);
  int64_t cache_mb = int_env("LO_BLOCK_CACHE_MB", -1);
  if (cache_mb >= 0) {
    node->db_block_cache_bytes = static_cast<size_t>(cache_mb) << 20;
  }
  int64_t shards = int_env("LO_MEMTABLE_SHARDS", -1);
  if (shards > 0) node->db_memtable_shards = static_cast<int>(shards);
  int64_t subcompactions = int_env("LO_SUBCOMPACTIONS", -1);
  if (subcompactions > 0) node->db_subcompactions = static_cast<int>(subcompactions);
  int64_t rate_mb = int_env("LO_COMPACTION_RATE_MB", -1);
  if (rate_mb >= 0) node->db_compaction_rate_mb = static_cast<int>(rate_mb);
  // Explicit experiment config overrides env (ablation sweeps).
  if (config.lanes > 0) node->runtime.lanes = config.lanes;
  if (config.gc_max_batch_bytes > 0) {
    node->gc_max_batch_bytes = config.gc_max_batch_bytes;
  }
  if (config.gc_max_batch_delay_us >= 0) {
    node->gc_max_batch_delay = sim::Micros(config.gc_max_batch_delay_us);
  }
  if (config.block_cache_mb >= 0) {
    node->db_block_cache_bytes = static_cast<size_t>(config.block_cache_mb)
                                 << 20;
  }
  if (config.memtable_shards > 0) node->db_memtable_shards = config.memtable_shards;
  if (config.subcompactions > 0) node->db_subcompactions = config.subcompactions;
  if (config.compaction_rate_mb >= 0) {
    node->db_compaction_rate_mb = static_cast<int>(config.compaction_rate_mb);
  }
}

FaultPlan FaultPlanFromEnv() {
  auto int_env = [](const char* name, int64_t fallback) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' ? std::strtoll(v, nullptr, 10) : fallback;
  };
  auto double_env = [](const char* name, double fallback) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' ? std::strtod(v, nullptr) : fallback;
  };
  FaultPlan plan;
  plan.kill_primary_ms = int_env("LO_FAULT_KILL_PRIMARY_MS", -1);
  plan.revive_ms = int_env("LO_FAULT_REVIVE_MS", -1);
  plan.network.drop_probability = double_env("LO_FAULT_DROP", 0.0);
  plan.network.spike_probability = double_env("LO_FAULT_SPIKE_P", 0.0);
  plan.network.spike_mean = sim::Micros(int_env("LO_FAULT_SPIKE_US", 2000));
  return plan;
}

ExperimentConfig MaybeQuick(ExperimentConfig config) {
  const char* quick = std::getenv("LO_BENCH_QUICK");
  if (quick != nullptr && quick[0] == '1') {
    config.quick = true;
    config.workload.num_users = 500;
    config.num_clients = 20;
    config.measure = sim::Millis(300);
    config.warmup = sim::Millis(50);
  }
  return config;
}

AggregatedSystem::AggregatedSystem(const ExperimentConfig& config,
                                   const retwis::Workload& workload)
    : sim_(config.seed) {
  LO_CHECK(retwis::RegisterUserType(&types_, /*use_vm=*/true).ok());
  cluster::DeploymentOptions options;
  options.node.replication_mode = config.replication_mode;
  options.node.runtime.enable_result_cache = config.result_cache;
  ApplyParallelismKnobs(config, &options.node);
  // Closed-loop measurement clients must out-wait celebrity-post fan-outs.
  options.client.request_timeout = sim::Seconds(5);
  options.metrics_registry = obs_.registry();
  options.tracer = obs_.tracer();
  deployment_ =
      std::make_unique<cluster::AggregatedDeployment>(sim_, &types_, options);
  deployment_->WaitUntilReady();
  for (int i = 0; i < deployment_->num_nodes(); i++) {
    LO_CHECK(workload.SeedDb(&deployment_->node(i).db()).ok());
  }
}

retwis::DriverResult AggregatedSystem::Run(retwis::OpType op,
                                           const ExperimentConfig& config,
                                           const retwis::Workload& workload) {
  FaultPlan faults = FaultPlanFromEnv();
  if (faults.any()) {
    deployment_->network().SetFaults(faults.network);
    if (faults.kill_primary_ms >= 0) {
      sim::Detach([](sim::Simulator* sim, cluster::AggregatedDeployment* dep,
                     FaultPlan plan) -> sim::Task<void> {
        co_await sim->Sleep(sim::Millis(plan.kill_primary_ms));
        dep->KillStorageNode(0);
        if (plan.revive_ms > plan.kill_primary_ms) {
          co_await sim->Sleep(sim::Millis(plan.revive_ms - plan.kill_primary_ms));
          dep->ReviveStorageNode(0);
        }
      }(&sim_, deployment_.get(), faults));
    }
  }
  std::vector<retwis::Invoker> invokers;
  for (int i = 0; i < config.num_clients; i++) {
    cluster::Client* client = &deployment_->NewClient();
    invokers.push_back([client](const retwis::Request& request) {
      return client->Invoke(request.oid, request.method, request.argument);
    });
  }
  retwis::DriverConfig driver;
  driver.warmup = config.warmup;
  driver.measure = config.measure;
  driver.seed = config.seed;
  return retwis::RunClosedLoop(sim_, workload, op, std::move(invokers), driver);
}

DisaggregatedSystem::DisaggregatedSystem(const ExperimentConfig& config,
                                         const retwis::Workload& workload)
    : sim_(config.seed) {
  LO_CHECK(retwis::RegisterUserType(&types_, /*use_vm=*/true).ok());
  baseline::BaselineOptions options;
  options.storage.replication_mode = config.replication_mode;
  ApplyParallelismKnobs(config, &options.storage);
  options.metrics_registry = obs_.registry();
  options.tracer = obs_.tracer();
  deployment_ = std::make_unique<baseline::DisaggregatedDeployment>(sim_, &types_,
                                                                    options);
  for (int i = 0; i < 3; i++) {
    LO_CHECK(workload.SeedDb(&deployment_->storage(i).db()).ok());
  }
}

retwis::DriverResult DisaggregatedSystem::Run(retwis::OpType op,
                                              const ExperimentConfig& config,
                                              const retwis::Workload& workload) {
  std::vector<retwis::Invoker> invokers;
  sim::NodeId entry = deployment_->entry_node();
  std::string service = deployment_->entry_service();
  obs::Tracer* tracer = obs_.tracer();
  for (int i = 0; i < config.num_clients; i++) {
    sim::RpcEndpoint* rpc = &deployment_->NewClientEndpoint();
    invokers.push_back(
        [rpc, entry, service, tracer](const retwis::Request& request) {
          std::string payload;
          PutLengthPrefixed(&payload, request.oid);
          PutLengthPrefixed(&payload, request.method);
          PutLengthPrefixed(&payload, request.argument);
          return TracedEntryCall(rpc, tracer, entry, service,
                                 std::move(payload));
        });
  }
  retwis::DriverConfig driver;
  driver.warmup = config.warmup;
  driver.measure = config.measure;
  driver.seed = config.seed;
  return retwis::RunClosedLoop(sim_, workload, op, std::move(invokers), driver);
}

retwis::DriverResult RunExperiment(bool aggregated, retwis::OpType op,
                                   const ExperimentConfig& config) {
  retwis::Workload workload(config.workload);
  if (aggregated) {
    AggregatedSystem system(config, workload);
    retwis::DriverResult result = system.Run(op, config, workload);
    system.obs().Dump(std::string(retwis::OpName(op)) + "_agg");
    return result;
  }
  DisaggregatedSystem system(config, workload);
  retwis::DriverResult result = system.Run(op, config, workload);
  system.obs().Dump(std::string(retwis::OpName(op)) + "_disagg");
  return result;
}

PoissonSchedule::PoissonSchedule(double rate_per_sec, uint64_t seed)
    : mean_interval_us_(1e6 / (rate_per_sec > 0 ? rate_per_sec : 1.0)),
      rng_(seed) {}

int64_t PoissonSchedule::NextArrivalUs() {
  next_us_ += rng_.Exponential(mean_interval_us_);
  return static_cast<int64_t>(next_us_);
}

void PoissonSchedule::SetRate(double rate_per_sec) {
  mean_interval_us_ = 1e6 / (rate_per_sec > 0 ? rate_per_sec : 1.0);
}

void OpenLoopRecorder::RecordOk(int64_t scheduled_us, int64_t completed_us) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_us_.Record(completed_us - scheduled_us);
}

void OpenLoopRecorder::RecordShed() {
  std::lock_guard<std::mutex> lock(mu_);
  shed_++;
}

void OpenLoopRecorder::RecordError() {
  std::lock_guard<std::mutex> lock(mu_);
  errors_++;
}

OpenLoopRecorder::Summary OpenLoopRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Summary s;
  s.completed = latency_us_.count();
  s.shed = shed_;
  s.errors = errors_;
  s.p50_us = latency_us_.Percentile(0.5);
  s.p99_us = latency_us_.Percentile(0.99);
  s.max_us = latency_us_.Max();
  return s;
}

OpenLoopRecorder::Summary OpenLoopRecorder::Drain() {
  Summary s = Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  latency_us_.Clear();
  shed_ = 0;
  errors_ = 0;
  return s;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRow(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace lo::bench
