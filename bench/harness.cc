#include "bench/harness.h"

#include <cstdarg>
#include <cstdlib>

#include "common/log.h"

namespace lo::bench {

ExperimentConfig MaybeQuick(ExperimentConfig config) {
  const char* quick = std::getenv("LO_BENCH_QUICK");
  if (quick != nullptr && quick[0] == '1') {
    config.quick = true;
    config.workload.num_users = 500;
    config.num_clients = 20;
    config.measure = sim::Millis(300);
    config.warmup = sim::Millis(50);
  }
  return config;
}

AggregatedSystem::AggregatedSystem(const ExperimentConfig& config,
                                   const retwis::Workload& workload)
    : sim_(config.seed) {
  LO_CHECK(retwis::RegisterUserType(&types_, /*use_vm=*/true).ok());
  cluster::DeploymentOptions options;
  options.node.replication_mode = config.replication_mode;
  options.node.runtime.enable_result_cache = config.result_cache;
  // Closed-loop measurement clients must out-wait celebrity-post fan-outs.
  options.client.request_timeout = sim::Seconds(5);
  deployment_ =
      std::make_unique<cluster::AggregatedDeployment>(sim_, &types_, options);
  deployment_->WaitUntilReady();
  for (int i = 0; i < deployment_->num_nodes(); i++) {
    LO_CHECK(workload.SeedDb(&deployment_->node(i).db()).ok());
  }
}

retwis::DriverResult AggregatedSystem::Run(retwis::OpType op,
                                           const ExperimentConfig& config,
                                           const retwis::Workload& workload) {
  std::vector<retwis::Invoker> invokers;
  for (int i = 0; i < config.num_clients; i++) {
    cluster::Client* client = &deployment_->NewClient();
    invokers.push_back([client](const retwis::Request& request) {
      return client->Invoke(request.oid, request.method, request.argument);
    });
  }
  retwis::DriverConfig driver;
  driver.warmup = config.warmup;
  driver.measure = config.measure;
  driver.seed = config.seed;
  return retwis::RunClosedLoop(sim_, workload, op, std::move(invokers), driver);
}

DisaggregatedSystem::DisaggregatedSystem(const ExperimentConfig& config,
                                         const retwis::Workload& workload)
    : sim_(config.seed) {
  LO_CHECK(retwis::RegisterUserType(&types_, /*use_vm=*/true).ok());
  baseline::BaselineOptions options;
  options.storage.replication_mode = config.replication_mode;
  deployment_ = std::make_unique<baseline::DisaggregatedDeployment>(sim_, &types_,
                                                                    options);
  for (int i = 0; i < 3; i++) {
    LO_CHECK(workload.SeedDb(&deployment_->storage(i).db()).ok());
  }
}

retwis::DriverResult DisaggregatedSystem::Run(retwis::OpType op,
                                              const ExperimentConfig& config,
                                              const retwis::Workload& workload) {
  std::vector<retwis::Invoker> invokers;
  sim::NodeId entry = deployment_->entry_node();
  std::string service = deployment_->entry_service();
  for (int i = 0; i < config.num_clients; i++) {
    sim::RpcEndpoint* rpc = &deployment_->NewClientEndpoint();
    invokers.push_back([rpc, entry, service](const retwis::Request& request) {
      std::string payload;
      PutLengthPrefixed(&payload, request.oid);
      PutLengthPrefixed(&payload, request.method);
      PutLengthPrefixed(&payload, request.argument);
      return rpc->Call(entry, service, std::move(payload), sim::Seconds(5));
    });
  }
  retwis::DriverConfig driver;
  driver.warmup = config.warmup;
  driver.measure = config.measure;
  driver.seed = config.seed;
  return retwis::RunClosedLoop(sim_, workload, op, std::move(invokers), driver);
}

retwis::DriverResult RunExperiment(bool aggregated, retwis::OpType op,
                                   const ExperimentConfig& config) {
  retwis::Workload workload(config.workload);
  if (aggregated) {
    AggregatedSystem system(config, workload);
    return system.Run(op, config, workload);
  }
  DisaggregatedSystem system(config, workload);
  return system.Run(op, config, workload);
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRow(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace lo::bench
