// Shared experiment harness for the figure/table benchmarks.
//
// Builds the paper's two deployments (§5): the aggregated LambdaStore
// replica set and the disaggregated compute+storage baseline — both
// seeded with byte-identical ReTwis state — and runs closed-loop
// workloads against them.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"

#include "baseline/deployment.h"
#include "cluster/deployment.h"
#include "common/coding.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "retwis/driver.h"
#include "retwis/retwis.h"
#include "retwis/workload.h"

namespace lo::bench {

struct ExperimentConfig {
  retwis::WorkloadConfig workload;
  int num_clients = 100;               // paper: "up to 100 concurrent"
  sim::Duration warmup = sim::Millis(200);
  sim::Duration measure = sim::Seconds(1);
  uint64_t seed = 42;
  replication::Mode replication_mode = replication::Mode::kPrimaryBackup;
  /// The consistent result cache (§4.2.2) is evaluated separately in
  /// ablation_caching; the headline figures run without it, like the
  /// paper's early prototype numbers.
  bool result_cache = false;
  bool quick = false;  // shrunk parameters for smoke runs
  /// Parallelism knobs (0 / -1 = keep the node defaults). Set explicitly
  /// by ablation sweeps; every bench also honors the LO_LANES /
  /// LO_GC_BYTES / LO_GC_DELAY_US / LO_BLOCK_CACHE_MB /
  /// LO_MEMTABLE_SHARDS / LO_SUBCOMPACTIONS / LO_COMPACTION_RATE_MB env
  /// vars (explicit config wins). See docs/tuning.md for the full table.
  size_t lanes = 0;                  // execution lanes per storage node
  size_t gc_max_batch_bytes = 0;     // WAL group-commit size bound
  int64_t gc_max_batch_delay_us = -1;  // WAL group-commit window
  int64_t block_cache_mb = -1;       // SSTable block cache (0 = off)
  int memtable_shards = 0;           // LSM memtable shards (0 = default 1)
  int subcompactions = 0;            // parallel sub-compactions (0 = default 1)
  int64_t compaction_rate_mb = -1;   // compaction MB/s cap (0 = unlimited)
};

/// Resolves the parallelism knobs (env, then explicit config) onto a
/// node's options. Both system constructors call this, so benches pick
/// the knobs up automatically.
void ApplyParallelismKnobs(const ExperimentConfig& config,
                           cluster::StorageNodeOptions* node);

/// Applies LO_BENCH_QUICK=1 (env) to shrink an experiment ~20x.
ExperimentConfig MaybeQuick(ExperimentConfig config);

/// Degraded-mode fault plan for the aggregated system, parsed from env
/// (all optional; times are sim-time after the workload run starts):
///   LO_FAULT_KILL_PRIMARY_MS=<T>  kill storage node 0 — the bootstrap
///                                 primary of shard 0 — T ms in
///   LO_FAULT_REVIVE_MS=<T>        revive that node T ms in
///   LO_FAULT_DROP=<p>             extra per-message drop probability
///   LO_FAULT_SPIKE_P=<p>          per-message latency-spike probability
///   LO_FAULT_SPIKE_US=<n>         mean spike (exponential), microseconds
/// Faults draw from the deployment's seeded RNG, so one seed replays one
/// failure schedule.
struct FaultPlan {
  int64_t kill_primary_ms = -1;  // -1 = never
  int64_t revive_ms = -1;
  sim::NetworkFaults network;
  bool any() const {
    return kill_primary_ms >= 0 || revive_ms >= 0 ||
           network.drop_probability > 0 || network.spike_probability > 0;
  }
};
FaultPlan FaultPlanFromEnv();

/// Per-experiment observability: each system owns an isolated registry +
/// tracer (multiple systems reuse node ids, so the global Default() would
/// mix them up). Enabled by the LO_OBS_OUT env var naming an output
/// directory; LO_OBS_SAMPLE overrides the trace sampling rate (default
/// 16, i.e. every 16th invocation). Dump() writes
///   <dir>/BENCH_<label>_metrics.json   registry snapshot
///   <dir>/BENCH_<label>_trace.json     Chrome-trace-event spans
/// readable by ui.perfetto.dev and tools/trace_report.
class ObsHooks {
 public:
  ObsHooks();

  bool enabled() const { return enabled_; }
  obs::MetricsRegistry* registry() { return enabled_ ? &registry_ : nullptr; }
  obs::Tracer* tracer() { return enabled_ ? &tracer_ : nullptr; }
  void Dump(const std::string& label);

 private:
  bool enabled_ = false;
  std::string out_dir_;
  obs::MetricsRegistry registry_;
  obs::Tracer tracer_;
};

/// The aggregated system under test (paper topology: 3 storage nodes,
/// coordinators, 1 shard).
class AggregatedSystem {
 public:
  AggregatedSystem(const ExperimentConfig& config, const retwis::Workload& workload);

  retwis::DriverResult Run(retwis::OpType op, const ExperimentConfig& config,
                           const retwis::Workload& workload);
  cluster::AggregatedDeployment& deployment() { return *deployment_; }
  sim::Simulator& sim() { return sim_; }
  ObsHooks& obs() { return obs_; }

 private:
  sim::Simulator sim_;
  runtime::TypeRegistry types_;
  ObsHooks obs_;  // must outlive the deployment (registry holds pointers)
  std::unique_ptr<cluster::AggregatedDeployment> deployment_;
};

/// The disaggregated baseline (paper topology: 1 compute + 3 storage).
class DisaggregatedSystem {
 public:
  DisaggregatedSystem(const ExperimentConfig& config,
                      const retwis::Workload& workload);

  retwis::DriverResult Run(retwis::OpType op, const ExperimentConfig& config,
                           const retwis::Workload& workload);
  baseline::DisaggregatedDeployment& deployment() { return *deployment_; }
  sim::Simulator& sim() { return sim_; }
  ObsHooks& obs() { return obs_; }

 private:
  sim::Simulator sim_;
  runtime::TypeRegistry types_;
  ObsHooks obs_;  // must outlive the deployment (registry holds pointers)
  std::unique_ptr<baseline::DisaggregatedDeployment> deployment_;
};

/// Runs one (system, op) experiment on a fresh deployment and returns
/// the result. `aggregated` selects the system.
retwis::DriverResult RunExperiment(bool aggregated, retwis::OpType op,
                                   const ExperimentConfig& config);

// --- LO_NET=real: multi-process loopback deployment --------------------

/// Real-transport mode, parsed from env:
///   LO_NET=real             enable (anything else = sim only)
///   LO_NET_PORT=<p>         server listen port (default 0 = ephemeral)
///   LO_NET_SERVER_BIN=<p>   lambdastore-server binary (default: next to
///                           this binary, ../tools/lambdastore-server)
/// When enabled, benches additionally spawn one lambdastore-server
/// process and drive it over loopback TCP with net::RemoteClient — the
/// same closed loop, but in wall-clock time on real threads.
struct RealNetConfig {
  bool enabled = false;
  uint16_t port = 0;
  std::string server_bin;
};
RealNetConfig RealNetFromEnv();

/// Runs one op against a freshly spawned lambdastore-server: seeds the
/// same ReTwis graph (workload num_users/posts/seed travel as server
/// flags), runs `config.num_clients` real threads each owning a
/// net::RemoteClient over one shared net::RpcClient, measures for
/// `config.measure` wall-clock nanoseconds after `config.warmup`, then
/// shuts the server down (admin.shutdown + waitpid). Dies if the server
/// cannot be spawned or does not come up.
retwis::DriverResult RunRealNetExperiment(retwis::OpType op,
                                          const ExperimentConfig& config);

// --- A13: small-RPC transport saturation (bench/realnet_saturation) ----

/// One arm of the A13 sweep: spawns a lambdastore-server with the given
/// transport config and saturates it with a raw-socket pipelining
/// loadgen — `connections` blocking sockets, each keeping a window of
/// `window` "ping" echo requests on the wire (whole windows written
/// with one syscall, responses matched FIFO). Tiny payloads make
/// syscall and copy costs dominate, which is what the sharded/coalesced
/// transport exists to shrink.
struct SaturationConfig {
  int net_threads = 1;
  std::string backend = "epoll";  // epoll | uring (server may fall back)
  bool coalesce = true;           // false = write-per-response baseline
  int connections = 4;
  int window = 64;                // pipelined requests per connection
  size_t payload_bytes = 16;
  double warmup_s = 0.3;
  double measure_s = 2.0;
};

struct SaturationResult {
  double rpcs_per_sec = 0;
  /// Round-trip of one full pipelined window (write W → last response).
  double p50_us = 0;
  double p99_us = 0;
  /// Server-side (data syscalls + poll waits) / responses, diffed from
  /// admin.stats snapshots around the measure window.
  double syscalls_per_rpc = 0;
  std::string backend;  // server-reported; uring may fall back to epoll
  int reactors = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
};

SaturationResult RunRealNetSaturation(const SaturationConfig& config);

// --- open-loop (Poisson arrival) workload helpers ----------------------
//
// The closed-loop driver above measures capacity: N clients, each
// waiting for its reply before sending again, so an overloaded server
// just slows the clients down. Contention experiments (bench/tenancy)
// need the opposite: an arrival process that does NOT slow down when the
// server does, so queueing delay shows up in the latencies instead of
// silently thinning the load (coordinated omission).

/// Poisson arrival schedule: exponential inter-arrivals at
/// `rate_per_sec`, yielding absolute scheduled times in microseconds
/// from 0. Deterministic per seed. Not thread-safe — one schedule per
/// arrival generator.
class PoissonSchedule {
 public:
  PoissonSchedule(double rate_per_sec, uint64_t seed);

  /// Absolute scheduled time of the next arrival (µs since the schedule
  /// epoch). Monotone nondecreasing.
  int64_t NextArrivalUs();

  /// Replaces the rate going forward (aggressor ramps). The current
  /// position in time is kept.
  void SetRate(double rate_per_sec);

 private:
  double mean_interval_us_;
  double next_us_ = 0;
  Rng rng_;
};

/// Coordinated-omission-correct latency recording for open-loop runs:
/// every latency is measured from the *scheduled* arrival time, not the
/// send time, so an arrival that waited behind a backlog is charged its
/// full queueing delay and no arrival is ever skipped. Thread-safe.
class OpenLoopRecorder {
 public:
  /// One arrival answered OK.
  void RecordOk(int64_t scheduled_us, int64_t completed_us);
  /// One arrival shed by admission control (kTenantThrottled).
  void RecordShed();
  /// One arrival failed for any other reason.
  void RecordError();

  struct Summary {
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t errors = 0;
    int64_t p50_us = 0;
    int64_t p99_us = 0;
    int64_t max_us = 0;
  };
  Summary Snapshot() const;
  /// Snapshot, then reset — one measurement window's worth.
  Summary Drain();

 private:
  mutable std::mutex mu_;
  Histogram latency_us_;
  uint64_t shed_ = 0;
  uint64_t errors_ = 0;
};

// --- output helpers ----------------------------------------------------

void PrintHeader(const std::string& title);
void PrintRow(const char* fmt, ...);

}  // namespace lo::bench
