// LO_NET=real half of the harness: spawns one lambdastore-server
// process, drives it over loopback TCP with net::RemoteClient on real
// threads, and shuts it down cleanly. The closed loop mirrors
// retwis::RunClosedLoop, but in wall-clock time: N client threads each
// issue the next request as soon as the previous one completes,
// latencies recorded after a warmup window.
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/log.h"
#include "common/rng.h"
#include "net/remote_client.h"
#include "net/rpc_client.h"

extern char** environ;

namespace lo::bench {

namespace {

// The bench binaries live in <build>/bench, the server in <build>/tools.
std::string DefaultServerBin() {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "lambdastore-server";
  buf[n] = '\0';
  std::string path(buf);
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "lambdastore-server";
  return path.substr(0, slash) + "/../tools/lambdastore-server";
}

int64_t IntEnv(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::strtoll(v, nullptr, 10) : fallback;
}

// Owns the spawned server; kills it on any early exit so a failed bench
// never leaks a process holding the port (and our stderr).
struct ServerProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  uint16_t port = 0;

  ~ServerProcess() {
    if (stdout_fd >= 0) close(stdout_fd);
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
  }
  void Release() { pid = -1; }
};

void SpawnServer(const RealNetConfig& net, const ExperimentConfig& config,
                 ServerProcess* server) {
  std::vector<std::string> args;
  args.push_back(net.server_bin);
  args.push_back("--port=" + std::to_string(net.port));
  // Seed the same social graph the client-side Workload generates from.
  // (Only num_users/posts/seed travel; the fig benches leave the other
  // workload knobs at their defaults, which the server shares.)
  args.push_back("--seed-users=" + std::to_string(config.workload.num_users));
  args.push_back("--seed-posts=" +
                 std::to_string(config.workload.initial_posts_per_user));
  args.push_back("--seed=" + std::to_string(config.workload.seed));
  // Same env-then-explicit-config precedence as ApplyParallelismKnobs,
  // delivered as flags since the server is a fresh process.
  int64_t lanes = config.lanes > 0 ? static_cast<int64_t>(config.lanes)
                                   : IntEnv("LO_LANES", -1);
  if (lanes > 0) args.push_back("--lanes=" + std::to_string(lanes));
  int64_t gc_bytes = config.gc_max_batch_bytes > 0
                         ? static_cast<int64_t>(config.gc_max_batch_bytes)
                         : IntEnv("LO_GC_BYTES", -1);
  if (gc_bytes > 0) args.push_back("--gc-bytes=" + std::to_string(gc_bytes));
  int64_t gc_delay = config.gc_max_batch_delay_us >= 0
                         ? config.gc_max_batch_delay_us
                         : IntEnv("LO_GC_DELAY_US", -1);
  if (gc_delay >= 0) args.push_back("--gc-delay-us=" + std::to_string(gc_delay));

  int pipefd[2];
  LO_CHECK_MSG(pipe(pipefd) == 0, "pipe");
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, pipefd[1], STDOUT_FILENO);
  posix_spawn_file_actions_addclose(&actions, pipefd[0]);
  posix_spawn_file_actions_addclose(&actions, pipefd[1]);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  pid_t pid = -1;
  int rc = posix_spawn(&pid, args[0].c_str(), &actions, nullptr, argv.data(),
                       environ);
  posix_spawn_file_actions_destroy(&actions);
  close(pipefd[1]);
  if (rc != 0) {
    close(pipefd[0]);
    std::fprintf(stderr, "posix_spawn %s: %s\n", args[0].c_str(), strerror(rc));
    LO_CHECK_MSG(false, "cannot spawn lambdastore-server (set LO_NET_SERVER_BIN)");
  }
  server->pid = pid;
  server->stdout_fd = pipefd[0];

  // Wait for "READY port=<p>". Seeding a 10k-user graph takes a moment.
  std::string out;
  while (true) {
    size_t pos = out.find("READY port=");
    if (pos != std::string::npos && out.find('\n', pos) != std::string::npos) {
      server->port = static_cast<uint16_t>(
          std::atoi(out.c_str() + pos + strlen("READY port=")));
      return;
    }
    struct pollfd pfd = {server->stdout_fd, POLLIN, 0};
    int pr = poll(&pfd, 1, 30'000);
    LO_CHECK_MSG(pr > 0, "lambdastore-server did not print READY in 30s");
    char buf[256];
    ssize_t n = read(server->stdout_fd, buf, sizeof(buf));
    LO_CHECK_MSG(n > 0, "lambdastore-server exited before READY");
    out.append(buf, static_cast<size_t>(n));
  }
}

}  // namespace

RealNetConfig RealNetFromEnv() {
  RealNetConfig config;
  const char* mode = std::getenv("LO_NET");
  if (mode == nullptr || std::string(mode) != "real") return config;
  config.enabled = true;
  config.port = static_cast<uint16_t>(IntEnv("LO_NET_PORT", 0));
  const char* bin = std::getenv("LO_NET_SERVER_BIN");
  config.server_bin =
      bin != nullptr && bin[0] != '\0' ? bin : DefaultServerBin();
  return config;
}

retwis::DriverResult RunRealNetExperiment(retwis::OpType op,
                                          const ExperimentConfig& config) {
  RealNetConfig net = RealNetFromEnv();
  if (net.server_bin.empty()) net.server_bin = DefaultServerBin();
  ServerProcess server;
  SpawnServer(net, config, &server);

  retwis::Workload workload(config.workload);
  net::RpcClient rpc;  // one loop thread multiplexes every client thread
  const std::string address = "127.0.0.1:" + std::to_string(server.port);

  // 0 = warmup, 1 = measure, 2 = done. Requests in flight when the
  // window closes are dropped from the tally, like the sim driver.
  std::atomic<int> phase{0};
  struct PerThread {
    Histogram latency_us;
    uint64_t completed = 0;
    uint64_t errors = 0;
  };
  std::vector<PerThread> slots(config.num_clients);
  std::vector<std::thread> threads;
  threads.reserve(config.num_clients);
  for (int i = 0; i < config.num_clients; i++) {
    threads.emplace_back([&, i] {
      net::RemoteClientOptions options;
      options.seed = config.seed * 1000003 + static_cast<uint64_t>(i);
      // Closed-loop measurement clients must out-wait celebrity-post
      // fan-outs, like the sim bench client (cluster request_timeout).
      options.request_timeout_us = 5'000'000;
      options.retry_budget_us = 10'000'000;
      // Tenant identity for QoS experiments against a server started
      // with --tenants (see docs/tenancy.md); 0 = unattributed.
      options.tenant_id =
          static_cast<uint32_t>(IntEnv("LO_TENANT_ID", 0));
      net::RemoteClient client(&rpc, {address}, options);
      Rng rng(config.workload.seed ^
              (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1)));
      PerThread& slot = slots[static_cast<size_t>(i)];
      while (phase.load(std::memory_order_acquire) < 2) {
        retwis::Request request = workload.Next(op, rng);
        auto started = std::chrono::steady_clock::now();
        Result<std::string> result =
            client.Invoke(request.oid, request.method, request.argument);
        int64_t elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - started)
                                 .count();
        if (phase.load(std::memory_order_acquire) == 1) {
          if (result.ok()) {
            slot.completed++;
            slot.latency_us.Record(elapsed_us);
          } else {
            slot.errors++;
          }
        }
      }
    });
  }

  // sim::Duration is nanoseconds, so the sim windows map 1:1 onto
  // wall-clock sleeps.
  std::this_thread::sleep_for(std::chrono::nanoseconds(config.warmup));
  auto measure_start = std::chrono::steady_clock::now();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::nanoseconds(config.measure));
  phase.store(2, std::memory_order_release);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    measure_start)
          .count();
  for (std::thread& t : threads) t.join();

  retwis::DriverResult result;
  result.seconds = seconds;
  for (PerThread& slot : slots) {
    result.latency_us.Merge(slot.latency_us);
    result.completed += slot.completed;
    result.errors += slot.errors;
  }

  {
    net::RemoteClient admin(&rpc, {address});
    admin.Shutdown();
  }
  int status = 0;
  for (int i = 0; i < 100; i++) {  // up to 5s for the drain
    if (waitpid(server.pid, &status, WNOHANG) == server.pid) {
      server.Release();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (server.pid > 0) {
    std::fprintf(stderr, "lambdastore-server ignored shutdown; killing\n");
  } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "lambdastore-server exited uncleanly (status %d)\n",
                 status);
  }
  return result;
}

}  // namespace lo::bench
