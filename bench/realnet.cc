// LO_NET=real half of the harness: spawns one lambdastore-server
// process, drives it over loopback TCP with net::RemoteClient on real
// threads, and shuts it down cleanly. The closed loop mirrors
// retwis::RunClosedLoop, but in wall-clock time: N client threads each
// issue the next request as soon as the previous one completes,
// latencies recorded after a warmup window.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/log.h"
#include "common/rng.h"
#include "net/remote_client.h"
#include "net/rpc_client.h"

extern char** environ;

namespace lo::bench {

namespace {

// The bench binaries live in <build>/bench, the server in <build>/tools.
std::string DefaultServerBin() {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "lambdastore-server";
  buf[n] = '\0';
  std::string path(buf);
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "lambdastore-server";
  return path.substr(0, slash) + "/../tools/lambdastore-server";
}

int64_t IntEnv(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? std::strtoll(v, nullptr, 10) : fallback;
}

// Owns the spawned server; kills it on any early exit so a failed bench
// never leaks a process holding the port (and our stderr).
struct ServerProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  uint16_t port = 0;

  ~ServerProcess() {
    if (stdout_fd >= 0) close(stdout_fd);
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
  }
  void Release() { pid = -1; }
};

/// Spawns `args[0]` with stdout piped and blocks for "READY port=<p>".
void SpawnWithArgs(std::vector<std::string> args, ServerProcess* server);

void SpawnServer(const RealNetConfig& net, const ExperimentConfig& config,
                 ServerProcess* server) {
  std::vector<std::string> args;
  args.push_back(net.server_bin);
  args.push_back("--port=" + std::to_string(net.port));
  // Seed the same social graph the client-side Workload generates from.
  // (Only num_users/posts/seed travel; the fig benches leave the other
  // workload knobs at their defaults, which the server shares.)
  args.push_back("--seed-users=" + std::to_string(config.workload.num_users));
  args.push_back("--seed-posts=" +
                 std::to_string(config.workload.initial_posts_per_user));
  args.push_back("--seed=" + std::to_string(config.workload.seed));
  // Same env-then-explicit-config precedence as ApplyParallelismKnobs,
  // delivered as flags since the server is a fresh process.
  int64_t lanes = config.lanes > 0 ? static_cast<int64_t>(config.lanes)
                                   : IntEnv("LO_LANES", -1);
  if (lanes > 0) args.push_back("--lanes=" + std::to_string(lanes));
  int64_t gc_bytes = config.gc_max_batch_bytes > 0
                         ? static_cast<int64_t>(config.gc_max_batch_bytes)
                         : IntEnv("LO_GC_BYTES", -1);
  if (gc_bytes > 0) args.push_back("--gc-bytes=" + std::to_string(gc_bytes));
  int64_t gc_delay = config.gc_max_batch_delay_us >= 0
                         ? config.gc_max_batch_delay_us
                         : IntEnv("LO_GC_DELAY_US", -1);
  if (gc_delay >= 0) args.push_back("--gc-delay-us=" + std::to_string(gc_delay));
  SpawnWithArgs(std::move(args), server);
}

void SpawnWithArgs(std::vector<std::string> args, ServerProcess* server) {
  int pipefd[2];
  LO_CHECK_MSG(pipe(pipefd) == 0, "pipe");
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, pipefd[1], STDOUT_FILENO);
  posix_spawn_file_actions_addclose(&actions, pipefd[0]);
  posix_spawn_file_actions_addclose(&actions, pipefd[1]);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  pid_t pid = -1;
  int rc = posix_spawn(&pid, args[0].c_str(), &actions, nullptr, argv.data(),
                       environ);
  posix_spawn_file_actions_destroy(&actions);
  close(pipefd[1]);
  if (rc != 0) {
    close(pipefd[0]);
    std::fprintf(stderr, "posix_spawn %s: %s\n", args[0].c_str(), strerror(rc));
    LO_CHECK_MSG(false, "cannot spawn lambdastore-server (set LO_NET_SERVER_BIN)");
  }
  server->pid = pid;
  server->stdout_fd = pipefd[0];

  // Wait for "READY port=<p>". Seeding a 10k-user graph takes a moment.
  std::string out;
  while (true) {
    size_t pos = out.find("READY port=");
    if (pos != std::string::npos && out.find('\n', pos) != std::string::npos) {
      server->port = static_cast<uint16_t>(
          std::atoi(out.c_str() + pos + strlen("READY port=")));
      return;
    }
    struct pollfd pfd = {server->stdout_fd, POLLIN, 0};
    int pr = poll(&pfd, 1, 30'000);
    LO_CHECK_MSG(pr > 0, "lambdastore-server did not print READY in 30s");
    char buf[256];
    ssize_t n = read(server->stdout_fd, buf, sizeof(buf));
    LO_CHECK_MSG(n > 0, "lambdastore-server exited before READY");
    out.append(buf, static_cast<size_t>(n));
  }
}

/// Blocking loopback connect with TCP_NODELAY — the saturation loadgen
/// wants the simplest possible client so its own overhead stays flat
/// across the server arms being compared.
int DialBlocking(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  LO_CHECK_MSG(fd >= 0, "socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  LO_CHECK_MSG(rc == 0, "loadgen connect failed");
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Value of `key=` at the start of a line of admin.stats output.
uint64_t StatValue(const std::string& stats, const std::string& key) {
  std::string needle = key + "=";
  size_t pos = stats.rfind("\n" + needle);
  if (pos != std::string::npos) {
    pos += 1;
  } else if (stats.rfind(needle, 0) == 0) {
    pos = 0;
  } else {
    return 0;
  }
  return std::strtoull(stats.c_str() + pos + needle.size(), nullptr, 10);
}

std::string StatString(const std::string& stats, const std::string& key) {
  std::string needle = key + "=";
  size_t pos = stats.rfind("\n" + needle);
  if (pos != std::string::npos) {
    pos += 1;
  } else if (stats.rfind(needle, 0) == 0) {
    pos = 0;
  } else {
    return "";
  }
  size_t start = pos + needle.size();
  size_t end = stats.find('\n', start);
  return stats.substr(start, end == std::string::npos ? end : end - start);
}

}  // namespace

SaturationResult RunRealNetSaturation(const SaturationConfig& config) {
  RealNetConfig net = RealNetFromEnv();
  if (net.server_bin.empty()) net.server_bin = DefaultServerBin();
  ServerProcess server;
  SpawnWithArgs(
      {net.server_bin, "--port=" + std::to_string(net.port),
       "--net-threads=" + std::to_string(config.net_threads),
       "--net-backend=" + config.backend,
       std::string("--net-flush=") +
           (config.coalesce ? "coalesce" : "immediate"),
       "--lanes=2"},
      &server);
  const std::string address = "127.0.0.1:" + std::to_string(server.port);

  // One pipelined window, encoded once. rpc_id stays constant because
  // responses are matched FIFO per connection, never by id.
  net::RequestFrame ping;
  ping.rpc_id = 1;
  ping.service = "ping";
  std::string payload(config.payload_bytes, 'x');
  ping.payload = payload;
  std::string frame = net::EncodeRequest(ping);
  std::string batch;
  batch.reserve(frame.size() * static_cast<size_t>(config.window));
  for (int i = 0; i < config.window; i++) batch.append(frame);

  // 0 = warmup, 1 = measure, 2 = done; checked between windows.
  std::atomic<int> phase{0};
  struct Slot {
    Histogram window_rtt_us;
    uint64_t completed = 0;
    uint64_t errors = 0;
  };
  std::vector<Slot> slots(static_cast<size_t>(config.connections));
  std::vector<std::thread> threads;
  threads.reserve(slots.size());
  for (size_t c = 0; c < slots.size(); c++) {
    threads.emplace_back([&, c] {
      Slot& slot = slots[c];
      int fd = DialBlocking(server.port);
      std::string inbuf;
      char buf[64 * 1024];
      while (phase.load(std::memory_order_acquire) < 2) {
        auto t0 = std::chrono::steady_clock::now();
        size_t written = 0;
        while (written < batch.size()) {
          ssize_t n = write(fd, batch.data() + written, batch.size() - written);
          LO_CHECK_MSG(n > 0, "loadgen write failed");
          written += static_cast<size_t>(n);
        }
        int remaining = config.window;
        while (remaining > 0) {
          ssize_t n = read(fd, buf, sizeof(buf));
          LO_CHECK_MSG(n > 0, "loadgen read failed (server died?)");
          inbuf.append(buf, static_cast<size_t>(n));
          size_t offset = 0;
          while (remaining > 0) {
            size_t consumed = 0;
            std::string_view body;
            auto decoded = net::TryDecodeFrame(
                std::string_view(inbuf).substr(offset), &consumed, &body);
            if (decoded == net::DecodeResult::kNeedMore) break;
            LO_CHECK_MSG(decoded == net::DecodeResult::kOk,
                         "corrupt frame from server");
            net::Message message;
            if (net::DecodeMessage(body, &message) &&
                message.kind == net::MessageKind::kResponse &&
                message.response.code == StatusCode::kOk) {
              // ok
            } else {
              slot.errors++;
            }
            remaining--;
            offset += consumed;
          }
          inbuf.erase(0, offset);
        }
        if (phase.load(std::memory_order_acquire) == 1) {
          slot.completed += static_cast<uint64_t>(config.window);
          slot.window_rtt_us.Record(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        }
      }
      close(fd);
    });
  }

  // Control-plane snapshots bracket the measure window; their own ~2
  // RPCs are noise against the pipelined flood.
  net::RpcClient rpc;
  std::this_thread::sleep_for(std::chrono::duration<double>(config.warmup_s));
  auto before = rpc.CallSync(address, "admin.stats", "", 5'000'000);
  LO_CHECK_MSG(before.ok(), "admin.stats failed");
  auto measure_start = std::chrono::steady_clock::now();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(config.measure_s));
  phase.store(2, std::memory_order_release);
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - measure_start)
                       .count();
  auto after = rpc.CallSync(address, "admin.stats", "", 5'000'000);
  LO_CHECK_MSG(after.ok(), "admin.stats failed");
  for (std::thread& t : threads) t.join();

  SaturationResult result;
  Histogram merged;
  for (Slot& slot : slots) {
    merged.Merge(slot.window_rtt_us);
    result.completed += slot.completed;
    result.errors += slot.errors;
  }
  result.rpcs_per_sec = seconds > 0 ? static_cast<double>(result.completed) / seconds : 0;
  result.p50_us = static_cast<double>(merged.Percentile(0.50));
  result.p99_us = static_cast<double>(merged.Percentile(0.99));
  uint64_t d_responses = StatValue(*after, "responses") - StatValue(*before, "responses");
  uint64_t d_syscalls = StatValue(*after, "net_syscalls") - StatValue(*before, "net_syscalls");
  uint64_t d_waits = StatValue(*after, "net_poll_waits") - StatValue(*before, "net_poll_waits");
  result.syscalls_per_rpc =
      d_responses > 0
          ? static_cast<double>(d_syscalls + d_waits) / static_cast<double>(d_responses)
          : 0;
  result.backend = StatString(*after, "net_backend");
  result.reactors = static_cast<int>(StatValue(*after, "net_reactors"));

  {
    net::RemoteClient admin(&rpc, {address});
    admin.Shutdown();
  }
  int status = 0;
  for (int i = 0; i < 100; i++) {  // up to 5s for the drain
    if (waitpid(server.pid, &status, WNOHANG) == server.pid) {
      server.Release();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (server.pid > 0) {
    std::fprintf(stderr, "lambdastore-server ignored shutdown; killing\n");
  }
  return result;
}

RealNetConfig RealNetFromEnv() {
  RealNetConfig config;
  const char* mode = std::getenv("LO_NET");
  if (mode == nullptr || std::string(mode) != "real") return config;
  config.enabled = true;
  config.port = static_cast<uint16_t>(IntEnv("LO_NET_PORT", 0));
  const char* bin = std::getenv("LO_NET_SERVER_BIN");
  config.server_bin =
      bin != nullptr && bin[0] != '\0' ? bin : DefaultServerBin();
  return config;
}

retwis::DriverResult RunRealNetExperiment(retwis::OpType op,
                                          const ExperimentConfig& config) {
  RealNetConfig net = RealNetFromEnv();
  if (net.server_bin.empty()) net.server_bin = DefaultServerBin();
  ServerProcess server;
  SpawnServer(net, config, &server);

  retwis::Workload workload(config.workload);
  net::RpcClient rpc;  // one loop thread multiplexes every client thread
  const std::string address = "127.0.0.1:" + std::to_string(server.port);

  // 0 = warmup, 1 = measure, 2 = done. Requests in flight when the
  // window closes are dropped from the tally, like the sim driver.
  std::atomic<int> phase{0};
  struct PerThread {
    Histogram latency_us;
    uint64_t completed = 0;
    uint64_t errors = 0;
  };
  std::vector<PerThread> slots(config.num_clients);
  std::vector<std::thread> threads;
  threads.reserve(config.num_clients);
  for (int i = 0; i < config.num_clients; i++) {
    threads.emplace_back([&, i] {
      net::RemoteClientOptions options;
      options.seed = config.seed * 1000003 + static_cast<uint64_t>(i);
      // Closed-loop measurement clients must out-wait celebrity-post
      // fan-outs, like the sim bench client (cluster request_timeout).
      options.request_timeout_us = 5'000'000;
      options.retry_budget_us = 10'000'000;
      // Tenant identity for QoS experiments against a server started
      // with --tenants (see docs/tenancy.md); 0 = unattributed.
      options.tenant_id =
          static_cast<uint32_t>(IntEnv("LO_TENANT_ID", 0));
      net::RemoteClient client(&rpc, {address}, options);
      Rng rng(config.workload.seed ^
              (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1)));
      PerThread& slot = slots[static_cast<size_t>(i)];
      while (phase.load(std::memory_order_acquire) < 2) {
        retwis::Request request = workload.Next(op, rng);
        auto started = std::chrono::steady_clock::now();
        Result<std::string> result =
            client.Invoke(request.oid, request.method, request.argument);
        int64_t elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - started)
                                 .count();
        if (phase.load(std::memory_order_acquire) == 1) {
          if (result.ok()) {
            slot.completed++;
            slot.latency_us.Record(elapsed_us);
          } else {
            slot.errors++;
          }
        }
      }
    });
  }

  // sim::Duration is nanoseconds, so the sim windows map 1:1 onto
  // wall-clock sleeps.
  std::this_thread::sleep_for(std::chrono::nanoseconds(config.warmup));
  auto measure_start = std::chrono::steady_clock::now();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::nanoseconds(config.measure));
  phase.store(2, std::memory_order_release);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    measure_start)
          .count();
  for (std::thread& t : threads) t.join();

  retwis::DriverResult result;
  result.seconds = seconds;
  for (PerThread& slot : slots) {
    result.latency_us.Merge(slot.latency_us);
    result.completed += slot.completed;
    result.errors += slot.errors;
  }

  {
    net::RemoteClient admin(&rpc, {address});
    admin.Shutdown();
  }
  int status = 0;
  for (int i = 0; i < 100; i++) {  // up to 5s for the drain
    if (waitpid(server.pid, &status, WNOHANG) == server.pid) {
      server.Release();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (server.pid > 0) {
    std::fprintf(stderr, "lambdastore-server ignored shutdown; killing\n");
  } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "lambdastore-server exited uncleanly (status %d)\n",
                 status);
  }
  return result;
}

}  // namespace lo::bench
