// A13 — per-core sharded transport: small-RPC loopback saturation.
//
// Spawns one lambdastore-server per arm and floods it with tiny "ping"
// echoes from a raw-socket pipelining loadgen (see
// bench::RunRealNetSaturation), so transport costs — syscalls, frame
// copies, reactor wakeups — dominate and the arms isolate what the
// sharded/coalesced transport changed:
//
//   baseline   1 reactor, epoll, write-per-response (the pre-sharding
//              transport behavior)
//   coalesce1  1 reactor, epoll, end-of-iteration writev coalescing
//   coalesce4  4 reactors (SO_REUSEPORT), epoll, coalescing
//   uring4     4 reactors, io_uring poller, coalescing — skipped
//              cleanly when the kernel/sandbox lacks io_uring
//
// One JSON line per arm:
//   {"experiment":"A13","arm":"coalesce4","net_threads":4,
//    "backend":"epoll","flush":"coalesce","connections":4,"window":64,
//    "rpcs_per_sec":...,"p50_us":...,"p99_us":...,
//    "syscalls_per_rpc":...,"completed":...,"errors":...}
//
// --smoke (the realnet_smoke ctest): shortened windows, runs the
// baseline and coalesce4 arms, and fails if the coalesced writev path
// spends >= 1.5 syscalls per RPC — the regression guard on the flush
// coalescing this PR exists for.
#include <string.h>

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "net/poller.h"

namespace {

struct Arm {
  const char* name;
  int net_threads;
  const char* backend;
  bool coalesce;
};

lo::bench::SaturationResult RunArm(const Arm& arm,
                                   const lo::bench::SaturationConfig& base) {
  lo::bench::SaturationConfig config = base;
  config.net_threads = arm.net_threads;
  config.backend = arm.backend;
  config.coalesce = arm.coalesce;
  lo::bench::SaturationResult result = lo::bench::RunRealNetSaturation(config);
  std::printf(
      "{\"experiment\":\"A13\",\"arm\":\"%s\",\"net_threads\":%d,"
      "\"backend\":\"%s\",\"flush\":\"%s\",\"connections\":%d,\"window\":%d,"
      "\"rpcs_per_sec\":%.0f,\"p50_us\":%.0f,\"p99_us\":%.0f,"
      "\"syscalls_per_rpc\":%.3f,\"completed\":%llu,\"errors\":%llu}\n",
      arm.name, result.reactors, result.backend.c_str(),
      arm.coalesce ? "coalesce" : "immediate", config.connections,
      config.window, result.rpcs_per_sec, result.p50_us, result.p99_us,
      result.syscalls_per_rpc,
      static_cast<unsigned long long>(result.completed),
      static_cast<unsigned long long>(result.errors));
  std::fflush(stdout);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  lo::bench::SaturationConfig base;
  base.connections = 4;
  base.window = 64;
  if (smoke) {
    base.warmup_s = 0.2;
    base.measure_s = 0.8;
    base.connections = 2;
  }

  const Arm kBaseline = {"baseline", 1, "epoll", false};
  const Arm kCoalesce1 = {"coalesce1", 1, "epoll", true};
  const Arm kCoalesce4 = {"coalesce4", 4, "epoll", true};
  const Arm kUring4 = {"uring4", 4, "uring", true};

  lo::bench::SaturationResult baseline = RunArm(kBaseline, base);
  lo::bench::SaturationResult coalesce4{};
  if (smoke) {
    coalesce4 = RunArm(kCoalesce4, base);
  } else {
    RunArm(kCoalesce1, base);
    coalesce4 = RunArm(kCoalesce4, base);
    if (lo::net::UringAvailable()) {
      RunArm(kUring4, base);
    } else {
      std::printf(
          "{\"experiment\":\"A13\",\"arm\":\"uring4\",\"skipped\":"
          "\"io_uring unavailable on this kernel/sandbox\"}\n");
    }
    double speedup = baseline.rpcs_per_sec > 0
                         ? coalesce4.rpcs_per_sec / baseline.rpcs_per_sec
                         : 0;
    std::printf(
        "{\"experiment\":\"A13\",\"summary\":1,\"speedup_vs_baseline\":%.2f,"
        "\"baseline_syscalls_per_rpc\":%.3f,"
        "\"coalesced_syscalls_per_rpc\":%.3f}\n",
        speedup, baseline.syscalls_per_rpc, coalesce4.syscalls_per_rpc);
  }

  // Acceptance guard: the coalesced writev path must actually coalesce.
  if (coalesce4.syscalls_per_rpc >= 1.5) {
    std::fprintf(stderr,
                 "FAIL: coalesced syscalls_per_rpc %.3f >= 1.5 "
                 "(baseline %.3f)\n",
                 coalesce4.syscalls_per_rpc, baseline.syscalls_per_rpc);
    return 1;
  }
  if (coalesce4.completed == 0 || coalesce4.errors > 0 ||
      baseline.errors > 0) {
    std::fprintf(stderr, "FAIL: errors or no completions\n");
    return 1;
  }
  return 0;
}
