// Ablation A6: MiniLSM microbenchmarks (google-benchmark, wall-clock).
// Both architectures run on this storage engine, so its write/read/scan
// paths underlie every number in Figures 1-2.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "storage/db.h"
#include "storage/env.h"

namespace {

using namespace lo;
using namespace lo::storage;

std::unique_ptr<DB> FreshDb(MemEnv* env, size_t write_buffer = 4 << 20) {
  Options options;
  options.env = env;
  options.write_buffer_size = write_buffer;
  return std::move(*DB::Open(options, "/bench"));
}

std::string KeyOf(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%012llu", static_cast<unsigned long long>(i));
  return buf;
}

void BM_PutSync(benchmark::State& state) {
  MemEnv env;
  auto db = FreshDb(&env);
  uint64_t i = 0;
  std::string value(100, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Put({.sync = true}, KeyOf(i++), value).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PutSync);

void BM_PutNoSync(benchmark::State& state) {
  MemEnv env;
  auto db = FreshDb(&env);
  uint64_t i = 0;
  std::string value(100, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Put({.sync = false}, KeyOf(i++), value).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PutNoSync);

void BM_BatchCommit(benchmark::State& state) {
  // The invocation-commit shape: N writes in one atomic batch.
  MemEnv env;
  auto db = FreshDb(&env);
  auto batch_size = static_cast<uint64_t>(state.range(0));
  uint64_t i = 0;
  std::string value(100, 'v');
  for (auto _ : state) {
    WriteBatch batch;
    for (uint64_t j = 0; j < batch_size; j++) batch.Put(KeyOf(i++), value);
    benchmark::DoNotOptimize(db->Write({.sync = true}, &batch).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_BatchCommit)->Arg(1)->Arg(16)->Arg(256);

void BM_GetHotKeys(benchmark::State& state) {
  MemEnv env;
  auto db = FreshDb(&env);
  constexpr uint64_t kKeys = 100000;
  std::string value(100, 'v');
  for (uint64_t i = 0; i < kKeys; i++) {
    (void)db->Put({.sync = false}, KeyOf(i), value);
  }
  Rng rng(7);
  for (auto _ : state) {
    auto got = db->Get({}, KeyOf(rng.Uniform(kKeys)));
    benchmark::DoNotOptimize(got.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GetHotKeys);

void BM_GetHotZipfBlockCache(benchmark::State& state) {
  // The block-cache sweep: Zipf(0.8) point reads against table-resident
  // data, Arg = cache size in MiB (0 = off). A hit skips the Env read,
  // the CRC pass and the block parse; the sweep shows how much of the hot
  // read path that is.
  MemEnv env;
  Options options;
  options.env = &env;
  options.write_buffer_size = 1 << 20;  // data must live in tables
  options.block_cache_bytes = static_cast<size_t>(state.range(0)) << 20;
  auto db = std::move(*DB::Open(options, "/bench"));
  constexpr uint64_t kKeys = 100000;
  std::string value(100, 'v');
  for (uint64_t i = 0; i < kKeys; i++) {
    (void)db->Put({.sync = false}, KeyOf(i), value);
  }
  (void)db->CompactAll();
  ZipfGenerator zipf(kKeys, 0.8);
  Rng rng(7);
  for (auto _ : state) {
    auto got = db->Get({}, KeyOf(zipf.Sample(rng)));
    benchmark::DoNotOptimize(got.ok());
  }
  auto stats = db->GetStats();
  uint64_t lookups = stats.block_cache_hits + stats.block_cache_misses;
  state.counters["hit_rate"] =
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.block_cache_hits) /
                         static_cast<double>(lookups);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GetHotZipfBlockCache)->Arg(0)->Arg(8)->Arg(64);

void BM_GetMissBloomFiltered(benchmark::State& state) {
  MemEnv env;
  auto db = FreshDb(&env, 64 << 10);  // small buffer: data lives in tables
  std::string value(100, 'v');
  for (uint64_t i = 0; i < 20000; i++) {
    (void)db->Put({.sync = false}, KeyOf(i), value);
  }
  Rng rng(8);
  for (auto _ : state) {
    auto got = db->Get({}, "absent" + std::to_string(rng.Next()));
    benchmark::DoNotOptimize(got.status().IsNotFound());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GetMissBloomFiltered);

void BM_ScanSeekNext(benchmark::State& state) {
  MemEnv env;
  auto db = FreshDb(&env, 256 << 10);
  std::string value(100, 'v');
  for (uint64_t i = 0; i < 50000; i++) {
    (void)db->Put({.sync = false}, KeyOf(i), value);
  }
  Rng rng(9);
  for (auto _ : state) {
    auto iter = db->NewIterator({});
    iter->Seek(KeyOf(rng.Uniform(40000)));
    int n = 0;
    for (; iter->Valid() && n < 10; iter->Next()) n++;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_ScanSeekNext);

void BM_RecoveryReplay(benchmark::State& state) {
  // Cost of reopening a DB whose WAL holds `range` batched writes.
  auto entries = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    MemEnv env;
    {
      auto db = FreshDb(&env, 64 << 20);  // keep everything in the WAL
      std::string value(100, 'v');
      for (uint64_t i = 0; i < entries; i++) {
        (void)db->Put({.sync = i + 1 == entries}, KeyOf(i), value);
      }
    }
    state.ResumeTiming();
    auto db = FreshDb(&env, 64 << 20);
    benchmark::DoNotOptimize(db.get());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RecoveryReplay)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
