// Ablation A5: concurrency sweep. The paper: "we run up to 100
// concurrent client requests for all workloads, which we found to yield
// the maximum throughput". This sweep regenerates that saturation curve
// for the aggregated system on the Follow workload.
#include <cstdio>

#include "bench/harness.h"

using namespace lo;
using namespace lo::bench;

int main() {
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});

  PrintHeader("Ablation A5: closed-loop client sweep (aggregated, Follow)");
  PrintRow("%-10s %12s %10s %10s", "Clients", "jobs/sec", "p50(ms)", "p99(ms)");
  std::vector<int> sweep = config.quick ? std::vector<int>{1, 8, 32}
                                        : std::vector<int>{1, 4, 16, 64, 100,
                                                           160, 256};
  retwis::Workload workload(config.workload);
  for (int clients : sweep) {
    ExperimentConfig run_config = config;
    run_config.num_clients = clients;
    AggregatedSystem system(run_config, workload);
    auto result = system.Run(retwis::OpType::kFollow, run_config, workload);
    PrintRow("%-10d %12.0f %10.2f %10.2f", clients, result.Throughput(),
             static_cast<double>(result.latency_us.Percentile(0.5)) / 1000.0,
             static_cast<double>(result.latency_us.Percentile(0.99)) / 1000.0);
  }
  PrintRow("\nexpected: throughput saturates near ~100 clients (paper's");
  PrintRow("operating point); beyond that only latency grows");
  return 0;
}
