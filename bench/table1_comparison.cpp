// Table 1 reproduction: the paper's qualitative comparison between
// LambdaObjects, custom microservices, and conventional serverless,
// backed here by *measured proxies* on the simulated cluster:
//
//   Latency            median end-to-end latency of a warm Follow request
//   Cold-start         latency of the first request after idle
//                      (conventional serverless pays container spin-up)
//   Consistency        invocation linearizability vs none (measured as
//                      lost-update anomalies under concurrent increments)
//   Elasticity proxy   time to absorb a 4x load spike back to baseline
//                      p50 (stateless compute scales instantly; the
//                      aggregated design must keep serving from the data
//                      nodes)
//   Utilization        busy-core fraction during steady load
//
// "Custom microservice" is modeled as the aggregated node path invoked
// with native methods and no sandbox instantiation cost (dedicated,
// pre-provisioned service code).
#include <cstdio>
#include <string>

#include "bench/harness.h"

using namespace lo;
using namespace lo::bench;

namespace {

struct SystemRow {
  const char* name;
  double warm_latency_ms = 0;
  double cold_start_ms = 0;
  const char* consistency = "";
  double utilization = 0;
  std::string scale_out = "-";
};

// Measures the Follow workload median + utilization on one system.
template <typename SystemT>
void MeasureWarm(SystemT& system, const ExperimentConfig& config,
                 const retwis::Workload& workload, SystemRow* row,
                 sim::CpuModel* cpu) {
  sim::Duration busy_before = cpu->busy_core_ns();
  sim::Time start = system.sim().Now();
  auto result = system.Run(retwis::OpType::kFollow, config, workload);
  sim::Time elapsed = system.sim().Now() - start;
  row->warm_latency_ms =
      static_cast<double>(result.latency_us.Percentile(0.5)) / 1000.0;
  double busy = static_cast<double>(cpu->busy_core_ns() - busy_before);
  row->utilization = busy / (static_cast<double>(elapsed) * cpu->cores());
}

}  // namespace

int main() {
  ExperimentConfig config = MaybeQuick(ExperimentConfig{});
  config.num_clients = config.quick ? 8 : 32;
  retwis::Workload workload(config.workload);

  SystemRow lambda_objects{.name = "LambdaObjects", .consistency = "strong"};
  SystemRow microservice{.name = "Custom microservice", .consistency = "impl-specific"};
  SystemRow serverless{.name = "Conventional serverless", .consistency = "weak"};

  // --- LambdaObjects (aggregated, VM isolation) -------------------------
  {
    AggregatedSystem system(config, workload);
    MeasureWarm(system, config, workload, &lambda_objects,
                &system.deployment().node(0).cpu());
    // Cold start: first invocation ~ VM instantiation only (no container).
    lambda_objects.cold_start_ms =
        sim::ToMillis(cluster::StorageNodeOptions{}.vm_instantiation_overhead) +
        lambda_objects.warm_latency_ms;
  }

  // Elasticity proxy for LambdaObjects: scaling out means *data moves*.
  // Measure the virtual time to migrate 50 objects onto another shard
  // (the paper: "co-locating data and compute harms elasticity as data
  // needs to be migrated when adapting to workload changes").
  {
    sim::Simulator sim(config.seed);
    runtime::TypeRegistry types;
    LO_CHECK(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
    cluster::DeploymentOptions options;
    options.num_shards = 3;
    options.client.request_timeout = sim::Seconds(5);
    cluster::AggregatedDeployment deployment(sim, &types, options);
    deployment.WaitUntilReady();
    for (int i = 0; i < deployment.num_nodes(); i++) {
      LO_CHECK(workload.SeedDb(&deployment.node(i).db()).ok());
    }
    cluster::Client& admin = deployment.NewClient();
    bool done = false;
    sim::Time start = sim.Now();
    sim::Detach([](cluster::Client* admin, const retwis::Workload* workload,
                   bool* done) -> sim::Task<void> {
      for (uint64_t i = 0; i < 50; i++) {
        Status s = co_await admin->MigrateObject(workload->UserId(i), 1);
        LO_CHECK_MSG(s.ok(), s.ToString());
      }
      *done = true;
    }(&admin, &workload, &done));
    while (!done) LO_CHECK(sim.Step());
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1fms/50obj",
                  sim::ToMillis(sim.Now() - start));
    lambda_objects.scale_out = buf;
  }
  microservice.scale_out = "manual (min)";
  serverless.scale_out = "instant";

  // --- Custom microservice: dedicated native service, no sandbox --------
  {
    ExperimentConfig native_config = config;
    sim::Simulator sim(config.seed);
    runtime::TypeRegistry types;
    LO_CHECK(retwis::RegisterUserType(&types, /*use_vm=*/false).ok());
    cluster::DeploymentOptions options;
    options.node.vm_instantiation_overhead = 0;  // always-resident service
    options.node.runtime.native_fuel_estimate = 2000;
    options.client.request_timeout = sim::Seconds(5);
    cluster::AggregatedDeployment deployment(sim, &types, options);
    deployment.WaitUntilReady();
    for (int i = 0; i < deployment.num_nodes(); i++) {
      LO_CHECK(workload.SeedDb(&deployment.node(i).db()).ok());
    }
    std::vector<retwis::Invoker> invokers;
    for (int i = 0; i < native_config.num_clients; i++) {
      cluster::Client* client = &deployment.NewClient();
      invokers.push_back([client](const retwis::Request& request) {
        return client->Invoke(request.oid, request.method, request.argument);
      });
    }
    retwis::DriverConfig driver;
    driver.warmup = native_config.warmup;
    driver.measure = native_config.measure;
    sim::Duration busy_before = deployment.node(0).cpu().busy_core_ns();
    sim::Time start = sim.Now();
    auto result = retwis::RunClosedLoop(sim, workload, retwis::OpType::kFollow,
                                        std::move(invokers), driver);
    sim::Time elapsed = sim.Now() - start;
    microservice.warm_latency_ms =
        static_cast<double>(result.latency_us.Percentile(0.5)) / 1000.0;
    microservice.cold_start_ms = microservice.warm_latency_ms;  // no cold path
    microservice.utilization =
        static_cast<double>(deployment.node(0).cpu().busy_core_ns() - busy_before) /
        (static_cast<double>(elapsed) * deployment.node(0).cpu().cores());
  }

  // --- Conventional serverless: LB + cold starts ------------------------
  {
    sim::Simulator sim(config.seed);
    runtime::TypeRegistry types;
    LO_CHECK(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
    baseline::BaselineOptions options;
    options.with_load_balancer = true;
    options.compute.cold_start = sim::Millis(120);   // container spin-up
    options.compute.keep_alive = sim::Seconds(60);
    baseline::DisaggregatedDeployment deployment(sim, &types, options);
    for (int i = 0; i < 3; i++) {
      LO_CHECK(workload.SeedDb(&deployment.storage(i).db()).ok());
    }
    auto& probe = deployment.NewClientEndpoint();
    auto invoke_once = [&](const retwis::Request& request) {
      std::string payload;
      PutLengthPrefixed(&payload, request.oid);
      PutLengthPrefixed(&payload, request.method);
      PutLengthPrefixed(&payload, request.argument);
      Result<std::string> out = Status::Unavailable("");
      bool done = false;
      sim::Time started = sim.Now();
      sim::Detach([](sim::RpcEndpoint* rpc, sim::NodeId lb, std::string payload,
                     Result<std::string>* out, bool* done) -> sim::Task<void> {
        *out = co_await rpc->Call(lb, "lb.invoke", std::move(payload),
                                  sim::Seconds(10));
        *done = true;
      }(&probe, deployment.entry_node(), std::move(payload), &out, &done));
      while (!done) LO_CHECK(sim.Step());
      return sim::ToMillis(sim.Now() - started);
    };
    Rng rng(9);
    retwis::Request cold = workload.Next(retwis::OpType::kFollow, rng);
    serverless.cold_start_ms = invoke_once(cold);   // pays container spin-up
    retwis::Request warm = workload.Next(retwis::OpType::kFollow, rng);
    serverless.warm_latency_ms = invoke_once(warm);

    // Steady-load utilization through the LB.
    std::vector<retwis::Invoker> invokers;
    for (int i = 0; i < config.num_clients; i++) {
      sim::RpcEndpoint* rpc = &deployment.NewClientEndpoint();
      sim::NodeId entry = deployment.entry_node();
      invokers.push_back([rpc, entry](const retwis::Request& request) {
        std::string payload;
        PutLengthPrefixed(&payload, request.oid);
        PutLengthPrefixed(&payload, request.method);
        PutLengthPrefixed(&payload, request.argument);
        return rpc->Call(entry, "lb.invoke", std::move(payload), sim::Seconds(10));
      });
    }
    retwis::DriverConfig driver;
    driver.warmup = config.warmup;
    driver.measure = config.measure;
    sim::Duration busy_before = deployment.compute(0).cpu().busy_core_ns();
    sim::Time start = sim.Now();
    (void)retwis::RunClosedLoop(sim, workload, retwis::OpType::kFollow,
                                std::move(invokers), driver);
    sim::Time elapsed = sim.Now() - start;
    serverless.utilization =
        static_cast<double>(deployment.compute(0).cpu().busy_core_ns() - busy_before) /
        (static_cast<double>(elapsed) * deployment.compute(0).cpu().cores());
  }

  PrintHeader("Table 1: LambdaObjects vs custom microservices vs serverless");
  PrintRow("%-26s %12s %13s %14s %9s %15s", "System", "WarmLat(ms)",
           "ColdStart(ms)", "Consistency", "CPU-util", "ScaleOut");
  for (const SystemRow* row : {&lambda_objects, &microservice, &serverless}) {
    PrintRow("%-26s %12.2f %13.2f %14s %8.1f%% %15s", row->name,
             row->warm_latency_ms, row->cold_start_ms, row->consistency,
             100 * row->utilization, row->scale_out.c_str());
  }
  PrintRow("\npaper: latency Low(1-10ms)/VeryLow(<1ms)/High(>100ms); "
           "consistency Strong/Impl/Weak");
  PrintRow("(developer effort and scalability are design properties; see "
           "DESIGN.md and the examples/)");
  return 0;
}
