// Experiment A12: multi-tenant noisy neighbor under open-loop load.
//
// Two tenants share one ParallelNode (4 execution lanes, VM-metered spin
// methods on disjoint object sets): a well-behaved victim sending a
// steady Poisson stream at ~15% of measured node capacity, and an
// aggressor whose arrival rate ramps from 1x to 10x its contracted rate
// budget (10x budget ~ 1.5x node capacity — strictly overloaded). Both
// streams are open loop (bench/harness.h PoissonSchedule +
// OpenLoopRecorder): arrivals do not slow down when the node does, so
// queueing delay lands in the recorded latencies instead of silently
// thinning the load (coordinated omission).
//
// Two arms, fresh node each:
//   off  no TenantRegistry — plain FIFO lanes, nothing is shed; the
//        aggressor's backlog grows without bound and the victim's p99
//        rides it up
//   on   TenantRegistry with the aggressor capped at its rate budget
//        (token bucket -> kTenantThrottled) and the victim at 4x DRR
//        weight; over-budget aggressor arrivals shed at admission and
//        the victim's p99 stays near its uncontended value
//
// Output: one JSON line per measurement window per arm
//   {"experiment":"A12","arm":"on","window":3,"ramp":4.9,
//    "victim":{"completed":..,"shed":..,"p50_us":..,"p99_us":..},
//    "aggressor":{...}}
// then a summary line with the acceptance verdict. Acceptance (--smoke
// fails the process otherwise): over the fully-ramped tail of the run,
//   victim_p99(on) * 2 < victim_p99(off)   and   aggressor sheds > 0.
//
// LO_BENCH_QUICK=1 shrinks the windows; LO_OBS_OUT dumps the registry's
// per-tenant tenant.* metrics for tools/trace-report.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "runtime/executor.h"
#include "storage/env.h"
#include "tenant/tenant.h"
#include "vm/assembler.h"

namespace {

using namespace lo;

constexpr tenant::TenantId kVictim = 1;
constexpr tenant::TenantId kAggressor = 2;
constexpr size_t kLanes = 4;
constexpr size_t kObjectsPerTenant = 64;
constexpr uint64_t kSpinIterations = 20'000;
constexpr double kRampMax = 10.0;  // aggressor peak, in multiples of budget

struct BenchConfig {
  int windows = 10;
  int64_t window_ms = 400;
  bool smoke = false;
};

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Pure-CPU fuel burner: counts down `kSpinIterations` inside the VM, so
// lane occupancy is genuine metered execution (and tenant.fuel_used
// accrues), with no storage writes to batch away.
std::shared_ptr<vm::Module> SpinModule() {
  char src[256];
  std::snprintf(src, sizeof(src), R"(
func spin export locals n
  push %llu
  local.set n
loop:
  local.get n
  push 1
  sub
  local.tee n
  br_if loop
  push 0
  push 0
  ret
end
)",
                static_cast<unsigned long long>(kSpinIterations));
  auto module = vm::Assemble(src);
  LO_CHECK_MSG(module.ok(), "spin module failed to assemble");
  return std::make_shared<vm::Module>(std::move(*module));
}

void RegisterSpinType(runtime::TypeRegistry* types) {
  runtime::ObjectType type;
  type.name = "spin_t";
  type.methods["spin"] = runtime::MethodImpl{
      .kind = runtime::MethodKind::kReadWrite, .module = SpinModule()};
  LO_CHECK(types->Register(std::move(type)).ok());
}

std::string Oid(tenant::TenantId tenant, size_t i) {
  return (tenant == kVictim ? "v/" : "a/") + std::to_string(i);
}

// One node under test: DB + types + ParallelNode (+ registry in the on
// arm), with its objects pre-created.
struct Node {
  explicit Node(tenant::TenantRegistry* tenants) {
    storage::Options db_options;
    db_options.env = &env;
    db_options.serialize_access = true;
    db = std::move(*storage::DB::Open(db_options, "/db"));
    RegisterSpinType(&types);
    runtime::ParallelNodeOptions options;
    options.lanes = kLanes;
    options.tenants = tenants;
    node = std::make_unique<runtime::ParallelNode>(db.get(), &types, options);
    for (tenant::TenantId t : {kVictim, kAggressor}) {
      for (size_t i = 0; i < kObjectsPerTenant; i++) {
        LO_CHECK(node->CreateObject(Oid(t, i), "spin_t").get().ok());
      }
    }
  }

  storage::MemEnv env;
  std::unique_ptr<storage::DB> db;
  runtime::TypeRegistry types;
  std::unique_ptr<runtime::ParallelNode> node;
};

// Measured node capacity in ops/sec: batches of concurrent InvokeAsync
// spins keeping every lane busy for ~300 ms. Measuring through the same
// concurrent path the experiment uses (not sequentially × lane count)
// keeps the calibration honest on machines where parallel scaling is
// poor — under TSan the sequential estimate is several times too high,
// which would overload even the protected arm.
double MeasureCapacity() {
  Node warm(nullptr);
  warm.node->Invoke(Oid(kVictim, 0), "spin", "").get();  // warm the VM path
  int64_t started = NowUs();
  int completed = 0;
  while (NowUs() - started < 300'000 && completed < 2000) {
    constexpr int kBatch = 32;
    std::atomic<int> batch_done{0};
    for (int i = 0; i < kBatch; i++) {
      warm.node->InvokeAsync(
          Oid(kVictim, (completed + i) % kObjectsPerTenant), "spin", "", "",
          [&batch_done](Result<std::string>) {
            batch_done.fetch_add(1, std::memory_order_release);
          });
    }
    while (batch_done.load(std::memory_order_acquire) < kBatch) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    completed += kBatch;
  }
  double elapsed_s = static_cast<double>(NowUs() - started) / 1e6;
  return static_cast<double>(completed) / elapsed_s;
}

struct ArmResult {
  uint64_t victim_completed = 0;
  uint64_t aggressor_shed = 0;
  int64_t victim_tail_p99_us = 0;  // over the fully-ramped tail + drain
};

// One tenant's open-loop dispatcher: submits on schedule, never waits
// for completions. `accept_after_us` marks the fully-ramped tail whose
// latencies feed the acceptance recorder.
struct TenantStream {
  tenant::TenantId id = 0;
  double rate = 0;         // arrivals/sec (aggressor: at ramp 1x)
  bool ramped = false;     // scale rate by the ramp schedule
  bench::OpenLoopRecorder window_rec;
  bench::OpenLoopRecorder accept_rec;
  std::atomic<int64_t> outstanding{0};
};

void Dispatch(TenantStream* stream, Node* node, tenant::TenantRegistry* tenants,
              int64_t run_us, int64_t accept_after_us, int64_t ramp_span_us) {
  bench::PoissonSchedule schedule(stream->rate, /*seed=*/42 + stream->id);
  const int64_t epoch = NowUs();
  size_t next_obj = 0;
  for (;;) {
    int64_t scheduled = schedule.NextArrivalUs();
    if (scheduled >= run_us) break;
    if (stream->ramped) {
      double ramp =
          1.0 + (kRampMax - 1.0) *
                    std::min<double>(1.0, static_cast<double>(scheduled) /
                                              static_cast<double>(ramp_span_us));
      schedule.SetRate(stream->rate * ramp);
    }
    int64_t now = NowUs();
    if (epoch + scheduled > now) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(epoch + scheduled - now));
    }
    if (tenants != nullptr) {
      Status admitted = tenants->Admit(stream->id);
      if (!admitted.ok()) {
        stream->window_rec.RecordShed();
        if (scheduled >= accept_after_us) stream->accept_rec.RecordShed();
        continue;
      }
    }
    bool accept = scheduled >= accept_after_us;
    int64_t scheduled_abs = epoch + scheduled;
    stream->outstanding.fetch_add(1, std::memory_order_relaxed);
    node->node->InvokeAsync(
        Oid(stream->id, next_obj++ % kObjectsPerTenant), "spin", "", "",
        [stream, tenants, accept, scheduled_abs](Result<std::string> result) {
          int64_t done = NowUs();
          if (tenants != nullptr) tenants->Release(stream->id);
          if (result.ok()) {
            stream->window_rec.RecordOk(scheduled_abs, done);
            if (accept) stream->accept_rec.RecordOk(scheduled_abs, done);
          } else {
            stream->window_rec.RecordError();
            if (accept) stream->accept_rec.RecordError();
          }
          stream->outstanding.fetch_sub(1, std::memory_order_relaxed);
        },
        /*shed=*/{}, stream->id);
  }
}

void PrintWindow(const char* arm, int window, double ramp,
                 const bench::OpenLoopRecorder::Summary& victim,
                 const bench::OpenLoopRecorder::Summary& aggressor) {
  std::printf(
      "{\"experiment\":\"A12\",\"arm\":\"%s\",\"window\":%d,\"ramp\":%.1f,"
      "\"victim\":{\"completed\":%llu,\"shed\":%llu,\"p50_us\":%lld,"
      "\"p99_us\":%lld},"
      "\"aggressor\":{\"completed\":%llu,\"shed\":%llu,\"p50_us\":%lld,"
      "\"p99_us\":%lld}}\n",
      arm, window, ramp, static_cast<unsigned long long>(victim.completed),
      static_cast<unsigned long long>(victim.shed),
      static_cast<long long>(victim.p50_us),
      static_cast<long long>(victim.p99_us),
      static_cast<unsigned long long>(aggressor.completed),
      static_cast<unsigned long long>(aggressor.shed),
      static_cast<long long>(aggressor.p50_us),
      static_cast<long long>(aggressor.p99_us));
  std::fflush(stdout);
}

ArmResult RunArm(bool tenancy_on, const BenchConfig& config, double capacity) {
  const double victim_rate = 0.15 * capacity;
  const double aggressor_budget = 0.15 * capacity;  // 10x = 1.5x capacity

  tenant::TenantRegistry registry;
  tenant::TenantRegistry* tenants = nullptr;
  if (tenancy_on) {
    registry.Configure(kVictim, tenant::TenantConfig{.weight = 4});
    registry.Configure(kAggressor,
                       tenant::TenantConfig{.weight = 1,
                                            .rate_per_sec = aggressor_budget,
                                            .burst = 16});
    tenants = &registry;
  }
  Node node(tenants);

  bench::ObsHooks obs;
  if (tenancy_on && obs.enabled()) registry.RegisterMetrics(obs.registry());

  const int64_t window_us = config.window_ms * 1000;
  const int64_t run_us = window_us * config.windows;
  // The aggressor reaches full ramp at 60% of the run; the acceptance
  // tail starts at 70%, so it only sees the node fully overloaded.
  const int64_t ramp_span_us = (run_us * 6) / 10;
  const int64_t accept_after_us = (run_us * 7) / 10;

  TenantStream victim;
  victim.id = kVictim;
  victim.rate = victim_rate;
  TenantStream aggressor;
  aggressor.id = kAggressor;
  aggressor.rate = aggressor_budget;
  aggressor.ramped = true;

  std::thread victim_thread(Dispatch, &victim, &node, tenants, run_us,
                            accept_after_us, ramp_span_us);
  std::thread aggressor_thread(Dispatch, &aggressor, &node, tenants, run_us,
                               accept_after_us, ramp_span_us);

  ArmResult result;
  const char* arm = tenancy_on ? "on" : "off";
  for (int w = 0; w < config.windows; w++) {
    std::this_thread::sleep_for(std::chrono::microseconds(window_us));
    double ramp = 1.0 + (kRampMax - 1.0) *
                            std::min<double>(1.0, static_cast<double>(
                                                      (w + 1) * window_us) /
                                                      static_cast<double>(
                                                          ramp_span_us));
    auto vs = victim.window_rec.Drain();
    auto as = aggressor.window_rec.Drain();
    result.victim_completed += vs.completed;
    result.aggressor_shed += as.shed;
    PrintWindow(arm, w, ramp, vs, as);
  }
  victim_thread.join();
  aggressor_thread.join();
  // Drain the backlog so every accepted arrival's completion is charged
  // its full queueing delay (this is where the off arm's tail shows up).
  node.node->Drain();
  while (victim.outstanding.load(std::memory_order_relaxed) != 0 ||
         aggressor.outstanding.load(std::memory_order_relaxed) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto vs = victim.window_rec.Drain();
  auto as = aggressor.window_rec.Drain();
  if (vs.completed + as.completed + vs.shed + as.shed > 0) {
    PrintWindow(arm, config.windows, kRampMax, vs, as);
    result.victim_completed += vs.completed;
    result.aggressor_shed += as.shed;
  }
  auto accept = victim.accept_rec.Snapshot();
  result.victim_tail_p99_us = accept.p99_us;
  if (tenancy_on && obs.enabled()) obs.Dump("tenancy");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) config.smoke = true;
  }
  const char* quick = std::getenv("LO_BENCH_QUICK");
  if (config.smoke || (quick != nullptr && quick[0] == '1')) {
    config.windows = 8;
    config.window_ms = 250;
  }

  double capacity = MeasureCapacity();
  std::printf("{\"experiment\":\"A12\",\"capacity_ops_per_sec\":%.0f}\n",
              capacity);

  ArmResult off = RunArm(/*tenancy_on=*/false, config, capacity);
  ArmResult on = RunArm(/*tenancy_on=*/true, config, capacity);

  bool bounded = on.victim_tail_p99_us * 2 < off.victim_tail_p99_us;
  bool sheds = on.aggressor_shed > 0;
  bool served = on.victim_completed > 0 && off.victim_completed > 0;
  bool ok = bounded && sheds && served;
  std::printf(
      "{\"experiment\":\"A12\",\"summary\":1,\"victim_tail_p99_on_us\":%lld,"
      "\"victim_tail_p99_off_us\":%lld,\"aggressor_shed_on\":%llu,"
      "\"acceptance\":%s}\n",
      static_cast<long long>(on.victim_tail_p99_us),
      static_cast<long long>(off.victim_tail_p99_us),
      static_cast<unsigned long long>(on.aggressor_shed), ok ? "true" : "false");
  if (config.smoke && !ok) {
    std::fprintf(stderr,
                 "tenancy smoke FAILED: bounded=%d sheds=%d served=%d\n",
                 bounded, sheds, served);
    return 1;
  }
  return 0;
}
