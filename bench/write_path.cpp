// Experiment A10: MiniLSM write-path throughput under concurrent lanes.
//
// Eight writer threads issue Post-shaped batches (3 puts, 256 B values,
// sync=true) against one DB and we climb the config ladder one mechanism
// at a time:
//   baseline   pre-PR shape: inline maintenance — flushes and compactions
//              run on the writer's thread, under the DB mutex
//   +bg        background maintenance thread (writers only swap memtables)
//   +subcomp   parallel sub-compactions (4)
//   +shards    sharded memtables (4) — parallel per-shard L0 builds
//   +recycle   WAL preallocation + file recycling
//   shaped     background maintenance + deferred L0 trigger (32) — the
//              write-amplification lever; carries the >=2x acceptance on
//              low-core machines where parallel rungs can't beat wall-clock
//   rate=8     parallel stack plus an 8 MB/s compaction rate cap —
//              shows shaping trading throughput for smoothness
// Every config writes one JSON line (the A8/A2b template):
//   {"experiment":"A10","config":...,"threads":8,"throughput":...,
//    "p50_us":...,"p99_us":...,"stall_us":...,"stall_soft":...,
//    "stall_hard":...,"compaction_bytes":...}
// and a final summary line records the speedup of the full config over
// baseline (acceptance: >= 2x at equal durability — sync=true both).
//
// --smoke: bounded run of baseline + the default tuned config; fails if
// the tuned config spends more than half its write-side wall-clock
// stalled (the stall-shaping regression guard in the default ctest).
// LO_BENCH_QUICK=1 shrinks the measured window the same way.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/db.h"
#include "storage/env.h"

namespace {

using namespace lo;
using namespace lo::storage;

struct BenchConfig {
  const char* name;
  bool background = false;
  int shards = 1;
  int subcompactions = 1;
  int rate_mb = 0;
  bool wal_recycle = false;
  // The ladder shrinks the buffer so the run is maintenance-bound (the
  // mechanisms under test are the bottleneck); the smoke guard keeps the
  // engine's default so it measures shaping, not saturation.
  size_t write_buffer = 1 << 20;
  int l0_trigger = 0;  // 0 = auto (4 x shard count)
};

struct BenchResult {
  double throughput = 0;  // batches/sec
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t elapsed_us = 0;
  DB::Stats stats;
};

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// pace_us > 0 spaces each writer's batches (open-ish loop below engine
// capacity); 0 is a closed loop at full speed.
BenchResult RunConfig(const BenchConfig& config, int threads, int duration_ms,
                      int pace_us = 0) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.serialize_access = true;
  options.write_buffer_size = config.write_buffer;
  options.background_maintenance = config.background;
  options.memtable_shards = config.shards;
  options.subcompactions = config.subcompactions;
  options.compaction_rate_bytes_per_sec =
      static_cast<uint64_t>(config.rate_mb) * 1024 * 1024;
  options.wal_recycle = config.wal_recycle;
  options.l0_compaction_trigger = config.l0_trigger;
  if (config.wal_recycle) options.wal_preallocate_bytes = 2 << 20;
  auto db = std::move(*DB::Open(options, "/bench"));

  std::atomic<bool> stop{false};
  std::vector<std::vector<uint64_t>> latencies(threads);
  std::vector<std::thread> writers;
  std::string value(256, 'v');
  uint64_t started = NowMicros();
  for (int t = 0; t < threads; t++) {
    writers.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      auto& lat = latencies[t];
      char key[40];
      while (!stop.load(std::memory_order_relaxed)) {
        // A Post commit: the post record, a timeline entry, a counter.
        uint64_t user = rng.Uniform(10000);
        uint64_t post = rng.Next();
        WriteBatch batch;
        std::snprintf(key, sizeof(key), "post:%012llu",
                      static_cast<unsigned long long>(post));
        batch.Put(key, value);
        std::snprintf(key, sizeof(key), "timeline:%06llu:%012llu",
                      static_cast<unsigned long long>(user),
                      static_cast<unsigned long long>(post));
        batch.Put(key, value);
        std::snprintf(key, sizeof(key), "count:%06llu",
                      static_cast<unsigned long long>(user));
        batch.Put(key, "1");
        uint64_t begin = NowMicros();
        if (!db->Write({.sync = true}, &batch).ok()) break;
        lat.push_back(NowMicros() - begin);
        if (pace_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  uint64_t elapsed = NowMicros() - started;

  std::vector<uint64_t> all;
  for (auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());
  BenchResult result;
  result.elapsed_us = elapsed;
  result.throughput =
      elapsed == 0 ? 0 : static_cast<double>(all.size()) * 1e6 / elapsed;
  if (!all.empty()) {
    result.p50_us = all[all.size() / 2];
    result.p99_us = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  result.stats = db->GetStats();
  return result;
}

void PrintJson(const BenchConfig& config, int threads, const BenchResult& r) {
  std::printf(
      "{\"experiment\":\"A10\",\"config\":\"%s\",\"threads\":%d,"
      "\"throughput\":%.0f,\"p50_us\":%llu,\"p99_us\":%llu,"
      "\"stall_us\":%llu,\"stall_soft\":%llu,\"stall_hard\":%llu,"
      "\"compaction_bytes\":%llu,\"subcompactions_run\":%llu,"
      "\"flush_output_files\":%llu,\"wal_recycles\":%llu,"
      "\"throttle_us\":%llu}\n",
      config.name, threads, r.throughput,
      static_cast<unsigned long long>(r.p50_us),
      static_cast<unsigned long long>(r.p99_us),
      static_cast<unsigned long long>(r.stats.stall_us),
      static_cast<unsigned long long>(r.stats.stall_soft),
      static_cast<unsigned long long>(r.stats.stall_hard),
      static_cast<unsigned long long>(r.stats.compaction_bytes_read +
                                      r.stats.compaction_bytes_written),
      static_cast<unsigned long long>(r.stats.subcompactions_run),
      static_cast<unsigned long long>(r.stats.flush_output_files),
      static_cast<unsigned long long>(r.stats.wal_recycles),
      static_cast<unsigned long long>(r.stats.compaction_throttle_us));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const char* quick_env = std::getenv("LO_BENCH_QUICK");
  bool quick = smoke || (quick_env != nullptr && quick_env[0] == '1');
  int threads = 8;
  int duration_ms = quick ? 400 : 2000;

  const BenchConfig kBaseline = {.name = "baseline"};
  const BenchConfig kTuned = {.name = "bg+subcomp+shards",
                              .background = true,
                              .shards = 4,
                              .subcompactions = 4};
  // Stall-shaped config: background maintenance with a deferred L0
  // trigger (32 files before the score reaches 1.0, soft slowdown at 64,
  // stop at 96). Deferring L0->L1 merges amortizes them over more input
  // and cuts write amplification roughly 3x at this write rate; this is
  // the config that carries the >=2x acceptance on low-core machines,
  // where the parallel rungs cannot beat wall-clock (docs/tuning.md).
  const BenchConfig kShaped = {.name = "shaped-trigger32",
                               .background = true,
                               .subcompactions = 4,
                               .wal_recycle = true,
                               .l0_trigger = 32};

  if (smoke) {
    // Bounded regression guard. Writers offer a paced load well below
    // engine capacity (~2k batches/sec vs ~70k at saturation); at the
    // default tuned config the engine must absorb it without pushing
    // back. Stall time above 10% of the write-side wall-clock budget
    // means maintenance fell behind a modest load — the shape of a
    // stall-ladder or background-maintenance regression, not noise.
    BenchResult tuned = RunConfig(kTuned, threads, /*duration_ms=*/1500,
                                  /*pace_us=*/1000);
    PrintJson(kTuned, threads, tuned);
    uint64_t budget_us = tuned.elapsed_us * static_cast<uint64_t>(threads);
    if (tuned.stats.stall_us > budget_us / 10) {
      std::fprintf(stderr,
                   "FAIL: stalled %llu us of %llu us write-side budget\n",
                   static_cast<unsigned long long>(tuned.stats.stall_us),
                   static_cast<unsigned long long>(budget_us));
      return 1;
    }
    if (tuned.throughput <= 0) {
      std::fprintf(stderr, "FAIL: no batches committed\n");
      return 1;
    }
    return 0;
  }

  std::vector<BenchConfig> ladder = {
      kBaseline,
      {.name = "+bg", .background = true},
      {.name = "+bg+subcomp", .background = true, .subcompactions = 4},
      kTuned,
      {.name = "+bg+subcomp+shards+recycle",
       .background = true,
       .shards = 4,
       .subcompactions = 4,
       .wal_recycle = true},
      kShaped,
      {.name = "rate=8",
       .background = true,
       .shards = 4,
       .subcompactions = 4,
       .rate_mb = 8,
       .wal_recycle = true},
  };
  double baseline_tput = 0, tuned_tput = 0, shaped_tput = 0;
  for (const auto& config : ladder) {
    BenchResult result = RunConfig(config, threads, duration_ms);
    PrintJson(config, threads, result);
    if (std::strcmp(config.name, kBaseline.name) == 0) {
      baseline_tput = result.throughput;
    }
    if (std::strcmp(config.name, kTuned.name) == 0) {
      tuned_tput = result.throughput;
    }
    if (std::strcmp(config.name, kShaped.name) == 0) {
      shaped_tput = result.throughput;
    }
  }
  double parallel = baseline_tput > 0 ? tuned_tput / baseline_tput : 0.0;
  double shaped = baseline_tput > 0 ? shaped_tput / baseline_tput : 0.0;
  std::printf(
      "{\"experiment\":\"A10\",\"summary\":\"speedup\",\"threads\":%d,"
      "\"parallel_vs_baseline\":%.2f,\"shaped_vs_baseline\":%.2f,"
      "\"best_vs_baseline\":%.2f,\"acceptance\":\"best >= 2x\"}\n",
      threads, parallel, shaped, parallel > shaped ? parallel : shaped);
  return 0;
}
