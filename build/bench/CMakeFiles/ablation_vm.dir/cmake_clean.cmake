file(REMOVE_RECURSE
  "CMakeFiles/ablation_vm.dir/ablation_vm.cpp.o"
  "CMakeFiles/ablation_vm.dir/ablation_vm.cpp.o.d"
  "ablation_vm"
  "ablation_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
