# Empty compiler generated dependencies file for ablation_vm.
# This may be replaced when dependencies are built.
