file(REMOVE_RECURSE
  "CMakeFiles/lo_bench_harness.dir/harness.cc.o"
  "CMakeFiles/lo_bench_harness.dir/harness.cc.o.d"
  "liblo_bench_harness.a"
  "liblo_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
