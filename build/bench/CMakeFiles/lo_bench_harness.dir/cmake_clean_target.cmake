file(REMOVE_RECURSE
  "liblo_bench_harness.a"
)
