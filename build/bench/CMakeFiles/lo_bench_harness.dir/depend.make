# Empty dependencies file for lo_bench_harness.
# This may be replaced when dependencies are built.
