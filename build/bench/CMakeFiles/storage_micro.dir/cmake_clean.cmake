file(REMOVE_RECURSE
  "CMakeFiles/storage_micro.dir/storage_micro.cpp.o"
  "CMakeFiles/storage_micro.dir/storage_micro.cpp.o.d"
  "storage_micro"
  "storage_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
