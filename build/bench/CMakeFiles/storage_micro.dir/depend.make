# Empty dependencies file for storage_micro.
# This may be replaced when dependencies are built.
