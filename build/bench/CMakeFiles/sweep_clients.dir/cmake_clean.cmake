file(REMOVE_RECURSE
  "CMakeFiles/sweep_clients.dir/sweep_clients.cpp.o"
  "CMakeFiles/sweep_clients.dir/sweep_clients.cpp.o.d"
  "sweep_clients"
  "sweep_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
