# Empty dependencies file for sweep_clients.
# This may be replaced when dependencies are built.
