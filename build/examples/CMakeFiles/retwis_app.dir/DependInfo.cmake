
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/retwis_app.cpp" "examples/CMakeFiles/retwis_app.dir/retwis_app.cpp.o" "gcc" "examples/CMakeFiles/retwis_app.dir/retwis_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/lo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/retwis/CMakeFiles/lo_retwis.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lo_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/lo_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/lo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/lo_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
