# Empty compiler generated dependencies file for shop.
# This may be replaced when dependencies are built.
