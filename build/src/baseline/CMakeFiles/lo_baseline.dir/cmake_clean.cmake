file(REMOVE_RECURSE
  "CMakeFiles/lo_baseline.dir/compute_node.cc.o"
  "CMakeFiles/lo_baseline.dir/compute_node.cc.o.d"
  "CMakeFiles/lo_baseline.dir/deployment.cc.o"
  "CMakeFiles/lo_baseline.dir/deployment.cc.o.d"
  "CMakeFiles/lo_baseline.dir/load_balancer.cc.o"
  "CMakeFiles/lo_baseline.dir/load_balancer.cc.o.d"
  "liblo_baseline.a"
  "liblo_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
