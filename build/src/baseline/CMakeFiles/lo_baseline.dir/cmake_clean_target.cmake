file(REMOVE_RECURSE
  "liblo_baseline.a"
)
