# Empty compiler generated dependencies file for lo_baseline.
# This may be replaced when dependencies are built.
