
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/client.cc" "src/cluster/CMakeFiles/lo_cluster.dir/client.cc.o" "gcc" "src/cluster/CMakeFiles/lo_cluster.dir/client.cc.o.d"
  "/root/repo/src/cluster/deployment.cc" "src/cluster/CMakeFiles/lo_cluster.dir/deployment.cc.o" "gcc" "src/cluster/CMakeFiles/lo_cluster.dir/deployment.cc.o.d"
  "/root/repo/src/cluster/storage_node.cc" "src/cluster/CMakeFiles/lo_cluster.dir/storage_node.cc.o" "gcc" "src/cluster/CMakeFiles/lo_cluster.dir/storage_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/lo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/lo_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/lo_coord.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
