file(REMOVE_RECURSE
  "CMakeFiles/lo_cluster.dir/client.cc.o"
  "CMakeFiles/lo_cluster.dir/client.cc.o.d"
  "CMakeFiles/lo_cluster.dir/deployment.cc.o"
  "CMakeFiles/lo_cluster.dir/deployment.cc.o.d"
  "CMakeFiles/lo_cluster.dir/storage_node.cc.o"
  "CMakeFiles/lo_cluster.dir/storage_node.cc.o.d"
  "liblo_cluster.a"
  "liblo_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
