file(REMOVE_RECURSE
  "liblo_cluster.a"
)
