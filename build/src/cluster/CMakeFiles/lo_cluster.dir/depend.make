# Empty dependencies file for lo_cluster.
# This may be replaced when dependencies are built.
