file(REMOVE_RECURSE
  "CMakeFiles/lo_common.dir/coding.cc.o"
  "CMakeFiles/lo_common.dir/coding.cc.o.d"
  "CMakeFiles/lo_common.dir/crc32c.cc.o"
  "CMakeFiles/lo_common.dir/crc32c.cc.o.d"
  "CMakeFiles/lo_common.dir/hash.cc.o"
  "CMakeFiles/lo_common.dir/hash.cc.o.d"
  "CMakeFiles/lo_common.dir/histogram.cc.o"
  "CMakeFiles/lo_common.dir/histogram.cc.o.d"
  "CMakeFiles/lo_common.dir/log.cc.o"
  "CMakeFiles/lo_common.dir/log.cc.o.d"
  "CMakeFiles/lo_common.dir/rng.cc.o"
  "CMakeFiles/lo_common.dir/rng.cc.o.d"
  "CMakeFiles/lo_common.dir/sha256.cc.o"
  "CMakeFiles/lo_common.dir/sha256.cc.o.d"
  "CMakeFiles/lo_common.dir/status.cc.o"
  "CMakeFiles/lo_common.dir/status.cc.o.d"
  "liblo_common.a"
  "liblo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
