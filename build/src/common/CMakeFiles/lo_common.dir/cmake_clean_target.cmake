file(REMOVE_RECURSE
  "liblo_common.a"
)
