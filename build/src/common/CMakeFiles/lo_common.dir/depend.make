# Empty dependencies file for lo_common.
# This may be replaced when dependencies are built.
