
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coord/coordinator.cc" "src/coord/CMakeFiles/lo_coord.dir/coordinator.cc.o" "gcc" "src/coord/CMakeFiles/lo_coord.dir/coordinator.cc.o.d"
  "/root/repo/src/coord/paxos.cc" "src/coord/CMakeFiles/lo_coord.dir/paxos.cc.o" "gcc" "src/coord/CMakeFiles/lo_coord.dir/paxos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
