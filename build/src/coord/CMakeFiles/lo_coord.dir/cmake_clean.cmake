file(REMOVE_RECURSE
  "CMakeFiles/lo_coord.dir/coordinator.cc.o"
  "CMakeFiles/lo_coord.dir/coordinator.cc.o.d"
  "CMakeFiles/lo_coord.dir/paxos.cc.o"
  "CMakeFiles/lo_coord.dir/paxos.cc.o.d"
  "liblo_coord.a"
  "liblo_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
