file(REMOVE_RECURSE
  "liblo_coord.a"
)
