# Empty dependencies file for lo_coord.
# This may be replaced when dependencies are built.
