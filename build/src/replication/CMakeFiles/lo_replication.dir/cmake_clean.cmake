file(REMOVE_RECURSE
  "CMakeFiles/lo_replication.dir/replicator.cc.o"
  "CMakeFiles/lo_replication.dir/replicator.cc.o.d"
  "liblo_replication.a"
  "liblo_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
