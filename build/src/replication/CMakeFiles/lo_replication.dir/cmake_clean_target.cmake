file(REMOVE_RECURSE
  "liblo_replication.a"
)
