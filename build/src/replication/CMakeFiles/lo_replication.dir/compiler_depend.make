# Empty compiler generated dependencies file for lo_replication.
# This may be replaced when dependencies are built.
