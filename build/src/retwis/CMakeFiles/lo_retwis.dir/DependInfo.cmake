
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retwis/driver.cc" "src/retwis/CMakeFiles/lo_retwis.dir/driver.cc.o" "gcc" "src/retwis/CMakeFiles/lo_retwis.dir/driver.cc.o.d"
  "/root/repo/src/retwis/retwis.cc" "src/retwis/CMakeFiles/lo_retwis.dir/retwis.cc.o" "gcc" "src/retwis/CMakeFiles/lo_retwis.dir/retwis.cc.o.d"
  "/root/repo/src/retwis/workload.cc" "src/retwis/CMakeFiles/lo_retwis.dir/workload.cc.o" "gcc" "src/retwis/CMakeFiles/lo_retwis.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/lo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/lo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lo_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/lo_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/lo_replication.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
