file(REMOVE_RECURSE
  "CMakeFiles/lo_retwis.dir/driver.cc.o"
  "CMakeFiles/lo_retwis.dir/driver.cc.o.d"
  "CMakeFiles/lo_retwis.dir/retwis.cc.o"
  "CMakeFiles/lo_retwis.dir/retwis.cc.o.d"
  "CMakeFiles/lo_retwis.dir/workload.cc.o"
  "CMakeFiles/lo_retwis.dir/workload.cc.o.d"
  "liblo_retwis.a"
  "liblo_retwis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_retwis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
