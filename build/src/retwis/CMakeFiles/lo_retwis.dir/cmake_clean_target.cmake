file(REMOVE_RECURSE
  "liblo_retwis.a"
)
