# Empty compiler generated dependencies file for lo_retwis.
# This may be replaced when dependencies are built.
