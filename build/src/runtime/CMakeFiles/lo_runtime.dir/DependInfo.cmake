
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/context.cc" "src/runtime/CMakeFiles/lo_runtime.dir/context.cc.o" "gcc" "src/runtime/CMakeFiles/lo_runtime.dir/context.cc.o.d"
  "/root/repo/src/runtime/object.cc" "src/runtime/CMakeFiles/lo_runtime.dir/object.cc.o" "gcc" "src/runtime/CMakeFiles/lo_runtime.dir/object.cc.o.d"
  "/root/repo/src/runtime/result_cache.cc" "src/runtime/CMakeFiles/lo_runtime.dir/result_cache.cc.o" "gcc" "src/runtime/CMakeFiles/lo_runtime.dir/result_cache.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/lo_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/lo_runtime.dir/runtime.cc.o.d"
  "/root/repo/src/runtime/transaction.cc" "src/runtime/CMakeFiles/lo_runtime.dir/transaction.cc.o" "gcc" "src/runtime/CMakeFiles/lo_runtime.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/lo_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
