file(REMOVE_RECURSE
  "CMakeFiles/lo_runtime.dir/context.cc.o"
  "CMakeFiles/lo_runtime.dir/context.cc.o.d"
  "CMakeFiles/lo_runtime.dir/object.cc.o"
  "CMakeFiles/lo_runtime.dir/object.cc.o.d"
  "CMakeFiles/lo_runtime.dir/result_cache.cc.o"
  "CMakeFiles/lo_runtime.dir/result_cache.cc.o.d"
  "CMakeFiles/lo_runtime.dir/runtime.cc.o"
  "CMakeFiles/lo_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/lo_runtime.dir/transaction.cc.o"
  "CMakeFiles/lo_runtime.dir/transaction.cc.o.d"
  "liblo_runtime.a"
  "liblo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
