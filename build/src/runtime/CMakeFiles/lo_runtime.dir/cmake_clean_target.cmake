file(REMOVE_RECURSE
  "liblo_runtime.a"
)
