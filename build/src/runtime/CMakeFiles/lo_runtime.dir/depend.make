# Empty dependencies file for lo_runtime.
# This may be replaced when dependencies are built.
