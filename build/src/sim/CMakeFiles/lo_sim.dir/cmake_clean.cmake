file(REMOVE_RECURSE
  "CMakeFiles/lo_sim.dir/cpu.cc.o"
  "CMakeFiles/lo_sim.dir/cpu.cc.o.d"
  "CMakeFiles/lo_sim.dir/network.cc.o"
  "CMakeFiles/lo_sim.dir/network.cc.o.d"
  "CMakeFiles/lo_sim.dir/rpc.cc.o"
  "CMakeFiles/lo_sim.dir/rpc.cc.o.d"
  "CMakeFiles/lo_sim.dir/simulator.cc.o"
  "CMakeFiles/lo_sim.dir/simulator.cc.o.d"
  "liblo_sim.a"
  "liblo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
