
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block.cc" "src/storage/CMakeFiles/lo_storage.dir/block.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/block.cc.o.d"
  "/root/repo/src/storage/bloom.cc" "src/storage/CMakeFiles/lo_storage.dir/bloom.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/bloom.cc.o.d"
  "/root/repo/src/storage/db.cc" "src/storage/CMakeFiles/lo_storage.dir/db.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/db.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/storage/CMakeFiles/lo_storage.dir/env.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/env.cc.o.d"
  "/root/repo/src/storage/filename.cc" "src/storage/CMakeFiles/lo_storage.dir/filename.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/filename.cc.o.d"
  "/root/repo/src/storage/iterator.cc" "src/storage/CMakeFiles/lo_storage.dir/iterator.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/iterator.cc.o.d"
  "/root/repo/src/storage/memtable.cc" "src/storage/CMakeFiles/lo_storage.dir/memtable.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/memtable.cc.o.d"
  "/root/repo/src/storage/sstable.cc" "src/storage/CMakeFiles/lo_storage.dir/sstable.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/sstable.cc.o.d"
  "/root/repo/src/storage/version.cc" "src/storage/CMakeFiles/lo_storage.dir/version.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/version.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/lo_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/wal.cc.o.d"
  "/root/repo/src/storage/write_batch.cc" "src/storage/CMakeFiles/lo_storage.dir/write_batch.cc.o" "gcc" "src/storage/CMakeFiles/lo_storage.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
