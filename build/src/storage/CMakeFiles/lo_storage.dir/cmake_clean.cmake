file(REMOVE_RECURSE
  "CMakeFiles/lo_storage.dir/block.cc.o"
  "CMakeFiles/lo_storage.dir/block.cc.o.d"
  "CMakeFiles/lo_storage.dir/bloom.cc.o"
  "CMakeFiles/lo_storage.dir/bloom.cc.o.d"
  "CMakeFiles/lo_storage.dir/db.cc.o"
  "CMakeFiles/lo_storage.dir/db.cc.o.d"
  "CMakeFiles/lo_storage.dir/env.cc.o"
  "CMakeFiles/lo_storage.dir/env.cc.o.d"
  "CMakeFiles/lo_storage.dir/filename.cc.o"
  "CMakeFiles/lo_storage.dir/filename.cc.o.d"
  "CMakeFiles/lo_storage.dir/iterator.cc.o"
  "CMakeFiles/lo_storage.dir/iterator.cc.o.d"
  "CMakeFiles/lo_storage.dir/memtable.cc.o"
  "CMakeFiles/lo_storage.dir/memtable.cc.o.d"
  "CMakeFiles/lo_storage.dir/sstable.cc.o"
  "CMakeFiles/lo_storage.dir/sstable.cc.o.d"
  "CMakeFiles/lo_storage.dir/version.cc.o"
  "CMakeFiles/lo_storage.dir/version.cc.o.d"
  "CMakeFiles/lo_storage.dir/wal.cc.o"
  "CMakeFiles/lo_storage.dir/wal.cc.o.d"
  "CMakeFiles/lo_storage.dir/write_batch.cc.o"
  "CMakeFiles/lo_storage.dir/write_batch.cc.o.d"
  "liblo_storage.a"
  "liblo_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
