file(REMOVE_RECURSE
  "liblo_storage.a"
)
