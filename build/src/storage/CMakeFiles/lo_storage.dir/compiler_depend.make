# Empty compiler generated dependencies file for lo_storage.
# This may be replaced when dependencies are built.
