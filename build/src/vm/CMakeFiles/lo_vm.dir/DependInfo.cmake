
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/assembler.cc" "src/vm/CMakeFiles/lo_vm.dir/assembler.cc.o" "gcc" "src/vm/CMakeFiles/lo_vm.dir/assembler.cc.o.d"
  "/root/repo/src/vm/disassembler.cc" "src/vm/CMakeFiles/lo_vm.dir/disassembler.cc.o" "gcc" "src/vm/CMakeFiles/lo_vm.dir/disassembler.cc.o.d"
  "/root/repo/src/vm/interpreter.cc" "src/vm/CMakeFiles/lo_vm.dir/interpreter.cc.o" "gcc" "src/vm/CMakeFiles/lo_vm.dir/interpreter.cc.o.d"
  "/root/repo/src/vm/isa.cc" "src/vm/CMakeFiles/lo_vm.dir/isa.cc.o" "gcc" "src/vm/CMakeFiles/lo_vm.dir/isa.cc.o.d"
  "/root/repo/src/vm/module.cc" "src/vm/CMakeFiles/lo_vm.dir/module.cc.o" "gcc" "src/vm/CMakeFiles/lo_vm.dir/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
