file(REMOVE_RECURSE
  "CMakeFiles/lo_vm.dir/assembler.cc.o"
  "CMakeFiles/lo_vm.dir/assembler.cc.o.d"
  "CMakeFiles/lo_vm.dir/disassembler.cc.o"
  "CMakeFiles/lo_vm.dir/disassembler.cc.o.d"
  "CMakeFiles/lo_vm.dir/interpreter.cc.o"
  "CMakeFiles/lo_vm.dir/interpreter.cc.o.d"
  "CMakeFiles/lo_vm.dir/isa.cc.o"
  "CMakeFiles/lo_vm.dir/isa.cc.o.d"
  "CMakeFiles/lo_vm.dir/module.cc.o"
  "CMakeFiles/lo_vm.dir/module.cc.o.d"
  "liblo_vm.a"
  "liblo_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lo_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
