file(REMOVE_RECURSE
  "liblo_vm.a"
)
