# Empty dependencies file for lo_vm.
# This may be replaced when dependencies are built.
