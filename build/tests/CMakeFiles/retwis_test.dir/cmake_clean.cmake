file(REMOVE_RECURSE
  "CMakeFiles/retwis_test.dir/retwis_test.cpp.o"
  "CMakeFiles/retwis_test.dir/retwis_test.cpp.o.d"
  "retwis_test"
  "retwis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retwis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
