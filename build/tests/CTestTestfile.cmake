# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[common_test]=] "/root/repo/build/tests/common_test")
set_tests_properties([=[common_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[sim_test]=] "/root/repo/build/tests/sim_test")
set_tests_properties([=[sim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[storage_test]=] "/root/repo/build/tests/storage_test")
set_tests_properties([=[storage_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[vm_test]=] "/root/repo/build/tests/vm_test")
set_tests_properties([=[vm_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[runtime_test]=] "/root/repo/build/tests/runtime_test")
set_tests_properties([=[runtime_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[replication_test]=] "/root/repo/build/tests/replication_test")
set_tests_properties([=[replication_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[coord_test]=] "/root/repo/build/tests/coord_test")
set_tests_properties([=[coord_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cluster_test]=] "/root/repo/build/tests/cluster_test")
set_tests_properties([=[cluster_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[retwis_test]=] "/root/repo/build/tests/retwis_test")
set_tests_properties([=[retwis_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[consistency_test]=] "/root/repo/build/tests/consistency_test")
set_tests_properties([=[consistency_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[transaction_test]=] "/root/repo/build/tests/transaction_test")
set_tests_properties([=[transaction_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;lo_add_test;/root/repo/tests/CMakeLists.txt;0;")
