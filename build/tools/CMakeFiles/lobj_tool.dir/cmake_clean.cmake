file(REMOVE_RECURSE
  "CMakeFiles/lobj_tool.dir/lobj_tool.cpp.o"
  "CMakeFiles/lobj_tool.dir/lobj_tool.cpp.o.d"
  "lobj-tool"
  "lobj-tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lobj_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
