# Empty compiler generated dependencies file for lobj_tool.
# This may be replaced when dependencies are built.
