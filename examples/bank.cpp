// Digital payments — the paper's strong-consistency motivation (§2:
// "an application processing digital payments requires strong
// consistency to ensure a transaction reads an up-to-date account
// balance and, as a result, does not spend more money than is
// available").
//
// Invocation linearizability gives exactly that: `withdraw` is a single
// invocation, so its balance check and debit are atomic and isolated;
// concurrent over-spends are impossible. A transfer is `withdraw` plus a
// nested `deposit` on the payee object — the nested call commits the
// debit first (§3.1), so money is never created, though a crash between
// the two halves can leave a debited-but-not-credited state that the
// application reconciles (the paper leaves cross-call transactions to
// future work).
//
//   $ ./build/examples/bank
#include <cstdio>
#include <string>

#include "cluster/deployment.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

using namespace lo;

namespace {

uint64_t ParseAmount(const std::string& s) {
  return s.empty() ? 0 : std::stoull(s);
}

runtime::ObjectType MakeAccountType() {
  runtime::ObjectType type;
  type.name = "account";
  type.fields = {{"balance", runtime::FieldKind::kValue},
                 {"history", runtime::FieldKind::kList}};

  auto read_balance = [](runtime::InvocationContext& ctx)
      -> sim::Task<Result<uint64_t>> {
    auto raw = co_await ctx.Get("balance");
    if (!raw.ok()) {
      if (raw.status().IsNotFound()) co_return uint64_t{0};
      co_return raw.status();
    }
    co_return std::stoull(*raw);
  };

  runtime::MethodImpl deposit;
  deposit.kind = runtime::MethodKind::kReadWrite;
  deposit.native = [read_balance](runtime::InvocationContext& ctx,
                                  std::string arg)
      -> sim::Task<Result<std::string>> {
    auto balance = co_await read_balance(ctx);
    if (!balance.ok()) co_return balance.status();
    uint64_t next = *balance + ParseAmount(arg);
    LO_CO_RETURN_IF_ERROR(co_await ctx.Set("balance", std::to_string(next)));
    LO_CO_RETURN_IF_ERROR(co_await ctx.ListPush("history", "+" + arg));
    co_return std::to_string(next);
  };
  type.methods["deposit"] = std::move(deposit);

  runtime::MethodImpl withdraw;
  withdraw.kind = runtime::MethodKind::kReadWrite;
  withdraw.native = [read_balance](runtime::InvocationContext& ctx,
                                   std::string arg)
      -> sim::Task<Result<std::string>> {
    uint64_t amount = ParseAmount(arg);
    auto balance = co_await read_balance(ctx);
    if (!balance.ok()) co_return balance.status();
    if (*balance < amount) {
      // Atomicity: nothing from this invocation persists.
      co_return Status::FailedPrecondition("insufficient funds");
    }
    LO_CO_RETURN_IF_ERROR(
        co_await ctx.Set("balance", std::to_string(*balance - amount)));
    LO_CO_RETURN_IF_ERROR(co_await ctx.ListPush("history", "-" + arg));
    co_return std::to_string(*balance - amount);
  };
  type.methods["withdraw"] = std::move(withdraw);

  // transfer(arg = "<payee-oid> <amount>"): debit self, credit payee.
  runtime::MethodImpl transfer;
  transfer.kind = runtime::MethodKind::kReadWrite;
  transfer.native = [read_balance](runtime::InvocationContext& ctx,
                                   std::string arg)
      -> sim::Task<Result<std::string>> {
    auto space = arg.find(' ');
    std::string payee = arg.substr(0, space);
    std::string amount = arg.substr(space + 1);
    uint64_t value = ParseAmount(amount);
    auto balance = co_await read_balance(ctx);
    if (!balance.ok()) co_return balance.status();
    if (*balance < value) co_return Status::FailedPrecondition("insufficient funds");
    LO_CO_RETURN_IF_ERROR(
        co_await ctx.Set("balance", std::to_string(*balance - value)));
    LO_CO_RETURN_IF_ERROR(co_await ctx.ListPush("history", "->" + payee));
    // The debit above commits before the deposit runs (§3.1).
    co_return co_await ctx.InvokeObject(payee, "deposit", amount);
  };
  type.methods["transfer"] = std::move(transfer);

  runtime::MethodImpl get_balance;
  get_balance.kind = runtime::MethodKind::kReadOnly;
  get_balance.deterministic = true;
  get_balance.native = [read_balance](runtime::InvocationContext& ctx, std::string)
      -> sim::Task<Result<std::string>> {
    auto balance = co_await read_balance(ctx);
    if (!balance.ok()) co_return balance.status();
    co_return std::to_string(*balance);
  };
  type.methods["get_balance"] = std::move(get_balance);
  return type;
}

}  // namespace

int main() {
  sim::Simulator sim(/*seed=*/11);
  runtime::TypeRegistry types;
  LO_CHECK(types.Register(MakeAccountType()).ok());
  cluster::AggregatedDeployment deployment(sim, &types);
  deployment.WaitUntilReady();
  cluster::Client& client = deployment.NewClient();

  auto run = [&](auto&& coroutine) {
    bool done = false;
    sim::Detach([](std::decay_t<decltype(coroutine)> body, bool* done)
                    -> sim::Task<void> {
      co_await body();
      *done = true;
    }(std::move(coroutine), &done));
    while (!done) LO_CHECK(sim.Step());
  };

  run([&]() -> sim::Task<void> {
    (void)co_await client.Create("account/ada", "account");
    (void)co_await client.Create("account/bob", "account");
    (void)co_await client.Invoke("account/ada", "deposit", "100");
    std::printf("ada deposits 100\n");

    auto transferred =
        co_await client.Invoke("account/ada", "transfer", "account/bob 30");
    std::printf("ada -> bob 30: %s\n", transferred.ok() ? "ok"
                                       : transferred.status().ToString().c_str());
  });

  // The motivating anomaly: many concurrent withdrawals racing on one
  // balance of 70. Without isolation some would double-spend; with
  // invocation linearizability exactly floor(70/20)=3 can succeed.
  int ok_count = 0, rejected = 0, done = 0;
  for (int i = 0; i < 10; i++) {
    sim::Detach([](cluster::Client* client, int* ok_count, int* rejected,
                   int* done) -> sim::Task<void> {
      auto r = co_await client->Invoke("account/ada", "withdraw", "20");
      if (r.ok()) {
        (*ok_count)++;
      } else {
        (*rejected)++;
      }
      (*done)++;
    }(&client, &ok_count, &rejected, &done));
  }
  while (done < 10) LO_CHECK(sim.Step());
  std::printf("10 concurrent withdrawals of 20 against balance 70: "
              "%d succeeded, %d rejected\n", ok_count, rejected);

  run([&]() -> sim::Task<void> {
    auto ada = co_await client.Invoke("account/ada", "get_balance", "");
    auto bob = co_await client.Invoke("account/bob", "get_balance", "");
    std::printf("final balances: ada=%s bob=%s (no money created or lost)\n",
                ada->c_str(), bob->c_str());
  });
  return 0;
}
