// Quickstart: define an object type, deploy a LambdaStore cluster,
// create objects and invoke methods — the whole public API in one file.
//
//   $ ./build/examples/quickstart
//
// The "greeter" type has one value field and two methods. Method bodies
// are plain C++ coroutines against InvocationContext (they could equally
// be LambdaVM bytecode; see examples/retwis_app.cpp for that flavor).
#include <cstdio>

#include "cluster/deployment.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

using namespace lo;

namespace {

runtime::ObjectType MakeGreeterType() {
  runtime::ObjectType type;
  type.name = "greeter";
  type.fields = {{"greeting", runtime::FieldKind::kValue}};

  // Read-write method: stores a new greeting. All writes in one
  // invocation commit atomically (and replicate) or not at all.
  runtime::MethodImpl set_greeting;
  set_greeting.kind = runtime::MethodKind::kReadWrite;
  set_greeting.native = [](runtime::InvocationContext& ctx, std::string arg)
      -> sim::Task<Result<std::string>> {
    LO_CO_RETURN_IF_ERROR(co_await ctx.Set("greeting", arg));
    co_return std::string("stored");
  };
  type.methods["set_greeting"] = std::move(set_greeting);

  // Read-only + deterministic: eligible for the consistent result cache.
  runtime::MethodImpl greet;
  greet.kind = runtime::MethodKind::kReadOnly;
  greet.deterministic = true;
  greet.native = [](runtime::InvocationContext& ctx, std::string name)
      -> sim::Task<Result<std::string>> {
    auto greeting = co_await ctx.Get("greeting");
    std::string base = greeting.ok() ? *greeting : std::string("Hello");
    co_return base + ", " + name + "!";
  };
  type.methods["greet"] = std::move(greet);
  return type;
}

}  // namespace

int main() {
  // 1. A simulated cluster: 3 coordinator replicas (Paxos) + a 3-node
  //    storage replica set where functions execute (the paper topology).
  sim::Simulator sim(/*seed=*/1);
  runtime::TypeRegistry types;
  LO_CHECK(types.Register(MakeGreeterType()).ok());
  cluster::AggregatedDeployment deployment(sim, &types);
  deployment.WaitUntilReady();
  cluster::Client& client = deployment.NewClient();

  // 2. Drive it. Client calls are coroutines; this helper runs one to
  //    completion inside the simulator.
  auto run = [&](auto&& coroutine) {
    bool done = false;
    sim::Detach([](std::decay_t<decltype(coroutine)> body, bool* done)
                    -> sim::Task<void> {
      co_await body();
      *done = true;
    }(std::move(coroutine), &done));
    while (!done) LO_CHECK(sim.Step());
  };

  run([&]() -> sim::Task<void> {
    auto created = co_await client.Create("greeter/demo", "greeter");
    std::printf("create:        %s\n",
                created.ok() ? created->c_str() : created.status().ToString().c_str());

    auto greeting = co_await client.Invoke("greeter/demo", "greet", "world");
    std::printf("greet(world):  %s\n", greeting->c_str());

    auto stored =
        co_await client.Invoke("greeter/demo", "set_greeting", "Ahoy");
    std::printf("set_greeting:  %s\n", stored->c_str());

    greeting = co_await client.Invoke("greeter/demo", "greet", "world");
    std::printf("greet(world):  %s\n", greeting->c_str());
  });

  // 3. Every committed write was replicated to all three storage nodes.
  for (int i = 0; i < deployment.num_nodes(); i++) {
    auto value = deployment.node(i).db().Get(
        {}, runtime::FieldKey("greeter/demo", "greeting"));
    std::printf("node %d sees greeting = %s\n", i,
                value.ok() ? value->c_str() : "(missing)");
  }
  std::printf("virtual time elapsed: %.2f ms\n", sim::ToMillis(sim.Now()));
  return 0;
}
