// The paper's running example (§3.2, Listing 1): the ReTwis
// microblogging service, here with the *bytecode* (LambdaVM) user type —
// the same modules a serverless platform would receive as uploads — and
// a small interactive scenario: a celebrity, some fans, posts flowing to
// follower timelines, plus a node failure mid-session.
//
//   $ ./build/examples/retwis_app
#include <cstdio>

#include "cluster/deployment.h"
#include "retwis/retwis.h"
#include "sim/simulator.h"

using namespace lo;

int main() {
  sim::Simulator sim(/*seed=*/7);
  runtime::TypeRegistry types;
  LO_CHECK(retwis::RegisterUserType(&types, /*use_vm=*/true).ok());
  cluster::AggregatedDeployment deployment(sim, &types);
  deployment.WaitUntilReady();
  cluster::Client& client = deployment.NewClient();

  auto run = [&](auto&& coroutine) {
    bool done = false;
    sim::Detach([](std::decay_t<decltype(coroutine)> body, bool* done)
                    -> sim::Task<void> {
      co_await body();
      *done = true;
    }(std::move(coroutine), &done));
    while (!done) LO_CHECK(sim.Step());
  };

  const char* fans[] = {"user/alice", "user/bob", "user/carol"};

  run([&]() -> sim::Task<void> {
    // Accounts.
    (void)co_await client.Create("user/celebrity", "user");
    (void)co_await client.Invoke("user/celebrity", "init", "celebrity");
    for (const char* fan : fans) {
      (void)co_await client.Create(fan, "user");
      (void)co_await client.Invoke(fan, "init", fan + 5);
      // fan follows celebrity -> fan's timeline receives the posts.
      (void)co_await client.Invoke("user/celebrity", "follow", fan);
    }
    std::printf("3 fans follow user/celebrity\n");

    // One create_post fans out to every follower (Listing 1).
    auto posted = co_await client.Invoke("user/celebrity", "create_post",
                                         "hello, timelines!");
    std::printf("create_post delivered to %s followers\n",
                posted.ok() ? "all" : posted.status().ToString().c_str());

    for (const char* fan : fans) {
      auto timeline =
          co_await client.Invoke(fan, "get_timeline", retwis::EncodeU64(5));
      auto posts = retwis::DecodeTimeline(*timeline);
      std::printf("%s timeline: %zu post(s); newest: \"%s\" by %s\n", fan,
                  posts->size(), (*posts)[0].message.c_str(),
                  (*posts)[0].author.c_str());
    }
  });

  // Kill the primary storage node; the coordinator promotes a backup and
  // the client's next request transparently retries against it.
  std::printf("\n-- killing primary storage node --\n");
  deployment.KillStorageNode(0);
  sim.RunFor(sim::Millis(300));

  run([&]() -> sim::Task<void> {
    auto posted = co_await client.Invoke("user/celebrity", "create_post",
                                         "still here after failover");
    std::printf("post after failover: %s\n",
                posted.ok() ? "ok" : posted.status().ToString().c_str());
    auto timeline = co_await client.Invoke("user/alice", "get_timeline",
                                           retwis::EncodeU64(5));
    auto posts = retwis::DecodeTimeline(*timeline);
    std::printf("user/alice timeline now has %zu posts; newest: \"%s\"\n",
                posts->size(), (*posts)[0].message.c_str());
  });

  std::printf("client retries used: %llu\n",
              static_cast<unsigned long long>(client.metrics().retries));
  return 0;
}
