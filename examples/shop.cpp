// An online store — the application shape §3 motivates ("a small piece
// of functionality, e.g., a user authentication mechanism, that is part
// of a larger application, e.g., an online store"). Three object types
// compose through nested invocations:
//
//   session/<id>    authentication: login issues a token, checkout
//                   validates it before touching anything else
//   item/<sku>      inventory: reserve() atomically checks & decrements
//                   stock (invocation linearizability = no overselling)
//   cart/<user>     the cart object orchestrates: validates the session,
//                   reserves each item (nested calls), records the order
//
// Also demonstrates the §7 transaction extension: a restock that moves
// units between two items atomically.
//
//   $ ./build/examples/shop
#include <cstdio>
#include <string>

#include "cluster/deployment.h"
#include "runtime/runtime.h"
#include "runtime/transaction.h"
#include "sim/simulator.h"

using namespace lo;

namespace {

sim::Task<Result<uint64_t>> ReadCount(runtime::InvocationContext& ctx,
                                      std::string_view field) {
  auto raw = co_await ctx.Get(field);
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) co_return uint64_t{0};
    co_return raw.status();
  }
  co_return std::stoull(*raw);
}

runtime::ObjectType MakeSessionType() {
  runtime::ObjectType type;
  type.name = "session";
  type.methods["login"] = {
      .kind = runtime::MethodKind::kReadWrite,
      .native = [](runtime::InvocationContext& ctx, std::string password)
          -> sim::Task<Result<std::string>> {
        if (password != "hunter2") co_return Status::FailedPrecondition("bad password");
        std::string token = "tok-" + std::to_string(ctx.TimeMillis());
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("token", token));
        co_return token;
      }};
  type.methods["validate"] = {
      .kind = runtime::MethodKind::kReadOnly,
      .deterministic = true,
      .native = [](runtime::InvocationContext& ctx, std::string token)
          -> sim::Task<Result<std::string>> {
        auto stored = co_await ctx.Get("token");
        if (!stored.ok() || *stored != token) {
          co_return Status::FailedPrecondition("invalid session");
        }
        co_return std::string("valid");
      }};
  return type;
}

runtime::ObjectType MakeItemType() {
  runtime::ObjectType type;
  type.name = "item";
  type.methods["stock"] = {
      .kind = runtime::MethodKind::kReadWrite,
      .native = [](runtime::InvocationContext& ctx, std::string n)
          -> sim::Task<Result<std::string>> {
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("units", n));
        co_return n;
      }};
  type.methods["reserve"] = {
      .kind = runtime::MethodKind::kReadWrite,
      .native = [](runtime::InvocationContext& ctx, std::string n)
          -> sim::Task<Result<std::string>> {
        uint64_t want = std::stoull(n);
        auto units = co_await ReadCount(ctx, "units");
        if (!units.ok()) co_return units.status();
        if (*units < want) co_return Status::FailedPrecondition("out of stock");
        LO_CO_RETURN_IF_ERROR(
            co_await ctx.Set("units", std::to_string(*units - want)));
        co_return std::to_string(*units - want);
      }};
  type.methods["units"] = {
      .kind = runtime::MethodKind::kReadOnly,
      .deterministic = true,
      .native = [](runtime::InvocationContext& ctx, std::string)
          -> sim::Task<Result<std::string>> {
        auto units = co_await ReadCount(ctx, "units");
        if (!units.ok()) co_return units.status();
        co_return std::to_string(*units);
      }};
  return type;
}

runtime::ObjectType MakeCartType() {
  runtime::ObjectType type;
  type.name = "cart";
  // add(arg = "<sku>") — buffered in the cart's own state.
  type.methods["add"] = {
      .kind = runtime::MethodKind::kReadWrite,
      .native = [](runtime::InvocationContext& ctx, std::string sku)
          -> sim::Task<Result<std::string>> {
        LO_CO_RETURN_IF_ERROR(co_await ctx.ListPush("items", sku));
        co_return std::string("added");
      }};
  // checkout(arg = "<session-oid> <token>") — authenticate, then reserve
  // every item via nested invocations; each reservation is atomic at its
  // item, so the store never oversells even under concurrent checkouts.
  type.methods["checkout"] = {
      .kind = runtime::MethodKind::kReadWrite,
      .native = [](runtime::InvocationContext& ctx, std::string arg)
          -> sim::Task<Result<std::string>> {
        auto space = arg.find(' ');
        std::string session = arg.substr(0, space);
        std::string token = arg.substr(space + 1);
        auto auth = co_await ctx.InvokeObject(session, "validate", token);
        if (!auth.ok()) co_return auth.status();

        auto count = co_await ctx.ListLen("items");
        if (!count.ok()) co_return count.status();
        uint64_t reserved = 0;
        for (uint64_t i = 0; i < *count; i++) {
          auto sku = co_await ctx.ListGet("items", i);
          if (!sku.ok()) co_return sku.status();
          auto r = co_await ctx.InvokeObject(*sku, "reserve", "1");
          if (!r.ok()) {
            co_return Status::FailedPrecondition(
                *sku + " unavailable after " + std::to_string(reserved) +
                " reservation(s)");
          }
          reserved++;
        }
        LO_CO_RETURN_IF_ERROR(co_await ctx.Set("last_order",
                                               std::to_string(reserved)));
        co_return std::to_string(reserved) + " item(s) ordered";
      }};
  return type;
}

}  // namespace

int main() {
  sim::Simulator sim(/*seed=*/13);
  runtime::TypeRegistry types;
  LO_CHECK(types.Register(MakeSessionType()).ok());
  LO_CHECK(types.Register(MakeItemType()).ok());
  LO_CHECK(types.Register(MakeCartType()).ok());
  cluster::AggregatedDeployment deployment(sim, &types);
  deployment.WaitUntilReady();
  cluster::Client& client = deployment.NewClient();

  auto run = [&](auto&& coroutine) {
    bool done = false;
    sim::Detach([](std::decay_t<decltype(coroutine)> body, bool* done)
                    -> sim::Task<void> {
      co_await body();
      *done = true;
    }(std::move(coroutine), &done));
    while (!done) LO_CHECK(sim.Step());
  };

  run([&]() -> sim::Task<void> {
    (void)co_await client.Create("session/ada", "session");
    (void)co_await client.Create("item/widget", "item");
    (void)co_await client.Create("item/gadget", "item");
    (void)co_await client.Create("cart/ada", "cart");
    (void)co_await client.Invoke("item/widget", "stock", "3");
    (void)co_await client.Invoke("item/gadget", "stock", "1");

    auto bad = co_await client.Invoke("session/ada", "login", "wrong");
    std::printf("login with wrong password: %s\n", bad.status().ToString().c_str());
    auto token = co_await client.Invoke("session/ada", "login", "hunter2");
    std::printf("login: token=%s\n", token->c_str());

    (void)co_await client.Invoke("cart/ada", "add", "item/widget");
    (void)co_await client.Invoke("cart/ada", "add", "item/gadget");
    auto order = co_await client.Invoke("cart/ada", "checkout",
                                        "session/ada " + *token);
    std::printf("checkout: %s\n", order->c_str());

    auto widgets = co_await client.Invoke("item/widget", "units", "");
    auto gadgets = co_await client.Invoke("item/gadget", "units", "");
    std::printf("stock after order: widget=%s gadget=%s\n", widgets->c_str(),
                gadgets->c_str());

    // Second checkout fails on the gadget — but note the widget it
    // reserved first STAYS reserved: nested invocations commit
    // independently (§3.1: "these guarantees do not span across function
    // calls"). Cross-call rollback needs the §7 transaction extension.
    auto again = co_await client.Invoke("cart/ada", "checkout",
                                        "session/ada " + *token);
    std::printf("second checkout: %s\n", again.status().ToString().c_str());
    widgets = co_await client.Invoke("item/widget", "units", "");
    std::printf("note: widget stock is now %s — the failed checkout's first\n"
                "      reservation committed (per-invocation atomicity only)\n",
                widgets->c_str());

    // §7 extension: restock atomically across two items with a
    // transaction executed inside the primary node's runtime.
    runtime::Runtime& rt = co_await [](cluster::AggregatedDeployment& d)
        -> sim::Task<std::reference_wrapper<runtime::Runtime>> {
      co_return std::ref(d.node(0).runtime());
    }(deployment);
    runtime::Transaction txn(&rt);
    auto widget_units = co_await txn.Get("item/widget", "units");
    txn.Set("item/widget", "units",
            std::to_string(std::stoull(*widget_units) - 1));
    txn.Set("item/gadget", "units", "1");
    Status moved = co_await txn.Commit();
    std::printf("transactional restock (move 1 widget -> gadget): %s\n",
                moved.ToString().c_str());
    widgets = co_await client.Invoke("item/widget", "units", "");
    gadgets = co_await client.Invoke("item/gadget", "units", "");
    std::printf("stock after restock: widget=%s gadget=%s\n", widgets->c_str(),
                gadgets->c_str());
  });
  return 0;
}
