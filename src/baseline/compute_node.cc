#include "baseline/compute_node.h"

#include "common/coding.h"
#include "common/log.h"

namespace lo::baseline {
namespace {

std::string EncodeInvoke(std::string_view oid, std::string_view method,
                         std::string_view argument) {
  std::string out;
  PutLengthPrefixed(&out, oid);
  PutLengthPrefixed(&out, method);
  PutLengthPrefixed(&out, argument);
  return out;
}

}  // namespace

/// HostApi whose every operation is a round-trip to the storage layer —
/// the crux of the disaggregated design. No write buffering, no read
/// snapshot: operations are individually visible the moment they land.
class RemoteHostApi : public vm::HostApi {
 public:
  RemoteHostApi(ComputeNode* node, std::string oid, obs::TraceContext trace)
      : node_(node), oid_(std::move(oid)), trace_(trace) {}

  sim::Task<Result<std::string>> KvGet(std::string_view key) override {
    node_->metrics_.storage_round_trips++;
    co_return co_await node_->rpc_.Call(Primary(), "kv.get",
                                        runtime::FieldKey(oid_, key),
                                        node_->options_.storage_timeout, trace_);
  }

  sim::Task<Status> KvPut(std::string_view key, std::string_view value) override {
    node_->metrics_.storage_round_trips++;
    std::string payload;
    PutLengthPrefixed(&payload, runtime::FieldKey(oid_, key));
    PutLengthPrefixed(&payload, value);
    payload.push_back(0);
    auto reply = co_await node_->rpc_.Call(Primary(), "kv.put", payload,
                                           node_->options_.storage_timeout, trace_);
    co_return reply.status();
  }

  sim::Task<Status> KvDelete(std::string_view key) override {
    node_->metrics_.storage_round_trips++;
    std::string payload;
    PutLengthPrefixed(&payload, runtime::FieldKey(oid_, key));
    PutLengthPrefixed(&payload, "");
    payload.push_back(1);
    auto reply = co_await node_->rpc_.Call(Primary(), "kv.put", payload,
                                           node_->options_.storage_timeout, trace_);
    co_return reply.status();
  }

  sim::Task<Result<std::string>> InvokeObject(std::string_view oid,
                                              std::string_view function,
                                              std::string_view argument) override {
    // §4.1: nested calls re-enter through the load balancer when there
    // is one (another round of indirection); otherwise loop back into
    // this compute node as a fresh invocation.
    if (node_->load_balancer_ != 0) {
      co_return co_await node_->rpc_.Call(
          node_->load_balancer_, "lb.invoke", EncodeInvoke(oid, function, argument),
          node_->options_.storage_timeout * 4, trace_);
    }
    co_return co_await node_->InvokeFunction(std::string(oid), std::string(function),
                                             std::string(argument), trace_);
  }

  uint64_t TimeMillis() override {
    return static_cast<uint64_t>(node_->rpc_.sim().Now() / 1'000'000);
  }

 private:
  sim::NodeId Primary() const { return node_->shard_map_.PrimaryFor(oid_); }

  ComputeNode* node_;
  std::string oid_;
  obs::TraceContext trace_;
};

ComputeNode::ComputeNode(sim::Network& net, sim::NodeId id,
                         const runtime::TypeRegistry* types,
                         ComputeNodeOptions options)
    : options_(options), rpc_(net, id), cpu_(net.sim(), options.cores),
      types_(types) {
  rpc_.SetTracer(options.tracer);
  rpc_.Handle("fn.invoke", [this](sim::NodeId from, obs::TraceContext trace,
                                  std::string payload) {
    return HandleInvoke(from, trace, std::move(payload));
  });
  rpc_.Handle("fn.create", [this](sim::NodeId from, std::string payload) {
    return HandleCreate(from, std::move(payload));
  });
  if (options.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options.metrics_registry;
    reg->RegisterExternal("compute.invocations", id, &metrics_.invocations);
    reg->RegisterExternal("compute.storage_round_trips", id,
                          &metrics_.storage_round_trips);
    reg->RegisterExternal("compute.cold_starts", id, &metrics_.cold_starts);
    reg->RegisterExternal("compute.fuel_executed", id, &metrics_.fuel_executed);
    reg->RegisterCallback("cpu.busy_core_ns", id, [this] {
      return static_cast<double>(cpu_.busy_core_ns());
    });
  }
}

sim::Task<Result<std::string>> ComputeNode::TypeNameOf(const std::string& oid) {
  auto cached = type_cache_.find(oid);
  if (cached != type_cache_.end()) co_return cached->second;
  metrics_.storage_round_trips++;
  auto reply = co_await rpc_.Call(shard_map_.PrimaryFor(oid), "kv.get",
                                  runtime::ObjectExistsKey(oid),
                                  options_.storage_timeout);
  if (!reply.ok()) co_return reply.status();
  type_cache_[oid] = *reply;
  co_return reply;
}

sim::Task<void> ComputeNode::MaybeColdStart(const std::string& type_name) {
  if (options_.cold_start <= 0) co_return;
  sim::Time now = rpc_.sim().Now();
  auto it = warm_until_.find(type_name);
  if (it == warm_until_.end() || it->second < now) {
    metrics_.cold_starts++;
    co_await rpc_.sim().Sleep(options_.cold_start);
  }
  warm_until_[type_name] = rpc_.sim().Now() + options_.keep_alive;
}

sim::Task<Result<std::string>> ComputeNode::InvokeFunction(std::string oid,
                                                           std::string method,
                                                           std::string argument,
                                                           obs::TraceContext trace) {
  metrics_.invocations++;
  auto type_name = co_await TypeNameOf(oid);
  if (!type_name.ok()) {
    co_return Status::NotFound("no such object: " + oid);
  }
  const runtime::ObjectType* type = types_->Find(*type_name);
  if (type == nullptr) co_return Status::NotFound("unknown type: " + *type_name);
  const runtime::MethodImpl* impl = type->FindMethod(method);
  if (impl == nullptr) co_return Status::NotFound("no method: " + method);
  if (impl->module == nullptr) {
    // The baseline executes uploaded (bytecode) functions only, exactly
    // like a serverless platform; native methods are a LambdaStore
    // convenience.
    co_return Status::InvalidArgument("baseline requires a VM module for " + method);
  }
  co_await MaybeColdStart(*type_name);

  RemoteHostApi host(this, oid, trace);
  vm::Instance instance(impl->module.get(), options_.vm_limits);
  auto result = co_await instance.Invoke(method, std::move(argument), &host);
  uint64_t fuel = instance.metrics().fuel_used;
  metrics_.fuel_executed += fuel;
  sim::Time exec_started = rpc_.sim().Now();
  co_await cpu_.Execute(options_.vm_instantiation_overhead +
                        static_cast<sim::Duration>(fuel * options_.ns_per_fuel));
  if (obs::Tracing(options_.tracer, trace)) {
    options_.tracer->RecordChild(trace, "vm_exec", id(), exec_started,
                                 rpc_.sim().Now());
  }
  co_return result;
}

sim::Task<Result<std::string>> ComputeNode::HandleInvoke(sim::NodeId,
                                                         obs::TraceContext trace,
                                                         std::string payload) {
  Reader reader{payload};
  std::string_view oid, method, argument;
  if (!reader.GetLengthPrefixed(&oid) || !reader.GetLengthPrefixed(&method) ||
      !reader.GetLengthPrefixed(&argument)) {
    co_return Status::Corruption("bad fn.invoke payload");
  }
  sim::Time dispatch_started = rpc_.sim().Now();
  co_await rpc_.sim().Sleep(options_.dispatch_overhead);
  if (obs::Tracing(options_.tracer, trace)) {
    options_.tracer->RecordChild(trace, "dispatch", id(), dispatch_started,
                                 rpc_.sim().Now());
  }
  co_return co_await InvokeFunction(std::string(oid), std::string(method),
                                    std::string(argument), trace);
}

sim::Task<Result<std::string>> ComputeNode::HandleCreate(sim::NodeId,
                                                         std::string payload) {
  Reader reader{payload};
  std::string_view oid, type_name;
  if (!reader.GetLengthPrefixed(&oid) || !reader.GetLengthPrefixed(&type_name)) {
    co_return Status::Corruption("bad fn.create payload");
  }
  co_await rpc_.sim().Sleep(options_.dispatch_overhead);
  if (types_->Find(*&type_name) == nullptr) {
    co_return Status::NotFound("unknown type");
  }
  // Existence record written straight to storage (single put, no txn).
  std::string put;
  PutLengthPrefixed(&put, runtime::ObjectExistsKey(oid));
  PutLengthPrefixed(&put, type_name);
  put.push_back(0);
  metrics_.storage_round_trips++;
  auto reply = co_await rpc_.Call(shard_map_.PrimaryFor(oid), "kv.put", put,
                                  options_.storage_timeout);
  if (!reply.ok()) co_return reply.status();
  co_return std::string(oid);
}

}  // namespace lo::baseline
