// Disaggregated baseline (paper §4.1 / §5): functions execute on a
// dedicated compute node, *separate* from the storage replica set, with
// WebAssembly(-equivalent) isolation. Every storage access is a network
// round-trip to the storage primary, and there is no invocation
// atomicity/isolation — the paper's "no consistency guarantees" variant.
// The storage side is the same LambdaStore replica set (kv.* services),
// so the only difference between the two systems is the architecture.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/routing.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/object.h"
#include "sim/cpu.h"
#include "sim/rpc.h"
#include "vm/interpreter.h"

namespace lo::baseline {

struct ComputeNodeOptions {
  int cores = 20;
  sim::Duration dispatch_overhead = sim::Micros(15);
  uint64_t ns_per_fuel = 2;
  /// Sandbox instantiation cost charged per invocation (same constant as
  /// the aggregated system: both run the same isolation mechanism).
  sim::Duration vm_instantiation_overhead = sim::Micros(100);
  vm::VmLimits vm_limits;
  /// Cold-start penalty paid when a function's sandbox is not warm
  /// (container spin-up). 0 disables; the Table 1 benchmark sets it.
  sim::Duration cold_start = 0;
  /// How long a warm sandbox stays warm after an invocation.
  sim::Duration keep_alive = sim::Seconds(600);
  sim::Duration storage_timeout = sim::Millis(100);
  /// Observability (nullptr = off).
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;
};

class ComputeNode {
 public:
  ComputeNode(sim::Network& net, sim::NodeId id,
              const runtime::TypeRegistry* types, ComputeNodeOptions options);

  sim::NodeId id() const { return rpc_.node(); }
  void SeedConfig(coord::ClusterState state) { shard_map_.Update(std::move(state)); }
  /// When set, nested `invoke`s go through the load balancer (one more
  /// hop of indirection, §4.1); otherwise they re-enter this node.
  void SetLoadBalancer(sim::NodeId lb) { load_balancer_ = lb; }

  /// Executes one function invocation (also the nested-call entry).
  sim::Task<Result<std::string>> InvokeFunction(std::string oid, std::string method,
                                                std::string argument,
                                                obs::TraceContext trace = {});

  struct Metrics {
    uint64_t invocations = 0;
    uint64_t storage_round_trips = 0;
    uint64_t cold_starts = 0;
    uint64_t fuel_executed = 0;
  };
  const Metrics& metrics() const { return metrics_; }
  sim::CpuModel& cpu() { return cpu_; }

 private:
  friend class RemoteHostApi;
  sim::Task<Result<std::string>> HandleInvoke(sim::NodeId from,
                                              obs::TraceContext trace,
                                              std::string payload);
  sim::Task<Result<std::string>> HandleCreate(sim::NodeId from, std::string payload);
  sim::Task<Result<std::string>> TypeNameOf(const std::string& oid);
  sim::Task<void> MaybeColdStart(const std::string& type_name);

  ComputeNodeOptions options_;
  sim::RpcEndpoint rpc_;
  sim::CpuModel cpu_;
  const runtime::TypeRegistry* types_;
  cluster::ShardMap shard_map_;
  sim::NodeId load_balancer_ = 0;
  std::map<std::string, std::string> type_cache_;   // oid -> type name
  std::map<std::string, sim::Time> warm_until_;     // type -> warm deadline
  Metrics metrics_;
};

}  // namespace lo::baseline
