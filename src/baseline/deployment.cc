#include "baseline/deployment.h"

namespace lo::baseline {

DisaggregatedDeployment::DisaggregatedDeployment(
    sim::Simulator& sim, const runtime::TypeRegistry* types,
    BaselineOptions options)
    : sim_(sim), net_(sim, options.network), options_(options) {
  options_.storage.metrics_registry = options_.metrics_registry;
  options_.storage.tracer = options_.tracer;
  options_.compute.metrics_registry = options_.metrics_registry;
  options_.compute.tracer = options_.tracer;
  options_.load_balancer.metrics_registry = options_.metrics_registry;
  options_.load_balancer.tracer = options_.tracer;
  if (options_.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics_registry;
    reg->RegisterCallback("net.messages_sent", 0, [this] {
      return static_cast<double>(net_.messages_sent());
    });
    reg->RegisterCallback("net.messages_dropped", 0, [this] {
      return static_cast<double>(net_.messages_dropped());
    });
    reg->RegisterCallback("net.bytes_sent", 0, [this] {
      return static_cast<double>(net_.bytes_sent());
    });
  }
  // Storage replica set: same StorageNode class as the aggregated
  // system — the baseline uses "our prototype as its storage layer".
  std::vector<sim::NodeId> storage_ids;
  for (int i = 0; i < options.num_storage_nodes; i++) {
    storage_ids.push_back(static_cast<sim::NodeId>(10 + i));
  }
  coord::ClusterState config;
  {
    coord::ShardConfig shard;
    shard.epoch = 1;
    shard.primary = storage_ids.front();
    for (size_t i = 1; i < storage_ids.size(); i++) {
      shard.backups.push_back(storage_ids[i]);
    }
    config.shards[0] = std::move(shard);
  }
  for (sim::NodeId id : storage_ids) {
    storage_nodes_.push_back(std::make_unique<cluster::StorageNode>(
        net_, id, types, std::vector<sim::NodeId>{}, options_.storage));
    storage_nodes_.back()->ApplyConfig(config);
  }

  // Compute pool.
  std::vector<sim::NodeId> compute_ids;
  for (int i = 0; i < options.num_compute_nodes; i++) {
    auto id = static_cast<sim::NodeId>(30 + i);
    compute_ids.push_back(id);
    compute_nodes_.push_back(
        std::make_unique<ComputeNode>(net_, id, types, options_.compute));
    compute_nodes_.back()->SeedConfig(config);
  }

  if (options.with_load_balancer) {
    std::vector<sim::NodeId> follower_ids = {41, 42};
    for (sim::NodeId id : follower_ids) {
      log_followers_.push_back(std::make_unique<LogFollower>(net_, id));
    }
    load_balancer_ = std::make_unique<LoadBalancer>(
        net_, 40, compute_ids, follower_ids, options_.load_balancer);
    for (auto& compute : compute_nodes_) {
      compute->SetLoadBalancer(load_balancer_->id());
    }
  }
}

sim::NodeId DisaggregatedDeployment::entry_node() const {
  return options_.with_load_balancer ? load_balancer_->id()
                                     : compute_nodes_.front()->id();
}

const char* DisaggregatedDeployment::entry_service() const {
  return options_.with_load_balancer ? "lb.invoke" : "fn.invoke";
}

sim::RpcEndpoint& DisaggregatedDeployment::NewClientEndpoint() {
  client_endpoints_.push_back(
      std::make_unique<sim::RpcEndpoint>(net_, next_client_id_++));
  client_endpoints_.back()->SetTracer(options_.tracer);
  return *client_endpoints_.back();
}

}  // namespace lo::baseline
