// The paper's evaluation topology for the disaggregated variant (§5):
// one compute machine + a three-node storage replica set; clients
// contact the compute node directly (no load balancer in the measured
// path). A variant with the load balancer + request log is used by the
// Table 1 comparison.
#pragma once

#include <memory>
#include <vector>

#include "baseline/compute_node.h"
#include "baseline/load_balancer.h"
#include "cluster/storage_node.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace lo::baseline {

struct BaselineOptions {
  int num_compute_nodes = 1;
  int num_storage_nodes = 3;
  bool with_load_balancer = false;
  sim::NetworkConfig network;
  ComputeNodeOptions compute;
  cluster::StorageNodeOptions storage;
  LoadBalancerOptions load_balancer;
  /// Observability (nullptr = off): forwarded to every node in the
  /// deployment; client endpoints get the tracer for rpc spans.
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;
};

class DisaggregatedDeployment {
 public:
  DisaggregatedDeployment(sim::Simulator& sim, const runtime::TypeRegistry* types,
                          BaselineOptions options = {});

  sim::Simulator& sim() { return sim_; }
  sim::Network& network() { return net_; }
  ComputeNode& compute(int index) { return *compute_nodes_[index]; }
  cluster::StorageNode& storage(int index) { return *storage_nodes_[index]; }
  LoadBalancer* load_balancer() { return load_balancer_.get(); }

  /// Entry node id clients should call, and the service name to use
  /// ("lb.invoke" with a load balancer, "fn.invoke" without).
  sim::NodeId entry_node() const;
  const char* entry_service() const;

  /// A raw RPC endpoint for issuing client calls (ids 200+).
  sim::RpcEndpoint& NewClientEndpoint();

 private:
  sim::Simulator& sim_;
  sim::Network net_;
  BaselineOptions options_;
  std::vector<std::unique_ptr<cluster::StorageNode>> storage_nodes_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
  std::unique_ptr<LoadBalancer> load_balancer_;
  std::vector<std::unique_ptr<LogFollower>> log_followers_;
  std::vector<std::unique_ptr<sim::RpcEndpoint>> client_endpoints_;
  sim::NodeId next_client_id_ = 200;
};

}  // namespace lo::baseline
