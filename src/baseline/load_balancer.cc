#include "baseline/load_balancer.h"

#include "common/log.h"

namespace lo::baseline {
namespace {

std::unique_ptr<storage::DB> OpenDb(storage::MemEnv* env, const std::string& name) {
  storage::Options options;
  options.env = env;
  return std::move(*storage::DB::Open(options, name));
}

}  // namespace

LoadBalancer::LoadBalancer(sim::Network& net, sim::NodeId id,
                           std::vector<sim::NodeId> compute_pool,
                           std::vector<sim::NodeId> log_followers,
                           LoadBalancerOptions options)
    : options_(options),
      rpc_(net, id),
      db_(OpenDb(&env_, "/lb-log")),
      log_(&rpc_, db_.get()),
      compute_pool_(std::move(compute_pool)) {
  LO_CHECK(!compute_pool_.empty());
  rpc_.SetTracer(options.tracer);
  log_.Configure(/*is_leader=*/true, std::move(log_followers));
  rpc_.Handle("lb.invoke", [this](sim::NodeId from, obs::TraceContext trace,
                                  std::string payload) {
    return HandleInvoke(from, trace, std::move(payload));
  });
  if (options.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options.metrics_registry;
    reg->RegisterExternal("lb.requests", id, &metrics_.requests);
    reg->RegisterExternal("lb.log_appends", id, &metrics_.log_appends);
    reg->RegisterExternal("lb.retries_on_compute_failure", id,
                          &metrics_.retries_on_compute_failure);
  }
}

sim::Task<Result<std::string>> LoadBalancer::HandleInvoke(sim::NodeId,
                                                          obs::TraceContext trace,
                                                          std::string payload) {
  metrics_.requests++;
  sim::Time dispatch_started = rpc_.sim().Now();
  co_await rpc_.sim().Sleep(options_.dispatch_overhead);
  if (obs::Tracing(options_.tracer, trace)) {
    options_.tracer->RecordChild(trace, "dispatch", id(), dispatch_started,
                                 rpc_.sim().Now());
  }
  // Durability first: the request is logged before any execution, so a
  // compute failure can be retried rather than lost.
  sim::Time append_started = rpc_.sim().Now();
  co_await rpc_.sim().Sleep(options_.log_sync_latency);
  auto index = co_await log_.Append(payload, trace);
  if (!index.ok()) co_return index.status();
  metrics_.log_appends++;
  if (obs::Tracing(options_.tracer, trace)) {
    options_.tracer->RecordChild(trace, "log.append", id(), append_started,
                                 rpc_.sim().Now());
  }

  // Round-robin dispatch; on failure, retry on the next compute node.
  for (size_t attempt = 0; attempt < compute_pool_.size(); attempt++) {
    sim::NodeId target = compute_pool_[next_compute_];
    next_compute_ = (next_compute_ + 1) % compute_pool_.size();
    auto result = co_await rpc_.Call(target, "fn.invoke", payload,
                                     options_.compute_timeout, trace);
    if (result.ok() || (!result.status().IsTimeout() &&
                        !result.status().IsUnavailable())) {
      co_return result;
    }
    metrics_.retries_on_compute_failure++;
  }
  co_return Status::Unavailable("no compute node reachable");
}

LogFollower::LogFollower(sim::Network& net, sim::NodeId id)
    : rpc_(net, id), db_(OpenDb(&env_, "/lb-follower")), log_(&rpc_, db_.get()) {
  log_.Configure(/*is_leader=*/false, {});
}

}  // namespace lo::baseline
