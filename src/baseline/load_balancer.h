// OpenWhisk-style load balancer (paper §4.1): client requests are logged
// durably to a replicated log (the Kafka role) *before* being dispatched
// round-robin to the compute pool, so a compute-node failure can never
// lose a request. This indirection — log append + extra hop — is part of
// the latency the aggregated design removes.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/replicator.h"
#include "sim/rpc.h"
#include "storage/db.h"
#include "storage/env.h"

namespace lo::baseline {

struct LoadBalancerOptions {
  sim::Duration dispatch_overhead = sim::Micros(20);
  sim::Duration log_sync_latency = sim::Micros(80);
  sim::Duration compute_timeout = sim::Millis(500);
  /// Observability (nullptr = off).
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;
};

class LoadBalancer {
 public:
  LoadBalancer(sim::Network& net, sim::NodeId id,
               std::vector<sim::NodeId> compute_pool,
               std::vector<sim::NodeId> log_followers,
               LoadBalancerOptions options = {});

  sim::NodeId id() const { return rpc_.node(); }
  replication::ReplicatedLog& log() { return log_; }

  struct Metrics {
    uint64_t requests = 0;
    uint64_t log_appends = 0;
    uint64_t retries_on_compute_failure = 0;
  };
  const Metrics& metrics() const { return metrics_; }

 private:
  sim::Task<Result<std::string>> HandleInvoke(sim::NodeId from,
                                              obs::TraceContext trace,
                                              std::string payload);

  LoadBalancerOptions options_;
  sim::RpcEndpoint rpc_;
  storage::MemEnv env_;
  std::unique_ptr<storage::DB> db_;
  replication::ReplicatedLog log_;
  std::vector<sim::NodeId> compute_pool_;
  size_t next_compute_ = 0;
  Metrics metrics_;
};

/// Follower node hosting a replica of the request log.
class LogFollower {
 public:
  LogFollower(sim::Network& net, sim::NodeId id);
  replication::ReplicatedLog& log() { return log_; }

 private:
  sim::RpcEndpoint rpc_;
  storage::MemEnv env_;
  std::unique_ptr<storage::DB> db_;
  replication::ReplicatedLog log_;
};

}  // namespace lo::baseline
