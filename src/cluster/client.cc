#include "cluster/client.h"

#include <algorithm>

#include "common/coding.h"
#include "common/log.h"

namespace lo::cluster {

Client::Client(sim::Network& net, sim::NodeId id,
               std::vector<sim::NodeId> coordinators, ClientOptions options)
    : rpc_(net, id), options_(options), coordinators_(std::move(coordinators)) {
  rpc_.SetTracer(options.tracer);
  if (options.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options.metrics_registry;
    reg->RegisterExternal("client.requests", id, &metrics_.requests);
    reg->RegisterExternal("client.retries", id, &metrics_.retries);
    reg->RegisterExternal("client.config_refreshes", id,
                          &metrics_.config_refreshes);
    reg->RegisterExternal("client.budget_exhausted", id,
                          &metrics_.budget_exhausted);
    reg->RegisterExternal("client.follower_reads", id, &metrics_.follower_reads);
    reg->RegisterExternal("client.read_bounces", id, &metrics_.read_bounces);
    reg->RegisterExternal("rpc.throttled", id, &metrics_.throttled);
    invoke_latency_us_ = reg->GetHistogram("client.invoke_latency_us", id);
  }
}

void Client::ObserveToken(coord::ShardId shard,
                          const replication::EpochToken& token) {
  replication::EpochToken& held = tokens_[shard];
  if (token.epoch > held.epoch) {
    held = token;
  } else if (token.epoch == held.epoch) {
    held.seq = std::max(held.seq, token.seq);
  }
}

Result<std::string> Client::UnwrapToken(coord::ShardId shard,
                                        Result<std::string> wrapped) {
  if (!wrapped.ok()) return wrapped;
  replication::EpochToken token;
  std::string_view body;
  if (!replication::DecodeTokenWrapped(*wrapped, &token, &body)) {
    return Status::Corruption("bad token-wrapped response");
  }
  ObserveToken(shard, token);
  return std::string(body);
}

replication::EpochToken Client::TokenFor(const std::string& oid) const {
  auto it = tokens_.find(shard_map_.ShardFor(oid));
  return it == tokens_.end() ? replication::EpochToken{} : it->second;
}

obs::TraceContext Client::StartRootTrace() {
  if (options_.tracer == nullptr) return {};
  return options_.tracer->StartTrace();
}

void Client::FinishRootTrace(const obs::TraceContext& trace, sim::Time started) {
  sim::Time now = rpc_.sim().Now();
  if (obs::Tracing(options_.tracer, trace)) {
    options_.tracer->Record(trace, "invoke", rpc_.node(), started, now);
  }
  if (invoke_latency_us_ != nullptr) {
    invoke_latency_us_->Record((now - started) / 1000);
  }
}

sim::Task<void> Client::RefreshConfig() {
  metrics_.config_refreshes++;
  coord::CoordClient coord_client(&rpc_, coordinators_, nullptr);
  auto state = co_await coord_client.FetchConfig();
  if (state.ok()) shard_map_.Update(std::move(*state));
}

sim::Task<Result<std::string>> Client::CallWithRouting(const std::string& oid,
                                                       std::string service,
                                                       std::string payload,
                                                       obs::TraceContext trace) {
  metrics_.requests++;
  Status last = Status::Unavailable("no attempts made");
  const sim::Time deadline = rpc_.sim().Now() + options_.retry_budget;
  sim::Duration backoff = options_.retry_backoff;
  int throttles = 0;
  bool throttled_pause = false;  // previous iteration already slept
  for (int attempt = 0; attempt < options_.max_attempts; attempt++) {
    if (attempt > 0 && !throttled_pause) {
      // Exponential backoff with ±25% jitter (seeded RNG, so a replayed
      // fault schedule reproduces the same retry timeline). Jitter keeps
      // the client herd from re-converging on a recovering primary.
      double jitter = 0.75 + 0.5 * rpc_.sim().rng().NextDouble();
      auto pause = static_cast<sim::Duration>(
          static_cast<double>(backoff) * jitter);
      if (rpc_.sim().Now() + pause >= deadline) {
        metrics_.budget_exhausted++;
        break;  // surface `last`: better an error than an unbounded stall
      }
      metrics_.retries++;
      co_await rpc_.sim().Sleep(pause);
      backoff = std::min(backoff * 2, options_.retry_backoff_max);
    }
    throttled_pause = false;
    if (shard_map_.empty() && !coordinators_.empty()) co_await RefreshConfig();
    sim::NodeId primary = shard_map_.PrimaryFor(oid);
    if (primary == 0) {
      last = Status::Unavailable("no shard map");
      continue;
    }
    auto result = co_await rpc_.Call(primary, service, payload,
                                     options_.request_timeout, trace,
                                     options_.tenant_id);
    if (result.ok()) co_return result;
    last = result.status();
    switch (last.code()) {
      case StatusCode::kWrongNode:
      case StatusCode::kNotPrimary:
      case StatusCode::kTimeout:
      case StatusCode::kUnavailable:
        // Stale routing or mid-failover; refresh and retry.
        if (!coordinators_.empty()) co_await RefreshConfig();
        continue;
      case StatusCode::kTenantThrottled:
        // Admission pushback, not a fault: pause on the dedicated
        // throttle backoff and re-send without consuming a failure
        // attempt, bounded by its own cap and the wall-clock budget.
        metrics_.throttled++;
        if (++throttles > options_.max_throttle_retries) co_return last;
        if (rpc_.sim().Now() + options_.throttle_backoff >= deadline) {
          metrics_.budget_exhausted++;
          co_return last;
        }
        co_await rpc_.sim().Sleep(options_.throttle_backoff);
        throttled_pause = true;
        attempt--;
        continue;
      default:
        co_return last;  // application-level error: surface it
    }
  }
  co_return last;
}

std::string Client::NextInvocationToken() {
  return "c" + std::to_string(rpc_.node()) + "-" + std::to_string(next_token_++);
}

sim::Task<Result<std::string>> Client::Invoke(std::string oid, std::string method,
                                              std::string argument) {
  std::string payload;
  PutLengthPrefixed(&payload, oid);
  PutLengthPrefixed(&payload, method);
  PutLengthPrefixed(&payload, argument);
  // The token is baked into the payload once, before the retry loop, so
  // every attempt of this request carries the same identity.
  PutLengthPrefixed(&payload, NextInvocationToken());
  obs::TraceContext trace = StartRootTrace();
  sim::Time started = rpc_.sim().Now();
  auto wrapped =
      co_await CallWithRouting(oid, "lambda.invoke2", std::move(payload), trace);
  auto result = UnwrapToken(shard_map_.ShardFor(oid), std::move(wrapped));
  FinishRootTrace(trace, started);
  co_return result;
}

sim::Task<Result<std::string>> Client::InvokeRead(std::string oid,
                                                  std::string method,
                                                  std::string argument) {
  metrics_.requests++;
  if (shard_map_.empty() && !coordinators_.empty()) co_await RefreshConfig();
  coord::ShardId shard = shard_map_.ShardFor(oid);
  const coord::ShardConfig* config = shard_map_.ConfigFor(shard);
  replication::ReadMode mode = options_.read_mode;
  replication::EpochToken token = TokenFor(oid);
  // Request: LP oid | LP method | LP arg | varint32 mode |
  //          varint64 token.epoch | varint64 token.seq | varint64 staleness.
  // The same payload works at the bounce target: the primary ignores the
  // gate (it always serves).
  std::string payload;
  PutLengthPrefixed(&payload, oid);
  PutLengthPrefixed(&payload, method);
  PutLengthPrefixed(&payload, argument);
  PutVarint32(&payload, static_cast<uint32_t>(mode));
  PutVarint64(&payload, token.epoch);
  PutVarint64(&payload, token.seq);
  PutVarint64(&payload, options_.staleness_epochs);
  obs::TraceContext trace = StartRootTrace();
  sim::Time started = rpc_.sim().Now();
  // Replica choice: chain tail for kTail, otherwise uniform over the
  // whole replica set (primary included — it carries its share of reads).
  if (mode != replication::ReadMode::kPrimaryOnly && config != nullptr &&
      !config->backups.empty()) {
    sim::NodeId target = 0;
    if (mode == replication::ReadMode::kTail) {
      target = config->backups.back();
    } else {
      size_t which = rpc_.sim().rng().Uniform(config->backups.size() + 1);
      if (which < config->backups.size()) target = config->backups[which];
    }
    if (target != 0) {
      auto reply = co_await rpc_.Call(target, "lambda.read", payload,
                                      options_.request_timeout, trace,
                                      options_.tenant_id);
      if (reply.ok()) {
        metrics_.follower_reads++;
        FinishRootTrace(trace, started);
        co_return UnwrapToken(shard, std::move(reply));
      }
      if (reply.status().code() == StatusCode::kEpochBehind) {
        metrics_.read_bounces++;
      }
      // Bounce / failure: fall through to the primary path below.
    }
  }
  auto wrapped =
      co_await CallWithRouting(oid, "lambda.read", std::move(payload), trace);
  auto result = UnwrapToken(shard, std::move(wrapped));
  FinishRootTrace(trace, started);
  co_return result;
}

sim::Task<Result<std::string>> Client::InvokeReadAny(std::string oid,
                                                     std::string method,
                                                     std::string argument) {
  metrics_.requests++;
  if (shard_map_.empty() && !coordinators_.empty()) co_await RefreshConfig();
  const coord::ShardConfig* config =
      shard_map_.ConfigFor(shard_map_.ShardFor(oid));
  std::string payload;
  PutLengthPrefixed(&payload, oid);
  PutLengthPrefixed(&payload, method);
  PutLengthPrefixed(&payload, argument);
  PutLengthPrefixed(&payload, NextInvocationToken());
  obs::TraceContext trace = StartRootTrace();
  sim::Time started = rpc_.sim().Now();
  if (config != nullptr && !config->backups.empty()) {
    // Pick any replica; fall back to the primary path on failure.
    size_t which = rpc_.sim().rng().Uniform(config->backups.size() + 1);
    if (which < config->backups.size()) {
      auto reply = co_await rpc_.Call(config->backups[which], "lambda.invoke",
                                      payload, options_.request_timeout, trace,
                                      options_.tenant_id);
      if (reply.ok()) {
        FinishRootTrace(trace, started);
        co_return reply;
      }
      metrics_.retries++;
    }
  }
  auto result =
      co_await CallWithRouting(oid, "lambda.invoke", std::move(payload), trace);
  FinishRootTrace(trace, started);
  co_return result;
}

sim::Task<Result<std::string>> Client::Create(std::string oid,
                                              std::string type_name) {
  std::string payload;
  PutLengthPrefixed(&payload, oid);
  PutLengthPrefixed(&payload, type_name);
  PutLengthPrefixed(&payload, NextInvocationToken());
  auto wrapped = co_await CallWithRouting(oid, "lambda.create2", std::move(payload));
  co_return UnwrapToken(shard_map_.ShardFor(oid), std::move(wrapped));
}

sim::Task<Status> Client::MigrateObject(const std::string& oid,
                                        coord::ShardId target_shard) {
  if (shard_map_.empty() && !coordinators_.empty()) co_await RefreshConfig();
  sim::NodeId source = shard_map_.PrimaryFor(oid);
  const coord::ShardConfig* target = shard_map_.ConfigFor(target_shard);
  if (source == 0 || target == nullptr) {
    co_return Status::Unavailable("routing unknown for migration");
  }
  if (target->primary == source) co_return Status::OK();  // already there

  // 1. Extract (source stops serving the object).
  auto extracted = co_await rpc_.Call(source, "shard.extract", oid,
                                      options_.request_timeout);
  if (!extracted.ok()) co_return extracted.status();
  // 2. Install at the target replica set.
  std::string install;
  PutVarint32(&install, target_shard);
  install += *extracted;
  auto installed = co_await rpc_.Call(target->primary, "shard.install",
                                      std::move(install),
                                      options_.request_timeout);
  if (!installed.ok()) co_return installed.status();
  // 3. Publish the directory update through the coordinator.
  if (!coordinators_.empty()) {
    std::string place;
    PutLengthPrefixed(&place, oid);
    PutVarint32(&place, target_shard);
    for (sim::NodeId coordinator : coordinators_) {
      auto reply = co_await rpc_.Call(coordinator, "coord.place", place,
                                      options_.request_timeout);
      if (reply.ok()) break;
    }
    co_await RefreshConfig();
  } else {
    // Coordinator-less deployments (unit tests): update locally.
    auto state = shard_map_.state();
    state.directory[oid] = target_shard;
    shard_map_.Update(std::move(state));
  }
  co_return Status::OK();
}

}  // namespace lo::cluster
