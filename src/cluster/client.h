// Client library for LambdaStore: routes invocations to the primary of
// the owning shard, refreshes the shard map from the coordinators on
// misroutes/timeouts, and retries — so a primary failure shows up to the
// application as one slow request, not an error (paper §4.2.1: "clients
// ... will reissue their request if needed").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/routing.h"
#include "coord/coordinator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/rpc.h"

namespace lo::cluster {

struct ClientOptions {
  sim::Duration request_timeout = sim::Millis(100);
  /// Initial retry pause; doubles per attempt (with ±25% jitter from the
  /// seeded sim RNG) up to `retry_backoff_max`.
  sim::Duration retry_backoff = sim::Millis(10);
  sim::Duration retry_backoff_max = sim::Millis(160);
  /// Total wall-clock budget for one request including all retries.
  /// Exhausting it surfaces the last failure instead of sleeping past
  /// the deadline (a failover longer than this is an outage, not a blip).
  sim::Duration retry_budget = sim::Millis(2000);
  int max_attempts = 8;
  /// Observability (nullptr = off). Every Invoke/InvokeReadAny starts a
  /// root "invoke" trace on the tracer (subject to its sampling rate);
  /// the registry gets this client's request counters and an end-to-end
  /// invoke latency histogram.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics_registry = nullptr;
};

class Client {
 public:
  Client(sim::Network& net, sim::NodeId id, std::vector<sim::NodeId> coordinators,
         ClientOptions options = {});

  /// Installs a shard map directly (benchmarks skip the coordinator).
  void SeedConfig(coord::ClusterState state) { shard_map_.Update(std::move(state)); }

  sim::Task<Result<std::string>> Invoke(std::string oid, std::string method,
                                        std::string argument);

  /// Routes a *read-only* method to a randomly chosen replica of the
  /// owning shard (paper §4.2.1: "read-only functions can execute at any
  /// replica to increase throughput"). The nodes must be configured with
  /// serve_reads_as_backup; mutating methods sent this way are rejected
  /// by the backup's runtime. Reads may trail the primary by in-flight
  /// replication (bounded staleness).
  sim::Task<Result<std::string>> InvokeReadAny(std::string oid, std::string method,
                                               std::string argument);

  sim::Task<Result<std::string>> Create(std::string oid, std::string type_name);

  /// Asks the coordinator to move `oid` to `shard` and orchestrates the
  /// copy: extract at the current primary, install at the new one,
  /// publish the directory update.
  sim::Task<Status> MigrateObject(const std::string& oid, coord::ShardId shard);

  struct Metrics {
    uint64_t requests = 0;
    uint64_t retries = 0;
    uint64_t config_refreshes = 0;
    /// Requests abandoned because the retry budget ran out.
    uint64_t budget_exhausted = 0;
  };
  const Metrics& metrics() const { return metrics_; }

 private:
  sim::Task<Result<std::string>> CallWithRouting(const std::string& oid,
                                                 std::string service,
                                                 std::string payload,
                                                 obs::TraceContext trace = {});
  sim::Task<void> RefreshConfig();
  /// Starts a sampled root trace for one client request (empty when off).
  obs::TraceContext StartRootTrace();
  /// Closes the root "invoke" span and records end-to-end latency.
  void FinishRootTrace(const obs::TraceContext& trace, sim::Time started);

  /// Mints the idempotency token for one logical request. Every retry of
  /// that request reuses the same token, so a node that already committed
  /// it (then lost the ack to a crash or partition) recognises the
  /// re-send and skips the re-apply instead of double-applying.
  std::string NextInvocationToken();

  sim::RpcEndpoint rpc_;
  ClientOptions options_;
  std::vector<sim::NodeId> coordinators_;
  ShardMap shard_map_;
  Metrics metrics_;
  uint64_t next_token_ = 1;
  Histogram* invoke_latency_us_ = nullptr;  // owned by the registry
};

}  // namespace lo::cluster
