// Client library for LambdaStore: routes invocations to the primary of
// the owning shard, refreshes the shard map from the coordinators on
// misroutes/timeouts, and retries — so a primary failure shows up to the
// application as one slow request, not an error (paper §4.2.1: "clients
// ... will reissue their request if needed").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/routing.h"
#include "coord/coordinator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/replicator.h"
#include "sim/rpc.h"

namespace lo::cluster {

struct ClientOptions {
  sim::Duration request_timeout = sim::Millis(100);
  /// Initial retry pause; doubles per attempt (with ±25% jitter from the
  /// seeded sim RNG) up to `retry_backoff_max`.
  sim::Duration retry_backoff = sim::Millis(10);
  sim::Duration retry_backoff_max = sim::Millis(160);
  /// Total wall-clock budget for one request including all retries.
  /// Exhausting it surfaces the last failure instead of sleeping past
  /// the deadline (a failover longer than this is an outage, not a blip).
  sim::Duration retry_budget = sim::Millis(2000);
  int max_attempts = 8;
  /// Observability (nullptr = off). Every Invoke/InvokeReadAny starts a
  /// root "invoke" trace on the tracer (subject to its sampling rate);
  /// the registry gets this client's request counters and an end-to-end
  /// invoke latency histogram.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics_registry = nullptr;
  /// Staleness contract for InvokeRead (LO_FOLLOWER_READS):
  /// kPrimaryOnly routes every read to the primary; the other modes
  /// spread reads across the shard's replicas, carrying the client's
  /// epoch token so a lagging backup bounces rather than serving stale
  /// state (docs/replication.md).
  replication::ReadMode read_mode = replication::ReadMode::kPrimaryOnly;
  /// Epoch slack a kBounded read tolerates (LO_STALENESS_EPOCHS).
  uint64_t staleness_epochs = 0;
  /// Tenant id stamped on every request (0 = untenanted legacy traffic).
  /// Servers running with a TenantRegistry gate admission and fuel on it.
  uint32_t tenant_id = 0;
  /// kTenantThrottled is admission pushback, not a fault: the client
  /// pauses `throttle_backoff` and re-sends without consuming a failure
  /// attempt, bounded by `max_throttle_retries` and the wall-clock
  /// retry_budget. Counted separately as rpc.throttled.
  sim::Duration throttle_backoff = sim::Millis(5);
  int max_throttle_retries = 16;
};

class Client {
 public:
  Client(sim::Network& net, sim::NodeId id, std::vector<sim::NodeId> coordinators,
         ClientOptions options = {});

  /// Installs a shard map directly (benchmarks skip the coordinator).
  void SeedConfig(coord::ClusterState state) { shard_map_.Update(std::move(state)); }

  sim::Task<Result<std::string>> Invoke(std::string oid, std::string method,
                                        std::string argument);

  /// Routes a *read-only* method to a randomly chosen replica of the
  /// owning shard (paper §4.2.1: "read-only functions can execute at any
  /// replica to increase throughput"). The nodes must be configured with
  /// serve_reads_as_backup; mutating methods sent this way are rejected
  /// by the backup's runtime. Reads may trail the primary by in-flight
  /// replication (bounded staleness).
  sim::Task<Result<std::string>> InvokeReadAny(std::string oid, std::string method,
                                               std::string argument);

  /// Epoch-gated follower read ("lambda.read"): routes a deterministic
  /// read-only method per `options.read_mode` — to the primary
  /// (kPrimaryOnly), a uniformly random replica (kStrict / kBounded /
  /// kEventual) or the chain tail (kTail) — carrying this client's epoch
  /// token. A backup whose apply state does not cover the token answers
  /// kEpochBehind and the read falls back to the primary (counted in
  /// metrics().read_bounces), so read-your-writes holds in kStrict mode.
  sim::Task<Result<std::string>> InvokeRead(std::string oid, std::string method,
                                            std::string argument);

  sim::Task<Result<std::string>> Create(std::string oid, std::string type_name);

  /// The epoch token this client holds for `oid`'s shard (what its next
  /// follower read would present). Zero until a write of this client acked.
  replication::EpochToken TokenFor(const std::string& oid) const;

  /// Asks the coordinator to move `oid` to `shard` and orchestrates the
  /// copy: extract at the current primary, install at the new one,
  /// publish the directory update.
  sim::Task<Status> MigrateObject(const std::string& oid, coord::ShardId shard);

  struct Metrics {
    uint64_t requests = 0;
    uint64_t retries = 0;
    uint64_t config_refreshes = 0;
    /// Requests abandoned because the retry budget ran out.
    uint64_t budget_exhausted = 0;
    /// InvokeRead requests answered by a backup replica.
    uint64_t follower_reads = 0;
    /// InvokeRead requests a backup bounced (kEpochBehind) and the
    /// client re-issued at the primary.
    uint64_t read_bounces = 0;
    /// Requests the server shed with kTenantThrottled (each re-send after
    /// the dedicated throttle pause counts again).
    uint64_t throttled = 0;
  };
  const Metrics& metrics() const { return metrics_; }

 private:
  sim::Task<Result<std::string>> CallWithRouting(const std::string& oid,
                                                 std::string service,
                                                 std::string payload,
                                                 obs::TraceContext trace = {});
  sim::Task<void> RefreshConfig();
  /// Starts a sampled root trace for one client request (empty when off).
  obs::TraceContext StartRootTrace();
  /// Closes the root "invoke" span and records end-to-end latency.
  void FinishRootTrace(const obs::TraceContext& trace, sim::Time started);

  /// Mints the idempotency token for one logical request. Every retry of
  /// that request reuses the same token, so a node that already committed
  /// it (then lost the ack to a crash or partition) recognises the
  /// re-send and skips the re-apply instead of double-applying.
  std::string NextInvocationToken();

  /// Folds a token from a write ack into the per-shard token map: a newer
  /// config epoch supersedes; within an epoch the sequence only advances.
  void ObserveToken(coord::ShardId shard, const replication::EpochToken& token);
  /// Unwraps a token-wrapped response, folds the token in, returns the body.
  Result<std::string> UnwrapToken(coord::ShardId shard,
                                  Result<std::string> wrapped);

  sim::RpcEndpoint rpc_;
  ClientOptions options_;
  std::vector<sim::NodeId> coordinators_;
  ShardMap shard_map_;
  Metrics metrics_;
  /// Last token observed per shard — what this client knows it has written.
  std::map<coord::ShardId, replication::EpochToken> tokens_;
  uint64_t next_token_ = 1;
  Histogram* invoke_latency_us_ = nullptr;  // owned by the registry
};

}  // namespace lo::cluster
