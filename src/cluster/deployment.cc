#include "cluster/deployment.h"

#include "common/log.h"

namespace lo::cluster {

AggregatedDeployment::AggregatedDeployment(sim::Simulator& sim,
                                           const runtime::TypeRegistry* types,
                                           DeploymentOptions options)
    : sim_(sim), net_(sim, options.network), options_(options) {
  options_.node.metrics_registry = options_.metrics_registry;
  options_.node.tracer = options_.tracer;
  options_.client.metrics_registry = options_.metrics_registry;
  options_.client.tracer = options_.tracer;
  if (options_.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics_registry;
    reg->RegisterCallback("net.messages_sent", 0, [this] {
      return static_cast<double>(net_.messages_sent());
    });
    reg->RegisterCallback("net.messages_dropped", 0, [this] {
      return static_cast<double>(net_.messages_dropped());
    });
    reg->RegisterCallback("net.bytes_sent", 0, [this] {
      return static_cast<double>(net_.bytes_sent());
    });
    reg->RegisterCallback("net.fault_drops", 0, [this] {
      return static_cast<double>(net_.fault_drops());
    });
    reg->RegisterCallback("net.delay_spikes", 0, [this] {
      return static_cast<double>(net_.delay_spikes());
    });
  }
  for (int i = 0; i < options.num_coordinators; i++) {
    coordinator_ids_.push_back(static_cast<sim::NodeId>(1 + i));
  }
  for (sim::NodeId id : coordinator_ids_) {
    coordinator_rpcs_.push_back(std::make_unique<sim::RpcEndpoint>(net_, id));
    coordinators_.push_back(std::make_unique<coord::CoordinatorNode>(
        coordinator_rpcs_.back().get(), coordinator_ids_));
    if (options_.metrics_registry != nullptr) {
      coordinators_.back()->RegisterMetrics(options_.metrics_registry, id);
    }
  }

  std::vector<sim::NodeId> storage_ids;
  for (int i = 0; i < options.num_storage_nodes; i++) {
    storage_ids.push_back(static_cast<sim::NodeId>(10 + i));
  }
  for (sim::NodeId id : storage_ids) {
    storage_nodes_.push_back(std::make_unique<StorageNode>(
        net_, id, types, coordinator_ids_, options_.node));
  }

  // Bootstrap config: `num_shards` shards striped over the nodes; each
  // shard gets every node as a replica, rotated so primaries differ.
  for (int shard = 0; shard < options.num_shards; shard++) {
    coord::ShardConfig config;
    config.epoch = 1;
    int n = options.num_storage_nodes;
    config.primary = storage_ids[static_cast<size_t>(shard % n)];
    for (int j = 1; j < n; j++) {
      config.backups.push_back(storage_ids[static_cast<size_t>((shard + j) % n)]);
    }
    bootstrap_.shards[static_cast<coord::ShardId>(shard)] = std::move(config);
  }

  bool bootstrapped = false;
  sim::Detach([](coord::CoordinatorNode* leader, coord::ClusterState state,
                 bool* done) -> sim::Task<void> {
    Status s = co_await leader->Bootstrap(std::move(state));
    LO_CHECK_MSG(s.ok(), "bootstrap failed: " + s.ToString());
    *done = true;
  }(coordinators_.front().get(), bootstrap_, &bootstrapped));
  sim_.RunFor(sim::Millis(50));
  LO_CHECK_MSG(bootstrapped, "coordinator bootstrap did not converge");

  // Push initial config into every storage node and start heartbeats.
  for (auto& node : storage_nodes_) {
    node->ApplyConfig(bootstrap_);
    if (options.start_background_loops) node->Start();
  }
  if (options.start_background_loops) {
    for (auto& coordinator : coordinators_) coordinator->Start();
  }
}

void AggregatedDeployment::WaitUntilReady() { sim_.RunFor(sim::Millis(50)); }

Client& AggregatedDeployment::NewClient() {
  clients_.push_back(std::make_unique<Client>(net_, next_client_id_++,
                                              coordinator_ids_, options_.client));
  clients_.back()->SeedConfig(bootstrap_);
  return *clients_.back();
}

void AggregatedDeployment::KillStorageNode(int index) {
  net_.SetNodeUp(storage_nodes_[static_cast<size_t>(index)]->id(), false);
}

void AggregatedDeployment::ReviveStorageNode(int index) {
  net_.SetNodeUp(storage_nodes_[static_cast<size_t>(index)]->id(), true);
}

}  // namespace lo::cluster
