// Turn-key deployments for tests, examples and benchmarks.
//
// AggregatedDeployment reproduces the paper's evaluation topology: a
// Paxos-replicated coordinator group plus one storage replica set whose
// nodes *are* the execution environment (the "aggregated" variant). Node
// ids: coordinators 1..C, storage nodes 10..,  clients 100+.
#pragma once

#include <memory>
#include <vector>

#include "cluster/client.h"
#include "cluster/storage_node.h"
#include "coord/coordinator.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace lo::cluster {

struct DeploymentOptions {
  int num_coordinators = 3;
  int num_storage_nodes = 3;  // one replica set (paper: 3 machines)
  int num_shards = 1;         // shards are striped across the nodes
  bool start_background_loops = true;  // heartbeats + failure detection
  sim::NetworkConfig network;
  StorageNodeOptions node;
  ClientOptions client;
  /// Observability (nullptr = off): forwarded to every storage node,
  /// coordinator and client created by this deployment; the registry
  /// additionally gets cluster-wide network counters under node 0.
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;
};

class AggregatedDeployment {
 public:
  AggregatedDeployment(sim::Simulator& sim, const runtime::TypeRegistry* types,
                       DeploymentOptions options = {});

  /// Drives the simulator until the bootstrap config is agreed + pushed.
  void WaitUntilReady();

  sim::Simulator& sim() { return sim_; }
  sim::Network& network() { return net_; }
  StorageNode& node(int index) { return *storage_nodes_[index]; }
  int num_nodes() const { return static_cast<int>(storage_nodes_.size()); }
  coord::CoordinatorNode& coordinator(int index) { return *coordinators_[index]; }
  std::vector<sim::NodeId> coordinator_ids() const { return coordinator_ids_; }

  /// Creates a client (each gets a fresh NodeId).
  Client& NewClient();

  /// The bootstrap cluster state (for SeedConfig in benchmarks).
  const coord::ClusterState& bootstrap_state() const { return bootstrap_; }

  /// Crashes / revives a storage node at the network level.
  void KillStorageNode(int index);
  void ReviveStorageNode(int index);

 private:
  sim::Simulator& sim_;
  sim::Network net_;
  DeploymentOptions options_;
  std::vector<sim::NodeId> coordinator_ids_;
  std::vector<std::unique_ptr<coord::CoordinatorNode>> coordinators_;
  std::vector<std::unique_ptr<sim::RpcEndpoint>> coordinator_rpcs_;
  std::vector<std::unique_ptr<StorageNode>> storage_nodes_;
  std::vector<std::unique_ptr<Client>> clients_;
  coord::ClusterState bootstrap_;
  sim::NodeId next_client_id_ = 100;
};

}  // namespace lo::cluster
