#include "cluster/microshard.h"

#include "runtime/object.h"

namespace lo::cluster {

std::string_view OidFromStorageKey(std::string_view key) {
  size_t first = key.find('\0');
  if (first == std::string_view::npos) return {};
  size_t second = key.find('\0', first + 1);
  if (second == std::string_view::npos) return key.substr(first + 1);
  return key.substr(first + 1, second - first - 1);
}

Result<std::vector<std::pair<std::string, std::string>>> CollectObjectEntries(
    storage::DB* db, std::string_view oid) {
  std::vector<std::pair<std::string, std::string>> entries;
  auto existence = db->Get({}, runtime::ObjectExistsKey(oid));
  if (!existence.ok()) return existence.status();
  entries.emplace_back(runtime::ObjectExistsKey(oid), *existence);
  std::string prefix = runtime::FieldKey(oid, "");
  auto iter = db->NewIterator({});
  for (iter->Seek(prefix); iter->Valid(); iter->Next()) {
    std::string_view key = iter->key();
    if (key.substr(0, prefix.size()) != prefix) break;
    entries.emplace_back(std::string(key), std::string(iter->value()));
  }
  LO_RETURN_IF_ERROR(iter->status());
  return entries;
}

Result<std::string> ExtractObjectRep(storage::DB* db, std::string_view oid) {
  auto entries = CollectObjectEntries(db, oid);
  if (!entries.ok()) return entries.status();
  storage::WriteBatch batch;
  for (const auto& [key, value] : *entries) batch.Put(key, value);
  return batch.rep();
}

Result<storage::WriteBatch> DecodeObjectRep(std::string rep) {
  return storage::WriteBatch::FromRep(std::move(rep));
}

}  // namespace lo::cluster
