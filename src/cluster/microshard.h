// Microshard extract/install: the storage-level half of object
// migration (paper §4.2.1), shared by the simulated StorageNode and the
// real clusterd server so both deployments move byte-identical state.
//
// A microshard is everything one object owns in the node-local KV store:
// the existence key plus every field key (including list/map entries and
// the idempotency markers, which must travel with the object so retries
// stay exactly-once across a migration). Extract packages that set as a
// WriteBatch rep; install commits the rep on the receiving node.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/db.h"
#include "storage/write_batch.h"

namespace lo::cluster {

/// Storage keys embed the owning object id: "o\0<oid>" or
/// "f\0<oid>\0...". Extracts it for shard routing.
std::string_view OidFromStorageKey(std::string_view key);

/// All storage entries belonging to one object (existence + fields).
/// NotFound if the object does not exist on this node.
Result<std::vector<std::pair<std::string, std::string>>> CollectObjectEntries(
    storage::DB* db, std::string_view oid);

/// Packages the object as a WriteBatch rep ready for ExtractedBatch /
/// shard.install. NotFound if the object does not exist.
Result<std::string> ExtractObjectRep(storage::DB* db, std::string_view oid);

/// Decodes an extract rep back into a WriteBatch (validates it).
Result<storage::WriteBatch> DecodeObjectRep(std::string rep);

}  // namespace lo::cluster
