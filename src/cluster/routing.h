// Object -> shard -> replica-set routing shared by clients and nodes.
//
// Objects are microshards (paper §4.2): an explicit directory entry (from
// migration / placement) wins; otherwise the object hashes onto a shard.
// The directory is what preserves locality under migration — hash-based
// placement cannot express "keep this object here", which is exactly the
// ablation in bench/ablation_sharding.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/hash.h"
#include "coord/coordinator.h"

namespace lo::cluster {

/// Routing policy over a raw ClusterState: an explicit directory entry
/// wins; otherwise hash over `hash_shards` when set (elastic clusters
/// pin the hash space at bootstrap) or over the live shard count.
inline coord::ShardId ShardForObject(const coord::ClusterState& state,
                                     std::string_view oid) {
  auto it = state.directory.find(std::string(oid));
  if (it != state.directory.end()) return it->second;
  uint64_t space = state.hash_shards != 0 ? state.hash_shards
                                          : state.shards.size();
  if (space == 0) return 0;
  return static_cast<coord::ShardId>(Fnv1a64(oid) % space);
}

class ShardMap {
 public:
  ShardMap() = default;
  explicit ShardMap(coord::ClusterState state) : state_(std::move(state)) {}

  void Update(coord::ClusterState state) { state_ = std::move(state); }
  const coord::ClusterState& state() const { return state_; }
  bool empty() const { return state_.shards.empty(); }

  coord::ShardId ShardFor(std::string_view oid) const {
    return ShardForObject(state_, oid);
  }

  /// Primary node for the object, or 0 if the shard is unknown.
  sim::NodeId PrimaryFor(std::string_view oid) const {
    auto it = state_.shards.find(ShardFor(oid));
    return it == state_.shards.end() ? 0 : it->second.primary;
  }

  const coord::ShardConfig* ConfigFor(coord::ShardId shard) const {
    auto it = state_.shards.find(shard);
    return it == state_.shards.end() ? nullptr : &it->second;
  }

 private:
  coord::ClusterState state_;
};

}  // namespace lo::cluster
