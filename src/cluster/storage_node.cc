#include "cluster/storage_node.h"

#include "cluster/microshard.h"
#include "common/coding.h"
#include "common/log.h"
#include "runtime/object.h"

namespace lo::cluster {
namespace {

std::string EncodeInvoke(std::string_view oid, std::string_view method,
                         std::string_view argument) {
  std::string out;
  PutLengthPrefixed(&out, oid);
  PutLengthPrefixed(&out, method);
  PutLengthPrefixed(&out, argument);
  return out;
}

bool DecodeInvoke(std::string_view payload, std::string_view* oid,
                  std::string_view* method, std::string_view* argument,
                  std::string_view* token) {
  Reader reader{payload};
  if (!reader.GetLengthPrefixed(oid) || !reader.GetLengthPrefixed(method) ||
      !reader.GetLengthPrefixed(argument)) {
    return false;
  }
  // Optional idempotency token: client requests carry one; node-to-node
  // forwards of nested invocations (EncodeInvoke) do not.
  *token = {};
  reader.GetLengthPrefixed(token);
  return true;
}

}  // namespace

StorageNode::StorageNode(sim::Network& net, sim::NodeId id,
                         const runtime::TypeRegistry* types,
                         std::vector<sim::NodeId> coordinators,
                         StorageNodeOptions options)
    : options_(options),
      types_(types),
      rpc_(net, id),
      cpu_(net.sim(), options.cores) {
  rpc_.SetTracer(options.tracer);
  storage::Options db_options;
  db_options.env = &env_;
  db_options.write_buffer_size = options.db_write_buffer_size;
  db_options.block_cache_bytes = options.db_block_cache_bytes;
  db_options.memtable_shards = options.db_memtable_shards;
  db_options.subcompactions = options.db_subcompactions;
  db_options.compaction_rate_bytes_per_sec =
      static_cast<uint64_t>(options.db_compaction_rate_mb) * 1024 * 1024;
  db_options.tracer = options.tracer;
  db_options.node_label = id;
  if (options.tracer != nullptr) {
    db_options.clock = [sim = &net.sim()] { return sim->Now(); };
  }
  db_ = std::move(*storage::DB::Open(db_options, "/lambdastore"));
  options_.runtime.tracer = options.tracer;
  options_.runtime.node_label = id;
  options_.runtime.tenants = options.tenants;  // per-tenant fuel + DRR lanes
  runtime_ = std::make_unique<runtime::Runtime>(&net.sim(), db_.get(), types,
                                                options_.runtime);
  replicator_ = std::make_unique<replication::Replicator>(
      &rpc_, db_.get(), options.replication_mode);
  replicator_->SetApplyHook([this](const storage::WriteBatch& batch) {
    runtime_->OnExternalCommit(batch);
  });
  // Promotion (backup -> primary) drops the whole result cache: entries
  // cached while backup belong to the old primary's history and must not
  // be served under the new epoch (failover read-safety).
  replicator_->SetPromotionHook([this](replication::ShardId, uint64_t) {
    runtime_->ClearResultCache();
  });

  // The node's WAL device: serial fsyncs, group commit (the sink runs
  // once per group — one replication round per fsync, both amortized).
  WalGroupCommitterOptions gc_options;
  gc_options.wal_sync_latency = options.wal_sync_latency;
  gc_options.max_batch_bytes = options.gc_max_batch_bytes;
  gc_options.max_batch_delay = options.gc_max_batch_delay;
  gc_options.tracer = options.tracer;
  gc_options.node_label = id;
  group_committer_ = std::make_unique<WalGroupCommitter>(
      &net.sim(),
      [this](coord::ShardId shard, storage::WriteBatch batch,
             obs::TraceContext trace) -> sim::Task<Status> {
        co_return co_await replicator_->ReplicateAndApply(shard, std::move(batch),
                                                          trace);
      },
      gc_options);

  // Commit path of the runtime: through the WAL device (group commit),
  // then replicate within the object's shard.
  runtime_->SetCommitSink(
      [this](const runtime::ObjectId& oid, storage::WriteBatch batch,
             obs::TraceContext trace) -> sim::Task<Status> {
        co_return co_await group_committer_->Commit(shard_map_.ShardFor(oid),
                                                    std::move(batch), trace);
      });
  // CPU: sandbox instantiation plus executed fuel occupies a worker core.
  runtime_->SetCpuCharger([this](uint64_t fuel) -> sim::Task<void> {
    return cpu_.Execute(options_.vm_instantiation_overhead +
                        static_cast<sim::Duration>(fuel * options_.ns_per_fuel));
  });
  // Nested invocations route through the shard map.
  runtime_->SetRemoteInvoker(
      [this](runtime::ObjectId oid, std::string method, std::string argument,
             obs::TraceContext trace) -> sim::Task<Result<std::string>> {
        if (IsPrimaryFor(oid) && !migrated_away_.contains(oid)) {
          metrics_.invokes_served++;
          co_return co_await runtime_->Invoke(std::move(oid), std::move(method),
                                              std::move(argument), trace);
        }
        sim::NodeId target = shard_map_.PrimaryFor(oid);
        if (target == 0) co_return Status::Unavailable("no shard map");
        metrics_.forwarded_invokes++;
        co_return co_await rpc_.Call(target, "lambda.invoke",
                                     EncodeInvoke(oid, method, argument),
                                     sim::Millis(200), trace);
      });

  if (!coordinators.empty()) {
    coord_client_ = std::make_unique<coord::CoordClient>(
        &rpc_, std::move(coordinators),
        [this](const coord::ClusterState& state) { ApplyConfig(state); });
  }

  // Serving handlers take the full request meta: the wire-level tenant id
  // gates admission before any lane or storage work happens.
  rpc_.Handle("lambda.invoke", [this](sim::RpcEndpoint::RequestMeta meta,
                                      std::string payload) {
    return Admitted(meta.tenant,
                    [this, meta, payload = std::move(payload)]() mutable {
                      return HandleInvoke(meta.trace, meta.tenant,
                                          std::move(payload));
                    });
  });
  rpc_.Handle("lambda.create", [this](sim::RpcEndpoint::RequestMeta meta,
                                      std::string payload) {
    return Admitted(meta.tenant,
                    [this, payload = std::move(payload)]() mutable {
                      return HandleCreate(std::move(payload));
                    });
  });
  rpc_.Handle("lambda.invoke2", [this](sim::RpcEndpoint::RequestMeta meta,
                                       std::string payload) {
    return Admitted(meta.tenant,
                    [this, meta, payload = std::move(payload)]() mutable {
                      return HandleInvoke2(meta.trace, meta.tenant,
                                           std::move(payload));
                    });
  });
  rpc_.Handle("lambda.create2", [this](sim::RpcEndpoint::RequestMeta meta,
                                       std::string payload) {
    return Admitted(meta.tenant,
                    [this, payload = std::move(payload)]() mutable {
                      return HandleCreate2(std::move(payload));
                    });
  });
  rpc_.Handle("lambda.read", [this](sim::RpcEndpoint::RequestMeta meta,
                                    std::string payload) {
    return Admitted(meta.tenant,
                    [this, meta, payload = std::move(payload)]() mutable {
                      return HandleRead(meta.trace, meta.tenant,
                                        std::move(payload));
                    });
  });
  rpc_.Handle("kv.get", [this](sim::NodeId from, std::string payload) {
    return HandleKvGet(from, std::move(payload));
  });
  rpc_.Handle("kv.put", [this](sim::NodeId from, obs::TraceContext trace,
                               std::string payload) {
    return HandleKvPut(from, trace, std::move(payload));
  });
  rpc_.Handle("kv.batch", [this](sim::NodeId from, obs::TraceContext trace,
                                 std::string payload) {
    return HandleKvBatch(from, trace, std::move(payload));
  });
  rpc_.Handle("shard.extract", [this](sim::NodeId from, std::string payload) {
    return HandleExtract(from, std::move(payload));
  });
  rpc_.Handle("shard.install", [this](sim::NodeId from, std::string payload) {
    return HandleInstall(from, std::move(payload));
  });

  if (options.metrics_registry != nullptr) {
    RegisterMetrics(options.metrics_registry);
  }
}

void StorageNode::RegisterMetrics(obs::MetricsRegistry* reg) {
  uint32_t node = id();
  // Node-level counters: live pointers into metrics_, hot path unchanged.
  reg->RegisterExternal("node.invokes_served", node, &metrics_.invokes_served);
  reg->RegisterExternal("node.invokes_rejected_not_primary", node,
                        &metrics_.invokes_rejected_not_primary);
  reg->RegisterExternal("node.forwarded_invokes", node,
                        &metrics_.forwarded_invokes);
  reg->RegisterExternal("node.kv_ops_served", node, &metrics_.kv_ops_served);
  reg->RegisterExternal("node.objects_migrated_out", node,
                        &metrics_.objects_migrated_out);
  reg->RegisterExternal("node.objects_migrated_in", node,
                        &metrics_.objects_migrated_in);
  // Runtime: the accessor keeps returning the same live struct.
  const runtime::Runtime::Metrics& rt = runtime_->metrics();
  reg->RegisterExternal("runtime.invocations", node, &rt.invocations);
  reg->RegisterExternal("runtime.read_only_invocations", node,
                        &rt.read_only_invocations);
  reg->RegisterExternal("runtime.nested_invocations", node,
                        &rt.nested_invocations);
  reg->RegisterExternal("runtime.commits", node, &rt.commits);
  reg->RegisterExternal("runtime.aborts", node, &rt.aborts);
  reg->RegisterExternal("runtime.lock_waits", node, &rt.lock_waits);
  reg->RegisterExternal("runtime.max_busy_lanes", node, &rt.max_busy_lanes);
  reg->RegisterExternal("runtime.fuel_executed", node, &rt.fuel_executed);
  // Lane occupancy: configured width plus the instantaneous busy count.
  reg->RegisterCallback("runtime.lanes", node, [this] {
    return static_cast<double>(runtime_->lanes());
  });
  reg->RegisterCallback("runtime.busy_lanes", node, [this] {
    return static_cast<double>(runtime_->BusyLanes());
  });
  reg->RegisterExternal("runtime.dedup_commit_skips", node,
                        &rt.dedup_commit_skips);
  const runtime::ResultCache::Stats& cache = runtime_->cache_stats();
  reg->RegisterExternal("runtime.cache_hits", node, &cache.hits);
  reg->RegisterExternal("runtime.cache_misses", node, &cache.misses);
  reg->RegisterExternal("result_cache.remote_invalidations", node,
                        &cache.remote_invalidations);
  // Replicator.
  const replication::Replicator::Metrics& repl = replicator_->metrics();
  reg->RegisterExternal("repl.replicated_batches", node,
                        &repl.replicated_batches);
  reg->RegisterExternal("repl.applied_batches", node, &repl.applied_batches);
  reg->RegisterExternal("repl.reordered_arrivals", node,
                        &repl.reordered_arrivals);
  reg->RegisterExternal("repl.stale_epoch_rejections", node,
                        &repl.stale_epoch_rejections);
  reg->RegisterExternal("repl.failed_peer_acks", node, &repl.failed_peer_acks);
  reg->RegisterExternal("repl.promotions", node, &repl.promotions);
  // Follower-read path: served-at-backup count, bounce count, and this
  // node's apply-epoch (highest applied replication seq across shards).
  reg->RegisterExternal("repl.follower_reads", node, &metrics_.follower_reads);
  reg->RegisterExternal("repl.epoch_bounces", node, &metrics_.epoch_bounces);
  reg->RegisterCallback("repl.apply_epoch", node, [this] {
    return static_cast<double>(replicator_->max_applied_seq());
  });
  // WAL group commit: how well fsyncs amortize over commits.
  const WalGroupCommitter::Stats& gc = group_committer_->stats();
  reg->RegisterExternal("gc.commits", node, &gc.commits);
  reg->RegisterExternal("gc.groups", node, &gc.groups);
  reg->RegisterExternal("gc.synced_bytes", node, &gc.synced_bytes);
  reg->RegisterExternal("gc.max_group_commits", node, &gc.max_group_commits);
  reg->RegisterExternal("gc.sync_failures", node, &gc.sync_failures);
  reg->RegisterCallback("gc.fsyncs_per_commit", node, [this] {
    const auto& s = group_committer_->stats();
    return s.commits == 0 ? 0.0
                          : static_cast<double>(s.groups) /
                                static_cast<double>(s.commits);
  });
  // DB stats are returned by value; read lazily at snapshot time.
  reg->RegisterCallback("db.wal_syncs", node, [this] {
    return static_cast<double>(db_->GetStats().wal_syncs);
  });
  reg->RegisterCallback("db.flushes", node, [this] {
    return static_cast<double>(db_->GetStats().flushes);
  });
  reg->RegisterCallback("db.compactions", node, [this] {
    return static_cast<double>(db_->GetStats().compactions);
  });
  reg->RegisterCallback("db.compaction_bytes_written", node, [this] {
    return static_cast<double>(db_->GetStats().compaction_bytes_written);
  });
  // Write-path shaping (docs/tuning.md "reading the obs metrics"):
  // stall_us growing means the LSM is pushing back on writers;
  // compaction.inflight > 0 sustained with stall_soft climbing means the
  // compaction budget (subcompactions / rate limit) is the bottleneck.
  reg->RegisterCallback("storage.stall_us", node, [this] {
    return static_cast<double>(db_->GetStats().stall_us);
  });
  reg->RegisterCallback("storage.stall_soft", node, [this] {
    return static_cast<double>(db_->GetStats().stall_soft);
  });
  reg->RegisterCallback("storage.stall_hard", node, [this] {
    return static_cast<double>(db_->GetStats().stall_hard);
  });
  reg->RegisterCallback("compaction.bytes", node, [this] {
    const auto s = db_->GetStats();
    return static_cast<double>(s.compaction_bytes_read + s.compaction_bytes_written);
  });
  reg->RegisterCallback("compaction.inflight", node, [this] {
    return static_cast<double>(db_->GetStats().compactions_inflight);
  });
  reg->RegisterCallback("compaction.subcompactions", node, [this] {
    return static_cast<double>(db_->GetStats().subcompactions_run);
  });
  reg->RegisterCallback("compaction.throttle_us", node, [this] {
    return static_cast<double>(db_->GetStats().compaction_throttle_us);
  });
  reg->RegisterCallback("memtable.shards", node, [this] {
    return static_cast<double>(db_->GetStats().memtable_shards);
  });
  // Recovery path: these stay zero in healthy runs; any nonzero value in a
  // fault experiment shows which recovery mechanism fired.
  reg->RegisterCallback("db.recoveries", node, [this] {
    return static_cast<double>(db_->GetStats().recoveries);
  });
  reg->RegisterCallback("db.wal_records_replayed", node, [this] {
    return static_cast<double>(db_->GetStats().wal_records_replayed);
  });
  reg->RegisterCallback("db.wal_torn_tails", node, [this] {
    return static_cast<double>(db_->GetStats().wal_torn_tails);
  });
  reg->RegisterCallback("db.manifest_torn_tails", node, [this] {
    return static_cast<double>(db_->GetStats().manifest_torn_tails);
  });
  reg->RegisterCallback("db.wal_write_failures", node, [this] {
    return static_cast<double>(db_->GetStats().wal_write_failures);
  });
  reg->RegisterCallback("db.wal_rotations_after_error", node, [this] {
    return static_cast<double>(db_->GetStats().wal_rotations_after_error);
  });
  // Block cache: hit ratio is the read path's health metric; bytes shows
  // steady-state residency against the configured capacity.
  reg->RegisterCallback("cache.hit", node, [this] {
    return static_cast<double>(db_->GetStats().block_cache_hits);
  });
  reg->RegisterCallback("cache.miss", node, [this] {
    return static_cast<double>(db_->GetStats().block_cache_misses);
  });
  reg->RegisterCallback("cache.evict", node, [this] {
    return static_cast<double>(db_->GetStats().block_cache_evictions);
  });
  reg->RegisterCallback("cache.bytes", node, [this] {
    return static_cast<double>(db_->GetStats().block_cache_bytes);
  });
  // RPC + CPU.
  reg->RegisterCallback("rpc.calls_started", node, [this] {
    return static_cast<double>(rpc_.calls_started());
  });
  reg->RegisterCallback("rpc.timeouts", node, [this] {
    return static_cast<double>(rpc_.timeouts());
  });
  reg->RegisterCallback("rpc.frame_rejects", node, [this] {
    return static_cast<double>(rpc_.frame_rejects());
  });
  reg->RegisterCallback("rpc.deadline_sheds", node, [this] {
    return static_cast<double>(rpc_.deadline_sheds());
  });
  reg->RegisterCallback("cpu.busy_core_ns", node, [this] {
    return static_cast<double>(cpu_.busy_core_ns());
  });
}

void StorageNode::RecordSpan(const obs::TraceContext& trace, const char* name,
                             sim::Time started) {
  if (!obs::Tracing(options_.tracer, trace)) return;
  options_.tracer->RecordChild(trace, name, id(), started, rpc_.sim().Now());
}

void StorageNode::Start() {
  if (coord_client_ != nullptr) coord_client_->Start();
}

void StorageNode::ApplyConfig(const coord::ClusterState& state) {
  shard_map_.Update(state);
  // A node typically is primary for one shard and backup for others;
  // replication state is kept per shard.
  for (const auto& [shard, config] : state.shards) {
    if (config.primary == id()) {
      replicator_->Configure(shard, config.epoch, /*is_primary=*/true,
                             config.backups);
    } else {
      for (size_t i = 0; i < config.backups.size(); i++) {
        if (config.backups[i] != id()) continue;
        std::vector<sim::NodeId> successors;
        if (options_.replication_mode == replication::Mode::kChain &&
            i + 1 < config.backups.size()) {
          successors.push_back(config.backups[i + 1]);
        }
        replicator_->Configure(shard, config.epoch, /*is_primary=*/false,
                               successors);
      }
    }
  }
}

bool StorageNode::MethodIsReadOnly(std::string_view oid,
                                   std::string_view method) const {
  auto type_name = db_->Get({}, runtime::ObjectExistsKey(oid));
  if (!type_name.ok()) return false;
  const runtime::ObjectType* type = types_->Find(*type_name);
  if (type == nullptr) return false;
  const runtime::MethodImpl* impl = type->FindMethod(method);
  return impl != nullptr && impl->kind == runtime::MethodKind::kReadOnly;
}

bool StorageNode::IsPrimaryFor(std::string_view oid) const {
  return shard_map_.PrimaryFor(oid) == id();
}

bool StorageNode::IsReplicaFor(std::string_view oid) const {
  const coord::ShardConfig* config = shard_map_.ConfigFor(shard_map_.ShardFor(oid));
  return config != nullptr && config->Contains(id());
}

sim::Task<Result<std::string>> StorageNode::InvokeLocal(runtime::ObjectId oid,
                                                        std::string method,
                                                        std::string argument,
                                                        obs::TraceContext trace,
                                                        std::string token,
                                                        tenant::TenantId tenant) {
  metrics_.invokes_served++;
  co_return co_await runtime_->Invoke(std::move(oid), std::move(method),
                                      std::move(argument), trace,
                                      std::move(token), tenant);
}

sim::Task<Result<std::string>> StorageNode::Admitted(
    uint32_t tenant, std::function<sim::Task<Result<std::string>>()> body) {
  tenant::TenantRegistry* tenants = options_.tenants;
  if (tenants != nullptr) {
    Status admitted = tenants->Admit(tenant);
    if (!admitted.ok()) co_return admitted;
  }
  // Errors travel in-band as statuses, so the single resume point below
  // covers every exit: the in-flight slot is always released once.
  auto result = co_await body();
  if (tenants != nullptr) tenants->Release(tenant);
  co_return result;
}

sim::Task<Result<std::string>> StorageNode::HandleInvoke(obs::TraceContext trace,
                                                         uint32_t tenant,
                                                         std::string payload) {
  std::string_view oid, method, argument, token;
  if (!DecodeInvoke(payload, &oid, &method, &argument, &token)) {
    co_return Status::Corruption("bad invoke payload");
  }
  sim::Time dispatch_started = rpc_.sim().Now();
  co_await rpc_.sim().Sleep(options_.dispatch_overhead);
  RecordSpan(trace, "dispatch", dispatch_started);
  if (migrated_away_.contains(std::string(oid))) {
    metrics_.invokes_rejected_not_primary++;
    co_return Status::WrongNode("object migrated away");
  }
  if (!IsPrimaryFor(oid)) {
    // Backups may serve *read-only* methods if configured (bounded
    // staleness); anything mutating must go to the primary.
    bool read_ok = options_.serve_reads_as_backup && IsReplicaFor(oid) &&
                   MethodIsReadOnly(oid, method);
    if (!read_ok) {
      metrics_.invokes_rejected_not_primary++;
      co_return Status::WrongNode("not primary for object");
    }
  }
  co_return co_await InvokeLocal(runtime::ObjectId(oid), std::string(method),
                                 std::string(argument), trace,
                                 std::string(token), tenant);
}

sim::Task<Result<std::string>> StorageNode::HandleCreate(std::string payload) {
  Reader reader{payload};
  std::string_view oid, type_name;
  if (!reader.GetLengthPrefixed(&oid) || !reader.GetLengthPrefixed(&type_name)) {
    co_return Status::Corruption("bad create payload");
  }
  std::string_view token;  // optional third field (see DecodeInvoke)
  reader.GetLengthPrefixed(&token);
  co_await rpc_.sim().Sleep(options_.dispatch_overhead);
  if (!IsPrimaryFor(oid)) co_return Status::WrongNode("not primary for object");
  co_return co_await runtime_->CreateObject(runtime::ObjectId(oid),
                                            std::string(type_name),
                                            std::string(token));
}

sim::Task<Result<std::string>> StorageNode::HandleInvoke2(obs::TraceContext trace,
                                                          uint32_t tenant,
                                                          std::string payload) {
  std::string_view oid, method, argument, token;
  if (!DecodeInvoke(payload, &oid, &method, &argument, &token)) {
    co_return Status::Corruption("bad invoke payload");
  }
  coord::ShardId shard = shard_map_.ShardFor(oid);
  auto result = co_await HandleInvoke(trace, tenant, std::move(payload));
  if (!result.ok()) co_return result.status();
  co_return replication::EncodeTokenWrapped(replicator_->ApplyToken(shard),
                                            *result);
}

sim::Task<Result<std::string>> StorageNode::HandleCreate2(std::string payload) {
  Reader reader{payload};
  std::string_view oid;
  if (!reader.GetLengthPrefixed(&oid)) {
    co_return Status::Corruption("bad create payload");
  }
  coord::ShardId shard = shard_map_.ShardFor(oid);
  auto result = co_await HandleCreate(std::move(payload));
  if (!result.ok()) co_return result.status();
  co_return replication::EncodeTokenWrapped(replicator_->ApplyToken(shard),
                                            *result);
}

sim::Task<Result<std::string>> StorageNode::HandleRead(obs::TraceContext trace,
                                                       uint32_t tenant,
                                                       std::string payload) {
  // Request: LP oid | LP method | LP arg | varint32 mode |
  //          varint64 token.epoch | varint64 token.seq | varint64 staleness.
  Reader reader{payload};
  std::string_view oid, method, argument;
  uint32_t mode_raw = 0;
  replication::EpochToken token;
  uint64_t staleness = 0;
  if (!reader.GetLengthPrefixed(&oid) || !reader.GetLengthPrefixed(&method) ||
      !reader.GetLengthPrefixed(&argument) || !reader.GetVarint32(&mode_raw) ||
      !reader.GetVarint64(&token.epoch) || !reader.GetVarint64(&token.seq) ||
      !reader.GetVarint64(&staleness) ||
      mode_raw > static_cast<uint32_t>(replication::ReadMode::kTail)) {
    co_return Status::Corruption("bad read payload");
  }
  auto mode = static_cast<replication::ReadMode>(mode_raw);
  sim::Time dispatch_started = rpc_.sim().Now();
  co_await rpc_.sim().Sleep(options_.dispatch_overhead);
  RecordSpan(trace, "dispatch", dispatch_started);
  if (migrated_away_.contains(std::string(oid))) {
    co_return Status::WrongNode("object migrated away");
  }
  coord::ShardId shard = shard_map_.ShardFor(oid);
  bool primary = IsPrimaryFor(oid);
  if (!primary) {
    if (!IsReplicaFor(oid)) co_return Status::WrongNode("not a replica for object");
    if (!MethodIsReadOnly(oid, method)) {
      co_return Status::NotPrimary("mutating method on a backup");
    }
    Status gate = replicator_->CheckFollowerRead(shard, token, mode, staleness);
    if (!gate.ok()) {
      metrics_.epoch_bounces++;
      co_return gate;
    }
  }
  auto result = co_await InvokeLocal(runtime::ObjectId(oid), std::string(method),
                                     std::string(argument), trace, {}, tenant);
  if (!result.ok()) co_return result.status();
  if (!primary) metrics_.follower_reads++;
  co_return replication::EncodeTokenWrapped(replicator_->ApplyToken(shard),
                                            *result);
}

sim::Task<Result<std::string>> StorageNode::HandleKvGet(sim::NodeId,
                                                        std::string payload) {
  metrics_.kv_ops_served++;
  co_await rpc_.sim().Sleep(options_.dispatch_overhead);
  co_await cpu_.Execute(options_.kv_op_cpu);
  co_return db_->Get({}, payload);
}

sim::Task<Result<std::string>> StorageNode::HandleKvPut(sim::NodeId,
                                                        obs::TraceContext trace,
                                                        std::string payload) {
  Reader reader{payload};
  std::string_view key, value;
  std::string_view is_delete;
  if (!reader.GetLengthPrefixed(&key) || !reader.GetLengthPrefixed(&value) ||
      !reader.GetBytes(1, &is_delete)) {
    co_return Status::Corruption("bad kv.put payload");
  }
  metrics_.kv_ops_served++;
  sim::Time dispatch_started = rpc_.sim().Now();
  co_await rpc_.sim().Sleep(options_.dispatch_overhead);
  RecordSpan(trace, "dispatch", dispatch_started);
  sim::Time exec_started = rpc_.sim().Now();
  co_await cpu_.Execute(options_.kv_op_cpu);
  RecordSpan(trace, "kv_exec", exec_started);
  storage::WriteBatch batch;
  if (is_delete[0] != 0) {
    batch.Delete(key);
  } else {
    batch.Put(key, value);
  }
  coord::ShardId shard = shard_map_.ShardFor(OidFromStorageKey(key));
  LO_CO_RETURN_IF_ERROR(
      co_await group_committer_->Commit(shard, std::move(batch), trace));
  co_return std::string("ok");
}

sim::Task<Result<std::string>> StorageNode::HandleKvBatch(sim::NodeId,
                                                          obs::TraceContext trace,
                                                          std::string payload) {
  metrics_.kv_ops_served++;
  sim::Time dispatch_started = rpc_.sim().Now();
  co_await rpc_.sim().Sleep(options_.dispatch_overhead);
  RecordSpan(trace, "dispatch", dispatch_started);
  sim::Time exec_started = rpc_.sim().Now();
  co_await cpu_.Execute(options_.kv_op_cpu);
  RecordSpan(trace, "kv_exec", exec_started);
  auto batch = storage::WriteBatch::FromRep(std::move(payload));
  if (!batch.ok()) co_return batch.status();
  // Route by the first key's object (callers batch per object).
  struct FirstKey : storage::WriteBatch::Handler {
    std::string key;
    void Put(std::string_view k, std::string_view) override {
      if (key.empty()) key.assign(k);
    }
    void Delete(std::string_view k) override {
      if (key.empty()) key.assign(k);
    }
  } first;
  LO_CO_RETURN_IF_ERROR(batch->Iterate(&first));
  coord::ShardId shard = shard_map_.ShardFor(OidFromStorageKey(first.key));
  LO_CO_RETURN_IF_ERROR(
      co_await group_committer_->Commit(shard, std::move(*batch), trace));
  co_return std::string("ok");
}

sim::Task<Result<std::string>> StorageNode::HandleExtract(sim::NodeId,
                                                          std::string payload) {
  // payload = oid. Returns a WriteBatch rep containing the whole object.
  runtime::ObjectId oid(payload);
  if (!IsPrimaryFor(oid)) co_return Status::WrongNode("not primary for object");
  auto rep = ExtractObjectRep(db_.get(), oid);
  if (!rep.ok()) co_return rep.status();
  // Stop serving the object; clients will refresh the directory. The
  // keys are deleted lazily (kept for crash-safety of the migration).
  migrated_away_.insert(oid);
  metrics_.objects_migrated_out++;
  co_return *rep;
}

sim::Task<Result<std::string>> StorageNode::HandleInstall(sim::NodeId,
                                                          std::string payload) {
  // payload = varint32 target shard | batch rep.
  Reader reader{payload};
  uint32_t shard = 0;
  if (!reader.GetVarint32(&shard)) co_return Status::Corruption("bad install");
  auto batch = storage::WriteBatch::FromRep(std::string(reader.rest()));
  if (!batch.ok()) co_return batch.status();
  LO_CO_RETURN_IF_ERROR(
      co_await group_committer_->Commit(shard, std::move(*batch), {}));
  metrics_.objects_migrated_in++;
  co_return std::string("ok");
}

}  // namespace lo::cluster
