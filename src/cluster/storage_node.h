// A LambdaStore node: storage and execution co-located (paper §4.2).
//
// Each node owns a MiniLSM database, a LambdaObjects runtime, a
// replicator, a CPU model (worker cores) and an RPC endpoint exposing:
//   lambda.invoke   invoke a method (clients and peer nodes)
//   lambda.create   instantiate an object
//   lambda.invoke2 / lambda.create2   token-wrapped variants: the
//                   response carries the shard's apply token (epoch +
//                   seq) so clients can do read-your-writes follower reads
//   lambda.read     epoch-gated read-only invocation, served at the
//                   primary or at any backup whose apply state covers
//                   the client's token (docs/replication.md)
//   kv.get/kv.put/kv.batch   raw storage access — this is the service the
//                   disaggregated baseline uses, so both architectures
//                   run on the byte-identical storage stack
//   shard.extract / shard.install   microshard (object) migration
//   repl.apply/repl.chain           replication (via Replicator)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/routing.h"
#include "cluster/wal_group_commit.h"
#include "coord/coordinator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/replicator.h"
#include "runtime/runtime.h"
#include "sim/cpu.h"
#include "sim/rpc.h"
#include "storage/db.h"
#include "storage/env.h"
#include "tenant/tenant.h"

namespace lo::cluster {

struct StorageNodeOptions {
  int cores = 20;                                   // Xeon Silver 4114 pair
  size_t db_write_buffer_size = 8 << 20;            // memtable flush threshold
  /// SSTable block cache per node (0 = off). Read-heavy workloads
  /// (GetTimeline) live or die on this; bench/harness reads
  /// LO_BLOCK_CACHE_MB into it.
  size_t db_block_cache_bytes = 16 << 20;
  /// Memtable shards (rounded up to a power of two; 1 = classic single
  /// memtable). Keys route by the same FNV-1a hash the runtime uses for
  /// lane pinning. bench/harness reads LO_MEMTABLE_SHARDS into it.
  int db_memtable_shards = 1;
  /// Max parallel sub-compactions per compaction (1 = single-threaded).
  /// bench/harness reads LO_SUBCOMPACTIONS into it. Parallelism only
  /// materializes under background maintenance (real threads); the sim
  /// keeps the engine single-threaded and deterministic either way.
  int db_subcompactions = 1;
  /// Compaction write-rate cap in MB/s (0 = unlimited). bench/harness
  /// reads LO_COMPACTION_RATE_MB into it.
  int db_compaction_rate_mb = 0;
  sim::Duration wal_sync_latency = sim::Micros(80); // NVMe flush per commit
  /// WAL group commit (cluster/wal_group_commit.h): commits queued while
  /// the shard's WAL device is busy coalesce into one fsync, bounded by
  /// these two knobs (bench/harness reads LO_GC_BYTES / LO_GC_DELAY_US
  /// into them).
  size_t gc_max_batch_bytes = 1 << 20;
  sim::Duration gc_max_batch_delay = sim::Duration(0);
  sim::Duration dispatch_overhead = sim::Micros(15);// request demux/sched
  /// Server-side CPU per raw kv op (parse + LSM + syscall path) — paid by
  /// the disaggregated baseline on every storage access.
  sim::Duration kv_op_cpu = sim::Micros(40);
  uint64_t ns_per_fuel = 2;                         // VM "almost native"
  /// Sandbox instantiation cost charged per invocation (WASM module
  /// instantiation + runtime setup; wasmtime-era ~0.1-0.3 ms).
  sim::Duration vm_instantiation_overhead = sim::Micros(100);
  runtime::RuntimeOptions runtime;
  replication::Mode replication_mode = replication::Mode::kPrimaryBackup;
  /// Serve read-only invocations when this node is a backup (increases
  /// read throughput; see §4.2.1 "read-only functions can execute at any
  /// replica").
  bool serve_reads_as_backup = false;
  /// Observability (nullptr = off). The registry publishes this node's
  /// component metrics under its node id; the tracer records spans for
  /// every sampled invocation that touches this node.
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Optional multi-tenant QoS (not owned; must outlive the node; usually
  /// shared by every node in the cluster). Serving requests pass admission
  /// (token bucket / in-flight cap / fuel window → kTenantThrottled) and
  /// invocations debit their tenant's fuel window as the VM runs. The
  /// caller registers the registry's metrics once, not per node. See
  /// docs/tenancy.md.
  tenant::TenantRegistry* tenants = nullptr;
};

class StorageNode {
 public:
  StorageNode(sim::Network& net, sim::NodeId id,
              const runtime::TypeRegistry* types,
              std::vector<sim::NodeId> coordinators, StorageNodeOptions options);

  sim::NodeId id() const { return rpc_.node(); }
  runtime::Runtime& runtime() { return *runtime_; }
  storage::DB& db() { return *db_; }
  replication::Replicator& replicator() { return *replicator_; }
  WalGroupCommitter& group_committer() { return *group_committer_; }
  sim::CpuModel& cpu() { return cpu_; }
  const ShardMap& shard_map() const { return shard_map_; }

  /// Starts heartbeats to the coordinator group.
  void Start();

  /// Applies a (possibly pushed) cluster configuration: updates routing
  /// and this node's replication role.
  void ApplyConfig(const coord::ClusterState& state);

  /// Local invocation entry (also used by the deployment's loopback path).
  /// A non-empty `token` makes the invocation's commits idempotent across
  /// retries (see Runtime::Invoke).
  sim::Task<Result<std::string>> InvokeLocal(runtime::ObjectId oid,
                                             std::string method,
                                             std::string argument,
                                             obs::TraceContext trace = {},
                                             std::string token = {},
                                             tenant::TenantId tenant = 0);

  struct Metrics {
    uint64_t invokes_served = 0;
    uint64_t invokes_rejected_not_primary = 0;
    uint64_t forwarded_invokes = 0;
    uint64_t kv_ops_served = 0;
    uint64_t objects_migrated_out = 0;
    uint64_t objects_migrated_in = 0;
    /// lambda.read requests served while this node was a backup.
    uint64_t follower_reads = 0;
    /// lambda.read requests bounced because this backup's apply state
    /// did not cover the client's epoch token (strict/bounded gate).
    uint64_t epoch_bounces = 0;
  };
  const Metrics& metrics() const { return metrics_; }

 private:
  bool IsPrimaryFor(std::string_view oid) const;
  bool IsReplicaFor(std::string_view oid) const;
  bool MethodIsReadOnly(std::string_view oid, std::string_view method) const;
  /// Publishes every component's metrics on the injected registry.
  void RegisterMetrics(obs::MetricsRegistry* registry);
  /// Records `name` as a child span of `trace` if tracing is active.
  void RecordSpan(const obs::TraceContext& trace, const char* name,
                  sim::Time started);
  /// Tenant admission wrapper for the serving handlers: sheds with
  /// kTenantThrottled before `body` starts when the tenant is over
  /// budget, else runs it and releases the in-flight slot when the
  /// response is ready. No-op pass-through when tenancy is off.
  sim::Task<Result<std::string>> Admitted(
      uint32_t tenant, std::function<sim::Task<Result<std::string>>()> body);
  sim::Task<Result<std::string>> HandleInvoke(obs::TraceContext trace,
                                              uint32_t tenant,
                                              std::string payload);
  sim::Task<Result<std::string>> HandleCreate(std::string payload);
  /// Token-wrapped variants: same request wire format, response prefixed
  /// with this node's apply token (epoch + seq) for the object's shard so
  /// clients can do read-your-writes follower reads.
  sim::Task<Result<std::string>> HandleInvoke2(obs::TraceContext trace,
                                               uint32_t tenant,
                                               std::string payload);
  sim::Task<Result<std::string>> HandleCreate2(std::string payload);
  /// Epoch-gated read path ("lambda.read"): serves deterministic
  /// read-only invocations at the primary or any backup whose apply
  /// state satisfies the client's token, else kEpochBehind.
  sim::Task<Result<std::string>> HandleRead(obs::TraceContext trace,
                                            uint32_t tenant,
                                            std::string payload);
  sim::Task<Result<std::string>> HandleKvGet(sim::NodeId from, std::string payload);
  sim::Task<Result<std::string>> HandleKvPut(sim::NodeId from,
                                             obs::TraceContext trace,
                                             std::string payload);
  sim::Task<Result<std::string>> HandleKvBatch(sim::NodeId from,
                                               obs::TraceContext trace,
                                               std::string payload);
  sim::Task<Result<std::string>> HandleExtract(sim::NodeId from, std::string payload);
  sim::Task<Result<std::string>> HandleInstall(sim::NodeId from, std::string payload);

  StorageNodeOptions options_;
  const runtime::TypeRegistry* types_;
  sim::RpcEndpoint rpc_;
  sim::CpuModel cpu_;
  storage::MemEnv env_;
  std::unique_ptr<storage::DB> db_;
  std::unique_ptr<runtime::Runtime> runtime_;
  std::unique_ptr<replication::Replicator> replicator_;
  std::unique_ptr<WalGroupCommitter> group_committer_;
  std::unique_ptr<coord::CoordClient> coord_client_;
  ShardMap shard_map_;
  std::set<runtime::ObjectId> migrated_away_;
  Metrics metrics_;
};

}  // namespace lo::cluster
