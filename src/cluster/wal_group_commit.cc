#include "cluster/wal_group_commit.h"

#include <utility>
#include <vector>

namespace lo::cluster {

WalGroupCommitter::WalGroupCommitter(sim::Simulator* sim, SyncSink sink,
                                     WalGroupCommitterOptions options)
    : sim_(sim), sink_(std::move(sink)), options_(options) {}

sim::Task<Status> WalGroupCommitter::Commit(coord::ShardId shard,
                                            storage::WriteBatch batch,
                                            obs::TraceContext trace) {
  if (batch.Count() == 0) co_return Status::OK();
  auto slot = std::make_shared<sim::OneShot<Status>>();
  ShardState& state = shards_[shard];
  state.queue.push_back(Pending{std::move(batch), trace, slot});
  if (!state.flusher_active) {
    state.flusher_active = true;
    sim::Detach([](WalGroupCommitter* self, coord::ShardId shard) -> sim::Task<void> {
      co_await self->FlushLoop(shard);
    }(this, shard));
  }
  co_return co_await slot->Wait();
}

sim::Task<void> WalGroupCommitter::FlushLoop(coord::ShardId shard) {
  ShardState& state = shards_[shard];
  while (!state.queue.empty()) {
    if (options_.max_batch_delay > sim::Duration(0)) {
      // Hold the window open; commits arriving during the wait join.
      co_await sim_->Sleep(options_.max_batch_delay);
    }
    // Seal the group: everything queued, up to max_batch_bytes (always
    // at least one member so an oversized single batch still commits).
    std::vector<Pending> group;
    size_t group_bytes = 0;
    while (!state.queue.empty()) {
      Pending& next = state.queue.front();
      if (!group.empty() &&
          group_bytes + next.batch.ByteSize() > options_.max_batch_bytes) {
        break;
      }
      group_bytes += next.batch.ByteSize();
      group.push_back(std::move(next));
      state.queue.pop_front();
    }

    storage::WriteBatch combined = std::move(group.front().batch);
    for (size_t i = 1; i < group.size(); ++i) combined.Append(group[i].batch);

    // One device sync for the whole group. Commits arriving during the
    // sleep queue up behind the busy device — that backpressure is where
    // the next group comes from.
    sim::Time sync_started = sim_->Now();
    co_await sim_->Sleep(options_.wal_sync_latency);
    if (options_.tracer != nullptr) {
      for (const Pending& p : group) {
        if (obs::Tracing(options_.tracer, p.trace)) {
          options_.tracer->RecordChild(p.trace, "wal_sync", options_.node_label,
                                       sync_started, sim_->Now());
        }
      }
    }
    Status status =
        co_await sink_(shard, std::move(combined), group.front().trace);

    stats_.commits += group.size();
    stats_.groups += 1;
    stats_.synced_bytes += group_bytes;
    if (group.size() > stats_.max_group_commits) {
      stats_.max_group_commits = group.size();
    }
    if (!status.ok()) stats_.sync_failures += 1;
    // Fulfilling resumes the waiting invocations; any commit they submit
    // reentrantly lands back on state.queue and keeps this loop alive.
    for (Pending& p : group) p.slot->Fulfill(status);
  }
  state.flusher_active = false;
}

}  // namespace lo::cluster
