// Simulated WAL device with group commit.
//
// A storage node has one WAL device; its fsyncs are inherently serial.
// Before this existed, every commit slept `wal_sync_latency`
// independently — unlimited overlapping fsyncs, which both overstates
// device parallelism and understates what grouping buys. This models the
// device honestly: one sync in flight per shard at a time, and every
// commit that arrives while a sync is in flight (or within an explicit
// `max_batch_delay` window) joins the next group. A group is appended as
// one combined WriteBatch — a single WAL record, one fsync charge — and
// then handed to the node's sync sink (replicate + apply) once, so the
// fsync and the replication round are both amortized over the group.
// Every member receives the group's status: a failed sync surfaces to
// exactly the commits whose bytes were in that group.
//
// Groups never span shards: replication is per shard, and the combined
// batch must replicate as one unit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "coord/coordinator.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "storage/write_batch.h"

namespace lo::cluster {

struct WalGroupCommitterOptions {
  /// Device time per fsync (NVMe flush).
  sim::Duration wal_sync_latency = sim::Micros(80);
  /// A group is sealed once its combined payload reaches this size.
  size_t max_batch_bytes = 1 << 20;
  /// Extra wait before syncing an open group so closely-spaced commits
  /// can join. 0 = sync immediately when the device frees up (grouping
  /// then comes purely from device backpressure).
  sim::Duration max_batch_delay = sim::Duration(0);
  /// Span recording for sampled commits (nullptr = off).
  obs::Tracer* tracer = nullptr;
  uint32_t node_label = 0;
};

class WalGroupCommitter {
 public:
  /// Called once per group after the modeled sync delay: durably apply
  /// (and replicate) the combined batch. The trace is the first group
  /// member's.
  using SyncSink = std::function<sim::Task<Status>(
      coord::ShardId shard, storage::WriteBatch batch, obs::TraceContext trace)>;

  WalGroupCommitter(sim::Simulator* sim, SyncSink sink,
                    WalGroupCommitterOptions options = {});

  /// Queues the batch on the shard's WAL device and completes when its
  /// group's sync (+ replication) resolves, with the group's status.
  sim::Task<Status> Commit(coord::ShardId shard, storage::WriteBatch batch,
                           obs::TraceContext trace);

  struct Stats {
    uint64_t commits = 0;        // batches submitted
    uint64_t groups = 0;         // fsyncs issued (one per group)
    uint64_t synced_bytes = 0;   // payload bytes across all groups
    uint64_t max_group_commits = 0;
    uint64_t sync_failures = 0;  // groups whose sink reported failure
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    storage::WriteBatch batch;
    obs::TraceContext trace;
    std::shared_ptr<sim::OneShot<Status>> slot;
  };
  struct ShardState {
    std::deque<Pending> queue;
    bool flusher_active = false;
  };

  /// Detached per-shard device loop; exits when the queue drains (so the
  /// simulator can always run to completion — no forever loop).
  sim::Task<void> FlushLoop(coord::ShardId shard);

  sim::Simulator* sim_;
  SyncSink sink_;
  WalGroupCommitterOptions options_;
  std::unordered_map<coord::ShardId, ShardState> shards_;
  Stats stats_;
};

}  // namespace lo::cluster
