#include "clusterd/client.h"

namespace lo::clusterd {

Client::Client(net::RpcClient* rpc, std::string coordinator_address,
               ClientOptions options)
    : rpc_(rpc),
      coordinator_(std::move(coordinator_address)),
      options_(options),
      remote_(rpc, /*nodes=*/{}, options.remote) {
  remote_.SetRouter([this](const std::string& oid) {
    auto current = view();
    return current == nullptr ? std::string()
                              : current->AddressForObject(oid);
  });
  remote_.SetOnMisroute([this] { return RefreshDirectory().ok(); });
}

std::shared_ptr<const ClusterView> Client::view() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

Status Client::RefreshDirectory() {
  auto reply =
      rpc_->CallSync(coordinator_, kSvcGetConfig, "", options_.coord_timeout_us);
  if (!reply.ok()) return reply.status();
  auto fresh = ClusterView::Decode(*reply);
  if (!fresh.ok()) return fresh.status();
  auto shared = std::make_shared<const ClusterView>(std::move(*fresh));
  std::lock_guard<std::mutex> lock(mu_);
  if (view_ == nullptr || shared->version >= view_->version) {
    view_ = std::move(shared);
  }
  metrics_.directory_refreshes++;
  return Status::OK();
}

Result<std::string> Client::Invoke(const std::string& oid,
                                   const std::string& method,
                                   const std::string& argument) {
  return remote_.Invoke(oid, method, argument);
}

Result<std::string> Client::InvokeRead(const std::string& oid,
                                       const std::string& method,
                                       const std::string& argument) {
  return remote_.InvokeRead(oid, method, argument);
}

Result<std::string> Client::Create(const std::string& oid,
                                   const std::string& type_name) {
  return remote_.Create(oid, type_name);
}

}  // namespace lo::clusterd
