// clusterd::Client — real-transport cluster client with a cached
// microshard directory (the TCP counterpart of cluster::Client).
//
// Routing: the client caches the coordinator's versioned ClusterView
// and resolves every request oid -> shard (directory entry wins, hash
// otherwise) -> primary node -> "ip:port". A kWrongShard bounce — the
// object migrated, or the cache predates the object's placement — takes
// the cheap fast-path in net::RemoteClient: refresh the directory once
// and re-send immediately, without burning the retry budget. Faults
// (timeouts, connection loss) keep the PR 2 backoff-and-retry policy
// with idempotency tokens.
//
// One Client per thread (it wraps a per-thread net::RemoteClient); many
// share one RpcClient, whose loop thread multiplexes the connections.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "clusterd/wire.h"
#include "net/remote_client.h"
#include "net/rpc_client.h"

namespace lo::clusterd {

struct ClientOptions {
  /// Base retry/backoff policy + observability (see RemoteClientOptions).
  net::RemoteClientOptions remote;
  int64_t coord_timeout_us = 2'000'000;
};

class Client {
 public:
  Client(net::RpcClient* rpc, std::string coordinator_address,
         ClientOptions options = {});

  /// Blocking; routes by directory, redirects on kWrongShard, retries
  /// faults under the backoff budget with a stable idempotency token.
  Result<std::string> Invoke(const std::string& oid, const std::string& method,
                             const std::string& argument);
  Result<std::string> Create(const std::string& oid,
                             const std::string& type_name);

  /// Epoch-gated read ("lambda.read") routed like Invoke; the underlying
  /// RemoteClient carries a monotonic apply-epoch token so a re-routed
  /// or retried read never observes state older than one it already saw
  /// (see net::RemoteClient::InvokeRead; mode/staleness come from
  /// options.remote.read_mode / .staleness_epochs).
  Result<std::string> InvokeRead(const std::string& oid,
                                 const std::string& method,
                                 const std::string& argument);

  /// Blocking directory fetch from the coordinator. Invoke/Create call
  /// it on demand (first use, kWrongShard bounces); tests can force it.
  Status RefreshDirectory();

  /// Last fetched view (null before the first refresh).
  std::shared_ptr<const ClusterView> view() const;

  /// Last (epoch, seq) apply-epoch token observed from read replies —
  /// the floor the next strict/bounded InvokeRead is gated on.
  std::pair<uint64_t, uint64_t> read_token() const {
    return remote_.last_read_token();
  }

  struct Metrics {
    uint64_t directory_refreshes = 0;
  };
  const Metrics& metrics() const { return metrics_; }
  /// Underlying transport metrics (requests, retries, redirects, ...).
  const net::RemoteClient::Metrics& remote_metrics() const {
    return remote_.metrics();
  }

 private:
  net::RpcClient* rpc_;
  std::string coordinator_;
  ClientOptions options_;
  net::RemoteClient remote_;
  mutable std::mutex mu_;
  std::shared_ptr<const ClusterView> view_;
  Metrics metrics_;
};

}  // namespace lo::clusterd
