#include "clusterd/coordinator.h"

#include <algorithm>
#include <chrono>

#include "common/coding.h"
#include "common/log.h"

namespace lo::clusterd {

CoordinatorServer::CoordinatorServer(CoordinatorServerOptions options)
    : options_(options),
      server_([&options] {
        net::RpcServerOptions server_options;
        server_options.bind_address = options.bind_address;
        server_options.port = options.port;
        server_options.metrics_registry = options.metrics_registry;
        return server_options;
      }()),
      rpc_([&options] {
        net::RpcClientOptions client_options;
        client_options.metrics_registry = options.metrics_registry;
        return client_options;
      }()) {
  // Pin the hash space before any server registers, so shards created
  // beyond it are directory-only from the start.
  view_.state.hash_shards = options_.hash_servers;
  view_.version = 1;
  InstallHandlers();
}

CoordinatorServer::~CoordinatorServer() { Shutdown(); }

void CoordinatorServer::ApplyLocked(const std::string& command) {
  Status applied = view_.state.Apply(command);
  LO_CHECK_MSG(applied.ok(), "ClusterState::Apply failed on own command");
  view_.version++;
}

void CoordinatorServer::InstallHandlers() {
  server_.Handle(kSvcRegister, [this](net::RpcServer::Request request,
                                      net::RpcServer::Responder respond) {
    std::string_view address;
    if (!DecodeRegisterRequest(request.payload, &address)) {
      respond(Status::Corruption("bad register payload"));
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    // Re-registration (server restart on the same address) keeps the
    // node id and shard assignment stable.
    sim::NodeId node = 0;
    for (const auto& [id, addr] : view_.addresses) {
      if (addr == address) {
        node = id;
        break;
      }
    }
    if (node == 0) {
      node = next_node_id_++;
      coord::ShardId shard = next_shard_id_++;
      shard_of_node_[node] = shard;
      coord::ShardConfig config;
      config.epoch = 1;
      config.primary = node;
      ApplyLocked(coord::CmdSetShard(shard, config));
      view_.addresses[node] = std::string(address);
      view_.version++;  // address book changed too
    }
    ApplyLocked(coord::CmdNodeAlive(node));
    metrics_.registrations++;
    respond(EncodeRegisterResponse(node, shard_of_node_[node], view_));
  });

  server_.Handle(kSvcGetConfig, [this](net::RpcServer::Request,
                                       net::RpcServer::Responder respond) {
    std::lock_guard<std::mutex> lock(mu_);
    respond(view_.Encode());
  });

  server_.Handle(kSvcPlace, [this](net::RpcServer::Request request,
                                   net::RpcServer::Responder respond) {
    std::string_view oid;
    coord::ShardId shard = 0;
    if (!DecodePlace(request.payload, &oid, &shard)) {
      respond(Status::Corruption("bad place payload"));
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!view_.state.shards.contains(shard)) {
      respond(Status::InvalidArgument("unknown shard"));
      return;
    }
    ApplyLocked(coord::CmdPlaceObject(oid, shard));
    metrics_.placements++;
    respond(std::string("ok"));
  });

  server_.Handle(kSvcReport, [this](net::RpcServer::Request request,
                                    net::RpcServer::Responder respond) {
    LoadReport report;
    Status decoded = DecodeLoadReport(request.payload, &report);
    if (!decoded.ok()) {
      respond(decoded);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    NodeLoad& load = loads_[report.node];
    load.requests = report.window_requests;
    load.hot_objects = std::move(report.hot_objects);
    load.reported_at_us = net::EventLoop::NowUs();
    metrics_.reports++;
    std::string reply;
    PutVarint64(&reply, view_.version);
    respond(reply);
  });

  // Manual migration trigger (tests, operators): lp oid | varint32
  // target shard. The coordinator resolves source and target addresses
  // and orders the source server; the answer propagates back once the
  // full extract -> install -> place chain finished. Runs async so the
  // loop thread keeps serving heartbeats while objects move.
  server_.Handle(kSvcMigrate, [this](net::RpcServer::Request request,
                                     net::RpcServer::Responder respond) {
    std::string_view oid_view;
    coord::ShardId target_shard = 0;
    if (!DecodePlace(request.payload, &oid_view, &target_shard)) {
      respond(Status::Corruption("bad migrate payload"));
      return;
    }
    std::string oid(oid_view);
    std::string source_address, target_address;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto shard_it = view_.state.shards.find(target_shard);
      if (shard_it == view_.state.shards.end()) {
        respond(Status::InvalidArgument("unknown target shard"));
        return;
      }
      target_address = view_.AddressOf(shard_it->second.primary);
      source_address = view_.AddressForObject(oid);
      if (view_.ShardFor(oid) == target_shard) {
        respond(std::string("noop"));
        return;
      }
      metrics_.migrations_started++;
    }
    if (source_address.empty() || target_address.empty()) {
      respond(Status::Unavailable("unroutable migration"));
      return;
    }
    rpc_.Call(source_address, kSvcShardMigrate,
              EncodeMigrate(oid, target_shard, target_address),
              options_.rpc_timeout_us,
              [this, respond](Result<std::string> result) {
                {
                  std::lock_guard<std::mutex> lock(mu_);
                  if (result.ok()) {
                    metrics_.migrations_done++;
                  } else {
                    metrics_.migrations_failed++;
                  }
                }
                respond(std::move(result));
              });
  });

  server_.Handle("ping", [](net::RpcServer::Request request,
                            net::RpcServer::Responder respond) {
    respond(std::string(request.payload));
  });

  server_.Handle("admin.stats", [this](net::RpcServer::Request,
                                       net::RpcServer::Responder respond) {
    respond(StatsText());
  });

  server_.Handle("admin.shutdown", [this](net::RpcServer::Request,
                                          net::RpcServer::Responder respond) {
    respond(std::string("bye"));
    shutdown_requested_.store(true, std::memory_order_release);
  });
}

int CoordinatorServer::RebalanceRound() {
  struct Candidate {
    std::string oid;
    uint64_t count = 0;
  };
  std::string source_address, target_address;
  coord::ShardId target_shard = 0;
  std::vector<Candidate> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (view_.addresses.size() < 2) return 0;
    const int64_t now_us = net::EventLoop::NowUs();
    const int64_t stale_us = options_.report_staleness_ms * 1000;
    // Every registered node participates; nodes without a fresh report
    // count as idle — that is exactly what makes a just-added node the
    // rebalance target.
    uint64_t total = 0;
    sim::NodeId hottest = 0, coldest = 0;
    uint64_t hottest_load = 0, coldest_load = UINT64_MAX;
    for (const auto& [node, address] : view_.addresses) {
      uint64_t load = 0;
      auto it = loads_.find(node);
      if (it != loads_.end() && now_us - it->second.reported_at_us < stale_us) {
        load = it->second.requests;
      }
      total += load;
      if (hottest == 0 || load > hottest_load) {
        hottest = node;
        hottest_load = load;
      }
      if (coldest == 0 || load < coldest_load) {
        coldest = node;
        coldest_load = load;
      }
    }
    if (total < options_.rebalance_min_requests) return 0;
    double mean = static_cast<double>(total) /
                  static_cast<double>(view_.addresses.size());
    if (static_cast<double>(hottest_load) < options_.rebalance_skew * mean) {
      return 0;
    }
    auto load_it = loads_.find(hottest);
    if (load_it == loads_.end()) return 0;
    // Move the hottest objects that still live on the hottest node.
    for (const auto& [oid, count] : load_it->second.hot_objects) {
      if (static_cast<int>(candidates.size()) >= options_.migrations_per_round)
        break;
      auto shard_it = view_.state.shards.find(view_.ShardFor(oid));
      if (shard_it == view_.state.shards.end() ||
          shard_it->second.primary != hottest) {
        continue;  // stale report entry; the object already moved
      }
      candidates.push_back({oid, count});
    }
    if (candidates.empty()) return 0;
    target_shard = shard_of_node_[coldest];
    source_address = view_.AddressOf(hottest);
    target_address = view_.AddressOf(coldest);
    metrics_.rebalance_rounds++;
    metrics_.migrations_started += candidates.size();
    // Invalidate this window's reports: the next decision should see
    // post-migration traffic, not re-issue the same moves.
    loads_.clear();
  }
  if (source_address.empty() || target_address.empty()) return 0;
  int moved = 0;
  for (const Candidate& candidate : candidates) {
    auto result = rpc_.CallSync(
        source_address, kSvcShardMigrate,
        EncodeMigrate(candidate.oid, target_shard, target_address),
        options_.rpc_timeout_us);
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok()) {
      metrics_.migrations_done++;
      moved++;
    } else {
      metrics_.migrations_failed++;
    }
  }
  return moved;
}

void CoordinatorServer::RebalanceLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(rebalancer_mu_);
      rebalancer_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.rebalance_interval_ms),
          [&] { return stop_rebalancer_; });
      if (stop_rebalancer_) return;
    }
    (void)RebalanceRound();
  }
}

Status CoordinatorServer::Start() {
  LO_CHECK_MSG(!started_, "CoordinatorServer::Start called twice");
  started_ = true;
  LO_RETURN_IF_ERROR(server_.Start());
  if (options_.rebalance_enabled) {
    rebalancer_ = std::thread([this] { RebalanceLoop(); });
  }
  if (options_.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics_registry;
    reg->RegisterExternal("clusterd.coord.registrations", 0,
                          &metrics_.registrations);
    reg->RegisterExternal("clusterd.coord.reports", 0, &metrics_.reports);
    reg->RegisterExternal("clusterd.coord.placements", 0, &metrics_.placements);
    reg->RegisterExternal("clusterd.coord.rebalance_rounds", 0,
                          &metrics_.rebalance_rounds);
    reg->RegisterExternal("clusterd.coord.migrations_done", 0,
                          &metrics_.migrations_done);
    reg->RegisterExternal("clusterd.coord.migrations_failed", 0,
                          &metrics_.migrations_failed);
  }
  return Status::OK();
}

void CoordinatorServer::Shutdown() {
  if (stopped_) return;
  stopped_ = true;
  if (rebalancer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(rebalancer_mu_);
      stop_rebalancer_ = true;
    }
    rebalancer_cv_.notify_all();
    rebalancer_.join();
  }
  server_.Stop();
  rpc_.Stop();
}

ClusterView CoordinatorServer::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

CoordinatorServer::Metrics CoordinatorServer::metrics_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

std::string CoordinatorServer::StatsText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "version=" + std::to_string(view_.version) + "\n";
  out += "nodes=" + std::to_string(view_.addresses.size()) + "\n";
  out += "shards=" + std::to_string(view_.state.shards.size()) + "\n";
  out += "hash_shards=" + std::to_string(view_.state.hash_shards) + "\n";
  out += "directory_entries=" + std::to_string(view_.state.directory.size()) + "\n";
  out += "registrations=" + std::to_string(metrics_.registrations) + "\n";
  out += "reports=" + std::to_string(metrics_.reports) + "\n";
  out += "placements=" + std::to_string(metrics_.placements) + "\n";
  out += "rebalance_rounds=" + std::to_string(metrics_.rebalance_rounds) + "\n";
  out += "migrations_started=" + std::to_string(metrics_.migrations_started) + "\n";
  out += "migrations_done=" + std::to_string(metrics_.migrations_done) + "\n";
  out += "migrations_failed=" + std::to_string(metrics_.migrations_failed) + "\n";
  return out;
}

}  // namespace lo::clusterd
