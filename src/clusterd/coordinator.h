// clusterd::CoordinatorServer — the cluster coordinator as a real
// process (paper §4.2.1), driving the same replicated ClusterState
// command log the sim coordinator replicates through Paxos.
//
// Storage servers register on startup ("clusterd.register"): the first
// `hash_servers` registrations receive the shards that carry the hash
// placement space; servers joining later (elastic scale-out) get
// directory-only shards, reachable exclusively through migration — so
// adding a node never remaps unrelated objects. Servers then report
// per-window load ("clusterd.report", doubling as the heartbeat), and
// clients/servers pull the versioned view ("clusterd.get_config").
//
// The rebalancer thread is the Akkio-style policy loop: each round it
// compares per-node load from the freshest reports, and when the
// hottest node's load exceeds `rebalance_skew` x the cluster mean it
// orders the source server (via "shard.migrate") to move its hottest
// objects to the least-loaded node's shard, up to
// `migrations_per_round` per round. Placement publishes through
// "coord.place" exactly like the sim path, bumping the view version
// that redirected clients refresh against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "clusterd/wire.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "obs/metrics.h"

namespace lo::clusterd {

struct CoordinatorServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;
  /// Number of registering servers that carry the hash placement space
  /// (pinned via ClusterState::hash_shards at startup).
  uint32_t hash_servers = 1;
  bool rebalance_enabled = true;
  int64_t rebalance_interval_ms = 500;
  /// Trigger threshold: hottest node load >= skew * mean node load.
  double rebalance_skew = 2.0;
  /// Ignore windows with fewer total requests than this (idle clusters
  /// have meaningless skew).
  uint64_t rebalance_min_requests = 50;
  int migrations_per_round = 4;
  /// Reports older than this are treated as zero load.
  int64_t report_staleness_ms = 2'000;
  int64_t rpc_timeout_us = 5'000'000;
  obs::MetricsRegistry* metrics_registry = nullptr;
};

class CoordinatorServer {
 public:
  explicit CoordinatorServer(CoordinatorServerOptions options = {});
  ~CoordinatorServer();

  CoordinatorServer(const CoordinatorServer&) = delete;
  CoordinatorServer& operator=(const CoordinatorServer&) = delete;

  Status Start();
  /// Idempotent; the destructor calls it.
  void Shutdown();

  uint16_t port() const { return server_.port(); }
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  /// Snapshot of the current view (tests, tools).
  ClusterView View() const;

  struct Metrics {
    uint64_t registrations = 0;
    uint64_t reports = 0;
    uint64_t placements = 0;
    uint64_t rebalance_rounds = 0;
    uint64_t migrations_started = 0;
    uint64_t migrations_done = 0;
    uint64_t migrations_failed = 0;
  };
  Metrics metrics_snapshot() const;
  std::string StatsText() const;

 private:
  void InstallHandlers();
  /// Applies one ClusterState command and bumps the view version.
  /// Caller holds mu_.
  void ApplyLocked(const std::string& command);
  /// One policy round; returns the number of migrations issued.
  int RebalanceRound();
  void RebalanceLoop();

  CoordinatorServerOptions options_;
  net::RpcServer server_;
  net::RpcClient rpc_;  // shard.migrate orders to source servers

  mutable std::mutex mu_;
  ClusterView view_;
  sim::NodeId next_node_id_ = 1;
  coord::ShardId next_shard_id_ = 0;
  std::map<sim::NodeId, coord::ShardId> shard_of_node_;
  struct NodeLoad {
    uint64_t requests = 0;
    std::vector<std::pair<std::string, uint64_t>> hot_objects;
    int64_t reported_at_us = 0;
  };
  std::map<sim::NodeId, NodeLoad> loads_;
  Metrics metrics_;

  std::thread rebalancer_;
  std::mutex rebalancer_mu_;
  std::condition_variable rebalancer_cv_;
  bool stop_rebalancer_ = false;
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace lo::clusterd
