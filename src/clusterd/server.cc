#include "clusterd/server.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>
#include <vector>

#include "cluster/microshard.h"
#include "common/coding.h"
#include "common/log.h"
#include "runtime/object.h"

namespace lo::clusterd {

ServerNode::ServerNode(storage::DB* db, const runtime::TypeRegistry* types,
                       ServerNodeOptions options)
    : db_(db),
      types_(types),
      options_(options),
      coordinator_(options.coordinator),
      server_([&options] {
        net::RpcServerOptions server_options;
        server_options.bind_address = options.bind_address;
        server_options.port = options.port;
        server_options.net_threads = options.net_threads;
        server_options.backend = options.net_backend;
        server_options.coalesce_flush = options.net_coalesce_flush;
        server_options.metrics_registry = options.metrics_registry;
        server_options.tracer = options.tracer;
        return server_options;
      }()),
      rpc_([&options] {
        net::RpcClientOptions client_options;
        client_options.metrics_registry = options.metrics_registry;
        return client_options;
      }()) {
  runtime::ParallelNodeOptions node_options;
  node_options.lanes = options_.lanes;
  node_options.runtime = options_.runtime;
  node_options.group_commit = options_.group_commit;
  node_options.tenants = options_.tenants;
  node_ = std::make_unique<runtime::ParallelNode>(db_, types, node_options);
  if (options_.tenants != nullptr) {
    options_.tenants->RegisterMetrics(options_.metrics_registry);
  }
  if (!coordinator_.empty()) {
    // Nested invocations of objects owned by a peer leave the process:
    // the lane blocks (helping with its own queue) while the forward
    // runs on the RPC client's loop thread.
    node_->SetPeerInvoker(
        [this](const runtime::ObjectId& oid) { return OwnsForExecution(oid); },
        [this](runtime::ObjectId oid, std::string method, std::string argument,
               runtime::ParallelNode::Callback done) {
          ForwardInvoke(std::move(oid), std::move(method), std::move(argument),
                        options_.forward_redirects, std::move(done));
        });
  }
  InstallHandlers();
}

ServerNode::~ServerNode() { Shutdown(); }

std::shared_ptr<const ClusterView> ServerNode::view() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_;
}

bool ServerNode::OwnsForExecution(const std::string& oid) const {
  if (coordinator_.empty()) return true;
  std::lock_guard<std::mutex> lock(view_mu_);
  if (migrated_away_.contains(oid)) return false;
  return view_ != nullptr && view_->PrimaryFor(oid) == node_id_;
}

void ServerNode::InstallView(ClusterView fresh) {
  auto shared = std::make_shared<const ClusterView>(std::move(fresh));
  std::lock_guard<std::mutex> lock(view_mu_);
  if (view_ == nullptr || shared->version >= view_->version) {
    view_ = std::move(shared);
  }
}

void ServerNode::CountRequest(const std::string& oid) {
  auto current = view();
  coord::ShardId shard =
      current == nullptr ? home_shard_ : current->ShardFor(oid);
  std::lock_guard<std::mutex> lock(stats_mu_);
  metrics_.invokes++;
  shard_requests_[shard]++;
  window_requests_++;
  auto it = window_object_requests_.find(oid);
  if (it != window_object_requests_.end()) {
    it->second++;
  } else if (window_object_requests_.size() < options_.hot_tracking_max) {
    window_object_requests_[oid] = 1;
  }
}

bool ServerNode::AdmitTenant(uint32_t tenant,
                             net::RpcServer::Responder* respond) {
  if (options_.tenants == nullptr) return true;
  Status admitted = options_.tenants->Admit(tenant);
  if (!admitted.ok()) {
    (*respond)(std::move(admitted));
    return false;
  }
  // Release exactly once, when the (possibly lane-deferred) response
  // goes out. Responder copies share the flag.
  auto released = std::make_shared<std::atomic<bool>>(false);
  *respond = [registry = options_.tenants, tenant, released,
              inner = std::move(*respond)](Result<std::string> result) {
    if (!released->exchange(true)) registry->Release(tenant);
    inner(std::move(result));
  };
  return true;
}

void ServerNode::InstallHandlers() {
  server_.Handle("lambda.invoke", [this](net::RpcServer::Request request,
                                         net::RpcServer::Responder respond) {
    std::string_view oid, method, argument, token;
    if (!DecodeInvoke(request.payload, &oid, &method, &argument, &token)) {
      respond(Status::Corruption("bad invoke payload"));
      return;
    }
    std::string oid_str(oid);
    CountRequest(oid_str);
    if (!OwnsForExecution(oid_str)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      metrics_.wrong_shard_rejects++;
      respond(Status::WrongShard("object not served here"));
      return;
    }
    uint32_t tenant = request.tenant;
    if (!AdmitTenant(tenant, &respond)) return;
    int64_t deadline_us = request.deadline_us;
    node_->RunOnLane(
        oid_str, [this, oid = std::move(oid_str), method = std::string(method),
                  argument = std::string(argument), token = std::string(token),
                  deadline_us, tenant, respond](runtime::Runtime& rt) mutable {
          // Lane-level shed: the request waited behind a busy lane past
          // its deadline. Counts into the same counter as arrival sheds.
          if (deadline_us != 0 && net::EventLoop::NowUs() > deadline_us) {
            server_.RecordShed();
            respond(Status::Timeout("deadline expired before execution"));
            return;
          }
          // Ownership re-check on the lane: a migration's extract job
          // may have run between the loop-thread check and now; a write
          // executed here would land in a copy that already left.
          if (!OwnsForExecution(oid)) {
            {
              std::lock_guard<std::mutex> lock(stats_mu_);
              metrics_.wrong_shard_rejects++;
            }
            respond(Status::WrongShard("object migrated while queued"));
            return;
          }
          respond(runtime::RunSync(rt.Invoke(std::move(oid), std::move(method),
                                             std::move(argument), {},
                                             std::move(token), tenant)));
        },
        tenant);
  });

  server_.Handle("lambda.create", [this](net::RpcServer::Request request,
                                         net::RpcServer::Responder respond) {
    std::string_view oid, type_name, token;
    if (!DecodeCreate(request.payload, &oid, &type_name, &token)) {
      respond(Status::Corruption("bad create payload"));
      return;
    }
    std::string oid_str(oid);
    CountRequest(oid_str);
    if (!OwnsForExecution(oid_str)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      metrics_.wrong_shard_rejects++;
      respond(Status::WrongShard("object not served here"));
      return;
    }
    uint32_t tenant = request.tenant;
    if (!AdmitTenant(tenant, &respond)) return;
    int64_t deadline_us = request.deadline_us;
    node_->RunOnLane(
        oid_str, [this, oid = std::move(oid_str),
                  type_name = std::string(type_name),
                  token = std::string(token), deadline_us,
                  respond](runtime::Runtime& rt) mutable {
          if (deadline_us != 0 && net::EventLoop::NowUs() > deadline_us) {
            server_.RecordShed();
            respond(Status::Timeout("deadline expired before execution"));
            return;
          }
          respond(runtime::RunSync(rt.CreateObject(
              std::move(oid), std::move(type_name), std::move(token))));
        },
        tenant);
  });

  // Epoch-gated read path, wire-compatible with the sim's "lambda.read".
  // Every read lands at the shard's owner (the real path replicates by
  // migration, not by replica sets), so the epoch token buys monotonic
  // reads: a client that saw apply-epoch E never observes pre-E state
  // again, across retries and reconnects.
  server_.Handle("lambda.read", [this](net::RpcServer::Request request,
                                       net::RpcServer::Responder respond) {
    Reader reader{request.payload};
    std::string_view oid, method, argument;
    uint32_t mode = 0;
    uint64_t token_epoch = 0, token_seq = 0, staleness = 0;
    if (!reader.GetLengthPrefixed(&oid) || !reader.GetLengthPrefixed(&method) ||
        !reader.GetLengthPrefixed(&argument) || !reader.GetVarint32(&mode) ||
        !reader.GetVarint64(&token_epoch) || !reader.GetVarint64(&token_seq) ||
        !reader.GetVarint64(&staleness)) {
      respond(Status::Corruption("bad read payload"));
      return;
    }
    std::string oid_str(oid);
    CountRequest(oid_str);
    if (!OwnsForExecution(oid_str)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      metrics_.wrong_shard_rejects++;
      respond(Status::WrongShard("object not served here"));
      return;
    }
    // strict: the owner must have applied at least the client's seq;
    // bounded: may trail by `staleness`; eventual/off/tail: no gate.
    uint64_t min_epoch = 0;
    if (mode == 1) {
      min_epoch = token_seq;
    } else if (mode == 2) {
      min_epoch = token_seq > staleness ? token_seq - staleness : 0;
    }
    uint32_t tenant = request.tenant;
    if (!AdmitTenant(tenant, &respond)) return;
    int64_t deadline_us = request.deadline_us;
    node_->RunOnLane(
        oid_str, [this, oid = std::move(oid_str), method = std::string(method),
                  argument = std::string(argument), min_epoch, deadline_us,
                  tenant, respond](runtime::Runtime& rt) mutable {
          if (deadline_us != 0 && net::EventLoop::NowUs() > deadline_us) {
            server_.RecordShed();
            respond(Status::Timeout("deadline expired before execution"));
            return;
          }
          if (!OwnsForExecution(oid)) {
            {
              std::lock_guard<std::mutex> lock(stats_mu_);
              metrics_.wrong_shard_rejects++;
            }
            respond(Status::WrongShard("object migrated while queued"));
            return;
          }
          uint64_t applied = node_->apply_epoch();
          if (applied < min_epoch) {
            respond(Status::EpochBehind("applied " + std::to_string(applied) +
                                        " < required " +
                                        std::to_string(min_epoch)));
            return;
          }
          // Only registered read-only methods run through the gated path.
          auto type_name = db_->Get({}, runtime::ObjectExistsKey(oid));
          if (!type_name.ok()) {
            respond(type_name.status());
            return;
          }
          const runtime::ObjectType* type = types_->Find(*type_name);
          const runtime::MethodImpl* impl =
              type == nullptr ? nullptr : type->FindMethod(method);
          if (impl == nullptr || impl->kind != runtime::MethodKind::kReadOnly) {
            respond(Status::NotPrimary("not a read-only method"));
            return;
          }
          auto result = runtime::RunSync(rt.Invoke(std::move(oid),
                                                   std::move(method),
                                                   std::move(argument), {}, {},
                                                   tenant));
          if (!result.ok()) {
            respond(result.status());
            return;
          }
          // Response: varint64 epoch (0 — no config epochs on the real
          // path) | varint64 apply-seq | length-prefixed result.
          std::string out;
          PutVarint64(&out, 0);
          PutVarint64(&out, node_->apply_epoch());
          PutLengthPrefixed(&out, *result);
          respond(std::move(out));
        },
        tenant);
  });

  // Live migration, source side. Extraction runs on the object's lane,
  // so every invocation enqueued before the migrate drains (executes and
  // commits) first; everything after bounces with kWrongShard until the
  // directory points at the target. The handler answers only once the
  // chain extract -> install -> place finished (or rolled back), so the
  // caller observes a migration that either fully happened or didn't.
  server_.Handle(kSvcShardMigrate, [this](net::RpcServer::Request request,
                                          net::RpcServer::Responder respond) {
    std::string_view oid, target_address;
    coord::ShardId target_shard = 0;
    if (!DecodeMigrate(request.payload, &oid, &target_shard, &target_address)) {
      respond(Status::Corruption("bad migrate payload"));
      return;
    }
    std::string oid_str(oid);
    if (!OwnsForExecution(oid_str)) {
      respond(Status::WrongShard("not the owner of " + oid_str));
      return;
    }
    node_->RunOnLane(
        oid_str,
        [this, oid = std::move(oid_str), target_shard,
         target_address = std::string(target_address),
         respond](runtime::Runtime&) mutable {
          auto rep = cluster::ExtractObjectRep(db_, oid);
          if (!rep.ok()) {
            respond(rep.status());
            return;
          }
          {
            // Stop serving the object. The local keys stay (lazy delete,
            // same crash-safety story as the sim node): the directory
            // never points here again unless the object migrates back.
            std::lock_guard<std::mutex> lock(view_mu_);
            migrated_away_.insert(oid);
          }
          rpc_.Call(
              target_address, kSvcShardInstall,
              EncodeInstall(target_shard, oid, *rep), options_.peer_timeout_us,
              [this, oid, target_shard, respond](Result<std::string> installed) mutable {
                if (!installed.ok()) {
                  // Target unreachable or refused: roll back and keep
                  // serving the object from here.
                  {
                    std::lock_guard<std::mutex> lock(view_mu_);
                    migrated_away_.erase(oid);
                  }
                  std::lock_guard<std::mutex> lock(stats_mu_);
                  metrics_.migration_failures++;
                  respond(installed.status());
                  return;
                }
                PlaceAsync(oid, target_shard, options_.place_attempts, respond);
              });
        });
  });

  // Live migration, target side. The install commits on the object's
  // lane so it serializes with any (bounced) invocation of the same oid
  // and the lane runtime drops stale cache entries for the object.
  server_.Handle(kSvcShardInstall, [this](net::RpcServer::Request request,
                                          net::RpcServer::Responder respond) {
    coord::ShardId shard = 0;
    std::string_view oid, batch_rep;
    if (!DecodeInstall(request.payload, &shard, &oid, &batch_rep)) {
      respond(Status::Corruption("bad install payload"));
      return;
    }
    node_->RunOnLane(
        std::string(oid),
        [this, oid = std::string(oid), rep = std::string(batch_rep),
         respond](runtime::Runtime& rt) mutable {
          auto batch = cluster::DecodeObjectRep(std::move(rep));
          if (!batch.ok()) {
            respond(batch.status());
            return;
          }
          Status committed = node_->committer().Commit(*batch);
          if (!committed.ok()) {
            respond(committed);
            return;
          }
          rt.OnExternalCommit(*batch);
          {
            std::lock_guard<std::mutex> lock(view_mu_);
            migrated_away_.erase(oid);  // the object may be coming back
          }
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            metrics_.migrations_in++;
          }
          respond(std::string("ok"));
        });
  });

  server_.Handle("ping", [](net::RpcServer::Request request,
                            net::RpcServer::Responder respond) {
    respond(std::string(request.payload));
  });

  server_.Handle("admin.stats", [this](net::RpcServer::Request,
                                       net::RpcServer::Responder respond) {
    respond(StatsText());
  });

  server_.Handle("admin.shutdown", [this](net::RpcServer::Request,
                                          net::RpcServer::Responder respond) {
    respond(std::string("bye"));
    shutdown_requested_.store(true, std::memory_order_release);
  });
}

void ServerNode::ForwardInvoke(runtime::ObjectId oid, std::string method,
                               std::string argument, int redirects_left,
                               runtime::ParallelNode::Callback done) {
  std::string address;
  if (auto current = view(); current != nullptr) {
    address = current->AddressForObject(oid);
  }
  if (address.empty()) {
    if (redirects_left > 0) {
      RefreshViewAsync([this, oid = std::move(oid), method = std::move(method),
                        argument = std::move(argument), redirects_left,
                        done = std::move(done)]() mutable {
        ForwardInvoke(std::move(oid), std::move(method), std::move(argument),
                      redirects_left - 1, std::move(done));
      });
      return;
    }
    done(Status::Unavailable("no route for " + oid));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    metrics_.peer_forwards++;
  }
  // Forwards carry no idempotency token, matching the sim's node-to-node
  // EncodeInvoke: retries of the *root* invocation are what dedupes.
  rpc_.Call(address, "lambda.invoke", EncodeInvoke(oid, method, argument, {}),
            options_.peer_timeout_us,
            [this, oid, method, argument, redirects_left,
             done = std::move(done)](Result<std::string> result) mutable {
              if (!result.ok() &&
                  result.status().code() == StatusCode::kWrongShard &&
                  redirects_left > 0) {
                RefreshViewAsync([this, oid = std::move(oid),
                                  method = std::move(method),
                                  argument = std::move(argument),
                                  redirects_left,
                                  done = std::move(done)]() mutable {
                  ForwardInvoke(std::move(oid), std::move(method),
                                std::move(argument), redirects_left - 1,
                                std::move(done));
                });
                return;
              }
              done(std::move(result));
            });
}

void ServerNode::RefreshViewAsync(std::function<void()> done) {
  rpc_.Call(coordinator_, kSvcGetConfig, "", options_.coord_timeout_us,
            [this, done = std::move(done)](Result<std::string> result) {
              if (result.ok()) {
                auto fresh = ClusterView::Decode(*result);
                if (fresh.ok()) {
                  InstallView(std::move(*fresh));
                  std::lock_guard<std::mutex> lock(stats_mu_);
                  metrics_.directory_refreshes++;
                }
              }
              done();
            });
}

void ServerNode::PlaceAsync(std::string oid, coord::ShardId shard,
                            int attempts_left,
                            net::RpcServer::Responder respond) {
  // Encoded before the Call so the callback's `std::move(oid)` capture —
  // evaluated in unspecified order relative to the other arguments —
  // cannot hollow out the payload.
  std::string payload = EncodePlace(oid, shard);
  rpc_.Call(coordinator_, kSvcPlace, std::move(payload),
            options_.coord_timeout_us,
            [this, oid = std::move(oid), shard, attempts_left,
             respond = std::move(respond)](Result<std::string> placed) mutable {
              if (placed.ok()) {
                {
                  std::lock_guard<std::mutex> lock(stats_mu_);
                  metrics_.migrations_out++;
                }
                respond(std::string("ok"));
                return;
              }
              if (attempts_left > 1) {
                PlaceAsync(std::move(oid), shard, attempts_left - 1,
                           std::move(respond));
                return;
              }
              // The copy landed on the target but the directory was
              // never published, so nobody will ever route there: roll
              // back and keep serving from the (still-authoritative)
              // source copy. The orphan at the target is overwritten by
              // any later successful migration of the same object.
              {
                std::lock_guard<std::mutex> lock(view_mu_);
                migrated_away_.erase(oid);
              }
              {
                std::lock_guard<std::mutex> lock(stats_mu_);
                metrics_.migration_failures++;
              }
              respond(placed.status());
            });
}

Status ServerNode::RegisterWithCoordinator() {
  std::string advertise =
      options_.advertise_host + ":" + std::to_string(server_.port());
  auto reply =
      rpc_.CallSync(coordinator_, kSvcRegister, EncodeRegisterRequest(advertise),
                    options_.coord_timeout_us);
  if (!reply.ok()) return reply.status();
  ClusterView fresh;
  LO_RETURN_IF_ERROR(
      DecodeRegisterResponse(*reply, &node_id_, &home_shard_, &fresh));
  InstallView(std::move(fresh));
  return Status::OK();
}

void ServerNode::ReportLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(reporter_mu_);
      reporter_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.report_interval_ms),
          [&] { return stop_reporter_; });
      if (stop_reporter_) return;
    }
    LoadReport report;
    report.node = node_id_;
    {
      auto current = view();
      report.view_version = current == nullptr ? 0 : current->version;
    }
    std::map<std::string, uint64_t> window;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      report.window_requests = window_requests_;
      window_requests_ = 0;
      window.swap(window_object_requests_);
    }
    // Top-K hottest objects of the window, hottest first.
    std::vector<std::pair<std::string, uint64_t>> hot(window.begin(),
                                                      window.end());
    std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    if (hot.size() > options_.report_top_k) hot.resize(options_.report_top_k);
    report.hot_objects = std::move(hot);

    auto reply = rpc_.CallSync(coordinator_, kSvcReport,
                               EncodeLoadReport(report),
                               options_.coord_timeout_us);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      metrics_.reports_sent++;
    }
    if (!reply.ok()) continue;  // coordinator will hear from us next window
    Reader reader{*reply};
    uint64_t coordinator_version = 0;
    if (!reader.GetVarint64(&coordinator_version)) continue;
    uint64_t our_version = 0;
    if (auto current = view(); current != nullptr) our_version = current->version;
    if (coordinator_version > our_version) {
      auto config = rpc_.CallSync(coordinator_, kSvcGetConfig, "",
                                  options_.coord_timeout_us);
      if (config.ok()) {
        auto fresh = ClusterView::Decode(*config);
        if (fresh.ok()) {
          InstallView(std::move(*fresh));
          std::lock_guard<std::mutex> lock(stats_mu_);
          metrics_.directory_refreshes++;
        }
      }
    }
  }
}

Status ServerNode::Start() {
  LO_CHECK_MSG(!started_, "ServerNode::Start called twice");
  started_ = true;
  LO_RETURN_IF_ERROR(server_.Start());
  if (!coordinator_.empty()) {
    LO_RETURN_IF_ERROR(RegisterWithCoordinator());
    reporter_ = std::thread([this] { ReportLoop(); });
  }
  if (options_.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics_registry;
    uint32_t label = node_id_;
    reg->RegisterExternal("clusterd.invokes", label, &metrics_.invokes);
    reg->RegisterExternal("clusterd.wrong_shard_rejects", label,
                          &metrics_.wrong_shard_rejects);
    reg->RegisterExternal("clusterd.peer_forwards", label,
                          &metrics_.peer_forwards);
    reg->RegisterExternal("clusterd.migrations_out", label,
                          &metrics_.migrations_out);
    reg->RegisterExternal("clusterd.migrations_in", label,
                          &metrics_.migrations_in);
    reg->RegisterExternal("clusterd.migration_failures", label,
                          &metrics_.migration_failures);
    reg->RegisterExternal("clusterd.directory_refreshes", label,
                          &metrics_.directory_refreshes);
  }
  return Status::OK();
}

void ServerNode::Shutdown() {
  if (stopped_) return;
  stopped_ = true;
  if (reporter_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(reporter_mu_);
      stop_reporter_ = true;
    }
    reporter_cv_.notify_all();
    reporter_.join();
  }
  // Teardown order matters: stop the server first (no new requests),
  // then drain the lanes (every outstanding Responder fires — into
  // closed connections, harmlessly), then flush so a restart from the
  // same path sees every acked commit without WAL replay.
  server_.Stop();
  node_->Drain();
  (void)db_->CompactAll();
  rpc_.Stop();
}

ServerNode::Metrics ServerNode::metrics_snapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return metrics_;
}

std::string ServerNode::StatsText() {
  const auto& stats = server_.stats();
  std::string out;
  out += "node=" + std::to_string(node_id_) + "\n";
  out += "requests=" + std::to_string(stats.requests.load()) + "\n";
  out += "responses=" + std::to_string(stats.responses.load()) + "\n";
  out += "deadline_shed=" + std::to_string(stats.deadline_shed.load()) + "\n";
  out += "backlog_shed=" + std::to_string(stats.backlog_shed.load()) + "\n";
  out += "frame_rejects=" + std::to_string(server_.frame_stats().rejects()) + "\n";
  // Transport syscall accounting for the A13 saturation bench: the
  // loadgen diffs two snapshots around its measure window.
  out += "net_backend=" + std::string(server_.backend_name()) + "\n";
  out += "net_reactors=" + std::to_string(server_.reactors()) + "\n";
  out += "net_syscalls=" + std::to_string(stats.syscalls.load()) + "\n";
  out += "net_poll_waits=" + std::to_string(server_.poll_waits()) + "\n";
  out += "net_bytes_out=" + std::to_string(stats.bytes_out.load()) + "\n";
  out += "lanes=" + std::to_string(node_->lanes()) + "\n";
  uint64_t executed = 0;
  for (size_t i = 0; i < node_->lanes(); i++) executed += node_->lane_executed(i);
  out += "invocations_executed=" + std::to_string(executed) + "\n";
  const auto& gc = node_->committer().stats();
  out += "gc_commits=" + std::to_string(gc.commits) + "\n";
  out += "gc_groups=" + std::to_string(gc.groups) + "\n";
  std::lock_guard<std::mutex> lock(stats_mu_);
  out += "invokes=" + std::to_string(metrics_.invokes) + "\n";
  out += "wrong_shard_rejects=" + std::to_string(metrics_.wrong_shard_rejects) + "\n";
  out += "peer_forwards=" + std::to_string(metrics_.peer_forwards) + "\n";
  out += "migrations_out=" + std::to_string(metrics_.migrations_out) + "\n";
  out += "migrations_in=" + std::to_string(metrics_.migrations_in) + "\n";
  out += "migration_failures=" + std::to_string(metrics_.migration_failures) + "\n";
  out += "directory_refreshes=" + std::to_string(metrics_.directory_refreshes) + "\n";
  out += "reports_sent=" + std::to_string(metrics_.reports_sent) + "\n";
  for (const auto& [shard, count] : shard_requests_) {
    out += "shard_requests." + std::to_string(shard) + "=" +
           std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace lo::clusterd
