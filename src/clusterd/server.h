// clusterd::ServerNode — one LambdaStore storage/execution server as a
// real process member of a coordinator-driven cluster (paper §4.2).
//
// This is the serving core of tools/lambdastore_server.cpp, factored
// into a library so tests and the elasticity bench can embed it. It
// hosts a runtime::ParallelNode (execution lanes + WAL group commit)
// behind net::RpcServer and, in cluster mode (options.coordinator set):
//
//   * registers with the coordinator on Start() and caches the
//     versioned ClusterView (microshard directory + node addresses);
//   * rejects invocations for objects it does not own with the typed
//     kWrongShard status, which clients answer with a directory refresh;
//   * forwards *nested* invocations (ctx.Invoke from a method) to the
//     owning peer over RPC — the calling lane helps with its own queue
//     while it waits, the same discipline as cross-lane nesting;
//   * serves live migration: "shard.migrate" extracts the object on its
//     own lane (so every in-flight invocation of that object has
//     executed and committed first), streams it to the target server
//     ("shard.install"), publishes the directory update through the
//     coordinator ("coord.place"), and rolls back — keeps serving the
//     object — if install or publish fail. Requests that arrive during
//     the copy bounce with kWrongShard and get redirected; nothing is
//     paused.
//   * reports per-window load (total requests + hottest objects) to the
//     coordinator, which doubles as the heartbeat and piggybacks config
//     version checks so a stale directory refreshes within one window.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "clusterd/wire.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "storage/db.h"
#include "tenant/tenant.h"

namespace lo::clusterd {

struct ServerNodeOptions {
  /// RpcServer bind config; port 0 = ephemeral.
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;
  /// Transport reactor threads (0 = LO_NET_THREADS, default 1) and the
  /// poller backend/flush policy; see net::RpcServerOptions.
  int net_threads = 0;
  net::NetBackend net_backend = net::NetBackendFromEnv();
  bool net_coalesce_flush = true;
  /// Host peers and clients dial this server on (advertised to the
  /// coordinator as "<advertise_host>:<port>").
  std::string advertise_host = "127.0.0.1";
  /// Coordinator "ip:port". Empty = standalone single-node mode: no
  /// registration, no directory, every object is local.
  std::string coordinator;
  size_t lanes = 8;
  runtime::RuntimeOptions runtime;
  storage::GroupCommitterOptions group_commit;
  /// Load-report (= heartbeat) cadence and shape.
  int64_t report_interval_ms = 200;
  size_t report_top_k = 16;
  /// Cap on distinct oids tracked per report window; hot objects enter
  /// the map early, so overflow only drops cold tails.
  size_t hot_tracking_max = 4096;
  int64_t peer_timeout_us = 2'000'000;
  int64_t coord_timeout_us = 2'000'000;
  /// Directory re-resolutions per forwarded nested invocation.
  int forward_redirects = 2;
  /// coord.place attempts before a migration rolls back.
  int place_attempts = 3;
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Optional multi-tenant QoS (not owned; must outlive the node).
  /// Requests carrying a tenant id pass token-bucket/in-flight/fuel
  /// admission before touching a lane (over-budget → kTenantThrottled),
  /// queue DRR-fairly per lane, and debit their tenant's fuel window as
  /// the VM runs. See docs/tenancy.md.
  tenant::TenantRegistry* tenants = nullptr;
};

class ServerNode {
 public:
  /// `db` must be opened with Options::serialize_access and outlive the
  /// node; `types` likewise.
  ServerNode(storage::DB* db, const runtime::TypeRegistry* types,
             ServerNodeOptions options = {});
  ~ServerNode();

  ServerNode(const ServerNode&) = delete;
  ServerNode& operator=(const ServerNode&) = delete;

  /// Binds + serves; in cluster mode also registers with the
  /// coordinator and starts the report loop.
  Status Start();

  /// Graceful drain: stop accepting, finish every in-flight lane job,
  /// flush the memtable so on-disk state is complete, stop the loops.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  uint16_t port() const { return server_.port(); }
  sim::NodeId node_id() const { return node_id_; }
  /// True once an admin.shutdown RPC arrived.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  runtime::ParallelNode& node() { return *node_; }
  net::RpcServer& rpc_server() { return server_; }
  std::shared_ptr<const ClusterView> view() const;

  struct Metrics {
    uint64_t invokes = 0;
    uint64_t wrong_shard_rejects = 0;
    uint64_t peer_forwards = 0;
    uint64_t migrations_out = 0;
    uint64_t migrations_in = 0;
    uint64_t migration_failures = 0;
    uint64_t directory_refreshes = 0;
    uint64_t reports_sent = 0;
  };
  Metrics metrics_snapshot() const;

  /// admin.stats body: counters plus the per-shard request rollup.
  std::string StatsText();

 private:
  void InstallHandlers();
  /// Tenant admission gate shared by the serving handlers: sheds with
  /// kTenantThrottled (answering via `respond`) when over budget, else
  /// wraps `respond` so the tenant's in-flight slot is released exactly
  /// once when the response goes out. Returns false when shed.
  bool AdmitTenant(uint32_t tenant, net::RpcServer::Responder* respond);
  void CountRequest(const std::string& oid);
  /// Cluster-mode ownership check; standalone always owns.
  bool OwnsForExecution(const std::string& oid) const;
  void InstallView(ClusterView fresh);
  /// Async directory refresh; `done` runs on the RPC client loop thread.
  void RefreshViewAsync(std::function<void()> done);
  /// Nested invocation leaving this process; retries through directory
  /// refreshes up to `redirects_left` times on kWrongShard.
  void ForwardInvoke(runtime::ObjectId oid, std::string method,
                     std::string argument, int redirects_left,
                     runtime::ParallelNode::Callback done);
  /// Publish the directory update, retrying; rolls the migration back
  /// on final failure. Runs on the RPC client loop thread.
  void PlaceAsync(std::string oid, coord::ShardId shard, int attempts_left,
                  net::RpcServer::Responder respond);
  Status RegisterWithCoordinator();
  void ReportLoop();

  storage::DB* db_;
  const runtime::TypeRegistry* types_;
  ServerNodeOptions options_;
  std::string coordinator_;  // empty = standalone
  sim::NodeId node_id_ = 0;
  coord::ShardId home_shard_ = 0;

  net::RpcServer server_;
  net::RpcClient rpc_;  // peer + coordinator calls
  std::unique_ptr<runtime::ParallelNode> node_;

  mutable std::mutex view_mu_;
  std::shared_ptr<const ClusterView> view_;
  std::set<runtime::ObjectId> migrated_away_;

  mutable std::mutex stats_mu_;
  Metrics metrics_;
  std::map<coord::ShardId, uint64_t> shard_requests_;      // cumulative
  std::map<std::string, uint64_t> window_object_requests_;  // per window
  uint64_t window_requests_ = 0;

  std::thread reporter_;
  std::mutex reporter_mu_;
  std::condition_variable reporter_cv_;
  bool stop_reporter_ = false;
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace lo::clusterd
