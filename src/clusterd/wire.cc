#include "clusterd/wire.h"

#include "cluster/routing.h"
#include "common/coding.h"

namespace lo::clusterd {

std::string ClusterView::Encode() const {
  std::string out;
  PutVarint64(&out, version);
  // The state blob is length-prefixed because ClusterState::Decode
  // consumes its input greedily (trailing optional fields).
  PutLengthPrefixed(&out, state.Encode());
  PutVarint32(&out, static_cast<uint32_t>(addresses.size()));
  for (const auto& [node, address] : addresses) {
    PutVarint32(&out, node);
    PutLengthPrefixed(&out, address);
  }
  return out;
}

Result<ClusterView> ClusterView::Decode(std::string_view bytes) {
  ClusterView view;
  Reader reader{bytes};
  std::string_view state_blob;
  uint32_t num_addresses = 0;
  if (!reader.GetVarint64(&view.version) ||
      !reader.GetLengthPrefixed(&state_blob) ||
      !reader.GetVarint32(&num_addresses)) {
    return Status::Corruption("bad cluster view");
  }
  auto state = coord::ClusterState::Decode(state_blob);
  if (!state.ok()) return state.status();
  view.state = std::move(*state);
  for (uint32_t i = 0; i < num_addresses; i++) {
    uint32_t node = 0;
    std::string_view address;
    if (!reader.GetVarint32(&node) || !reader.GetLengthPrefixed(&address)) {
      return Status::Corruption("bad cluster view address");
    }
    view.addresses[node] = std::string(address);
  }
  return view;
}

coord::ShardId ClusterView::ShardFor(std::string_view oid) const {
  return cluster::ShardForObject(state, oid);
}

sim::NodeId ClusterView::PrimaryFor(std::string_view oid) const {
  auto it = state.shards.find(ShardFor(oid));
  return it == state.shards.end() ? 0 : it->second.primary;
}

std::string ClusterView::AddressOf(sim::NodeId node) const {
  auto it = addresses.find(node);
  return it == addresses.end() ? std::string() : it->second;
}

std::string ClusterView::AddressForObject(std::string_view oid) const {
  sim::NodeId primary = PrimaryFor(oid);
  return primary == 0 ? std::string() : AddressOf(primary);
}

std::string EncodeRegisterRequest(std::string_view address) {
  std::string out;
  PutLengthPrefixed(&out, address);
  return out;
}

bool DecodeRegisterRequest(std::string_view payload, std::string_view* address) {
  Reader reader{payload};
  return reader.GetLengthPrefixed(address);
}

std::string EncodeRegisterResponse(sim::NodeId node, coord::ShardId shard,
                                   const ClusterView& view) {
  std::string out;
  PutVarint32(&out, node);
  PutVarint32(&out, shard);
  PutLengthPrefixed(&out, view.Encode());
  return out;
}

Status DecodeRegisterResponse(std::string_view payload, sim::NodeId* node,
                              coord::ShardId* shard, ClusterView* view) {
  Reader reader{payload};
  uint32_t node32 = 0;
  std::string_view view_blob;
  if (!reader.GetVarint32(&node32) || !reader.GetVarint32(shard) ||
      !reader.GetLengthPrefixed(&view_blob)) {
    return Status::Corruption("bad register response");
  }
  *node = node32;
  auto decoded = ClusterView::Decode(view_blob);
  if (!decoded.ok()) return decoded.status();
  *view = std::move(*decoded);
  return Status::OK();
}

std::string EncodeLoadReport(const LoadReport& report) {
  std::string out;
  PutVarint32(&out, report.node);
  PutVarint64(&out, report.view_version);
  PutVarint64(&out, report.window_requests);
  PutVarint32(&out, static_cast<uint32_t>(report.hot_objects.size()));
  for (const auto& [oid, count] : report.hot_objects) {
    PutLengthPrefixed(&out, oid);
    PutVarint64(&out, count);
  }
  return out;
}

Status DecodeLoadReport(std::string_view payload, LoadReport* report) {
  Reader reader{payload};
  uint32_t node = 0, n = 0;
  if (!reader.GetVarint32(&node) || !reader.GetVarint64(&report->view_version) ||
      !reader.GetVarint64(&report->window_requests) || !reader.GetVarint32(&n)) {
    return Status::Corruption("bad load report");
  }
  report->node = node;
  report->hot_objects.clear();
  for (uint32_t i = 0; i < n; i++) {
    std::string_view oid;
    uint64_t count = 0;
    if (!reader.GetLengthPrefixed(&oid) || !reader.GetVarint64(&count)) {
      return Status::Corruption("bad load report entry");
    }
    report->hot_objects.emplace_back(std::string(oid), count);
  }
  return Status::OK();
}

std::string EncodePlace(std::string_view oid, coord::ShardId shard) {
  std::string out;
  PutLengthPrefixed(&out, oid);
  PutVarint32(&out, shard);
  return out;
}

bool DecodePlace(std::string_view payload, std::string_view* oid,
                 coord::ShardId* shard) {
  Reader reader{payload};
  return reader.GetLengthPrefixed(oid) && reader.GetVarint32(shard);
}

std::string EncodeMigrate(std::string_view oid, coord::ShardId target_shard,
                          std::string_view target_address) {
  std::string out;
  PutLengthPrefixed(&out, oid);
  PutVarint32(&out, target_shard);
  PutLengthPrefixed(&out, target_address);
  return out;
}

bool DecodeMigrate(std::string_view payload, std::string_view* oid,
                   coord::ShardId* target_shard,
                   std::string_view* target_address) {
  Reader reader{payload};
  return reader.GetLengthPrefixed(oid) && reader.GetVarint32(target_shard) &&
         reader.GetLengthPrefixed(target_address);
}

std::string EncodeInstall(coord::ShardId shard, std::string_view oid,
                          std::string_view batch_rep) {
  std::string out;
  PutVarint32(&out, shard);
  PutLengthPrefixed(&out, oid);
  out.append(batch_rep);
  return out;
}

bool DecodeInstall(std::string_view payload, coord::ShardId* shard,
                   std::string_view* oid, std::string_view* batch_rep) {
  Reader reader{payload};
  if (!reader.GetVarint32(shard) || !reader.GetLengthPrefixed(oid)) return false;
  *batch_rep = reader.rest();
  return true;
}

std::string EncodeInvoke(std::string_view oid, std::string_view method,
                         std::string_view argument, std::string_view token) {
  std::string out;
  PutLengthPrefixed(&out, oid);
  PutLengthPrefixed(&out, method);
  PutLengthPrefixed(&out, argument);
  PutLengthPrefixed(&out, token);
  return out;
}

bool DecodeInvoke(std::string_view payload, std::string_view* oid,
                  std::string_view* method, std::string_view* argument,
                  std::string_view* token) {
  Reader reader{payload};
  if (!reader.GetLengthPrefixed(oid) || !reader.GetLengthPrefixed(method) ||
      !reader.GetLengthPrefixed(argument)) {
    return false;
  }
  *token = {};
  reader.GetLengthPrefixed(token);
  return true;
}

std::string EncodeCreate(std::string_view oid, std::string_view type_name,
                         std::string_view token) {
  std::string out;
  PutLengthPrefixed(&out, oid);
  PutLengthPrefixed(&out, type_name);
  PutLengthPrefixed(&out, token);
  return out;
}

bool DecodeCreate(std::string_view payload, std::string_view* oid,
                  std::string_view* type_name, std::string_view* token) {
  Reader reader{payload};
  if (!reader.GetLengthPrefixed(oid) || !reader.GetLengthPrefixed(type_name)) {
    return false;
  }
  *token = {};
  reader.GetLengthPrefixed(token);
  return true;
}

}  // namespace lo::clusterd
