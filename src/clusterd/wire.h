// Wire protocol of the real (multi-process) cluster deployment.
//
// Everything clusterd speaks rides the net/frame.h RPC framing; this
// header only defines the payload encodings and the service names. The
// cluster *view* is the coordinator's replicated ClusterState (shards,
// directory, hash space — byte-compatible with the sim coordinator)
// plus the piece only the real deployment needs: the node -> "ip:port"
// address book, and a version (the coordinator's applied-command count)
// so servers and clients can tell a stale directory from a fresh one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "coord/coordinator.h"

namespace lo::clusterd {

// Services hosted by the coordinator process.
inline constexpr char kSvcRegister[] = "clusterd.register";
inline constexpr char kSvcGetConfig[] = "clusterd.get_config";
inline constexpr char kSvcReport[] = "clusterd.report";
inline constexpr char kSvcPlace[] = "coord.place";
inline constexpr char kSvcMigrate[] = "clusterd.migrate";

// Services hosted by every storage server (beyond lambda.invoke/create).
inline constexpr char kSvcShardMigrate[] = "shard.migrate";
inline constexpr char kSvcShardInstall[] = "shard.install";

/// A versioned snapshot of the cluster configuration.
struct ClusterView {
  uint64_t version = 0;
  coord::ClusterState state;
  std::map<sim::NodeId, std::string> addresses;

  std::string Encode() const;
  static Result<ClusterView> Decode(std::string_view bytes);

  /// Directory entry wins, then hash over the pinned hash space.
  coord::ShardId ShardFor(std::string_view oid) const;
  /// Primary node for the object, or 0 when the shard has no config yet.
  sim::NodeId PrimaryFor(std::string_view oid) const;
  /// "ip:port" of a node, or empty when unknown.
  std::string AddressOf(sim::NodeId node) const;
  /// "ip:port" of the object's primary, or empty when unroutable.
  std::string AddressForObject(std::string_view oid) const;
};

// clusterd.register: server -> coordinator on startup.
//   request:  lp(advertise_address)
//   response: varint32 node_id | varint32 shard_id | lp(encoded view)
std::string EncodeRegisterRequest(std::string_view address);
bool DecodeRegisterRequest(std::string_view payload, std::string_view* address);
std::string EncodeRegisterResponse(sim::NodeId node, coord::ShardId shard,
                                   const ClusterView& view);
Status DecodeRegisterResponse(std::string_view payload, sim::NodeId* node,
                              coord::ShardId* shard, ClusterView* view);

// clusterd.report: periodic load report (doubles as the heartbeat).
//   request:  varint32 node | varint64 view_version | varint64 requests |
//             varint32 n | n * (lp oid | varint64 count)
//   response: varint64 coordinator_version
struct LoadReport {
  sim::NodeId node = 0;
  uint64_t view_version = 0;
  uint64_t window_requests = 0;
  std::vector<std::pair<std::string, uint64_t>> hot_objects;
};
std::string EncodeLoadReport(const LoadReport& report);
Status DecodeLoadReport(std::string_view payload, LoadReport* report);

// coord.place: publish a directory entry (same payload as the sim
// coordinator's "coord.place": lp oid | varint32 shard).
std::string EncodePlace(std::string_view oid, coord::ShardId shard);
bool DecodePlace(std::string_view payload, std::string_view* oid,
                 coord::ShardId* shard);

// clusterd.migrate / shard.migrate: move one object to `target_shard`.
// The coordinator resolves the target address; the source server
// receives the full triple. request: lp oid | varint32 shard | lp addr.
std::string EncodeMigrate(std::string_view oid, coord::ShardId target_shard,
                          std::string_view target_address);
bool DecodeMigrate(std::string_view payload, std::string_view* oid,
                   coord::ShardId* target_shard,
                   std::string_view* target_address);

// shard.install: commit an extracted object on the receiving server.
//   request: varint32 shard | lp oid | batch rep   (response: "ok")
std::string EncodeInstall(coord::ShardId shard, std::string_view oid,
                          std::string_view batch_rep);
bool DecodeInstall(std::string_view payload, coord::ShardId* shard,
                   std::string_view* oid, std::string_view* batch_rep);

// lambda.invoke / lambda.create payloads (shared with net::RemoteClient
// and tools/lambdastore_server; the token is optional on the wire so
// node-to-node forwards can omit it).
std::string EncodeInvoke(std::string_view oid, std::string_view method,
                         std::string_view argument, std::string_view token);
bool DecodeInvoke(std::string_view payload, std::string_view* oid,
                  std::string_view* method, std::string_view* argument,
                  std::string_view* token);
std::string EncodeCreate(std::string_view oid, std::string_view type_name,
                         std::string_view token);
bool DecodeCreate(std::string_view payload, std::string_view* oid,
                  std::string_view* type_name, std::string_view* token);

}  // namespace lo::clusterd
