#include "common/coding.h"

#include <cstring>

namespace lo {

void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; i++) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; i++) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 8);
}

uint16_t DecodeFixed16(const char* p) {
  auto b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint16_t>(b[0] | (b[1] << 8));
}

uint32_t DecodeFixed32(const char* p) {
  auto b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t DecodeFixed64(const char* p) {
  uint64_t lo32 = DecodeFixed32(p);
  uint64_t hi32 = DecodeFixed32(p + 4);
  return lo32 | (hi32 << 32);
}

void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<uint8_t>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *v = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<uint8_t>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *v = result;
      return p;
    }
  }
  return nullptr;
}

bool Reader::GetFixed16(uint16_t* v) {
  if (data_.size() < 2) return false;
  *v = DecodeFixed16(data_.data());
  data_.remove_prefix(2);
  return true;
}

bool Reader::GetFixed32(uint32_t* v) {
  if (data_.size() < 4) return false;
  *v = DecodeFixed32(data_.data());
  data_.remove_prefix(4);
  return true;
}

bool Reader::GetFixed64(uint64_t* v) {
  if (data_.size() < 8) return false;
  *v = DecodeFixed64(data_.data());
  data_.remove_prefix(8);
  return true;
}

bool Reader::GetVarint32(uint32_t* v) {
  const char* p = GetVarint32Ptr(data_.data(), data_.data() + data_.size(), v);
  if (p == nullptr) return false;
  data_.remove_prefix(static_cast<size_t>(p - data_.data()));
  return true;
}

bool Reader::GetVarint64(uint64_t* v) {
  const char* p = GetVarint64Ptr(data_.data(), data_.data() + data_.size(), v);
  if (p == nullptr) return false;
  data_.remove_prefix(static_cast<size_t>(p - data_.data()));
  return true;
}

bool Reader::GetLengthPrefixed(std::string_view* v) {
  uint32_t len = 0;
  Reader save = *this;
  if (!GetVarint32(&len) || data_.size() < len) {
    *this = save;
    return false;
  }
  *v = data_.substr(0, len);
  data_.remove_prefix(len);
  return true;
}

bool Reader::GetBytes(size_t n, std::string_view* v) {
  if (data_.size() < n) return false;
  *v = data_.substr(0, n);
  data_.remove_prefix(n);
  return true;
}

bool Reader::Skip(size_t n) {
  if (data_.size() < n) return false;
  data_.remove_prefix(n);
  return true;
}

}  // namespace lo
