// Binary coding primitives shared by the WAL, SSTable, RPC and VM module
// formats: little-endian fixed-width integers, LEB128-style varints, and
// length-prefixed strings, plus Writer/Reader cursors over std::string
// buffers (the storage stack uses std::string as its byte-buffer type).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace lo {

void PutFixed16(std::string* dst, uint16_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
uint16_t DecodeFixed16(const char* p);
uint32_t DecodeFixed32(const char* p);
uint64_t DecodeFixed64(const char* p);

/// Appends v in LEB128 (7 bits per byte, MSB = continuation).
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Appends varint32 length followed by the bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Parses a varint from [p, limit); returns pointer past it or nullptr on
/// malformed/truncated input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v);

/// Cursor-style reader over a borrowed byte range. All getters return
/// false (without advancing past partial data) on truncated input.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool empty() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }
  std::string_view rest() const { return data_; }

  bool GetFixed16(uint16_t* v);
  bool GetFixed32(uint32_t* v);
  bool GetFixed64(uint64_t* v);
  bool GetVarint32(uint32_t* v);
  bool GetVarint64(uint64_t* v);
  bool GetLengthPrefixed(std::string_view* v);
  bool GetBytes(size_t n, std::string_view* v);
  bool Skip(size_t n);

 private:
  std::string_view data_;
};

}  // namespace lo
