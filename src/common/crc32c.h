// CRC32C (Castagnoli). Used to protect WAL records, SSTable blocks and
// manifest entries against torn writes and bit rot, with the LevelDB-style
// mask for checksums stored alongside the data they cover.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lo::crc32c {

/// CRC of data, seeded with `init_crc` (pass 0 for a fresh CRC).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

// A stored CRC must not checksum bytes that themselves contain that CRC;
// masking makes embedded CRCs safe (same constant as LevelDB).
constexpr uint32_t kMaskDelta = 0xa282ead8u;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace lo::crc32c
