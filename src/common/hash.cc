#include "common/hash.h"

namespace lo {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

uint32_t Fnv1a32(std::string_view data) {
  uint32_t h = 0x811c9dc5u;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

}  // namespace lo
