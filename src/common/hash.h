// Non-cryptographic hashing: FNV-1a for hash tables / bloom filters and
// a 64-bit mixer for sharding keys onto nodes.
#pragma once

#include <cstdint>
#include <string_view>

namespace lo {

/// FNV-1a 64-bit over arbitrary bytes.
uint64_t Fnv1a64(std::string_view data);

/// FNV-1a 32-bit (bloom filter probes).
uint32_t Fnv1a32(std::string_view data);

/// splitmix64 finalizer: decorrelates sequential integers.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace lo
