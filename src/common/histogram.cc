#include "common/histogram.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace lo {
namespace {

// 64 power-of-two ranges, each split into 16 sub-buckets: ~6% worst-case
// relative error at high values, exact below 16.
constexpr size_t kSubBuckets = 16;
constexpr size_t kNumBuckets = 64 * kSubBuckets;

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  auto v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) return static_cast<size_t>(v);
  int log2 = 63 - std::countl_zero(v);
  uint64_t sub = (v >> (log2 - 4)) & (kSubBuckets - 1);
  size_t idx = static_cast<size_t>(log2 - 3) * kSubBuckets + static_cast<size_t>(sub);
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

int64_t Histogram::BucketLower(size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<int64_t>(bucket);
  size_t log2 = bucket / kSubBuckets + 3;
  size_t sub = bucket % kSubBuckets;
  return static_cast<int64_t>((1ull << log2) | (static_cast<uint64_t>(sub) << (log2 - 4)));
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  count_++;
  sum_ += static_cast<double>(value);
  buckets_[BucketFor(value)]++;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  buckets_.assign(kNumBuckets, 0);
  count_ = 0;
  sum_ = 0;
  min_ = max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min_;
  if (q >= 1) return max_;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    seen += buckets_[i];
    if (seen >= target) {
      int64_t lower = BucketLower(i);
      return std::max(min_, std::min(lower, max_));
    }
  }
  return max_;
}

double Histogram::StdDev() const {
  if (count_ == 0) return 0;
  double mean = Mean();
  double acc = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    if (buckets_[i] == 0) continue;
    double mid = static_cast<double>(BucketLower(i));
    acc += static_cast<double>(buckets_[i]) * (mid - mean) * (mid - mean);
  }
  return std::sqrt(acc / static_cast<double>(count_));
}

std::string Histogram::Summary(std::string_view unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f%.*s p50=%lld%.*s p99=%lld%.*s max=%lld%.*s",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<int>(unit.size()), unit.data(),
                static_cast<long long>(Percentile(0.5)),
                static_cast<int>(unit.size()), unit.data(),
                static_cast<long long>(Percentile(0.99)),
                static_cast<int>(unit.size()), unit.data(),
                static_cast<long long>(Max()),
                static_cast<int>(unit.size()), unit.data());
  return buf;
}

}  // namespace lo
