// Latency recorder used by the benchmark harness. Log-bucketed like
// HdrHistogram: ~1% relative error, O(1) record, exact count/sum.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lo {

class Histogram {
 public:
  Histogram();

  /// Records one sample (e.g. microseconds). Negative values clamp to 0.
  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const;
  int64_t Min() const { return count_ ? min_ : 0; }
  int64_t Max() const { return count_ ? max_ : 0; }
  /// Value at quantile q in [0, 1]; e.g. Percentile(0.99).
  int64_t Percentile(double q) const;
  /// Population standard deviation (bucket-approximate).
  double StdDev() const;

  /// One-line summary: count/mean/p50/p99/max.
  std::string Summary(std::string_view unit = "us") const;

 private:
  static size_t BucketFor(int64_t value);
  static int64_t BucketLower(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace lo
