#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lo {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void LogLine(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s:%d: %s\n", LevelName(level), file, line, msg.c_str());
}

void CheckFailed(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "[FATAL] %s:%d: check failed: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace lo
