// Minimal leveled logging plus precondition checks.
//
// LO_CHECK enforces internal invariants and programmer preconditions
// (Core Guidelines I.6/E.12 spirit): it aborts with location info rather
// than limping on with corrupted state. Expected runtime failures use
// Status instead (see status.h).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace lo {

enum class LogLevel : uint8_t { kDebug = 0, kInfo, kWarn, kError };

/// Global threshold; messages below it are discarded. Default: kWarn
/// (tests and benches stay quiet unless something is wrong).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void LogLine(LogLevel level, const char* file, int line, const std::string& msg);

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace lo

#define LO_LOG(level)                                                  \
  if (::lo::GetLogLevel() > (level)) {                                 \
  } else                                                               \
    ::lo::internal::LogMessage((level), __FILE__, __LINE__).stream()

#define LO_DEBUG LO_LOG(::lo::LogLevel::kDebug)
#define LO_INFO LO_LOG(::lo::LogLevel::kInfo)
#define LO_WARN LO_LOG(::lo::LogLevel::kWarn)
#define LO_ERROR LO_LOG(::lo::LogLevel::kError)

// Invariant check; always on (storage code must fail loudly, not corrupt).
#define LO_CHECK(expr)                                                 \
  do {                                                                 \
    if (!(expr)) ::lo::internal::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define LO_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) ::lo::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
  } while (0)
