#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/hash.h"

namespace lo {
namespace {

constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the full 256-bit state through splitmix64 so nearby seeds give
  // uncorrelated streams.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ull;
    s = Mix64(x);
  }
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::string Rng::Bytes(size_t n) {
  std::string out;
  out.reserve(n);
  while (out.size() < n) {
    uint64_t r = Next();
    for (int i = 0; i < 8 && out.size() < n; i++) {
      out.push_back(static_cast<char>(r & 0xff));
      r >>= 8;
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfGenerator::ZipfGenerator(uint64_t n, double alpha) : n_(n), cdf_(n) {
  double sum = 0;
  for (uint64_t i = 0; i < n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace lo
