// Deterministic pseudo-randomness. Every stochastic component (network
// jitter, workload generators, fuzzers) draws from an explicitly seeded
// Rng so simulations replay bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lo {

/// xoshiro256** — fast, high-quality, 64-bit state stream.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();
  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n);
  /// Uniform in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// True with probability p.
  bool Bernoulli(double p);
  /// Exponential with mean `mean` (network jitter tails).
  double Exponential(double mean);
  /// Random byte string of length n.
  std::string Bytes(size_t n);
  /// Derive an independent stream (for per-node RNGs).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Zipf(alpha) sampler over {0, .., n-1} via precomputed inverse CDF.
/// Social graphs (ReTwis follower counts) are Zipf-distributed.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double alpha);

  /// Draws a rank; rank 0 is the most popular item.
  uint64_t Sample(Rng& rng) const;
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace lo
