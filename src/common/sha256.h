// SHA-256. The consistent result cache (paper §4.2.2) records a function's
// read set as keys plus *value hashes*; a collision there would serve a
// stale cached result, so a cryptographic hash is the right tool.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace lo {

using Sha256Digest = std::array<uint8_t, 32>;

/// One-shot SHA-256 of `data`.
Sha256Digest Sha256(std::string_view data);

/// Digest rendered as lowercase hex (64 chars).
std::string Sha256Hex(std::string_view data);

/// Incremental hasher for multi-part inputs (e.g. argument lists).
class Sha256Hasher {
 public:
  Sha256Hasher();
  void Update(std::string_view data);
  Sha256Digest Finish();

 private:
  void Compress(const uint8_t block[64]);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buffer_{};
  size_t buffered_ = 0;
};

}  // namespace lo
