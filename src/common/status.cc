#include "common/status.h"

namespace lo {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kTrap: return "Trap";
    case StatusCode::kWrongNode: return "WrongNode";
    case StatusCode::kNotPrimary: return "NotPrimary";
    case StatusCode::kWrongShard: return "WrongShard";
    case StatusCode::kEpochBehind: return "EpochBehind";
    case StatusCode::kTenantThrottled: return "TenantThrottled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lo
