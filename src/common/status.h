// Status / Result<T>: error propagation for the LambdaObjects libraries.
//
// The storage stack follows the LevelDB convention of returning rich
// status objects rather than throwing: most failures (key not found,
// corrupted block, replica unavailable, VM trap) are expected runtime
// conditions, not programming errors. Exceptions are reserved for
// violated preconditions (see LO_CHECK in log.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace lo {

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,
  kCorruption,
  kInvalidArgument,
  kIOError,
  kAborted,
  kTimeout,
  kUnavailable,
  kResourceExhausted,
  kFailedPrecondition,
  kTrap,           // LambdaVM execution fault (bounds, fuel, bad opcode)
  kWrongNode,      // request routed to a node that does not own the shard
  kNotPrimary,     // mutation sent to a backup replica
  kWrongShard,     // object's microshard moved; refresh the directory
  kEpochBehind,    // follower read behind the client's epoch token; retry at primary
  kTenantThrottled,  // tenant over its admission/fuel budget; back off, not a fault
};

/// Human-readable name of a status code, e.g. "NotFound".
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "") { return {StatusCode::kNotFound, std::move(m)}; }
  static Status Corruption(std::string m = "") { return {StatusCode::kCorruption, std::move(m)}; }
  static Status InvalidArgument(std::string m = "") { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status IOError(std::string m = "") { return {StatusCode::kIOError, std::move(m)}; }
  static Status Aborted(std::string m = "") { return {StatusCode::kAborted, std::move(m)}; }
  static Status Timeout(std::string m = "") { return {StatusCode::kTimeout, std::move(m)}; }
  static Status Unavailable(std::string m = "") { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status ResourceExhausted(std::string m = "") { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status FailedPrecondition(std::string m = "") { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Trap(std::string m = "") { return {StatusCode::kTrap, std::move(m)}; }
  static Status WrongNode(std::string m = "") { return {StatusCode::kWrongNode, std::move(m)}; }
  static Status NotPrimary(std::string m = "") { return {StatusCode::kNotPrimary, std::move(m)}; }
  static Status WrongShard(std::string m = "") { return {StatusCode::kWrongShard, std::move(m)}; }
  static Status EpochBehind(std::string m = "") { return {StatusCode::kEpochBehind, std::move(m)}; }
  static Status TenantThrottled(std::string m = "") { return {StatusCode::kTenantThrottled, std::move(m)}; }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  bool IsNotFound() const noexcept { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const noexcept { return code_ == StatusCode::kCorruption; }
  bool IsTimeout() const noexcept { return code_ == StatusCode::kTimeout; }
  bool IsUnavailable() const noexcept { return code_ == StatusCode::kUnavailable; }
  bool IsTrap() const noexcept { return code_ == StatusCode::kTrap; }
  bool IsTenantThrottled() const noexcept { return code_ == StatusCode::kTenantThrottled; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Like absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {    // NOLINT implicit
    if (status_.ok()) status_ = Status::InvalidArgument("Result built from OK status");
  }

  bool ok() const noexcept { return value_.has_value(); }
  const Status& status() const noexcept { return status_; }

  /// Precondition: ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }
  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace lo

// Propagate errors up the stack; usable in functions returning Status.
#define LO_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::lo::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                  \
  } while (0)

// Evaluate a Result<T> expression, binding the value or returning the error.
#define LO_ASSIGN_OR_RETURN(lhs, expr)          \
  auto LO_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!LO_CONCAT_(_res_, __LINE__).ok())        \
    return LO_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(LO_CONCAT_(_res_, __LINE__)).value()

#define LO_CONCAT_INNER_(a, b) a##b
#define LO_CONCAT_(a, b) LO_CONCAT_INNER_(a, b)

// Coroutine flavors (functions returning Task<Status> / Task<Result<T>>).
#define LO_CO_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::lo::Status _st = (expr);                  \
    if (!_st.ok()) co_return _st;               \
  } while (0)

#define LO_CO_ASSIGN_OR_RETURN(lhs, expr)        \
  auto LO_CONCAT_(_res_, __LINE__) = (expr);     \
  if (!LO_CONCAT_(_res_, __LINE__).ok())         \
    co_return LO_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(LO_CONCAT_(_res_, __LINE__)).value()
