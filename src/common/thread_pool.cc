#include "common/thread_pool.h"

#include <algorithm>

namespace lo {

ThreadPool::ThreadPool(size_t threads) {
  size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::DrainBatch(std::unique_lock<std::mutex>& lock) {
  while (batch_ != nullptr && batch_->next < batch_->tasks.size()) {
    size_t index = batch_->next++;
    Batch* batch = batch_;
    lock.unlock();
    batch->tasks[index]();
    lock.lock();
    batch->finished++;
    if (batch == batch_ && batch->finished == batch->tasks.size()) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_ || (batch_ != nullptr && batch_->next < batch_->tasks.size());
    });
    if (stop_) return;
    DrainBatch(lock);
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  Batch batch;
  batch.tasks = std::move(tasks);
  std::unique_lock<std::mutex> lock(mu_);
  batch_ = &batch;
  work_cv_.notify_all();
  // The caller thread works too: with every worker busy elsewhere the
  // batch still makes progress.
  DrainBatch(lock);
  done_cv_.wait(lock, [&] { return batch.finished == batch.tasks.size(); });
  batch_ = nullptr;
}

}  // namespace lo
