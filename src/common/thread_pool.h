// Small fixed-size worker pool for CPU-parallel storage maintenance
// (parallel sub-compactions and per-shard memtable flush builds). The
// pool is deliberately minimal: one blocking RunAll primitive, no
// futures, no per-task results — callers stage their outputs in
// task-local state and merge after RunAll returns.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lo {

class ThreadPool {
 public:
  /// Spawns `threads` persistent workers (clamped to >= 1).
  explicit ThreadPool(size_t threads);
  /// Joins the workers. Must not be called while RunAll is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every task and returns once all have finished. The calling
  /// thread participates (it drains tasks alongside the workers), so a
  /// pool of N threads gives N+1-way parallelism and RunAll never
  /// deadlocks even with a single busy worker. Reentrant RunAll from
  /// inside a task is not supported.
  void RunAll(std::vector<std::function<void()>> tasks);

  size_t threads() const { return workers_.size(); }

 private:
  struct Batch {
    std::vector<std::function<void()>> tasks;
    size_t next = 0;      // next task index to claim
    size_t finished = 0;  // tasks completed
  };

  void WorkerLoop();
  /// Claims and runs tasks from the current batch until none are left.
  /// Precondition: caller holds `lock`. Returns with `lock` held.
  void DrainBatch(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a batch arrived / stop
  std::condition_variable done_cv_;  // RunAll caller: batch finished
  Batch* batch_ = nullptr;           // owned by the RunAll frame
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lo
