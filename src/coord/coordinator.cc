#include "coord/coordinator.h"

#include <algorithm>

#include "common/coding.h"
#include "common/log.h"

namespace lo::coord {
namespace {

// Command tags.
constexpr char kTagSetShard = 'S';
constexpr char kTagNodeDead = 'D';
constexpr char kTagNodeAlive = 'A';
constexpr char kTagPlace = 'P';
constexpr char kTagNoop = 'N';
constexpr char kTagHashShards = 'H';

}  // namespace

bool ShardConfig::Contains(sim::NodeId node) const {
  if (primary == node) return true;
  return std::find(backups.begin(), backups.end(), node) != backups.end();
}

std::string CmdSetShard(ShardId shard, const ShardConfig& config) {
  std::string out(1, kTagSetShard);
  PutVarint32(&out, shard);
  PutVarint64(&out, config.epoch);
  PutVarint32(&out, config.primary);
  PutVarint32(&out, static_cast<uint32_t>(config.backups.size()));
  for (sim::NodeId backup : config.backups) PutVarint32(&out, backup);
  return out;
}

std::string CmdNodeDead(sim::NodeId node) {
  std::string out(1, kTagNodeDead);
  PutVarint32(&out, node);
  return out;
}

std::string CmdNodeAlive(sim::NodeId node) {
  std::string out(1, kTagNodeAlive);
  PutVarint32(&out, node);
  return out;
}

std::string CmdPlaceObject(std::string_view oid, ShardId shard) {
  std::string out(1, kTagPlace);
  PutLengthPrefixed(&out, oid);
  PutVarint32(&out, shard);
  return out;
}

std::string CmdSetHashShards(uint32_t hash_shards) {
  std::string out(1, kTagHashShards);
  PutVarint32(&out, hash_shards);
  return out;
}

Status ClusterState::Apply(std::string_view command) {
  if (command.empty()) return Status::Corruption("empty command");
  Reader reader{command.substr(1)};
  switch (command[0]) {
    case kTagSetShard: {
      uint32_t shard = 0, primary = 0, num_backups = 0;
      ShardConfig config;
      if (!reader.GetVarint32(&shard) || !reader.GetVarint64(&config.epoch) ||
          !reader.GetVarint32(&primary) || !reader.GetVarint32(&num_backups)) {
        return Status::Corruption("bad SetShard");
      }
      config.primary = primary;
      for (uint32_t i = 0; i < num_backups; i++) {
        uint32_t backup = 0;
        if (!reader.GetVarint32(&backup)) return Status::Corruption("bad SetShard");
        config.backups.push_back(backup);
      }
      shards[shard] = std::move(config);
      return Status::OK();
    }
    case kTagNodeDead: {
      uint32_t node = 0;
      if (!reader.GetVarint32(&node)) return Status::Corruption("bad NodeDead");
      dead.insert(node);
      return Status::OK();
    }
    case kTagNodeAlive: {
      uint32_t node = 0;
      if (!reader.GetVarint32(&node)) return Status::Corruption("bad NodeAlive");
      dead.erase(node);
      return Status::OK();
    }
    case kTagPlace: {
      std::string_view oid;
      uint32_t shard = 0;
      if (!reader.GetLengthPrefixed(&oid) || !reader.GetVarint32(&shard)) {
        return Status::Corruption("bad Place");
      }
      directory[std::string(oid)] = shard;
      return Status::OK();
    }
    case kTagHashShards: {
      uint32_t n = 0;
      if (!reader.GetVarint32(&n)) return Status::Corruption("bad HashShards");
      hash_shards = n;
      return Status::OK();
    }
    case kTagNoop:
      return Status::OK();
    default:
      return Status::Corruption("unknown command tag");
  }
}

std::string ClusterState::Encode() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(shards.size()));
  for (const auto& [shard, config] : shards) {
    PutVarint32(&out, shard);
    PutVarint64(&out, config.epoch);
    PutVarint32(&out, config.primary);
    PutVarint32(&out, static_cast<uint32_t>(config.backups.size()));
    for (sim::NodeId backup : config.backups) PutVarint32(&out, backup);
  }
  PutVarint32(&out, static_cast<uint32_t>(dead.size()));
  for (sim::NodeId node : dead) PutVarint32(&out, node);
  PutVarint32(&out, static_cast<uint32_t>(directory.size()));
  for (const auto& [oid, shard] : directory) {
    PutLengthPrefixed(&out, oid);
    PutVarint32(&out, shard);
  }
  PutVarint32(&out, hash_shards);
  return out;
}

Result<ClusterState> ClusterState::Decode(std::string_view bytes) {
  ClusterState state;
  Reader reader{bytes};
  uint32_t num_shards = 0;
  if (!reader.GetVarint32(&num_shards)) return Status::Corruption("bad state");
  for (uint32_t i = 0; i < num_shards; i++) {
    uint32_t shard = 0, primary = 0, num_backups = 0;
    ShardConfig config;
    if (!reader.GetVarint32(&shard) || !reader.GetVarint64(&config.epoch) ||
        !reader.GetVarint32(&primary) || !reader.GetVarint32(&num_backups)) {
      return Status::Corruption("bad state shard");
    }
    config.primary = primary;
    for (uint32_t j = 0; j < num_backups; j++) {
      uint32_t backup = 0;
      if (!reader.GetVarint32(&backup)) return Status::Corruption("bad state backup");
      config.backups.push_back(backup);
    }
    state.shards[shard] = std::move(config);
  }
  uint32_t num_dead = 0;
  if (!reader.GetVarint32(&num_dead)) return Status::Corruption("bad state dead");
  for (uint32_t i = 0; i < num_dead; i++) {
    uint32_t node = 0;
    if (!reader.GetVarint32(&node)) return Status::Corruption("bad state dead");
    state.dead.insert(node);
  }
  uint32_t num_placed = 0;
  if (!reader.GetVarint32(&num_placed)) return Status::Corruption("bad directory");
  for (uint32_t i = 0; i < num_placed; i++) {
    std::string_view oid;
    uint32_t shard = 0;
    if (!reader.GetLengthPrefixed(&oid) || !reader.GetVarint32(&shard)) {
      return Status::Corruption("bad directory entry");
    }
    state.directory[std::string(oid)] = shard;
  }
  // hash_shards was appended after the fact; decode it when present so
  // encodings from before the field round-trip as hash_shards == 0.
  if (!reader.rest().empty() && !reader.GetVarint32(&state.hash_shards)) {
    return Status::Corruption("bad hash_shards");
  }
  return state;
}

// ---------------------------------------------------------- CoordinatorNode

CoordinatorNode::CoordinatorNode(sim::RpcEndpoint* rpc,
                                 std::vector<sim::NodeId> group,
                                 CoordinatorOptions options)
    : rpc_(rpc),
      group_(std::move(group)),
      options_(options),
      acceptors_(rpc),
      proposer_(rpc, group_) {
  std::sort(group_.begin(), group_.end());
  is_leader_ = (rpc_->node() == group_.front());
  rpc_->Handle("coord.heartbeat", [this](sim::NodeId from, std::string payload) {
    return HandleHeartbeat(from, std::move(payload));
  });
  rpc_->Handle("coord.get_config", [this](sim::NodeId from, std::string payload) {
    return HandleGetConfig(from, std::move(payload));
  });
  rpc_->Handle("coord.place", [this](sim::NodeId from, std::string payload) {
    return HandlePlace(from, std::move(payload));
  });
  rpc_->Handle("coord.ping", [this](sim::NodeId from, std::string payload) {
    return HandleLeaderPing(from, std::move(payload));
  });
}

sim::NodeId CoordinatorNode::ExpectedLeader() const {
  for (sim::NodeId node : group_) {
    if (!coord_suspected_.contains(node)) return node;
  }
  return group_.front();
}

sim::Task<Status> CoordinatorNode::Bootstrap(ClusterState initial) {
  LO_CHECK_MSG(is_leader_, "bootstrap on non-leader");
  for (const auto& [shard, config] : initial.shards) {
    auto slot = co_await ProposeCommand(CmdSetShard(shard, config));
    if (!slot.ok()) co_return slot.status();
  }
  for (const auto& [oid, shard] : initial.directory) {
    auto slot = co_await ProposeCommand(CmdPlaceObject(oid, shard));
    if (!slot.ok()) co_return slot.status();
  }
  co_return Status::OK();
}

void CoordinatorNode::Start() {
  if (started_) return;
  started_ = true;
  sim::Detach(FailureDetectionLoop());
  sim::Detach(LeaderProbeLoop());
}

sim::Task<Result<uint64_t>> CoordinatorNode::ProposeCommand(std::string command) {
  if (!is_leader_) co_return Status::NotPrimary("not coordinator leader");
  // Propose into successive slots until our command is the chosen value
  // (an older leader's command may own an earlier slot — apply it).
  for (int tries = 0; tries < 64; tries++) {
    uint64_t slot = next_slot_;
    auto chosen = co_await proposer_.Propose(slot, command);
    if (!chosen.ok()) co_return chosen.status();
    next_slot_ = slot + 1;
    Status applied = state_.Apply(*chosen);
    if (!applied.ok()) co_return applied;
    if (*chosen == command) co_return slot;
  }
  co_return Status::Unavailable("could not claim a log slot");
}

sim::Task<Status> CoordinatorNode::RecoverLog() {
  // Drive slots forward until we claim a fresh one with a no-op; every
  // previously chosen command gets applied along the way.
  std::string noop(1, kTagNoop);
  for (int tries = 0; tries < 1024; tries++) {
    auto chosen = co_await proposer_.Propose(next_slot_, noop);
    if (!chosen.ok()) co_return chosen.status();
    next_slot_++;
    LO_CO_RETURN_IF_ERROR(state_.Apply(*chosen));
    if (*chosen == noop) co_return Status::OK();
  }
  co_return Status::Unavailable("log recovery did not converge");
}

sim::Task<Result<std::string>> CoordinatorNode::HandleHeartbeat(sim::NodeId from,
                                                                std::string) {
  metrics_.heartbeats_received++;
  last_heartbeat_[from] = rpc_->sim().Now();
  // Reply carries the config version (applied log length) so nodes can
  // refetch when it moved — the coordinator stays off the critical path.
  std::string reply;
  PutVarint64(&reply, next_slot_);
  co_return reply;
}

sim::Task<Result<std::string>> CoordinatorNode::HandleGetConfig(sim::NodeId,
                                                                std::string) {
  if (!is_leader_) co_return Status::NotPrimary("ask the leader");
  co_return state_.Encode();
}

sim::Task<Result<std::string>> CoordinatorNode::HandlePlace(sim::NodeId,
                                                            std::string payload) {
  if (!is_leader_) co_return Status::NotPrimary("ask the leader");
  Reader reader{payload};
  std::string_view oid;
  uint32_t shard = 0;
  if (!reader.GetLengthPrefixed(&oid) || !reader.GetVarint32(&shard)) {
    co_return Status::Corruption("bad place request");
  }
  auto slot = co_await ProposeCommand(CmdPlaceObject(oid, shard));
  if (!slot.ok()) co_return slot.status();
  co_return std::string("ok");
}

sim::Task<Result<std::string>> CoordinatorNode::HandleLeaderPing(sim::NodeId,
                                                                 std::string) {
  co_return std::string(is_leader_ ? "leader" : "follower");
}

sim::Task<void> CoordinatorNode::LeaderProbeLoop() {
  // Followers probe every coordinator ahead of them; if all of them are
  // unreachable repeatedly, the next-lowest id takes over leadership.
  std::map<sim::NodeId, int> failures;
  for (;;) {
    co_await rpc_->sim().Sleep(options_.leader_probe_interval);
    if (is_leader_) continue;
    for (sim::NodeId node : group_) {
      if (node >= rpc_->node()) break;
      auto reply = co_await rpc_->Call(node, "coord.ping", "",
                                       options_.leader_probe_interval);
      if (reply.ok()) {
        failures[node] = 0;
        coord_suspected_.erase(node);
      } else if (++failures[node] >= options_.leader_probe_failures) {
        coord_suspected_.insert(node);
      }
    }
    if (ExpectedLeader() == rpc_->node() && !is_leader_) {
      // Take over: recover the replicated log, then start acting.
      Status recovered = co_await RecoverLog();
      if (recovered.ok()) {
        is_leader_ = true;
        metrics_.leadership_takeovers++;
        LO_INFO << "coordinator " << rpc_->node() << " took over leadership";
      }
    }
  }
}

sim::Task<void> CoordinatorNode::FailureDetectionLoop() {
  for (;;) {
    co_await rpc_->sim().Sleep(options_.heartbeat_interval);
    if (!is_leader_) continue;
    sim::Time now = rpc_->sim().Now();
    std::vector<sim::NodeId> expired;
    for (const auto& [node, last_seen] : last_heartbeat_) {
      if (state_.dead.contains(node)) continue;
      if (now - last_seen > options_.node_timeout) expired.push_back(node);
    }
    for (sim::NodeId node : expired) {
      co_await HandleNodeFailure(node);
    }
  }
}

sim::Task<void> CoordinatorNode::HandleNodeFailure(sim::NodeId node) {
  LO_INFO << "coordinator: node " << node << " missed heartbeats, reconfiguring";
  auto slot = co_await ProposeCommand(CmdNodeDead(node));
  if (!slot.ok()) co_return;

  // Reconfigure every shard the dead node participated in.
  std::vector<std::pair<ShardId, ShardConfig>> updates;
  for (const auto& [shard, config] : state_.shards) {
    if (!config.Contains(node)) continue;
    ShardConfig updated = config;
    updated.epoch++;
    updated.backups.erase(
        std::remove(updated.backups.begin(), updated.backups.end(), node),
        updated.backups.end());
    if (updated.primary == node) {
      if (updated.backups.empty()) {
        LO_WARN << "shard " << shard << " lost its last replica";
        continue;
      }
      updated.primary = updated.backups.front();
      updated.backups.erase(updated.backups.begin());
    }
    updates.emplace_back(shard, std::move(updated));
  }
  for (auto& [shard, config] : updates) {
    auto update_slot = co_await ProposeCommand(CmdSetShard(shard, config));
    if (!update_slot.ok()) co_return;
    metrics_.reconfigurations++;
    // Notify the survivors so they switch roles immediately.
    PushConfigTo(config.primary);
    for (sim::NodeId backup : config.backups) PushConfigTo(backup);
  }
}

void CoordinatorNode::PushConfigTo(sim::NodeId node) {
  sim::Detach([](CoordinatorNode* self, sim::NodeId node) -> sim::Task<void> {
    auto reply = co_await self->rpc_->Call(node, "config.update",
                                           self->state_.Encode(), sim::Millis(20));
    (void)reply;  // best effort: nodes also poll via CoordClient
  }(this, node));
}

// -------------------------------------------------------------- CoordClient

CoordClient::CoordClient(sim::RpcEndpoint* rpc, std::vector<sim::NodeId> coordinators,
                         ConfigCallback on_config)
    : rpc_(rpc), coordinators_(std::move(coordinators)), on_config_(std::move(on_config)) {
  rpc_->Handle("config.update", [this](sim::NodeId from, std::string payload) {
    return HandleConfigPush(from, std::move(payload));
  });
}

void CoordClient::Start(sim::Duration heartbeat_interval) {
  if (started_) return;
  started_ = true;
  sim::Detach(HeartbeatLoop(heartbeat_interval));
}

sim::Task<void> CoordClient::HeartbeatLoop(sim::Duration interval) {
  uint64_t seen_version = 0;
  for (;;) {
    uint64_t latest = seen_version;
    for (sim::NodeId coordinator : coordinators_) {
      auto reply = co_await rpc_->Call(coordinator, "coord.heartbeat", "", interval);
      if (!reply.ok()) continue;
      Reader reader{*reply};
      uint64_t version = 0;
      if (reader.GetVarint64(&version)) latest = std::max(latest, version);
    }
    if (latest > seen_version) {
      seen_version = latest;
      auto state = co_await FetchConfig();
      if (state.ok() && on_config_) on_config_(*state);
    }
    co_await rpc_->sim().Sleep(interval);
  }
}

sim::Task<Result<ClusterState>> CoordClient::FetchConfig() {
  for (sim::NodeId coordinator : coordinators_) {
    auto reply = co_await rpc_->Call(coordinator, "coord.get_config", "",
                                     sim::Millis(20));
    if (!reply.ok()) continue;
    auto state = ClusterState::Decode(*reply);
    if (state.ok()) co_return state;
  }
  co_return Status::Unavailable("no coordinator answered");
}

sim::Task<Result<std::string>> CoordClient::HandleConfigPush(sim::NodeId,
                                                             std::string payload) {
  auto state = ClusterState::Decode(payload);
  if (!state.ok()) co_return state.status();
  if (on_config_) on_config_(*state);
  co_return std::string("ok");
}

}  // namespace lo::coord
