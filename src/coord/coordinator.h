// Cluster coordination service (paper §4.2.1): a Paxos-replicated
// configuration state machine plus heartbeat failure detection.
//
// The coordinator is only on the critical path during reconfiguration:
// storage nodes heartbeat it and cache the shard map; when a node dies,
// the leader proposes a config change (promoting a backup to primary,
// bumping the shard epoch) through the replicated log and pushes the new
// config to the affected nodes. Clients that were waiting on the dead
// node time out and retry against the new primary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "coord/paxos.h"
#include "obs/metrics.h"
#include "sim/cpu.h"
#include "sim/rpc.h"

namespace lo::coord {

using ShardId = uint32_t;

struct ShardConfig {
  uint64_t epoch = 0;
  sim::NodeId primary = 0;
  std::vector<sim::NodeId> backups;

  bool Contains(sim::NodeId node) const;
};

struct ClusterState {
  std::map<ShardId, ShardConfig> shards;
  std::set<sim::NodeId> dead;
  /// Microshard directory: explicit object placements; objects not
  /// listed here hash onto a shard (cluster layer policy).
  std::map<std::string, ShardId> directory;
  /// Size of the hash placement space. 0 (the default) means "hash over
  /// shards.size()", the original policy. A nonzero value pins the hash
  /// space so shards added later (elastic scale-out) receive objects
  /// only through directory entries — adding a node never remaps
  /// unrelated objects, it only gives migration somewhere to go.
  uint32_t hash_shards = 0;

  std::string Encode() const;
  static Result<ClusterState> Decode(std::string_view bytes);
  /// Applies one replicated command; unknown commands are errors.
  Status Apply(std::string_view command);
};

// Replicated commands (string-encoded, see coordinator.cc):
std::string CmdSetShard(ShardId shard, const ShardConfig& config);
std::string CmdNodeDead(sim::NodeId node);
std::string CmdNodeAlive(sim::NodeId node);
std::string CmdPlaceObject(std::string_view oid, ShardId shard);
std::string CmdSetHashShards(uint32_t hash_shards);

struct CoordinatorOptions {
  sim::Duration heartbeat_interval = sim::Millis(10);
  sim::Duration node_timeout = sim::Millis(60);
  sim::Duration leader_probe_interval = sim::Millis(25);
  int leader_probe_failures = 4;
};

/// One member of the coordinator replica group. All members host
/// acceptors; the active leader (lowest live id) runs failure detection
/// and serves config queries/mutations.
class CoordinatorNode {
 public:
  CoordinatorNode(sim::RpcEndpoint* rpc, std::vector<sim::NodeId> group,
                  CoordinatorOptions options = {});

  /// Installs the bootstrap configuration (leader only; proposes it).
  sim::Task<Status> Bootstrap(ClusterState initial);

  /// Starts heartbeat monitoring + leadership probing loops.
  void Start();

  bool is_leader() const { return is_leader_; }
  const ClusterState& state() const { return state_; }
  uint64_t applied_slots() const { return next_slot_; }

  /// Proposes a command through Paxos and applies everything up to it.
  /// Leader-only; returns the slot it landed in.
  sim::Task<Result<uint64_t>> ProposeCommand(std::string command);

  struct Metrics {
    uint64_t reconfigurations = 0;
    uint64_t heartbeats_received = 0;
    uint64_t leadership_takeovers = 0;
  };
  const Metrics& metrics() const { return metrics_; }

  /// Publishes this coordinator's counters on `registry` under `node`.
  void RegisterMetrics(obs::MetricsRegistry* registry, uint32_t node) {
    registry->RegisterExternal("coord.reconfigurations", node,
                               &metrics_.reconfigurations);
    registry->RegisterExternal("coord.heartbeats_received", node,
                               &metrics_.heartbeats_received);
    registry->RegisterExternal("coord.leadership_takeovers", node,
                               &metrics_.leadership_takeovers);
  }

 private:
  sim::Task<Result<std::string>> HandleHeartbeat(sim::NodeId from, std::string payload);
  sim::Task<Result<std::string>> HandleGetConfig(sim::NodeId from, std::string payload);
  sim::Task<Result<std::string>> HandlePlace(sim::NodeId from, std::string payload);
  sim::Task<Result<std::string>> HandleLeaderPing(sim::NodeId from, std::string payload);
  sim::Task<void> FailureDetectionLoop();
  sim::Task<void> LeaderProbeLoop();
  sim::Task<void> HandleNodeFailure(sim::NodeId node);
  sim::Task<Status> RecoverLog();
  void PushConfigTo(sim::NodeId node);
  sim::NodeId ExpectedLeader() const;

  sim::RpcEndpoint* rpc_;
  std::vector<sim::NodeId> group_;  // coordinator replica group, sorted
  CoordinatorOptions options_;
  AcceptorHost acceptors_;
  Proposer proposer_;
  bool is_leader_ = false;
  bool started_ = false;
  uint64_t next_slot_ = 0;  // next unused log slot (leader view)
  ClusterState state_;
  std::map<sim::NodeId, sim::Time> last_heartbeat_;
  std::set<sim::NodeId> coord_suspected_;
  Metrics metrics_;
};

/// Runs on every storage node: periodic heartbeats to the coordinator
/// group and a callback for pushed config updates.
class CoordClient {
 public:
  using ConfigCallback = std::function<void(const ClusterState&)>;

  CoordClient(sim::RpcEndpoint* rpc, std::vector<sim::NodeId> coordinators,
              ConfigCallback on_config);

  void Start(sim::Duration heartbeat_interval = sim::Millis(10));

  /// Pulls the current config from whichever coordinator answers.
  sim::Task<Result<ClusterState>> FetchConfig();

 private:
  sim::Task<Result<std::string>> HandleConfigPush(sim::NodeId from, std::string payload);
  sim::Task<void> HeartbeatLoop(sim::Duration interval);

  sim::RpcEndpoint* rpc_;
  std::vector<sim::NodeId> coordinators_;
  ConfigCallback on_config_;
  bool started_ = false;
};

}  // namespace lo::coord
