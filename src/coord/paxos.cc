#include "coord/paxos.h"

#include "common/coding.h"
#include "common/log.h"

namespace lo::coord {

void Ballot::EncodeTo(std::string* dst) const {
  PutVarint64(dst, round);
  PutVarint32(dst, node);
}

bool Ballot::DecodeFrom(Reader* reader, Ballot* out) {
  uint32_t node = 0;
  if (!reader->GetVarint64(&out->round) || !reader->GetVarint32(&node)) return false;
  out->node = node;
  return true;
}

Acceptor::PrepareReply Acceptor::HandlePrepare(Ballot ballot) {
  PrepareReply reply;
  if (promised_.has_value() && *promised_ >= ballot) {
    return reply;  // rejected: already promised a higher ballot
  }
  promised_ = ballot;
  reply.promised = true;
  reply.accepted_ballot = accepted_ballot_;
  reply.accepted_value = accepted_value_;
  return reply;
}

Acceptor::AcceptReply Acceptor::HandleAccept(Ballot ballot, std::string_view value) {
  AcceptReply reply;
  if (promised_.has_value() && *promised_ > ballot) {
    return reply;  // rejected
  }
  promised_ = ballot;
  accepted_ballot_ = ballot;
  accepted_value_.assign(value);
  reply.accepted = true;
  return reply;
}

// -------------------------------------------------------------- AcceptorHost

AcceptorHost::AcceptorHost(sim::RpcEndpoint* rpc) : rpc_(rpc) {
  rpc_->Handle("paxos.prepare", [this](sim::NodeId from, std::string payload) {
    return HandlePrepare(from, std::move(payload));
  });
  rpc_->Handle("paxos.accept", [this](sim::NodeId from, std::string payload) {
    return HandleAccept(from, std::move(payload));
  });
}

const Acceptor* AcceptorHost::acceptor(uint64_t slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : &it->second;
}

sim::Task<Result<std::string>> AcceptorHost::HandlePrepare(sim::NodeId,
                                                           std::string payload) {
  Reader reader{payload};
  uint64_t slot = 0;
  Ballot ballot;
  if (!reader.GetVarint64(&slot) || !Ballot::DecodeFrom(&reader, &ballot)) {
    co_return Status::Corruption("bad prepare");
  }
  auto reply = slots_[slot].HandlePrepare(ballot);
  std::string out;
  out.push_back(reply.promised ? 1 : 0);
  out.push_back(reply.accepted_ballot.has_value() ? 1 : 0);
  if (reply.accepted_ballot.has_value()) {
    reply.accepted_ballot->EncodeTo(&out);
    PutLengthPrefixed(&out, reply.accepted_value);
  }
  co_return out;
}

sim::Task<Result<std::string>> AcceptorHost::HandleAccept(sim::NodeId,
                                                          std::string payload) {
  Reader reader{payload};
  uint64_t slot = 0;
  Ballot ballot;
  std::string_view value;
  if (!reader.GetVarint64(&slot) || !Ballot::DecodeFrom(&reader, &ballot) ||
      !reader.GetLengthPrefixed(&value)) {
    co_return Status::Corruption("bad accept");
  }
  auto reply = slots_[slot].HandleAccept(ballot, value);
  std::string out;
  out.push_back(reply.accepted ? 1 : 0);
  co_return out;
}

// ------------------------------------------------------------------ Proposer

Proposer::Proposer(sim::RpcEndpoint* rpc, std::vector<sim::NodeId> acceptors)
    : rpc_(rpc), acceptors_(std::move(acceptors)) {
  LO_CHECK_MSG(!acceptors_.empty(), "empty acceptor set");
}

sim::Task<Result<std::string>> Proposer::Propose(uint64_t slot, std::string value) {
  size_t majority = acceptors_.size() / 2 + 1;

  for (int attempt = 0; attempt < max_rounds; attempt++) {
    Ballot ballot{next_round_++, rpc_->node()};

    // Phase 1: prepare.
    std::string prepare;
    PutVarint64(&prepare, slot);
    ballot.EncodeTo(&prepare);
    std::vector<sim::Future<Result<std::string>>> prepare_acks;
    for (sim::NodeId acceptor : acceptors_) {
      prepare_acks.emplace_back(
          rpc_->Call(acceptor, "paxos.prepare", prepare, rpc_timeout));
    }
    size_t promises = 0;
    Ballot best_accepted{};
    std::string adopted = value;
    bool saw_accepted = false;
    for (auto& ack : prepare_acks) {
      auto reply = co_await ack.Wait();
      if (!reply.ok() || reply->size() < 2) continue;
      if ((*reply)[0] != 1) continue;
      promises++;
      if ((*reply)[1] == 1) {
        Reader reader{std::string_view(*reply).substr(2)};
        Ballot accepted_ballot;
        std::string_view accepted_value;
        if (Ballot::DecodeFrom(&reader, &accepted_ballot) &&
            reader.GetLengthPrefixed(&accepted_value)) {
          if (!saw_accepted || accepted_ballot > best_accepted) {
            best_accepted = accepted_ballot;
            adopted.assign(accepted_value);
            saw_accepted = true;
          }
        }
      }
    }
    if (promises < majority) {
      // Contention or partition: back off (jittered) and retry higher.
      co_await rpc_->sim().Sleep(static_cast<sim::Duration>(
          rpc_->sim().rng().Uniform(static_cast<uint64_t>(sim::Millis(2)))));
      continue;
    }

    // Phase 2: accept (must propose the adopted value).
    std::string accept;
    PutVarint64(&accept, slot);
    ballot.EncodeTo(&accept);
    PutLengthPrefixed(&accept, adopted);
    std::vector<sim::Future<Result<std::string>>> accept_acks;
    for (sim::NodeId acceptor : acceptors_) {
      accept_acks.emplace_back(
          rpc_->Call(acceptor, "paxos.accept", accept, rpc_timeout));
    }
    size_t accepts = 0;
    for (auto& ack : accept_acks) {
      auto reply = co_await ack.Wait();
      if (reply.ok() && !reply->empty() && (*reply)[0] == 1) accepts++;
    }
    if (accepts >= majority) {
      co_return adopted;  // chosen
    }
    co_await rpc_->sim().Sleep(static_cast<sim::Duration>(
        rpc_->sim().rng().Uniform(static_cast<uint64_t>(sim::Millis(2)))));
  }
  co_return Status::Unavailable("paxos: no majority after max rounds");
}

}  // namespace lo::coord
