// Single-decree Paxos (Lamport's Synod), the consensus core of the
// cluster coordination service (paper §4.2.1: "replicated using Paxos to
// ensure availability at all times").
//
// One Acceptor instance exists per log slot on each coordinator node; a
// Proposer drives one slot to a decision over RPC. Safety holds under
// arbitrary message loss, duplication and reordering; liveness needs a
// majority reachable and (as always) eventually one active proposer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/status.h"
#include "sim/rpc.h"

namespace lo::coord {

/// Totally ordered ballot: (round, proposing node) — node id breaks ties.
struct Ballot {
  uint64_t round = 0;
  sim::NodeId node = 0;

  friend auto operator<=>(const Ballot&, const Ballot&) = default;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Reader* reader, Ballot* out);
};

/// Acceptor state for one slot.
class Acceptor {
 public:
  struct PrepareReply {
    bool promised = false;
    std::optional<Ballot> accepted_ballot;
    std::string accepted_value;
  };
  PrepareReply HandlePrepare(Ballot ballot);

  struct AcceptReply {
    bool accepted = false;
  };
  AcceptReply HandleAccept(Ballot ballot, std::string_view value);

  const std::optional<Ballot>& promised() const { return promised_; }
  const std::optional<Ballot>& accepted_ballot() const { return accepted_ballot_; }
  const std::string& accepted_value() const { return accepted_value_; }

 private:
  std::optional<Ballot> promised_;
  std::optional<Ballot> accepted_ballot_;
  std::string accepted_value_;
};

/// Hosts the acceptor side for all slots on one coordinator node:
/// services "paxos.prepare" and "paxos.accept".
class AcceptorHost {
 public:
  explicit AcceptorHost(sim::RpcEndpoint* rpc);

  /// Learned decision for a slot, if any (updated on accepts this node
  /// saw; the ReplicatedCommandLog fills gaps by re-proposing).
  const Acceptor* acceptor(uint64_t slot) const;

 private:
  sim::Task<Result<std::string>> HandlePrepare(sim::NodeId from, std::string payload);
  sim::Task<Result<std::string>> HandleAccept(sim::NodeId from, std::string payload);

  sim::RpcEndpoint* rpc_;
  std::map<uint64_t, Acceptor> slots_;
};

/// Drives slots to consensus against a set of acceptor nodes.
class Proposer {
 public:
  Proposer(sim::RpcEndpoint* rpc, std::vector<sim::NodeId> acceptors);

  /// Runs the full two-phase protocol for `slot` proposing `value`.
  /// Returns the *chosen* value, which may differ from `value` if an
  /// earlier proposal was already accepted — the caller must check.
  sim::Task<Result<std::string>> Propose(uint64_t slot, std::string value);

  sim::Duration rpc_timeout = sim::Millis(20);
  int max_rounds = 16;

 private:
  sim::RpcEndpoint* rpc_;
  std::vector<sim::NodeId> acceptors_;
  uint64_t next_round_ = 1;
};

}  // namespace lo::coord
