#include "net/event_loop.h"

#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/log.h"

namespace lo::net {

int64_t EventLoop::NowUs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000 + ts.tv_nsec / 1000;
}

EventLoop::EventLoop(NetBackend backend) : poller_(MakePoller(backend)) {
  // Writes race peer hangups: a flush to a connection whose peer already
  // closed must surface as EPIPE from writev, not kill the process.
  static const int sigpipe_ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)sigpipe_ignored;
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  LO_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  current_tick_ = NowUs() / kTickUs;
  AddFd(wake_fd_, EPOLLIN, [this](uint32_t) {
    uint64_t drained;
    while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
}

void EventLoop::AddFd(int fd, uint32_t events, FdCallback callback) {
  poller_->Add(fd, events);
  fd_callbacks_[fd] = std::move(callback);
}

void EventLoop::ModFd(int fd, uint32_t events) { poller_->Mod(fd, events); }

void EventLoop::RemoveFd(int fd) {
  poller_->Del(fd);
  fd_callbacks_.erase(fd);
}

TimerId EventLoop::AddTimer(int64_t delay_us, std::function<void()> fn) {
  int64_t fire_at_us = NowUs() + std::max<int64_t>(0, delay_us);
  // A timer always fires on a *future* tick: firing "now" mid-iteration
  // would reorder it ahead of already-due work.
  int64_t fire_tick = std::max(current_tick_ + 1, fire_at_us / kTickUs);
  size_t slot_index = static_cast<size_t>(fire_tick) % kWheelSlots;
  TimerId id = next_timer_id_++;
  Slot& slot = wheel_[slot_index];
  slot.push_back(TimerEntry{id, fire_tick, std::move(fn)});
  timer_index_[id] = {slot_index, std::prev(slot.end())};
  armed_timers_++;
  return id;
}

bool EventLoop::CancelTimer(TimerId id) {
  auto it = timer_index_.find(id);
  if (it == timer_index_.end()) return false;
  wheel_[it->second.first].erase(it->second.second);
  timer_index_.erase(it);
  armed_timers_--;
  return true;
}

void EventLoop::AdvanceWheel(int64_t now_us) {
  int64_t now_tick = now_us / kTickUs;
  if (now_tick <= current_tick_ || armed_timers_ == 0) {
    current_tick_ = std::max(current_tick_, now_tick);
    return;
  }
  // Visit each slot between the last processed tick and now (at most one
  // full rotation — beyond that every slot has been seen once).
  int64_t steps = now_tick - current_tick_;
  size_t scan = steps >= static_cast<int64_t>(kWheelSlots)
                    ? kWheelSlots
                    : static_cast<size_t>(steps);
  std::vector<std::function<void()>> due;
  for (size_t i = 1; i <= scan; ++i) {
    Slot& slot = wheel_[static_cast<size_t>(current_tick_ + i) % kWheelSlots];
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->fire_tick <= now_tick) {
        due.push_back(std::move(it->fn));
        timer_index_.erase(it->id);
        it = slot.erase(it);
        armed_timers_--;
      } else {
        ++it;  // later rotation of this slot
      }
    }
  }
  current_tick_ = now_tick;
  for (auto& fn : due) fn();
}

int EventLoop::PollTimeoutMs() const {
  // With timers armed the loop ticks the wheel once per kTickUs; idle
  // loops sleep until an fd event or eventfd wakeup.
  return armed_timers_ > 0 ? static_cast<int>(kTickUs / 1000) : -1;
}

void EventLoop::RunInLoop(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.push_back(std::move(fn));
  }
  Wakeup();
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    stop_requested_ = true;
  }
  Wakeup();
}

void EventLoop::Wakeup() {
  uint64_t one = 1;
  ssize_t written = write(wake_fd_, &one, sizeof(one));
  (void)written;  // EAGAIN just means a wakeup is already queued
}

void EventLoop::DrainPending() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    batch.swap(pending_);
    if (stop_requested_) running_ = false;
  }
  for (auto& fn : batch) fn();
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    running_ = !stop_requested_;
  }
  PollEvent events[64];
  while (running_) {
    int n = poller_->Wait(events, 64, PollTimeoutMs());
    iterations_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      // Look the callback up fresh: an earlier callback in this batch may
      // have removed (or replaced) this fd.
      auto it = fd_callbacks_.find(events[i].fd);
      if (it == fd_callbacks_.end()) continue;
      // Copy: the callback may RemoveFd its own registration mid-call.
      FdCallback callback = it->second;
      callback(events[i].events);
    }
    AdvanceWheel(NowUs());
    DrainPending();
    // Everything this iteration produced is queued; coalesced flushes
    // drain it with one writev per dirty connection.
    if (end_of_iteration_) end_of_iteration_();
  }
}

}  // namespace lo::net
