// Non-blocking event loop: the reactor under net::RpcServer and
// net::RpcClient. Readiness notification is pluggable (net/poller.h):
// epoll by default, io_uring as the LO_NET_BACKEND=uring ablation arm.
//
// One thread calls Run(); everything else talks to the loop through
// RunInLoop (a mutex-guarded queue drained after each poll, with an
// eventfd wakeup so a sleeping loop notices immediately). Fd callbacks
// and timers always fire on the loop thread, so connection state needs
// no locking.
//
// Deadlines use a hashed timer wheel (512 slots × 1 ms ticks): insert
// and cancel are O(1), and the loop wakes at most once per tick while
// any timer is armed. 1 ms granularity is deliberate — RPC deadlines
// and reconnect backoffs are tens of milliseconds; sub-tick precision
// would buy nothing and cost a busier poll loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/poller.h"

namespace lo::net {

using TimerId = uint64_t;

class EventLoop {
 public:
  /// Bitmask passed to fd callbacks; values match EPOLLIN/EPOLLOUT etc.
  using FdCallback = std::function<void(uint32_t events)>;

  /// Default backend comes from LO_NET_BACKEND (epoll unless =uring).
  EventLoop() : EventLoop(NetBackendFromEnv()) {}
  explicit EventLoop(NetBackend backend);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// CLOCK_MONOTONIC in microseconds — the TCP transport's clock domain
  /// (shared by every process on the machine, so absolute frame
  /// deadlines compare across the loopback deployment).
  static int64_t NowUs();

  // --- loop-thread-only API (fds, timers) ------------------------------
  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback
  /// fires on the loop thread. The fd is not owned.
  void AddFd(int fd, uint32_t events, FdCallback callback);
  void ModFd(int fd, uint32_t events);
  /// Deregisters; pending events for the fd are discarded.
  void RemoveFd(int fd);

  /// Arms a one-shot timer `delay_us` from now. Returns an id valid
  /// until the timer fires or is cancelled.
  TimerId AddTimer(int64_t delay_us, std::function<void()> fn);
  /// Returns false if the timer already fired (or never existed).
  bool CancelTimer(TimerId id);

  // --- any-thread API ---------------------------------------------------
  /// Queues `fn` to run on the loop thread and wakes the loop.
  void RunInLoop(std::function<void()> fn);
  /// Stops Run() after the current iteration. Safe from any thread.
  void Stop();

  /// Runs the loop on the calling thread until Stop().
  void Run();
  /// Executes work queued with RunInLoop after the loop has stopped
  /// (shutdown stragglers). Caller must guarantee Run() has returned.
  void DrainNow() { DrainPending(); }
  /// True on the thread currently inside Run(). Safe from any thread
  /// (the id is published atomically when the loop starts).
  bool InLoopThread() const {
    return std::this_thread::get_id() ==
           loop_thread_.load(std::memory_order_acquire);
  }

  /// Runs `fn` once per loop iteration, after fd events, due timers,
  /// and RunInLoop work have all executed. The transport's flush
  /// coalescing hangs off this: every response completed during the
  /// iteration — inline from a handler or marshalled in via RunInLoop —
  /// is queued first, then drained with one writev per connection.
  /// Loop-thread-only; set before Run().
  void SetEndOfIteration(std::function<void()> fn) {
    end_of_iteration_ = std::move(fn);
  }

  /// Actual backend in use ("epoll"/"uring") — may differ from the
  /// requested one when io_uring is unavailable on this kernel.
  const char* backend_name() const { return poller_->name(); }

  uint64_t iterations() const {
    return iterations_.load(std::memory_order_relaxed);
  }
  /// Blocking readiness waits issued so far (one per iteration); feeds
  /// the transport's syscalls-per-RPC accounting. Readable off-loop.
  uint64_t poll_waits() const { return iterations(); }
  size_t armed_timers() const { return armed_timers_; }

 private:
  static constexpr size_t kWheelSlots = 512;   // power of two
  static constexpr int64_t kTickUs = 1000;     // wheel granularity

  struct TimerEntry {
    TimerId id = 0;
    int64_t fire_tick = 0;  // absolute tick index
    std::function<void()> fn;
  };
  using Slot = std::list<TimerEntry>;

  /// Fires every timer due at or before `now_us`.
  void AdvanceWheel(int64_t now_us);
  /// Milliseconds epoll may sleep: 1 tick with timers armed, else forever.
  int PollTimeoutMs() const;
  void DrainPending();
  void Wakeup();

  std::unique_ptr<Poller> poller_;
  int wake_fd_ = -1;  // eventfd
  std::atomic<std::thread::id> loop_thread_;
  bool running_ = false;
  std::atomic<uint64_t> iterations_{0};
  std::function<void()> end_of_iteration_;

  std::unordered_map<int, FdCallback> fd_callbacks_;

  // Timer wheel state (loop thread only).
  Slot wheel_[kWheelSlots];
  std::unordered_map<TimerId, std::pair<size_t, Slot::iterator>> timer_index_;
  int64_t current_tick_ = 0;
  TimerId next_timer_id_ = 1;
  size_t armed_timers_ = 0;

  std::mutex pending_mu_;
  std::vector<std::function<void()>> pending_;
  bool stop_requested_ = false;  // under pending_mu_
};

}  // namespace lo::net
