#include "net/frame.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace lo::net {
namespace {

std::string EncodeRequestBody(const RequestFrame& request) {
  std::string body;
  body.push_back(static_cast<char>(MessageKind::kRequest));
  PutVarint64(&body, request.rpc_id);
  PutVarint64(&body, request.trace_id);
  PutVarint64(&body, request.span_id);
  PutVarint64(&body, static_cast<uint64_t>(request.deadline_us));
  PutLengthPrefixed(&body, request.service);
  PutLengthPrefixed(&body, request.payload);
  PutVarint32(&body, request.tenant);
  return body;
}

std::string EncodeResponseBody(uint64_t rpc_id, const Result<std::string>& result) {
  std::string body;
  body.push_back(static_cast<char>(MessageKind::kResponse));
  PutVarint64(&body, rpc_id);
  if (result.ok()) {
    body.push_back(static_cast<char>(StatusCode::kOk));
    PutLengthPrefixed(&body, result.value());
  } else {
    body.push_back(static_cast<char>(result.status().code()));
    PutLengthPrefixed(&body, result.status().message());
  }
  return body;
}

void Bump(std::atomic<uint64_t>* counter) {
  counter->fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void AppendFrame(std::string* out, std::string_view body) {
  PutFixed32(out, static_cast<uint32_t>(body.size()));
  PutFixed32(out, crc32c::Mask(crc32c::Value(body)));
  out->append(body);
}

std::string EncodeRequest(const RequestFrame& request) {
  std::string out;
  AppendFrame(&out, EncodeRequestBody(request));
  return out;
}

std::string EncodeResponse(uint64_t rpc_id, const Result<std::string>& result) {
  std::string out;
  AppendFrame(&out, EncodeResponseBody(rpc_id, result));
  return out;
}

ResponseParts EncodeResponseParts(uint64_t rpc_id, Result<std::string>&& result) {
  ResponseParts parts;
  if (result.ok()) {
    parts.payload = std::move(result).value();
  } else {
    parts.payload = std::string(result.status().message());
  }
  // Body preamble: everything before the payload bytes. The payload's
  // varint length prefix belongs to the preamble so `payload` itself
  // stays exactly the handler's buffer.
  std::string preamble;
  preamble.push_back(static_cast<char>(MessageKind::kResponse));
  PutVarint64(&preamble, rpc_id);
  preamble.push_back(static_cast<char>(result.ok() ? StatusCode::kOk
                                                   : result.status().code()));
  PutVarint32(&preamble, static_cast<uint32_t>(parts.payload.size()));

  uint32_t crc = crc32c::Extend(0, preamble.data(), preamble.size());
  crc = crc32c::Extend(crc, parts.payload.data(), parts.payload.size());

  parts.head.reserve(kFrameHeaderBytes + preamble.size());
  PutFixed32(&parts.head,
             static_cast<uint32_t>(preamble.size() + parts.payload.size()));
  PutFixed32(&parts.head, crc32c::Mask(crc));
  parts.head.append(preamble);
  return parts;
}

DecodeResult TryDecodeFrame(std::string_view buffer, size_t* consumed,
                            std::string_view* body, FrameStats* stats) {
  if (buffer.size() < kFrameHeaderBytes) return DecodeResult::kNeedMore;
  uint32_t body_len = DecodeFixed32(buffer.data());
  uint32_t masked_crc = DecodeFixed32(buffer.data() + 4);
  if (body_len > kMaxFrameBytes) {
    if (stats != nullptr) Bump(&stats->oversize_rejects);
    return DecodeResult::kCorrupt;
  }
  if (buffer.size() < kFrameHeaderBytes + body_len) return DecodeResult::kNeedMore;
  std::string_view candidate = buffer.substr(kFrameHeaderBytes, body_len);
  if (crc32c::Unmask(masked_crc) != crc32c::Value(candidate)) {
    if (stats != nullptr) Bump(&stats->crc_rejects);
    return DecodeResult::kCorrupt;
  }
  if (stats != nullptr) Bump(&stats->frames_decoded);
  *consumed = kFrameHeaderBytes + body_len;
  *body = candidate;
  return DecodeResult::kOk;
}

bool DecodeMessage(std::string_view body, Message* out, FrameStats* stats) {
  Reader reader{body};
  std::string_view kind_bytes;
  if (!reader.GetBytes(1, &kind_bytes)) {
    if (stats != nullptr) Bump(&stats->malformed_rejects);
    return false;
  }
  uint8_t kind = static_cast<uint8_t>(kind_bytes[0]);
  if (kind == static_cast<uint8_t>(MessageKind::kRequest)) {
    RequestFrame& req = out->request;
    uint64_t deadline = 0;
    if (!reader.GetVarint64(&req.rpc_id) || !reader.GetVarint64(&req.trace_id) ||
        !reader.GetVarint64(&req.span_id) || !reader.GetVarint64(&deadline) ||
        !reader.GetLengthPrefixed(&req.service) ||
        !reader.GetLengthPrefixed(&req.payload)) {
      if (stats != nullptr) Bump(&stats->malformed_rejects);
      return false;
    }
    req.deadline_us = static_cast<int64_t>(deadline);
    // Trailing optional tenant id: absent in pre-tenancy frames → 0.
    uint32_t tenant = 0;
    req.tenant = reader.GetVarint32(&tenant) ? tenant : 0;
    out->kind = MessageKind::kRequest;
    return true;
  }
  if (kind == static_cast<uint8_t>(MessageKind::kResponse)) {
    ResponseFrame& resp = out->response;
    std::string_view code_bytes;
    if (!reader.GetVarint64(&resp.rpc_id) || !reader.GetBytes(1, &code_bytes) ||
        !reader.GetLengthPrefixed(&resp.body)) {
      if (stats != nullptr) Bump(&stats->malformed_rejects);
      return false;
    }
    resp.code = static_cast<StatusCode>(static_cast<uint8_t>(code_bytes[0]));
    out->kind = MessageKind::kResponse;
    return true;
  }
  if (stats != nullptr) Bump(&stats->malformed_rejects);
  return false;
}

}  // namespace lo::net
