// RPC wire format shared by the simulated transport (sim/rpc) and the
// real TCP transport (net/rpc_client, net/rpc_server).
//
// Every message travels as one frame:
//
//   [body_len  : fixed32 LE]                 frame header, 8 bytes
//   [body_crc  : fixed32 LE, masked CRC32C]
//   [body      : body_len bytes]
//
// and the body is either a request or a response:
//
//   request:  kRequest(1) | rpc_id varint | trace_id varint |
//             span_id varint | deadline_us varint | service lp | payload lp |
//             tenant varint
//   response: kResponse(1) | rpc_id varint | status_code(1) | body lp
//
// `tenant` is a trailing optional field: encoders always write it, but
// decoders treat a body ending after `payload` as tenant 0 (unattributed),
// so pre-tenancy frames and hand-crafted test frames still decode.
//
// (`lp` = varint length-prefixed bytes.) The CRC uses the LevelDB-style
// mask from common/crc32c, so both transports reject torn or corrupted
// payloads identically — a corrupt frame is *rejected*, never delivered.
//
// `deadline_us` is an absolute timestamp in the transport's clock domain:
// sim time (microseconds) on the simulated network, CLOCK_MONOTONIC
// microseconds for the TCP transport (shared by all processes on one
// machine — the loopback multi-process deployment this repo targets).
// 0 means "no deadline". Servers shed requests whose deadline has
// already passed instead of doing the work (see docs/net.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace lo::net {

/// Frame header: body_len + masked body CRC, both fixed32 LE.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Upper bound on one frame's body. A length field above this is treated
/// as corruption (a torn length would otherwise stall a stream forever
/// waiting for bytes that never come).
inline constexpr size_t kMaxFrameBytes = 8u << 20;

enum class MessageKind : uint8_t { kRequest = 0, kResponse = 1 };

struct RequestFrame {
  uint64_t rpc_id = 0;
  uint64_t trace_id = 0;   // obs trace propagation (0 = unsampled)
  uint64_t span_id = 0;
  int64_t deadline_us = 0; // absolute, transport clock domain; 0 = none
  uint32_t tenant = 0;     // QoS identity (src/tenant); 0 = unattributed
  std::string_view service;
  std::string_view payload;
};

struct ResponseFrame {
  uint64_t rpc_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string_view body;   // result value when kOk, error message otherwise
};

/// A decoded message body; `service`/`payload`/`body` view into the
/// buffer handed to DecodeMessage.
struct Message {
  MessageKind kind = MessageKind::kRequest;
  RequestFrame request;
  ResponseFrame response;
};

/// Decode-side counters, safe to bump from any transport thread. One
/// instance per endpoint/connection owner; surfaced through obs as
/// `net.frame_rejects`-style counters.
struct FrameStats {
  std::atomic<uint64_t> frames_decoded{0};
  std::atomic<uint64_t> crc_rejects{0};       // checksum mismatch
  std::atomic<uint64_t> oversize_rejects{0};  // body_len > kMaxFrameBytes
  std::atomic<uint64_t> malformed_rejects{0}; // frame ok, body undecodable

  uint64_t rejects() const {
    return crc_rejects.load(std::memory_order_relaxed) +
           oversize_rejects.load(std::memory_order_relaxed) +
           malformed_rejects.load(std::memory_order_relaxed);
  }
};

/// Encodes a complete framed request (header + CRC + body).
std::string EncodeRequest(const RequestFrame& request);
/// Encodes a complete framed response carrying a value or an error.
std::string EncodeResponse(uint64_t rpc_id, const Result<std::string>& result);

/// A framed response split for scatter-gather writes: `head` owns the
/// frame header plus the body preamble (kind, rpc_id, status, payload
/// length prefix); `payload` is the handler's result moved in place.
/// Concatenated they are byte-identical to EncodeResponse — the CRC in
/// `head` covers the preamble and payload incrementally, so the payload
/// is never copied into a contiguous staging buffer.
struct ResponseParts {
  std::string head;
  std::string payload;
};

/// Scatter-gather form of EncodeResponse. Consumes `result`'s value;
/// error responses carry the status message as the payload.
ResponseParts EncodeResponseParts(uint64_t rpc_id, Result<std::string>&& result);

/// Wraps an already-encoded body in a frame (tests, fuzzing).
void AppendFrame(std::string* out, std::string_view body);

enum class DecodeResult {
  kOk,        // one whole frame decoded; *consumed bytes eaten
  kNeedMore,  // buffer holds only part of a frame — read more
  kCorrupt,   // checksum/length violation; the stream cannot be trusted
};

/// Attempts to decode one frame from the front of `buffer`. On kOk,
/// `*body` views the checksum-verified body inside `buffer` and
/// `*consumed` is the total frame size. On kCorrupt the matching
/// `stats` counter is bumped (stats may be nullptr).
DecodeResult TryDecodeFrame(std::string_view buffer, size_t* consumed,
                            std::string_view* body, FrameStats* stats = nullptr);

/// Decodes a frame body into a request or response. Returns false (and
/// bumps stats->malformed_rejects) on malformed input.
bool DecodeMessage(std::string_view body, Message* out,
                   FrameStats* stats = nullptr);

}  // namespace lo::net
