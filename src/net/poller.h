// Readiness-notification backend under net::EventLoop.
//
// The loop's contract is epoll-shaped — register an fd for a
// level-triggered interest mask, block until something is ready — and
// two engines implement it:
//
//   * kEpoll  — epoll_create1/epoll_ctl/epoll_wait, the default.
//   * kUring  — io_uring (raw syscalls, no liburing dependency): one
//     multishot IORING_OP_POLL_ADD per registered fd, interest changes
//     and cancellations batched into the submission queue and flushed
//     with a single io_uring_enter per loop iteration. This is the
//     ablation backend bench/realnet's A13 sweep compares against
//     epoll; it is compile-time detected (linux/io_uring.h) and
//     runtime-probed (io_uring_setup is often seccomp-blocked in
//     containers), falling back to epoll with a warning when absent.
//
// Select with LO_NET_BACKEND=epoll|uring (or explicitly via
// EventLoop's constructor). Event masks use the EPOLL* values, which
// are numerically identical to the POLL* values io_uring's poll opcode
// speaks, so callbacks never translate.
#pragma once

#include <cstdint>
#include <memory>

namespace lo::net {

enum class NetBackend : uint8_t { kEpoll, kUring };

/// LO_NET_BACKEND=epoll|uring; anything else (or unset) = epoll.
NetBackend NetBackendFromEnv();
const char* NetBackendName(NetBackend backend);

/// One-time runtime probe: does this kernel/sandbox allow io_uring?
/// (io_uring_setup commonly returns EPERM/ENOSYS under seccomp.)
bool UringAvailable();

struct PollEvent {
  int fd = -1;
  uint32_t events = 0;  // EPOLLIN/EPOLLOUT/EPOLLERR/EPOLLHUP bits
};

class Poller {
 public:
  virtual ~Poller() = default;

  virtual void Add(int fd, uint32_t events) = 0;
  virtual void Mod(int fd, uint32_t events) = 0;
  virtual void Del(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = until an event) and fills `out`
  /// with up to `max_events` ready fds. Returns the count (0 on
  /// timeout). Exactly one blocking syscall per call.
  virtual int Wait(PollEvent* out, int max_events, int timeout_ms) = 0;

  virtual const char* name() const = 0;
};

/// Builds `preferred`, falling back to epoll (with a LO_WARN) when the
/// uring backend is unavailable at runtime.
std::unique_ptr<Poller> MakePoller(NetBackend preferred);

}  // namespace lo::net
