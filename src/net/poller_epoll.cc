#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "common/log.h"
#include "net/poller.h"

namespace lo::net {

NetBackend NetBackendFromEnv() {
  const char* backend = std::getenv("LO_NET_BACKEND");
  if (backend != nullptr && std::string(backend) == "uring") {
    return NetBackend::kUring;
  }
  return NetBackend::kEpoll;
}

const char* NetBackendName(NetBackend backend) {
  return backend == NetBackend::kUring ? "uring" : "epoll";
}

namespace {

class EpollPoller final : public Poller {
 public:
  EpollPoller() {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    LO_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  }
  ~EpollPoller() override {
    if (epoll_fd_ >= 0) close(epoll_fd_);
  }

  void Add(int fd, uint32_t events) override { Ctl(EPOLL_CTL_ADD, fd, events); }
  void Mod(int fd, uint32_t events) override { Ctl(EPOLL_CTL_MOD, fd, events); }
  void Del(int fd) override { epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr); }

  int Wait(PollEvent* out, int max_events, int timeout_ms) override {
    epoll_event events[kMaxBatch];
    if (max_events > kMaxBatch) max_events = kMaxBatch;
    int n = epoll_wait(epoll_fd_, events, max_events, timeout_ms);
    for (int i = 0; i < n; ++i) {
      out[i].fd = events[i].data.fd;
      out[i].events = events[i].events;
    }
    return n < 0 ? 0 : n;
  }

  const char* name() const override { return "epoll"; }

 private:
  static constexpr int kMaxBatch = 128;

  void Ctl(int op, int fd, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    int rc = epoll_ctl(epoll_fd_, op, fd, &ev);
    LO_CHECK_MSG(rc == 0, "epoll_ctl failed");
  }

  int epoll_fd_ = -1;
};

}  // namespace

std::unique_ptr<Poller> MakeEpollPoller() {
  return std::make_unique<EpollPoller>();
}

// Defined in poller_uring.cc (returns nullptr when unsupported).
std::unique_ptr<Poller> MakeUringPoller();

std::unique_ptr<Poller> MakePoller(NetBackend preferred) {
  if (preferred == NetBackend::kUring) {
    if (auto poller = MakeUringPoller(); poller != nullptr) return poller;
    LO_WARN << "LO_NET_BACKEND=uring requested but io_uring is unavailable "
               "on this kernel/sandbox; falling back to epoll";
  }
  return MakeEpollPoller();
}

}  // namespace lo::net
