// io_uring readiness backend (LO_NET_BACKEND=uring) — raw syscalls, no
// liburing. Each registered fd holds one multishot IORING_OP_POLL_ADD;
// interest changes are a POLL_REMOVE + fresh POLL_ADD pair. All SQEs
// queued since the last Wait() flush in the same io_uring_enter that
// blocks for completions, so an iteration that re-arms a dozen fds
// still costs one syscall. Stale completions (a CQE racing a Mod/Del)
// are fenced by a per-registration generation tag in user_data.
#include <memory>

#include "net/poller.h"

#if !__has_include(<linux/io_uring.h>)

// Toolchain without io_uring uapi headers: the backend compiles out and
// MakePoller falls back to epoll.
namespace lo::net {
bool UringAvailable() { return false; }
std::unique_ptr<Poller> MakeUringPoller() { return nullptr; }
}  // namespace lo::net

#else

#include <errno.h>
#include <linux/io_uring.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <unordered_map>

#include "common/log.h"

namespace lo::net {
namespace {

int UringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, params));
}

int UringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
               unsigned flags, void* arg, size_t argsz) {
  return static_cast<int>(syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                  min_complete, flags, arg, argsz));
}

uint32_t LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

void StoreRelease(unsigned* p, uint32_t value) {
  __atomic_store_n(p, value, __ATOMIC_RELEASE);
}

/// CQEs whose outcome nobody consumes (poll cancellations).
constexpr uint64_t kIgnoreCookie = ~0ULL;

uint64_t PollCookie(int fd, uint32_t gen) {
  return (static_cast<uint64_t>(gen) << 32) | static_cast<uint32_t>(fd);
}

class UringPoller final : public Poller {
 public:
  ~UringPoller() override {
    if (sq_ptr_ != MAP_FAILED) munmap(sq_ptr_, sq_map_bytes_);
    if (cq_ptr_ != MAP_FAILED && cq_ptr_ != sq_ptr_) munmap(cq_ptr_, cq_map_bytes_);
    if (sqes_ != MAP_FAILED) munmap(sqes_, sqe_map_bytes_);
    if (ring_fd_ >= 0) close(ring_fd_);
  }

  bool Init() {
    io_uring_params params;
    memset(&params, 0, sizeof(params));
    ring_fd_ = UringSetup(kEntries, &params);
    if (ring_fd_ < 0) return false;

    sq_map_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_map_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_map_bytes_ = cq_map_bytes_ = std::max(sq_map_bytes_, cq_map_bytes_);
    }
    sq_ptr_ = mmap(nullptr, sq_map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) return false;
    cq_ptr_ = single_mmap
                  ? sq_ptr_
                  : mmap(nullptr, cq_map_bytes_, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ptr_ == MAP_FAILED) return false;
    sqe_map_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = mmap(nullptr, sqe_map_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes_ == MAP_FAILED) return false;

    auto sq_base = static_cast<char*>(sq_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
    sq_entries_ = params.sq_entries;

    auto cq_base = static_cast<char*>(cq_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);
    return true;
  }

  void Add(int fd, uint32_t events) override {
    FdState& state = fds_[fd];
    state.events = events;
    state.gen = next_gen_++;
    PushPollAdd(fd, events, state.gen);
  }

  void Mod(int fd, uint32_t events) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      Add(fd, events);
      return;
    }
    PushPollRemove(PollCookie(fd, it->second.gen));
    it->second.events = events;
    it->second.gen = next_gen_++;
    PushPollAdd(fd, events, it->second.gen);
  }

  void Del(int fd) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;
    PushPollRemove(PollCookie(fd, it->second.gen));
    fds_.erase(it);
  }

  int Wait(PollEvent* out, int max_events, int timeout_ms) override {
    // Only block when the completion ring is empty; otherwise submit
    // whatever is queued without sleeping and reap what is already
    // there.
    if (LoadAcquire(cq_tail_) == *cq_head_) {
      unsigned flags = IORING_ENTER_GETEVENTS;
      int rc;
      if (timeout_ms >= 0) {
        // Layout of struct __kernel_timespec, spelled locally so the
        // file builds against older uapi headers too.
        struct KernelTimespec {
          int64_t tv_sec;
          long long tv_nsec;
        } ts{timeout_ms / 1000, static_cast<long long>(timeout_ms % 1000) * 1'000'000};
        io_uring_getevents_arg arg;
        memset(&arg, 0, sizeof(arg));
        arg.ts = reinterpret_cast<uint64_t>(&ts);
        rc = UringEnter(ring_fd_, to_submit_, 1,
                        flags | IORING_ENTER_EXT_ARG, &arg, sizeof(arg));
      } else {
        rc = UringEnter(ring_fd_, to_submit_, 1, flags, nullptr, 0);
      }
      if (rc >= 0) {
        to_submit_ -= std::min<unsigned>(to_submit_, static_cast<unsigned>(rc));
      } else if (errno != EINTR && errno != ETIME && errno != EBUSY) {
        LO_WARN << "io_uring_enter: " << strerror(errno);
      }
    } else if (to_submit_ > 0) {
      int rc = UringEnter(ring_fd_, to_submit_, 0, 0, nullptr, 0);
      if (rc > 0) to_submit_ -= std::min<unsigned>(to_submit_, static_cast<unsigned>(rc));
    }
    return Reap(out, max_events);
  }

  const char* name() const override { return "uring"; }

 private:
  static constexpr unsigned kEntries = 256;

  struct FdState {
    uint32_t events = 0;
    uint32_t gen = 0;
  };

  io_uring_sqe* NextSqe() {
    // Producer-side fullness check; the kernel consumes entries as they
    // submit, so flushing makes room.
    if (*sq_tail_ - LoadAcquire(sq_head_) >= sq_entries_) {
      int rc = UringEnter(ring_fd_, to_submit_, 0, 0, nullptr, 0);
      if (rc > 0) to_submit_ -= std::min<unsigned>(to_submit_, static_cast<unsigned>(rc));
    }
    unsigned tail = *sq_tail_;
    unsigned index = tail & sq_mask_;
    io_uring_sqe* sqe = &static_cast<io_uring_sqe*>(sqes_)[index];
    memset(sqe, 0, sizeof(*sqe));
    sq_array_[index] = index;
    StoreRelease(sq_tail_, tail + 1);
    to_submit_++;
    return sqe;
  }

  void PushPollAdd(int fd, uint32_t events, uint32_t gen) {
    io_uring_sqe* sqe = NextSqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;
    // EPOLL* and POLL* masks share values; poll32_events is the
    // endian-stable 32-bit form.
    sqe->poll32_events = events;
    sqe->len = IORING_POLL_ADD_MULTI;
    sqe->user_data = PollCookie(fd, gen);
  }

  void PushPollRemove(uint64_t target_cookie) {
    io_uring_sqe* sqe = NextSqe();
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->fd = -1;
    sqe->addr = target_cookie;
    sqe->user_data = kIgnoreCookie;
  }

  int Reap(PollEvent* out, int max_events) {
    unsigned head = *cq_head_;
    unsigned tail = LoadAcquire(cq_tail_);
    int produced = 0;
    while (head != tail && produced < max_events) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      head++;
      if (cqe.user_data == kIgnoreCookie) continue;
      int fd = static_cast<int>(cqe.user_data & 0xffffffffu);
      auto gen = static_cast<uint32_t>(cqe.user_data >> 32);
      auto it = fds_.find(fd);
      if (it == fds_.end() || it->second.gen != gen) continue;  // stale
      if (cqe.res < 0) {
        // -ECANCELED races a Mod/Del; anything else re-arms below.
        if (cqe.res != -ECANCELED) PushPollAdd(fd, it->second.events, gen);
        continue;
      }
      out[produced].fd = fd;
      out[produced].events = static_cast<uint32_t>(cqe.res);
      produced++;
      if ((cqe.flags & IORING_CQE_F_MORE) == 0) {
        // Multishot terminated (the kernel may downgrade it); re-arm.
        PushPollAdd(fd, it->second.events, gen);
      }
    }
    StoreRelease(cq_head_, head);
    return produced;
  }

  int ring_fd_ = -1;
  void* sq_ptr_ = MAP_FAILED;
  void* cq_ptr_ = MAP_FAILED;
  void* sqes_ = MAP_FAILED;
  size_t sq_map_bytes_ = 0;
  size_t cq_map_bytes_ = 0;
  size_t sqe_map_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned to_submit_ = 0;
  uint32_t next_gen_ = 1;
  std::unordered_map<int, FdState> fds_;
};

}  // namespace

bool UringAvailable() {
  static const bool available = [] {
    io_uring_params params;
    memset(&params, 0, sizeof(params));
    int fd = UringSetup(4, &params);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return available;
}

std::unique_ptr<Poller> MakeUringPoller() {
  if (!UringAvailable()) return nullptr;
  auto poller = std::make_unique<UringPoller>();
  if (!poller->Init()) return nullptr;
  return poller;
}

}  // namespace lo::net

#endif  // __has_include(<linux/io_uring.h>)
