#include "net/remote_client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/coding.h"
#include "common/hash.h"
#include "common/log.h"

namespace lo::net {

namespace {
// Process-unique client ids keep idempotency tokens distinct across the
// many per-thread RemoteClients sharing one server.
std::atomic<uint64_t> g_next_client_id{1};
}  // namespace

RemoteClient::RemoteClient(RpcClient* rpc, std::vector<std::string> nodes,
                           RemoteClientOptions options)
    : rpc_(rpc),
      nodes_(std::move(nodes)),
      options_(options),
      rng_(options.seed),
      client_id_(g_next_client_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics_registry;
    uint32_t label = options_.node_label;
    reg->RegisterExternal("client.requests", label, &metrics_.requests);
    reg->RegisterExternal("client.retries", label, &metrics_.retries);
    reg->RegisterExternal("client.budget_exhausted", label,
                          &metrics_.budget_exhausted);
    reg->RegisterExternal("client.redirects", label, &metrics_.redirects);
    reg->RegisterExternal("rpc.throttled", label, &metrics_.throttled);
    invoke_latency_us_ = reg->GetHistogram("client.invoke_latency_us", label);
  }
}

const std::string& RemoteClient::NodeFor(const std::string& oid) const {
  // Same hash the sim's ShardMap uses, so both deployments place an
  // object on the same shard index. Directory-routed clients install a
  // Router instead and may run with an empty static node list.
  LO_CHECK_MSG(!nodes_.empty(), "RemoteClient needs a node list or a router");
  return nodes_[Fnv1a64(oid) % nodes_.size()];
}

std::string RemoteClient::NextInvocationToken() {
  return "r" + std::to_string(client_id_) + "-" + std::to_string(next_token_++);
}

Result<std::string> RemoteClient::CallWithRetry(const std::string& oid,
                                                std::string service,
                                                std::string payload) {
  metrics_.requests++;
  obs::TraceContext trace;
  if (options_.tracer != nullptr) trace = options_.tracer->StartTrace();
  const int64_t started_us = EventLoop::NowUs();
  const int64_t budget_deadline_us = started_us + options_.retry_budget_us;
  Status last = Status::Unavailable("no attempts made");
  int64_t backoff_us = options_.retry_backoff_us;
  int redirects = 0;
  int throttles = 0;
  bool redirected = false;  // last iteration was a directory-refresh
                            // re-send or a throttle pause (already slept)
  for (int attempt = 0; attempt < options_.max_attempts; attempt++) {
    if (attempt > 0 && !redirected) {
      // Exponential backoff with ±25% jitter — the same policy the sim
      // client uses, on wall-clock instead of sim time.
      double jitter = 0.75 + 0.5 * rng_.NextDouble();
      auto pause_us =
          static_cast<int64_t>(static_cast<double>(backoff_us) * jitter);
      if (EventLoop::NowUs() + pause_us >= budget_deadline_us) {
        metrics_.budget_exhausted++;
        break;  // surface `last`: better an error than an unbounded stall
      }
      metrics_.retries++;
      std::this_thread::sleep_for(std::chrono::microseconds(pause_us));
      backoff_us = std::min(backoff_us * 2, options_.retry_backoff_max_us);
    }
    redirected = false;
    // Re-resolve every attempt: a directory refresh (misroute hook) or a
    // failover may have moved the object since the last send.
    std::string address = router_ ? router_(oid) : NodeFor(oid);
    if (address.empty()) {
      last = Status::WrongShard("no route for " + oid);
    } else {
      auto result = rpc_->CallSync(address, service, payload,
                                   options_.request_timeout_us, trace,
                                   options_.tenant_id);
      if (result.ok()) {
        if (obs::Tracing(options_.tracer, trace)) {
          int64_t now_us = EventLoop::NowUs();
          options_.tracer->Record(trace, "invoke", options_.node_label,
                                  started_us * 1000, now_us * 1000);
        }
        if (invoke_latency_us_ != nullptr) {
          invoke_latency_us_->Record(EventLoop::NowUs() - started_us);
        }
        return result;
      }
      last = result.status();
    }
    switch (last.code()) {
      case StatusCode::kWrongShard:
        // Misroute: the shard moved (or we never knew where it lives).
        // This is not a fault, so don't spend the retry budget on it —
        // refresh the directory and re-send immediately. Past the
        // redirect budget the object is most likely mid-migration (the
        // directory still names the source), so fall back to plain
        // backoff-and-retry until the new placement publishes. Without a
        // refresh hook the typed status surfaces so the caller can act.
        if (on_misroute_ && redirects < options_.max_redirects &&
            on_misroute_()) {
          redirects++;
          metrics_.redirects++;
          redirected = true;
          attempt--;  // redirects are budgeted by max_redirects instead
          continue;
        }
        if (on_misroute_) continue;
        return last;
      case StatusCode::kWrongNode:
      case StatusCode::kNotPrimary:
      case StatusCode::kTimeout:
      case StatusCode::kUnavailable:
        continue;  // transient or mid-failover; back off and re-send
      case StatusCode::kTenantThrottled:
        // Admission pushback, not a fault: pause on the dedicated
        // throttle backoff and re-send without consuming a failure
        // attempt, bounded by its own cap and the wall-clock budget.
        metrics_.throttled++;
        if (++throttles > options_.max_throttle_retries) return last;
        if (EventLoop::NowUs() + options_.throttle_backoff_us >=
            budget_deadline_us) {
          metrics_.budget_exhausted++;
          return last;
        }
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.throttle_backoff_us));
        redirected = true;  // skip the exponential pause; we just slept
        attempt--;
        continue;
      default:
        return last;  // application-level error: surface it
    }
  }
  return last;
}

Result<std::string> RemoteClient::Invoke(const std::string& oid,
                                         const std::string& method,
                                         const std::string& argument) {
  std::string payload;
  PutLengthPrefixed(&payload, oid);
  PutLengthPrefixed(&payload, method);
  PutLengthPrefixed(&payload, argument);
  // The token is baked into the payload once, before the retry loop, so
  // every attempt of this request carries the same identity.
  PutLengthPrefixed(&payload, NextInvocationToken());
  return CallWithRetry(oid, "lambda.invoke", std::move(payload));
}

Result<std::string> RemoteClient::Create(const std::string& oid,
                                         const std::string& type_name) {
  std::string payload;
  PutLengthPrefixed(&payload, oid);
  PutLengthPrefixed(&payload, type_name);
  PutLengthPrefixed(&payload, NextInvocationToken());
  return CallWithRetry(oid, "lambda.create", std::move(payload));
}

Result<std::string> RemoteClient::InvokeRead(const std::string& oid,
                                             const std::string& method,
                                             const std::string& argument) {
  // Same wire format as the sim's "lambda.read": LP oid | LP method |
  // LP arg | varint32 mode | varint64 token.epoch | varint64 token.seq |
  // varint64 staleness.
  std::string payload;
  PutLengthPrefixed(&payload, oid);
  PutLengthPrefixed(&payload, method);
  PutLengthPrefixed(&payload, argument);
  PutVarint32(&payload, options_.read_mode);
  PutVarint64(&payload, last_epoch_);
  PutVarint64(&payload, last_seq_);
  PutVarint64(&payload, options_.staleness_epochs);
  auto wrapped = CallWithRetry(oid, "lambda.read", std::move(payload));
  if (!wrapped.ok()) return wrapped;
  Reader reader{*wrapped};
  uint64_t epoch = 0, seq = 0;
  std::string_view body;
  if (!reader.GetVarint64(&epoch) || !reader.GetVarint64(&seq) ||
      !reader.GetLengthPrefixed(&body)) {
    return Status::Corruption("bad token-wrapped read response");
  }
  // Fold the reply token in monotonically: a newer epoch supersedes;
  // within an epoch the sequence only advances.
  if (epoch > last_epoch_) {
    last_epoch_ = epoch;
    last_seq_ = seq;
  } else if (epoch == last_epoch_) {
    last_seq_ = std::max(last_seq_, seq);
  }
  return std::string(body);
}

Status RemoteClient::Ping() {
  for (const std::string& address : nodes_) {
    auto reply = rpc_->CallSync(address, "ping", "ping",
                                options_.request_timeout_us);
    if (!reply.ok()) return reply.status();
  }
  return Status::OK();
}

void RemoteClient::Shutdown() {
  for (const std::string& address : nodes_) {
    (void)rpc_->CallSync(address, "admin.shutdown", "",
                         options_.request_timeout_us);
  }
}

}  // namespace lo::net
