// Client library for a real (multi-process) LambdaStore deployment —
// the TCP counterpart of cluster::Client, speaking the same services
// ("lambda.invoke", "lambda.create") with the same payload encoding,
// idempotency tokens, and retry policy (exponential backoff + jitter
// under a total retry budget, paper §4.2.1).
//
// Routing: object → shard by hash (cluster::ShardMap's hash, so the sim
// and real deployments agree on placement), shard i served by
// `nodes[i]`. There is no coordinator in the real path yet — the node
// list is the configuration — so WrongNode/NotPrimary retries re-send
// to the same mapping after backoff rather than refreshing a shard map.
//
// One RemoteClient per thread (it owns a jitter RNG and a token
// counter); many RemoteClients share one RpcClient, whose loop thread
// multiplexes all of their calls over pooled connections.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/rpc_client.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lo::net {

struct RemoteClientOptions {
  int64_t request_timeout_us = 1'000'000;
  /// Initial retry pause; doubles per attempt (±25% jitter) up to
  /// `retry_backoff_max_us` — the policy of cluster::ClientOptions.
  int64_t retry_backoff_us = 10'000;
  int64_t retry_backoff_max_us = 160'000;
  /// Total budget for one request including retries.
  int64_t retry_budget_us = 2'000'000;
  int max_attempts = 8;
  /// Misroute (kWrongShard) redirects per request. Redirects are a fast
  /// path — refresh the directory via the misroute hook and re-send
  /// immediately — so they are budgeted separately from `max_attempts`
  /// and skip the exponential backoff.
  int max_redirects = 4;
  uint64_t seed = 7;
  /// Observability (nullptr = off). NOTE: the tracer is touched from
  /// this client's calling thread — give concurrent RemoteClients
  /// separate tracers or none.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics_registry = nullptr;
  uint32_t node_label = 0;
  /// Staleness contract InvokeRead requests, as the wire value of
  /// replication::ReadMode (0 off/primary, 1 strict, 2 bounded,
  /// 3 eventual, 4 tail) — kept numeric so lo_net stays independent of
  /// the replication library. On the real path every read lands at the
  /// shard's owner; the token enforces monotonic reads (LO_FOLLOWER_READS).
  uint32_t read_mode = 0;
  /// Apply-epoch slack a bounded (mode 2) read tolerates
  /// (LO_STALENESS_EPOCHS).
  uint64_t staleness_epochs = 0;
  /// Tenant id stamped on every request (0 = untenanted legacy traffic).
  /// Servers running with --tenants gate admission and fuel on it
  /// (docs/tenancy.md). bench/harness reads LO_TENANT_ID into it.
  uint32_t tenant_id = 0;
  /// kTenantThrottled is admission pushback, not a fault: pause this
  /// long and re-send without consuming a failure attempt, bounded by
  /// `max_throttle_retries` and the wall-clock retry budget.
  int64_t throttle_backoff_us = 5'000;
  int max_throttle_retries = 16;
};

class RemoteClient {
 public:
  /// `rpc` is shared and must outlive this client. `nodes` lists
  /// "ip:port" per shard, in shard order.
  RemoteClient(RpcClient* rpc, std::vector<std::string> nodes,
               RemoteClientOptions options = {});

  /// Overrides the static hash placement with a directory-backed route:
  /// oid -> "ip:port", empty when the object's owner is unknown (treated
  /// like a kWrongShard reply). Used by clusterd::Client.
  using Router = std::function<std::string(const std::string& oid)>;
  void SetRouter(Router router) { router_ = std::move(router); }

  /// Called when a request bounced with kWrongShard (or the router had
  /// no entry): refresh the directory; return true to re-send
  /// immediately (no backoff), false to give up and surface the typed
  /// status. Without a hook the kWrongShard surfaces to the caller at
  /// once instead of burning the retry budget on a stale route.
  using MisrouteHook = std::function<bool()>;
  void SetOnMisroute(MisrouteHook hook) { on_misroute_ = std::move(hook); }

  /// Blocking. Retries per the backoff policy; every attempt carries the
  /// same idempotency token, so a retry after a lost ack never
  /// double-applies.
  Result<std::string> Invoke(const std::string& oid, const std::string& method,
                             const std::string& argument);
  Result<std::string> Create(const std::string& oid, const std::string& type_name);

  /// Epoch-gated read ("lambda.read"): carries this client's last
  /// observed apply-epoch token so the server bounces (kEpochBehind)
  /// rather than serve state older than the client has already seen —
  /// monotonic reads under options.read_mode. The token advances on
  /// every successful InvokeRead reply.
  Result<std::string> InvokeRead(const std::string& oid,
                                 const std::string& method,
                                 const std::string& argument);

  /// Last (epoch, seq) token observed from read replies.
  std::pair<uint64_t, uint64_t> last_read_token() const {
    return {last_epoch_, last_seq_};
  }

  /// One round-trip to every node ("ping" echo); OK iff all answer.
  Status Ping();

  /// Asks every node to shut down cleanly (admin.shutdown). Best-effort.
  void Shutdown();

  struct Metrics {
    uint64_t requests = 0;
    uint64_t retries = 0;
    uint64_t budget_exhausted = 0;
    /// kWrongShard bounces answered by a directory refresh + re-send.
    uint64_t redirects = 0;
    /// Requests the server shed with kTenantThrottled (each re-send
    /// after the throttle pause counts again).
    uint64_t throttled = 0;
  };
  const Metrics& metrics() const { return metrics_; }

 private:
  Result<std::string> CallWithRetry(const std::string& oid, std::string service,
                                    std::string payload);
  const std::string& NodeFor(const std::string& oid) const;
  std::string NextInvocationToken();

  RpcClient* rpc_;
  std::vector<std::string> nodes_;
  RemoteClientOptions options_;
  Router router_;
  MisrouteHook on_misroute_;
  Rng rng_;
  Metrics metrics_;
  uint64_t client_id_ = 0;  // process-unique, for token minting
  uint64_t next_token_ = 1;
  /// Monotonic read token (this client is single-threaded by contract).
  uint64_t last_epoch_ = 0;
  uint64_t last_seq_ = 0;
  Histogram* invoke_latency_us_ = nullptr;  // owned by the registry
};

}  // namespace lo::net
