#include "net/rpc_client.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <future>
#include <utility>
#include <vector>

#include "common/log.h"
#include "net/socket.h"

namespace lo::net {
namespace {

/// Iovecs per writev; matches the server's flush batch width.
constexpr int kMaxIovecs = 64;

}  // namespace

RpcClient::RpcClient(RpcClientOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.metrics_registry != nullptr) RegisterMetrics();
  loop_thread_ = std::thread([this] { loop_.Run(); });
}

RpcClient::~RpcClient() { Stop(); }

void RpcClient::RegisterMetrics() {
  obs::MetricsRegistry* reg = options_.metrics_registry;
  uint32_t node = options_.node_label;
  auto counter = [&](const char* name, const std::atomic<uint64_t>* value) {
    reg->RegisterCallback(name, node, [value] {
      return static_cast<double>(value->load(std::memory_order_relaxed));
    });
  };
  counter("net.client.calls", &stats_.calls);
  counter("net.client.timeouts", &stats_.timeouts);
  counter("net.client.connects", &stats_.connects);
  counter("net.client.reconnects", &stats_.reconnects);
  counter("net.client.conn_failures", &stats_.conn_failures);
  counter("net.client.inflight", &stats_.inflight);
  counter("net.client.bytes_in", &stats_.bytes_in);
  counter("net.client.bytes_out", &stats_.bytes_out);
  counter("net.client.frame_crc_rejects", &frame_stats_.crc_rejects);
  call_latency_us_ = reg->GetHistogram("net.client.call_latency_us", node);
}

void RpcClient::Call(const std::string& address, std::string service,
                     std::string payload, int64_t timeout_us, Callback done,
                     obs::TraceContext trace, uint32_t tenant) {
  if (stopped_) {
    done(Status::Unavailable("rpc client stopped"));
    return;
  }
  uint64_t rpc_id = next_rpc_id_.fetch_add(1, std::memory_order_relaxed);
  loop_.RunInLoop([this, address, service = std::move(service),
                   payload = std::move(payload), timeout_us,
                   done = std::move(done), trace, tenant, rpc_id]() mutable {
    if (stopped_) {  // raced Stop(); runs via DrainNow after the loop died
      done(Status::Unavailable("rpc client stopped"));
      return;
    }
    stats_.calls.fetch_add(1, std::memory_order_relaxed);
    Connection* conn = ConnFor(address);
    obs::TraceContext span_ctx = obs::Tracing(options_.tracer, trace)
                                     ? options_.tracer->Child(trace)
                                     : obs::TraceContext{};
    int64_t now_us = EventLoop::NowUs();
    RequestFrame frame;
    frame.rpc_id = rpc_id;
    frame.trace_id = span_ctx.trace_id;
    frame.span_id = span_ctx.span_id;
    frame.deadline_us = timeout_us > 0 ? now_us + timeout_us : 0;
    frame.tenant = tenant;
    frame.service = service;
    frame.payload = payload;

    PendingCall call;
    call.rpc_id = rpc_id;
    call.frame = EncodeRequest(frame);
    call.done = std::move(done);
    call.started_us = now_us;
    call.service = std::move(service);
    call.span_ctx = span_ctx;
    if (timeout_us > 0) {
      call.deadline_timer = loop_.AddTimer(timeout_us, [this, address, rpc_id] {
        auto it = conns_.find(address);
        if (it == conns_.end()) return;
        auto pending = it->second->pending.find(rpc_id);
        if (pending == it->second->pending.end()) return;
        pending->second.deadline_timer = 0;  // it just fired
        stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
        FinishCall(it->second.get(), rpc_id, Status::Timeout("rpc timeout"));
      });
    }
    conn->pending.emplace(rpc_id, std::move(call));
    conn->unsent.push_back(rpc_id);
    stats_.inflight.fetch_add(1, std::memory_order_relaxed);
    if (conn->state == ConnState::kReady) {
      FlushUnsent(conn);
    } else if (conn->state == ConnState::kBackoff && conn->reconnect_timer == 0) {
      StartConnect(conn);
    }
    // kConnecting (or an armed reconnect timer): the call waits its turn.
  });
}

Result<std::string> RpcClient::CallSync(const std::string& address,
                                        std::string service, std::string payload,
                                        int64_t timeout_us,
                                        obs::TraceContext trace,
                                        uint32_t tenant) {
  LO_CHECK_MSG(!loop_.InLoopThread(), "CallSync would deadlock the loop thread");
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  auto future = promise->get_future();
  Call(address, std::move(service), std::move(payload), timeout_us,
       [promise](Result<std::string> result) {
         promise->set_value(std::move(result));
       },
       trace, tenant);
  return future.get();
}

RpcClient::Connection* RpcClient::ConnFor(const std::string& address) {
  auto it = conns_.find(address);
  if (it != conns_.end()) return it->second.get();
  auto conn = std::make_unique<Connection>();
  conn->address = address;
  Status parsed = ParseAddress(address, &conn->host, &conn->port);
  if (!parsed.ok()) {
    LO_WARN << parsed.ToString();
  }
  Connection* raw = conn.get();
  conns_[address] = std::move(conn);
  return raw;
}

void RpcClient::StartConnect(Connection* conn) {
  if (conn->host.empty()) {
    // Bad address: fail whatever is queued rather than dial forever.
    std::vector<uint64_t> ids;
    for (const auto& [id, call] : conn->pending) ids.push_back(id);
    for (uint64_t id : ids) {
      FinishCall(conn, id, Status::InvalidArgument("bad address: " + conn->address));
    }
    return;
  }
  auto fd = ConnectTcp(conn->host, conn->port);
  if (!fd.ok()) {
    ConnectOutcome(conn, fd.status());
    return;
  }
  stats_.connects.fetch_add(1, std::memory_order_relaxed);
  conn->fd = *fd;
  conn->state = ConnState::kConnecting;
  std::string address = conn->address;
  loop_.AddFd(conn->fd, EPOLLOUT | EPOLLIN,
              [this, address](uint32_t events) { ConnReady(address, events); });
  conn->connect_timer =
      loop_.AddTimer(options_.connect_timeout_us, [this, address] {
        auto it = conns_.find(address);
        if (it == conns_.end()) return;
        Connection* c = it->second.get();
        if (c->state != ConnState::kConnecting) return;
        c->connect_timer = 0;
        loop_.RemoveFd(c->fd);
        close(c->fd);
        c->fd = -1;
        ConnectOutcome(c, Status::Unavailable("connect timeout"));
      });
}

void RpcClient::ConnectOutcome(Connection* conn, Status status) {
  // Only called with a failure; success is handled inline in ConnReady.
  stats_.conn_failures.fetch_add(1, std::memory_order_relaxed);
  LO_WARN << "connect " << conn->address << " failed: " << status.ToString();
  ScheduleReconnect(conn);
}

void RpcClient::ScheduleReconnect(Connection* conn) {
  conn->state = ConnState::kBackoff;
  if (conn->pending.empty()) return;  // re-dial lazily on the next call
  int64_t base = conn->backoff_us == 0 ? options_.reconnect_backoff_us
                                       : std::min(conn->backoff_us * 2,
                                                  options_.reconnect_backoff_max_us);
  conn->backoff_us = base;
  // ±25% jitter, mirroring the sim client's retry pause (cluster/client).
  auto pause = static_cast<int64_t>(static_cast<double>(base) *
                                    (0.75 + 0.5 * rng_.NextDouble()));
  std::string address = conn->address;
  conn->reconnect_timer = loop_.AddTimer(pause, [this, address] {
    auto it = conns_.find(address);
    if (it == conns_.end()) return;
    Connection* c = it->second.get();
    c->reconnect_timer = 0;
    if (c->state != ConnState::kBackoff) return;
    stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
    StartConnect(c);
  });
}

void RpcClient::ConnReady(const std::string& address, uint32_t events) {
  auto it = conns_.find(address);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (conn->state == ConnState::kConnecting) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
    Status status = ConnectError(conn->fd);
    if (conn->connect_timer != 0) {
      loop_.CancelTimer(conn->connect_timer);
      conn->connect_timer = 0;
    }
    if (!status.ok()) {
      loop_.RemoveFd(conn->fd);
      close(conn->fd);
      conn->fd = -1;
      ConnectOutcome(conn, status);
      return;
    }
    conn->state = ConnState::kReady;
    conn->backoff_us = 0;  // healthy again
    loop_.ModFd(conn->fd, EPOLLIN);
    FlushUnsent(conn);
    return;
  }
  if (conn->state != ConnState::kReady) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    ConnLost(conn, Status::Unavailable("connection error"));
    return;
  }
  if ((events & EPOLLOUT) != 0 && conn->want_write) {
    FlushOutbuf(conn);
    if (conns_.find(address) == conns_.end()) return;
    if (conn->state != ConnState::kReady) return;  // lost during flush
  }
  if ((events & EPOLLIN) == 0) return;
  bool peer_closed = false;
  char buf[64 * 1024];
  while (true) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      stats_.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ConnLost(conn, Status::Unavailable(std::string("read: ") + strerror(errno)));
    return;
  }
  DrainInbuf(conn);
  if (peer_closed && conn->state == ConnState::kReady) {
    ConnLost(conn, Status::Unavailable("server closed connection"));
  }
}

void RpcClient::DrainInbuf(Connection* conn) {
  size_t offset = 0;
  std::string_view view(conn->inbuf);
  while (true) {
    size_t consumed = 0;
    std::string_view body;
    DecodeResult result =
        TryDecodeFrame(view.substr(offset), &consumed, &body, &frame_stats_);
    if (result == DecodeResult::kNeedMore) break;
    if (result == DecodeResult::kCorrupt) {
      ConnLost(conn, Status::Corruption("corrupt frame from server"));
      return;
    }
    Message message;
    if (DecodeMessage(body, &message, &frame_stats_) &&
        message.kind == MessageKind::kResponse) {
      HandleResponse(conn, message.response);
    }
    offset += consumed;
  }
  conn->inbuf.erase(0, offset);
}

void RpcClient::HandleResponse(Connection* conn, const ResponseFrame& response) {
  if (conn->pending.find(response.rpc_id) == conn->pending.end()) {
    return;  // late response after a timeout — correlation id retired
  }
  if (response.code == StatusCode::kOk) {
    FinishCall(conn, response.rpc_id, std::string(response.body));
  } else {
    FinishCall(conn, response.rpc_id,
               Status(response.code, std::string(response.body)));
  }
}

void RpcClient::ConnLost(Connection* conn, const Status& reason) {
  if (conn->fd >= 0) {
    loop_.RemoveFd(conn->fd);
    close(conn->fd);
    conn->fd = -1;
  }
  conn->inbuf.clear();
  conn->sendq.Clear();
  conn->want_write = false;
  if (conn->connect_timer != 0) {
    loop_.CancelTimer(conn->connect_timer);
    conn->connect_timer = 0;
  }
  // Calls on the wire cannot be resent blindly — the server may have
  // executed them. Fail them; retry belongs to the caller's policy
  // (idempotency tokens make it safe). Unsent calls stay queued for the
  // reconnect; their deadline timers bound the wait.
  std::vector<uint64_t> sent_ids;
  for (const auto& [id, call] : conn->pending) {
    if (call.sent) sent_ids.push_back(id);
  }
  for (uint64_t id : sent_ids) {
    FinishCall(conn, id, Status(reason.code(), reason.message()));
  }
  ScheduleReconnect(conn);
}

void RpcClient::FlushUnsent(Connection* conn) {
  bool queued = false;
  while (!conn->unsent.empty()) {
    uint64_t id = conn->unsent.front();
    conn->unsent.pop_front();
    auto it = conn->pending.find(id);
    if (it == conn->pending.end()) continue;  // timed out while queued
    it->second.sent = true;
    conn->sendq.Append(std::move(it->second.frame));
    it->second.frame.clear();
    queued = true;
  }
  if (queued) FlushOutbuf(conn);
}

void RpcClient::FlushOutbuf(Connection* conn) {
  while (!conn->sendq.empty()) {
    struct iovec iov[kMaxIovecs];
    int iov_count = conn->sendq.FillIovecs(iov, kMaxIovecs);
    ssize_t n = writev(conn->fd, iov, iov_count);
    if (n > 0) {
      conn->sendq.Consume(static_cast<size_t>(n));
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_.ModFd(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    ConnLost(conn, Status::Unavailable(std::string("write: ") + strerror(errno)));
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    loop_.ModFd(conn->fd, EPOLLIN);
  }
}

void RpcClient::FinishCall(Connection* conn, uint64_t rpc_id,
                           Result<std::string> result) {
  auto it = conn->pending.find(rpc_id);
  if (it == conn->pending.end()) return;
  PendingCall call = std::move(it->second);
  conn->pending.erase(it);
  if (call.deadline_timer != 0) loop_.CancelTimer(call.deadline_timer);
  stats_.inflight.fetch_sub(1, std::memory_order_relaxed);
  int64_t now_us = EventLoop::NowUs();
  if (call.span_ctx.sampled()) {
    options_.tracer->Record(call.span_ctx, "rpc." + call.service,
                            options_.node_label, call.started_us * 1000,
                            now_us * 1000);
  }
  if (call_latency_us_ != nullptr) {
    call_latency_us_->Record(now_us - call.started_us);
  }
  call.done(std::move(result));  // may reentrantly issue new calls
}

void RpcClient::Stop() {
  if (stopped_) return;
  stopped_ = true;
  loop_.RunInLoop([this] {
    for (auto& [address, conn] : conns_) {
      std::vector<uint64_t> ids;
      ids.reserve(conn->pending.size());
      for (const auto& [id, call] : conn->pending) ids.push_back(id);
      for (uint64_t id : ids) {
        FinishCall(conn.get(), id, Status::Unavailable("rpc client stopped"));
      }
      if (conn->fd >= 0) {
        loop_.RemoveFd(conn->fd);
        close(conn->fd);
        conn->fd = -1;
      }
    }
  });
  loop_.Stop();
  loop_thread_.join();
  // Calls queued between the cleanup above and the loop's death would
  // otherwise hold broken promises; run them now — they fail fast on
  // the stopped_ check.
  loop_.DrainNow();
}

}  // namespace lo::net
