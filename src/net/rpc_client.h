// Async TCP RPC client on net::EventLoop — the real-transport
// counterpart of the client half of sim::RpcEndpoint.
//
// One loop thread owns a pool of connections, one per remote address,
// each multiplexing any number of in-flight calls by correlation id
// (rpc_id): callers never wait for the wire to go quiet, and every
// thread in the process can share one RpcClient. Per-call deadlines are
// armed on the loop's timer wheel and travel in the frame header, so
// the server can shed the request if it expires in a queue.
//
// Connection lifecycle: a call to a new address starts a non-blocking
// connect; calls issued while connecting (or while in reconnect
// backoff) queue and are written once the socket is ready. When a
// connection drops, calls already on the wire fail with Unavailable
// (the caller cannot know whether they executed — retry with an
// idempotency token, see net::RemoteClient) and the client re-dials
// with exponential backoff + jitter, the same policy the sim client
// uses (cluster/client.h). Queued-but-unsent calls survive a reconnect:
// their own deadline is the only bound on how long they wait.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/send_queue.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lo::net {

struct RpcClientOptions {
  /// Deadline on establishing a TCP connection.
  int64_t connect_timeout_us = 1'000'000;
  /// Reconnect backoff: doubles per consecutive failure (±25% jitter
  /// from a seeded RNG) up to the max; resets on success.
  int64_t reconnect_backoff_us = 10'000;
  int64_t reconnect_backoff_max_us = 1'000'000;
  uint64_t seed = 1;  // jitter RNG
  size_t max_frame_bytes = kMaxFrameBytes;
  /// Observability (nullptr = off). Counters register under `node_label`
  /// as net.client.*; sampled calls get "rpc.<service>" spans like the
  /// sim transport. The tracer is only touched on the loop thread.
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;
  uint32_t node_label = 0;
};

class RpcClient {
 public:
  /// Invoked exactly once, on the loop thread.
  using Callback = std::function<void(Result<std::string>)>;

  explicit RpcClient(RpcClientOptions options = {});
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Thread-safe. Sends `service(payload)` to `address` ("ip:port") with
  /// a relative timeout; the frame carries the absolute deadline so the
  /// server can shed expired work. A sampled `trace` context propagates
  /// in the frame and the call is recorded as an "rpc.<service>" span.
  /// `tenant` rides in the frame for server-side QoS (0 = unattributed).
  void Call(const std::string& address, std::string service, std::string payload,
            int64_t timeout_us, Callback done, obs::TraceContext trace = {},
            uint32_t tenant = 0);

  /// Blocking convenience for worker threads (benchmarks, RemoteClient).
  Result<std::string> CallSync(const std::string& address, std::string service,
                               std::string payload, int64_t timeout_us,
                               obs::TraceContext trace = {}, uint32_t tenant = 0);

  /// Fails outstanding calls with Unavailable and joins the loop thread.
  /// Idempotent; the destructor calls it.
  void Stop();

  struct Stats {
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> connects{0};
    std::atomic<uint64_t> reconnects{0};  // re-dials after a drop/failure
    std::atomic<uint64_t> conn_failures{0};
    std::atomic<uint64_t> inflight{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
  };
  const Stats& stats() const { return stats_; }
  const FrameStats& frame_stats() const { return frame_stats_; }

 private:
  struct PendingCall {
    uint64_t rpc_id = 0;
    std::string frame;  // fully encoded, ready for the wire
    Callback done;
    TimerId deadline_timer = 0;
    bool sent = false;
    int64_t started_us = 0;
    std::string service;
    obs::TraceContext span_ctx;
  };

  enum class ConnState { kConnecting, kReady, kBackoff };

  struct Connection {
    std::string address;
    std::string host;
    uint16_t port = 0;
    int fd = -1;
    ConnState state = ConnState::kBackoff;
    std::string inbuf;
    /// Encoded request frames queued for the wire; drained with writev
    /// so a burst of pipelined calls costs one syscall.
    SendQueue sendq;
    bool want_write = false;
    int64_t backoff_us = 0;
    TimerId connect_timer = 0;    // connect-timeout watchdog
    TimerId reconnect_timer = 0;  // armed while in kBackoff
    /// Calls owned by this connection, keyed by rpc_id. Unsent calls are
    /// also queued (in order) in `unsent`.
    std::unordered_map<uint64_t, PendingCall> pending;
    std::deque<uint64_t> unsent;
  };

  // All private methods run on the loop thread.
  Connection* ConnFor(const std::string& address);
  void StartConnect(Connection* conn);
  void ConnectOutcome(Connection* conn, Status status);
  void ScheduleReconnect(Connection* conn);
  void ConnReady(const std::string& address, uint32_t events);
  void DrainInbuf(Connection* conn);
  void HandleResponse(Connection* conn, const ResponseFrame& response);
  /// Fails in-flight calls, keeps unsent ones, moves to backoff.
  void ConnLost(Connection* conn, const Status& reason);
  void FlushUnsent(Connection* conn);
  void FlushOutbuf(Connection* conn);
  void FinishCall(Connection* conn, uint64_t rpc_id, Result<std::string> result);
  void RegisterMetrics();

  RpcClientOptions options_;
  EventLoop loop_;
  std::thread loop_thread_;
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> next_rpc_id_{1};
  Rng rng_;
  std::unordered_map<std::string, std::unique_ptr<Connection>> conns_;
  Histogram* call_latency_us_ = nullptr;  // owned by the registry
  Stats stats_;
  FrameStats frame_stats_;
};

}  // namespace lo::net
