#include "net/rpc_server.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <utility>

#include "common/log.h"
#include "net/socket.h"

namespace lo::net {

RpcServer::RpcServer(RpcServerOptions options) : options_(std::move(options)) {}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Handle(std::string service, Handler handler) {
  LO_CHECK_MSG(!started_, "Handle() must be called before Start()");
  handlers_[std::move(service)] = std::move(handler);
}

Status RpcServer::Start() {
  LO_CHECK_MSG(!started_, "Start() called twice");
  auto listen_fd = ListenTcp(options_.bind_address, options_.port);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = *listen_fd;
  auto port = LocalPort(listen_fd_);
  if (!port.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;
  // Safe off-loop: the loop thread does not exist yet.
  loop_.AddFd(listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); });
  if (options_.metrics_registry != nullptr) RegisterMetrics();
  started_ = true;
  loop_thread_ = std::thread([this] { loop_.Run(); });
  return Status::OK();
}

void RpcServer::Stop() {
  if (!started_) return;
  loop_.RunInLoop([this] {
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (uint64_t id : ids) CloseConn(id);
    loop_.RemoveFd(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  });
  loop_.Stop();
  loop_thread_.join();
  started_ = false;
}

void RpcServer::RegisterMetrics() {
  obs::MetricsRegistry* reg = options_.metrics_registry;
  uint32_t node = options_.node_label;
  auto counter = [&](const char* name, const std::atomic<uint64_t>* value) {
    reg->RegisterCallback(name, node, [value] {
      return static_cast<double>(value->load(std::memory_order_relaxed));
    });
  };
  counter("net.server.requests", &stats_.requests);
  counter("net.server.responses", &stats_.responses);
  counter("net.server.deadline_shed", &stats_.deadline_shed);
  counter("net.server.bytes_in", &stats_.bytes_in);
  counter("net.server.bytes_out", &stats_.bytes_out);
  counter("net.server.connections", &stats_.connections_accepted);
  counter("net.server.frame_crc_rejects", &frame_stats_.crc_rejects);
  counter("net.server.frame_malformed_rejects", &frame_stats_.malformed_rejects);
}

void RpcServer::AcceptReady() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      LO_WARN << "accept failed: " << strerror(errno);
      return;
    }
    if (Status st = SetNoDelay(fd); !st.ok()) {
      LO_WARN << "TCP_NODELAY: " << st.ToString();
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    uint64_t id = conn->id;
    conns_[id] = std::move(conn);
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    loop_.AddFd(fd, EPOLLIN, [this, id](uint32_t events) { ConnReady(id, events); });
  }
}

void RpcServer::ConnReady(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(conn_id);
    return;
  }
  if (events & EPOLLOUT) {
    if (!conn->want_write) {
      // Spurious; nothing queued.
    } else {
      FlushConn(conn);
      if (conns_.find(conn_id) == conns_.end()) return;  // closed on error
    }
  }
  if ((events & EPOLLIN) == 0) return;
  bool peer_closed = false;
  char buf[64 * 1024];
  while (true) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      stats_.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn_id);
    return;
  }
  if (!DrainInbuf(conn)) return;  // corrupt stream, connection closed
  if (peer_closed) CloseConn(conn_id);
}

bool RpcServer::DrainInbuf(Connection* conn) {
  uint64_t conn_id = conn->id;
  size_t offset = 0;
  std::string_view view(conn->inbuf);
  while (true) {
    size_t consumed = 0;
    std::string_view body;
    DecodeResult result =
        TryDecodeFrame(view.substr(offset), &consumed, &body, &frame_stats_);
    if (result == DecodeResult::kNeedMore) break;
    if (result == DecodeResult::kCorrupt) {
      // A byte stream that fails its checksum cannot be re-synchronized;
      // drop the connection (the client reconnects and retries).
      LO_WARN << "closing connection " << conn_id << ": corrupt frame";
      CloseConn(conn_id);
      return false;
    }
    Message message;
    if (DecodeMessage(body, &message, &frame_stats_) &&
        message.kind == MessageKind::kRequest) {
      DispatchRequest(conn, message.request);
      // A synchronous responder can hit a write error that closes the
      // connection under us.
      if (conns_.find(conn_id) == conns_.end()) return false;
    }
    offset += consumed;
  }
  conn->inbuf.erase(0, offset);
  return true;
}

void RpcServer::DispatchRequest(Connection* conn, const RequestFrame& request) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  uint64_t rpc_id = request.rpc_id;
  Request req;
  req.service.assign(request.service);
  req.payload.assign(request.payload);
  req.deadline_us = request.deadline_us;
  req.tenant = request.tenant;
  obs::TraceContext caller_ctx;
  caller_ctx.trace_id = request.trace_id;
  caller_ctx.span_id = request.span_id;
  if (req.Expired()) {
    // Shed: the request outlived its deadline in a buffer; the caller
    // has already timed out or is about to — don't do the work.
    stats_.deadline_shed.fetch_add(1, std::memory_order_relaxed);
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
    SendOnConn(conn, EncodeResponse(
                         rpc_id, Status::Timeout("deadline expired at server")));
    return;
  }
  auto handler_it = handlers_.find(req.service);
  if (handler_it == handlers_.end()) {
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
    SendOnConn(conn, EncodeResponse(
                         rpc_id, Status::NotFound("no such service: " + req.service)));
    return;
  }
  // Server-side span, mirroring sim::RpcEndpoint: handler wall time as
  // "srv.<service>" under the caller's rpc span.
  obs::TraceContext server_ctx = obs::Tracing(options_.tracer, caller_ctx)
                                     ? options_.tracer->Child(caller_ctx)
                                     : obs::TraceContext{};
  req.trace = server_ctx.sampled() ? server_ctx : caller_ctx;
  int64_t started_us = EventLoop::NowUs();
  uint64_t conn_id = conn->id;
  auto used = std::make_shared<std::atomic<bool>>(false);
  std::string service = req.service;
  Responder respond = [this, conn_id, rpc_id, used, server_ctx, started_us,
                       service](Result<std::string> result) {
    if (used->exchange(true)) return;  // single-shot
    loop_.RunInLoop([this, conn_id, rpc_id, server_ctx, started_us, service,
                     result = std::move(result)] {
      if (server_ctx.sampled()) {
        options_.tracer->Record(server_ctx, "srv." + service,
                                options_.node_label, started_us * 1000,
                                EventLoop::NowUs() * 1000);
      }
      stats_.responses.fetch_add(1, std::memory_order_relaxed);
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) return;  // connection died; drop the reply
      SendOnConn(it->second.get(), EncodeResponse(rpc_id, result));
    });
  };
  handler_it->second(std::move(req), std::move(respond));
}

void RpcServer::SendOnConn(Connection* conn, std::string frame) {
  conn->outbuf.append(frame);
  FlushConn(conn);
}

void RpcServer::FlushConn(Connection* conn) {
  while (conn->out_offset < conn->outbuf.size()) {
    ssize_t n = write(conn->fd, conn->outbuf.data() + conn->out_offset,
                      conn->outbuf.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_.ModFd(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (errno == EINTR) continue;
    CloseConn(conn->id);
    return;
  }
  conn->outbuf.clear();
  conn->out_offset = 0;
  if (conn->want_write) {
    conn->want_write = false;
    loop_.ModFd(conn->fd, EPOLLIN);
  }
}

void RpcServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  loop_.RemoveFd(it->second->fd);
  close(it->second->fd);
  conns_.erase(it);
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lo::net
