#include "net/rpc_server.h"

#include <errno.h>
#include <stdlib.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "common/log.h"
#include "net/socket.h"

namespace lo::net {
namespace {

/// Iovecs per writev. 64 covers a deep pipelined burst (32 responses at
/// two parts each) while staying far under IOV_MAX.
constexpr int kMaxIovecs = 64;

int EnvInt(const char* name, int fallback) {
  const char* value = getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long parsed = strtol(value, &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

}  // namespace

RpcServer::RpcServer(RpcServerOptions options) : options_(std::move(options)) {}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Handle(std::string service, Handler handler) {
  LO_CHECK_MSG(!started_, "Handle() must be called before Start()");
  handlers_[std::move(service)] = std::move(handler);
}

Status RpcServer::Start() {
  LO_CHECK_MSG(!started_, "Start() called twice");
  int net_threads = options_.net_threads > 0 ? options_.net_threads
                                             : EnvInt("LO_NET_THREADS", 1);
  net_threads = std::clamp(net_threads, 1, 64);

  reactors_.reserve(static_cast<size_t>(net_threads));
  for (int i = 0; i < net_threads; ++i) {
    auto reactor = std::make_unique<Reactor>(options_.backend);
    reactor->index = i;
    reactors_.push_back(std::move(reactor));
  }

  // Reactor 0's listener. With several reactors, try SO_REUSEPORT so
  // every reactor can bind its own; a kernel that refuses drops us to
  // the single-acceptor round-robin fallback.
  reuseport_sharding_ = net_threads > 1;
  auto listen_fd = ListenTcp(options_.bind_address, options_.port,
                             reuseport_sharding_);
  if (!listen_fd.ok() && reuseport_sharding_) {
    reuseport_sharding_ = false;
    listen_fd = ListenTcp(options_.bind_address, options_.port, false);
  }
  if (!listen_fd.ok()) {
    reactors_.clear();
    return listen_fd.status();
  }
  reactors_[0]->listen_fd = *listen_fd;
  auto port = LocalPort(*listen_fd);
  if (!port.ok()) {
    close(*listen_fd);
    reactors_.clear();
    return port.status();
  }
  port_ = *port;

  if (reuseport_sharding_) {
    for (int i = 1; i < net_threads; ++i) {
      auto fd = ListenTcp(options_.bind_address, port_, true);
      if (!fd.ok()) {
        // Mid-way failure: keep reactor 0's listener, shed the rest and
        // deal connections round-robin instead.
        LO_WARN << "SO_REUSEPORT listener " << i
                << " failed, falling back to round-robin accept: "
                << fd.status().ToString();
        for (int j = 1; j < i; ++j) {
          close(reactors_[j]->listen_fd);
          reactors_[j]->listen_fd = -1;
        }
        reuseport_sharding_ = false;
        break;
      }
      reactors_[i]->listen_fd = *fd;
    }
  }

  // Safe off-loop: no reactor thread exists yet.
  for (auto& reactor_ptr : reactors_) {
    Reactor* reactor = reactor_ptr.get();
    if (reactor->listen_fd >= 0) {
      reactor->loop.AddFd(reactor->listen_fd, EPOLLIN,
                          [this, reactor](uint32_t) { AcceptReady(reactor); });
    }
    if (options_.coalesce_flush) {
      reactor->loop.SetEndOfIteration([this, reactor] { FlushDirty(reactor); });
    }
  }
  if (options_.metrics_registry != nullptr) RegisterMetrics();
  started_ = true;
  for (auto& reactor_ptr : reactors_) {
    Reactor* reactor = reactor_ptr.get();
    reactor->thread = std::thread([reactor] { reactor->loop.Run(); });
  }
  return Status::OK();
}

void RpcServer::Stop() {
  if (!started_) return;
  for (auto& reactor_ptr : reactors_) {
    Reactor* reactor = reactor_ptr.get();
    reactor->loop.RunInLoop([this, reactor] {
      std::vector<uint64_t> ids;
      ids.reserve(reactor->conns.size());
      for (const auto& [id, conn] : reactor->conns) ids.push_back(id);
      for (uint64_t id : ids) CloseConn(reactor, id);
      if (reactor->listen_fd >= 0) {
        reactor->loop.RemoveFd(reactor->listen_fd);
        close(reactor->listen_fd);
        reactor->listen_fd = -1;
      }
    });
    reactor->loop.Stop();
  }
  for (auto& reactor_ptr : reactors_) reactor_ptr->thread.join();
  started_ = false;
}

const char* RpcServer::backend_name() const {
  return reactors_.empty() ? NetBackendName(options_.backend)
                           : reactors_[0]->loop.backend_name();
}

uint64_t RpcServer::poll_waits() const {
  uint64_t total = 0;
  for (const auto& reactor : reactors_) total += reactor->loop.poll_waits();
  return total;
}

double RpcServer::syscalls_per_rpc() const {
  uint64_t responses = stats_.responses.load(std::memory_order_relaxed);
  if (responses == 0) return 0.0;
  uint64_t total =
      stats_.syscalls.load(std::memory_order_relaxed) + poll_waits();
  return static_cast<double>(total) / static_cast<double>(responses);
}

void RpcServer::RegisterMetrics() {
  obs::MetricsRegistry* reg = options_.metrics_registry;
  uint32_t node = options_.node_label;
  auto counter = [&](const char* name, const std::atomic<uint64_t>* value) {
    reg->RegisterCallback(name, node, [value] {
      return static_cast<double>(value->load(std::memory_order_relaxed));
    });
  };
  counter("net.server.requests", &stats_.requests);
  counter("net.server.responses", &stats_.responses);
  counter("net.server.deadline_shed", &stats_.deadline_shed);
  counter("net.server.backlog_shed", &stats_.backlog_shed);
  counter("net.server.bytes_in", &stats_.bytes_in);
  counter("net.server.bytes_out", &stats_.bytes_out);
  counter("net.server.connections", &stats_.connections_accepted);
  counter("net.server.syscalls", &stats_.syscalls);
  counter("net.conn_backlog_bytes", &stats_.backlog_bytes);
  counter("net.server.frame_crc_rejects", &frame_stats_.crc_rejects);
  counter("net.server.frame_malformed_rejects", &frame_stats_.malformed_rejects);
  reg->RegisterCallback("net.syscalls_per_rpc", node,
                        [this] { return syscalls_per_rpc(); });
}

void RpcServer::AcceptReady(Reactor* reactor) {
  while (true) {
    stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
    int fd = accept4(reactor->listen_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      LO_WARN << "accept failed: " << strerror(errno);
      return;
    }
    if (reuseport_sharding_ || reactors_.size() == 1) {
      AdoptFd(reactor, fd);
      continue;
    }
    // Fallback sharding: the lone acceptor deals connections round-robin
    // and hands the bare fd to the owning reactor's loop.
    uint32_t target_index =
        round_robin_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint32_t>(reactors_.size());
    Reactor* target = reactors_[target_index].get();
    if (target == reactor) {
      AdoptFd(reactor, fd);
    } else {
      target->loop.RunInLoop([this, target, fd] { AdoptFd(target, fd); });
    }
  }
}

void RpcServer::AdoptFd(Reactor* reactor, int fd) {
  if (Status st = SetNoDelay(fd); !st.ok()) {
    LO_WARN << "TCP_NODELAY: " << st.ToString();
  }
  if (options_.sndbuf_bytes > 0) {
    if (Status st = SetSendBuf(fd, options_.sndbuf_bytes); !st.ok()) {
      LO_WARN << "SO_SNDBUF: " << st.ToString();
    }
  }
  auto conn = std::make_unique<Connection>();
  conn->id = (static_cast<uint64_t>(reactor->index) << 48) |
             reactor->next_conn_seq++;
  conn->fd = fd;
  uint64_t id = conn->id;
  reactor->conns[id] = std::move(conn);
  stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  reactor->loop.AddFd(fd, EPOLLIN, [this, reactor, id](uint32_t events) {
    ConnReady(reactor, id, events);
  });
}

void RpcServer::ConnReady(Reactor* reactor, uint64_t conn_id, uint32_t events) {
  auto it = reactor->conns.find(conn_id);
  if (it == reactor->conns.end()) return;
  Connection* conn = it->second.get();
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(reactor, conn_id);
    return;
  }
  if (events & EPOLLOUT) {
    if (!conn->want_write) {
      // Spurious; nothing queued.
    } else {
      FlushConn(reactor, conn);
      if (reactor->conns.find(conn_id) == reactor->conns.end()) return;
    }
  }
  if ((events & EPOLLIN) == 0) return;
  bool peer_closed = false;
  char buf[64 * 1024];
  while (true) {
    stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      stats_.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(reactor, conn_id);
    return;
  }
  if (!DrainInbuf(reactor, conn)) return;  // corrupt stream, conn closed
  if (peer_closed) CloseConn(reactor, conn_id);
}

bool RpcServer::DrainInbuf(Reactor* reactor, Connection* conn) {
  uint64_t conn_id = conn->id;
  size_t offset = 0;
  std::string_view view(conn->inbuf);
  while (true) {
    size_t consumed = 0;
    std::string_view body;
    DecodeResult result =
        TryDecodeFrame(view.substr(offset), &consumed, &body, &frame_stats_);
    if (result == DecodeResult::kNeedMore) break;
    if (result == DecodeResult::kCorrupt) {
      // A byte stream that fails its checksum cannot be re-synchronized;
      // drop the connection (the client reconnects and retries).
      LO_WARN << "closing connection " << conn_id << ": corrupt frame";
      CloseConn(reactor, conn_id);
      return false;
    }
    Message message;
    if (DecodeMessage(body, &message, &frame_stats_) &&
        message.kind == MessageKind::kRequest) {
      DispatchRequest(reactor, conn, message.request);
      // A synchronous responder can hit a write error that closes the
      // connection under us.
      if (reactor->conns.find(conn_id) == reactor->conns.end()) return false;
    }
    offset += consumed;
  }
  conn->inbuf.erase(0, offset);
  return true;
}

void RpcServer::DispatchRequest(Reactor* reactor, Connection* conn,
                                const RequestFrame& request) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  uint64_t rpc_id = request.rpc_id;
  Request req;
  req.service.assign(request.service);
  req.payload.assign(request.payload);
  req.deadline_us = request.deadline_us;
  req.tenant = request.tenant;
  obs::TraceContext caller_ctx;
  caller_ctx.trace_id = request.trace_id;
  caller_ctx.span_id = request.span_id;
  if (conn->sendq.bytes() >= options_.max_conn_backlog_bytes) {
    // The client stopped reading; doing more work for it only grows the
    // queue. Shed through the deadline path — the tiny Timeout response
    // bounds per-request queue growth to a few dozen bytes.
    stats_.backlog_shed.fetch_add(1, std::memory_order_relaxed);
    stats_.deadline_shed.fetch_add(1, std::memory_order_relaxed);
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
    SendOnConn(reactor, conn,
               EncodeResponseParts(
                   rpc_id, Status::Timeout("connection backlog over cap")));
    return;
  }
  if (req.Expired()) {
    // Shed: the request outlived its deadline in a buffer; the caller
    // has already timed out or is about to — don't do the work.
    stats_.deadline_shed.fetch_add(1, std::memory_order_relaxed);
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
    SendOnConn(reactor, conn,
               EncodeResponseParts(
                   rpc_id, Status::Timeout("deadline expired at server")));
    return;
  }
  auto handler_it = handlers_.find(req.service);
  if (handler_it == handlers_.end()) {
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
    SendOnConn(reactor, conn,
               EncodeResponseParts(
                   rpc_id, Status::NotFound("no such service: " + req.service)));
    return;
  }
  // Server-side span, mirroring sim::RpcEndpoint: handler wall time as
  // "srv.<service>" under the caller's rpc span.
  obs::TraceContext server_ctx = obs::Tracing(options_.tracer, caller_ctx)
                                     ? options_.tracer->Child(caller_ctx)
                                     : obs::TraceContext{};
  req.trace = server_ctx.sampled() ? server_ctx : caller_ctx;
  int64_t started_us = EventLoop::NowUs();
  uint64_t conn_id = conn->id;
  auto used = std::make_shared<std::atomic<bool>>(false);
  std::string service = req.service;
  Responder respond = [this, reactor, conn_id, rpc_id, used, server_ctx,
                       started_us, service](Result<std::string> result) {
    if (used->exchange(true)) return;  // single-shot
    auto complete = [this, reactor, conn_id, rpc_id, server_ctx, started_us,
                     service, result = std::move(result)]() mutable {
      if (server_ctx.sampled()) {
        options_.tracer->Record(server_ctx, "srv." + service,
                                options_.node_label, started_us * 1000,
                                EventLoop::NowUs() * 1000);
      }
      stats_.responses.fetch_add(1, std::memory_order_relaxed);
      auto it = reactor->conns.find(conn_id);
      if (it == reactor->conns.end()) return;  // connection died; drop
      SendOnConn(reactor, it->second.get(),
                 EncodeResponseParts(rpc_id, std::move(result)));
    };
    // Synchronous handlers complete on the loop thread: queue the
    // response NOW, not via the pending queue, so the next pipelined
    // request's backlog check sees every byte already owed to this
    // connection. Worker-thread completions marshal over as before.
    if (reactor->loop.InLoopThread()) {
      complete();
    } else {
      reactor->loop.RunInLoop(std::move(complete));
    }
  };
  handler_it->second(std::move(req), std::move(respond));
}

void RpcServer::SendOnConn(Reactor* reactor, Connection* conn,
                           ResponseParts parts) {
  size_t queued = parts.head.size() + parts.payload.size();
  conn->sendq.Append(std::move(parts.head));
  conn->sendq.Append(std::move(parts.payload));
  stats_.backlog_bytes.fetch_add(queued, std::memory_order_relaxed);
  if (!options_.coalesce_flush) {
    FlushConn(reactor, conn);
    return;
  }
  // Coalesced: the end-of-iteration hook drains every response queued
  // this iteration with one writev. A connection already waiting on
  // EPOLLOUT is flushed by the write-ready event instead.
  if (!conn->dirty && !conn->want_write) {
    conn->dirty = true;
    reactor->flush_list.push_back(conn->id);
  }
}

void RpcServer::FlushDirty(Reactor* reactor) {
  if (reactor->flush_list.empty()) return;
  std::vector<uint64_t> batch;
  batch.swap(reactor->flush_list);
  for (uint64_t conn_id : batch) {
    auto it = reactor->conns.find(conn_id);
    if (it == reactor->conns.end()) continue;  // closed since queueing
    Connection* conn = it->second.get();
    conn->dirty = false;
    if (!conn->want_write) FlushConn(reactor, conn);
  }
}

void RpcServer::FlushConn(Reactor* reactor, Connection* conn) {
  while (!conn->sendq.empty()) {
    struct iovec iov[kMaxIovecs];
    int iov_count = conn->sendq.FillIovecs(iov, kMaxIovecs);
    stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
    ssize_t n = writev(conn->fd, iov, iov_count);
    if (n > 0) {
      conn->sendq.Consume(static_cast<size_t>(n));
      stats_.backlog_bytes.fetch_sub(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        reactor->loop.ModFd(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn(reactor, conn->id);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    reactor->loop.ModFd(conn->fd, EPOLLIN);
  }
}

void RpcServer::CloseConn(Reactor* reactor, uint64_t conn_id) {
  auto it = reactor->conns.find(conn_id);
  if (it == reactor->conns.end()) return;
  stats_.backlog_bytes.fetch_sub(it->second->sendq.bytes(),
                                 std::memory_order_relaxed);
  reactor->loop.RemoveFd(it->second->fd);
  close(it->second->fd);
  reactor->conns.erase(it);
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lo::net
