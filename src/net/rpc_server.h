// Async TCP RPC server on net::EventLoop — the real-transport
// counterpart of the server half of sim::RpcEndpoint.
//
// The server runs `net_threads` reactor threads. Each reactor owns its
// own EventLoop, its own SO_REUSEPORT listener (the kernel hashes
// incoming connections across the listeners by 4-tuple), and every
// connection it accepted: accept, frame decode (CRC verified, corrupt
// streams are closed), request dispatch, and response writes all happen
// on the owning reactor thread, so connection state needs no locking
// and a response never hops between transport threads. When
// SO_REUSEPORT sharding is unavailable, reactor 0 runs the lone
// acceptor and deals accepted fds round-robin to its peers.
//
// Responses coalesce: a completed response appends to the connection's
// iovec send queue and the reactor flushes every dirty connection with
// one writev at the end of the loop iteration, so a pipelined burst of
// N responses costs one write syscall instead of N. Responses are
// encoded scatter-gather (frame.h EncodeResponseParts): the handler's
// payload buffer is moved into the queue, never re-copied into a
// contiguous staging buffer. `coalesce_flush=false` restores the
// legacy write-per-response behavior as the A13 ablation baseline.
//
// Handlers receive a Responder that may be called from ANY thread
// exactly once — completion marshals back onto the owning reactor —
// so a handler can hand the request to worker threads (the lambdastore
// server enqueues onto runtime::ParallelNode lanes) and return
// immediately.
//
// Deadline shedding: a request whose frame-header deadline has already
// passed when it is dispatched is answered with Status::Timeout without
// invoking the handler (it sat in a socket buffer or behind a slow
// handler for longer than the caller was willing to wait — doing the
// work now only burns CPU on a response nobody reads). Handlers that
// queue work should re-check Request::Expired() at execution time; both
// shed points count into stats().deadline_shed via RecordShed.
// A connection whose pending-response backlog exceeds
// `max_conn_backlog_bytes` sheds new requests the same way (the client
// stopped reading; finishing more work for it only grows the queue).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/send_queue.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lo::net {

struct RpcServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back with port().
  uint16_t port = 0;
  size_t max_frame_bytes = kMaxFrameBytes;
  /// Reactor threads (one EventLoop + listener each). 0 reads
  /// LO_NET_THREADS, defaulting to 1.
  int net_threads = 0;
  /// Poller backend for every reactor; default follows LO_NET_BACKEND.
  NetBackend backend = NetBackendFromEnv();
  /// End-of-iteration writev coalescing. false = flush each response
  /// with its own write() immediately (the pre-sharding behavior, kept
  /// as the syscalls-per-RPC ablation baseline).
  bool coalesce_flush = true;
  /// Shed requests once a connection's unsent responses exceed this.
  size_t max_conn_backlog_bytes = 8u << 20;
  /// >0: SO_SNDBUF for accepted sockets. Tests use the kernel minimum
  /// to force partial writev returns across iovec boundaries.
  int sndbuf_bytes = 0;
  /// Observability (nullptr = off). Counters register under `node_label`
  /// as net.server.*; sampled requests get "srv.<service>" spans with
  /// CLOCK_MONOTONIC-µs timestamps, parented under the caller's rpc span
  /// exactly like the sim transport.
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;
  uint32_t node_label = 0;
};

class RpcServer {
 public:
  struct Request {
    std::string service;
    std::string payload;
    obs::TraceContext trace;
    /// Absolute CLOCK_MONOTONIC µs deadline from the frame; 0 = none.
    int64_t deadline_us = 0;
    /// Tenant QoS identity from the frame; 0 = unattributed.
    uint32_t tenant = 0;

    bool Expired() const {
      return deadline_us != 0 && EventLoop::NowUs() > deadline_us;
    }
  };
  /// Thread-safe, single-shot. Calling it after the connection died (or
  /// after Stop()) is harmless — the response is dropped — but every
  /// Responder must be invoked or destroyed before the RpcServer is
  /// destructed: drain worker threads first.
  using Responder = std::function<void(Result<std::string>)>;
  using Handler = std::function<void(Request request, Responder respond)>;

  explicit RpcServer(RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Installs the handler for `service`. Call before Start().
  void Handle(std::string service, Handler handler);

  /// Binds the listeners and spawns the reactor threads.
  Status Start();
  /// Closes every connection and joins the reactor threads. Idempotent.
  void Stop();

  /// Actual bound port (after Start with port 0).
  uint16_t port() const { return port_; }
  /// Reactor threads actually running (after Start).
  int reactors() const { return static_cast<int>(reactors_.size()); }
  /// Poller actually in use ("epoll"/"uring") — may differ from the
  /// requested backend when io_uring is unavailable. Valid after Start.
  const char* backend_name() const;
  /// True when each reactor has its own SO_REUSEPORT listener; false in
  /// the single-acceptor round-robin fallback.
  bool reuseport_sharding() const { return reuseport_sharding_; }

  struct Stats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> deadline_shed{0};
    std::atomic<uint64_t> backlog_shed{0};  // subset of deadline_shed
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    /// Data-path syscalls issued: every read/writev/write/accept4 call,
    /// including ones that return EAGAIN.
    std::atomic<uint64_t> syscalls{0};
    /// Unsent response bytes queued across all live connections (gauge).
    std::atomic<uint64_t> backlog_bytes{0};
  };
  const Stats& stats() const { return stats_; }
  const FrameStats& frame_stats() const { return frame_stats_; }
  /// Handlers that shed queued work themselves (lane-level deadline
  /// checks) report it here so one counter covers both shed points.
  void RecordShed() { stats_.deadline_shed.fetch_add(1, std::memory_order_relaxed); }

  /// Blocking readiness waits across all reactors.
  uint64_t poll_waits() const;
  /// (data syscalls + poll waits) / responses — the per-RPC syscall
  /// budget the coalesced flush path exists to shrink. 0 before any
  /// response.
  double syscalls_per_rpc() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string inbuf;
    SendQueue sendq;
    bool want_write = false;  // EAGAIN hit; EPOLLOUT armed and drives flush
    bool dirty = false;       // queued on the reactor's flush list
  };

  /// One reactor thread: loop + listener + the connections it accepted.
  /// All fields except the loop handle are loop-thread-only.
  struct Reactor {
    int index = 0;
    EventLoop loop;
    std::thread thread;
    int listen_fd = -1;
    uint64_t next_conn_seq = 1;
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    std::vector<uint64_t> flush_list;  // dirty connections this iteration

    explicit Reactor(NetBackend backend) : loop(backend) {}
  };

  void AcceptReady(Reactor* reactor);
  /// Registers an accepted fd on `reactor` (its loop thread).
  void AdoptFd(Reactor* reactor, int fd);
  void ConnReady(Reactor* reactor, uint64_t conn_id, uint32_t events);
  /// Returns false when the connection was closed mid-processing.
  bool DrainInbuf(Reactor* reactor, Connection* conn);
  void DispatchRequest(Reactor* reactor, Connection* conn,
                       const RequestFrame& request);
  /// Queues an encoded response; the reactor's end-of-iteration hook
  /// (or EPOLLOUT) flushes it. With coalescing off, flushes now.
  void SendOnConn(Reactor* reactor, Connection* conn, ResponseParts parts);
  void FlushConn(Reactor* reactor, Connection* conn);
  /// End-of-iteration hook: one writev per dirty connection.
  void FlushDirty(Reactor* reactor);
  void CloseConn(Reactor* reactor, uint64_t conn_id);
  void RegisterMetrics();

  RpcServerOptions options_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  bool started_ = false;
  bool reuseport_sharding_ = false;
  std::atomic<uint32_t> round_robin_{0};  // fallback acceptor's next target
  uint16_t port_ = 0;
  std::unordered_map<std::string, Handler> handlers_;
  Stats stats_;
  FrameStats frame_stats_;
};

}  // namespace lo::net
