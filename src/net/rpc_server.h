// Async TCP RPC server on net::EventLoop — the real-transport
// counterpart of the server half of sim::RpcEndpoint.
//
// One loop thread owns every connection: accept, frame decode (CRC
// verified, corrupt streams are closed), request dispatch, response
// writes. Handlers receive a Responder that may be called from ANY
// thread exactly once — completion marshals back onto the loop thread —
// so a handler can hand the request to worker threads (the lambdastore
// server enqueues onto runtime::ParallelNode lanes) and return
// immediately.
//
// Deadline shedding: a request whose frame-header deadline has already
// passed when it is dispatched is answered with Status::Timeout without
// invoking the handler (it sat in a socket buffer or behind a slow
// handler for longer than the caller was willing to wait — doing the
// work now only burns CPU on a response nobody reads). Handlers that
// queue work should re-check Request::Expired() at execution time; both
// shed points count into stats().deadline_shed via RecordShed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lo::net {

struct RpcServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back with port().
  uint16_t port = 0;
  size_t max_frame_bytes = kMaxFrameBytes;
  /// Observability (nullptr = off). Counters register under `node_label`
  /// as net.server.*; sampled requests get "srv.<service>" spans with
  /// CLOCK_MONOTONIC-µs timestamps, parented under the caller's rpc span
  /// exactly like the sim transport.
  obs::MetricsRegistry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;
  uint32_t node_label = 0;
};

class RpcServer {
 public:
  struct Request {
    std::string service;
    std::string payload;
    obs::TraceContext trace;
    /// Absolute CLOCK_MONOTONIC µs deadline from the frame; 0 = none.
    int64_t deadline_us = 0;
    /// Tenant QoS identity from the frame; 0 = unattributed.
    uint32_t tenant = 0;

    bool Expired() const {
      return deadline_us != 0 && EventLoop::NowUs() > deadline_us;
    }
  };
  /// Thread-safe, single-shot. Calling it after the connection died (or
  /// after Stop()) is harmless — the response is dropped — but every
  /// Responder must be invoked or destroyed before the RpcServer is
  /// destructed: drain worker threads first.
  using Responder = std::function<void(Result<std::string>)>;
  using Handler = std::function<void(Request request, Responder respond)>;

  explicit RpcServer(RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Installs the handler for `service`. Call before Start().
  void Handle(std::string service, Handler handler);

  /// Binds, listens, and spawns the loop thread.
  Status Start();
  /// Closes every connection and joins the loop thread. Idempotent.
  void Stop();

  /// Actual bound port (after Start with port 0).
  uint16_t port() const { return port_; }

  struct Stats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> deadline_shed{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
  };
  const Stats& stats() const { return stats_; }
  const FrameStats& frame_stats() const { return frame_stats_; }
  /// Handlers that shed queued work themselves (lane-level deadline
  /// checks) report it here so one counter covers both shed points.
  void RecordShed() { stats_.deadline_shed.fetch_add(1, std::memory_order_relaxed); }

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    size_t out_offset = 0;  // bytes of outbuf already written
    bool want_write = false;
  };

  void AcceptReady();
  void ConnReady(uint64_t conn_id, uint32_t events);
  /// Returns false when the connection was closed mid-processing.
  bool DrainInbuf(Connection* conn);
  void DispatchRequest(Connection* conn, const RequestFrame& request);
  /// Queues bytes on the connection and flushes what the socket accepts.
  void SendOnConn(Connection* conn, std::string frame);
  void FlushConn(Connection* conn);
  void CloseConn(uint64_t conn_id);
  void RegisterMetrics();

  RpcServerOptions options_;
  EventLoop loop_;
  std::thread loop_thread_;
  bool started_ = false;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<std::string, Handler> handlers_;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  Stats stats_;
  FrameStats frame_stats_;
};

}  // namespace lo::net
