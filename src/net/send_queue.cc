#include "net/send_queue.h"

#include <sys/uio.h>

#include <utility>

#include "common/log.h"

namespace lo::net {

void SendQueue::Append(std::string buf) {
  if (buf.empty()) return;
  bytes_ += buf.size();
  bufs_.push_back(std::move(buf));
}

int SendQueue::FillIovecs(struct iovec* iov, int max) const {
  int n = 0;
  for (const std::string& buf : bufs_) {
    if (n == max) break;
    size_t skip = (n == 0) ? head_offset_ : 0;
    iov[n].iov_base = const_cast<char*>(buf.data()) + skip;
    iov[n].iov_len = buf.size() - skip;
    n++;
  }
  return n;
}

void SendQueue::Consume(size_t n) {
  LO_CHECK_MSG(n <= bytes_, "SendQueue::Consume past end");
  bytes_ -= n;
  while (n > 0) {
    size_t head_remaining = bufs_.front().size() - head_offset_;
    if (n < head_remaining) {
      head_offset_ += n;
      return;
    }
    n -= head_remaining;
    bufs_.pop_front();
    head_offset_ = 0;
  }
}

void SendQueue::Clear() {
  bufs_.clear();
  head_offset_ = 0;
  bytes_ = 0;
}

}  // namespace lo::net
