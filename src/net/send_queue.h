// Per-connection output queue for the coalesced writev flush path.
//
// Completed responses (and pipelined client requests) append as owned
// buffers — no concatenation copy — and a flush drains as many entries
// as one writev accepts. Partial writes are the whole point of the
// class being separate: Consume() advances an offset into the head
// buffer and retires entries strictly in order as the byte count
// crosses their boundaries, so a short write never re-sends a drained
// entry and never skips an undrained one. FillIovecs() always starts
// at the first unsent byte.
//
// The scatter-gather response encode (net/frame.h EncodeResponseParts)
// leans on this: a response lands as two entries — a small owned
// header+preamble buffer and the payload string moved from the handler
// — and the wire sees them contiguously through one writev.
#pragma once

#include <cstddef>
#include <deque>
#include <string>

struct iovec;

namespace lo::net {

class SendQueue {
 public:
  /// Queues `buf` (moved; empty buffers are dropped).
  void Append(std::string buf);

  bool empty() const { return bytes_ == 0; }
  /// Unsent bytes across all queued buffers (the connection backlog).
  size_t bytes() const { return bytes_; }

  /// Fills up to `max` iovecs starting at the first unsent byte.
  /// Returns the count. The pointers stay valid until Consume/Clear.
  int FillIovecs(struct iovec* iov, int max) const;

  /// Marks `n` bytes as written, retiring whole buffers as the count
  /// crosses their boundaries and offsetting into the first survivor.
  /// `n` must not exceed bytes().
  void Consume(size_t n);

  void Clear();

 private:
  std::deque<std::string> bufs_;
  size_t head_offset_ = 0;  // bytes of bufs_.front() already written
  size_t bytes_ = 0;
};

}  // namespace lo::net
