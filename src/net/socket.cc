#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace lo::net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + strerror(errno));
}

}  // namespace

Status ParseAddress(const std::string& address, std::string* host,
                    uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 >= address.size()) {
    return Status::InvalidArgument("address must be host:port: " + address);
  }
  *host = address.substr(0, colon);
  char* end = nullptr;
  long value = strtol(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value < 0 || value > 65535) {
    return Status::InvalidArgument("bad port in address: " + address);
  }
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<int> ListenTcp(const std::string& host, uint16_t port,
                      bool reuseport) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport &&
      setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    Status st = Errno("setsockopt(SO_REUSEPORT)");
    close(fd);
    return st;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind");
    close(fd);
    return st;
  }
  if (listen(fd, 128) != 0) {
    Status st = Errno("listen");
    close(fd);
    return st;
  }
  if (Status st = SetNonBlocking(fd); !st.ok()) {
    close(fd);
    return st;
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  if (Status st = SetNonBlocking(fd); !st.ok()) {
    close(fd);
    return st;
  }
  SetNoDelay(fd).ok();  // best-effort
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    Status st = Errno("connect");
    close(fd);
    return st;
  }
  return fd;
}

Status SetSendBuf(int fd, int bytes) {
  if (setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    return Errno("setsockopt(SO_SNDBUF)");
  }
  return Status::OK();
}

Status ConnectError(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return Errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    return Status::Unavailable(std::string("connect: ") + strerror(err));
  }
  return Status::OK();
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

}  // namespace lo::net
