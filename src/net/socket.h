// Thin non-blocking TCP socket helpers for the net transport. IPv4 only
// (the target deployment is loopback multi-process; see docs/net.md).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace lo::net {

/// "host:port" → (host, port). Host must be a dotted-quad IPv4 literal.
Status ParseAddress(const std::string& address, std::string* host,
                    uint16_t* port);

/// Non-blocking listening socket bound to host:port with SO_REUSEADDR.
/// port 0 binds an ephemeral port — read it back with LocalPort.
/// With `reuseport`, SO_REUSEPORT is set before bind so several
/// listeners can share the port (the kernel hashes connections across
/// them — the per-reactor listener sharding in net::RpcServer).
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      bool reuseport = false);

/// Starts a non-blocking connect. The returned fd is usually still
/// connecting (EINPROGRESS) — wait for EPOLLOUT, then check
/// ConnectError to learn the outcome.
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// SO_ERROR after a non-blocking connect completes: OK or the failure.
Status ConnectError(int fd);

/// Port a socket is actually bound to (after binding port 0).
Result<uint16_t> LocalPort(int fd);

Status SetNonBlocking(int fd);
/// Disables Nagle: RPC frames are latency-sensitive and self-contained.
Status SetNoDelay(int fd);
/// Shrinks/grows the send buffer (tests force partial writev returns by
/// setting this to the minimum the kernel allows).
Status SetSendBuf(int fd, int bytes);

}  // namespace lo::net
