#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lo::obs {
namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string ExportChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendEscaped(&out, span.name);
    // Complete ("X") events; ts/dur in microseconds per the spec.
    std::snprintf(buf, sizeof(buf),
                  ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":%u,\"tid\":%" PRIu64
                  ",\"args\":{\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
                  ",\"parent_span_id\":%" PRIu64 "}}",
                  static_cast<double>(span.start_ns) / 1000.0,
                  static_cast<double>(span.duration_ns()) / 1000.0, span.node,
                  span.trace_id, span.trace_id, span.span_id,
                  span.parent_span_id);
    out += buf;
  }
  out += "]}";
  return out;
}

std::string MetricsTable(const MetricsRegistry& registry) {
  std::string out;
  char buf[320];
  std::snprintf(buf, sizeof(buf), "%-44s %6s %-10s %14s %10s %8s %8s %8s\n",
                "metric", "node", "kind", "value", "count", "p50", "p99", "max");
  out += buf;
  for (const auto& s : registry.Snapshot()) {
    const char* kind = s.kind == MetricsRegistry::Kind::kCounter ? "counter"
                       : s.kind == MetricsRegistry::Kind::kGauge ? "gauge"
                                                                 : "histogram";
    if (s.kind == MetricsRegistry::Kind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "%-44s %6u %-10s %14.2f %10" PRIu64 " %8" PRId64 " %8" PRId64
                    " %8" PRId64 "\n",
                    s.name.c_str(), s.node, kind, s.value, s.count, s.p50, s.p99,
                    s.max);
    } else {
      std::snprintf(buf, sizeof(buf), "%-44s %6u %-10s %14.2f\n", s.name.c_str(),
                    s.node, kind, s.value);
    }
    out += buf;
  }
  return out;
}

// --- minimal JSON reader -----------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    LO_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return v;
  }

 private:
  Status Fail(const std::string& what) {
    return Status::Corruption("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    pos_++;  // '{'
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      LO_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Fail("expected ':'");
      LO_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      v.object.emplace_back(std::move(key.string_value), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    pos_++;  // '['
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (Consume(']')) return v;
    while (true) {
      LO_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      v.array.push_back(std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected string");
    pos_++;
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': v.string_value.push_back('"'); break;
          case '\\': v.string_value.push_back('\\'); break;
          case '/': v.string_value.push_back('/'); break;
          case 'n': v.string_value.push_back('\n'); break;
          case 't': v.string_value.push_back('\t'); break;
          case 'r': v.string_value.push_back('\r'); break;
          case 'b': v.string_value.push_back('\b'); break;
          case 'f': v.string_value.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            // Passed through unreplaced; our own dumps only escape
            // control characters this way.
            v.string_value += "\\u";
            v.string_value += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        v.string_value.push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    pos_++;  // closing quote
    return v;
  }

  Result<JsonValue> ParseBool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.bool_value = true;
      pos_ += 4;
      return v;
    }
    if (text_.substr(pos_, 5) == "false") {
      v.bool_value = false;
      pos_ += 5;
      return v;
    }
    return Fail("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) != "null") return Fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) pos_++;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      pos_++;
    }
    if (pos_ == start) return Fail("expected value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

Result<std::vector<SpanRecord>> SpansFromChromeTrace(const JsonValue& doc) {
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return Status::Corruption("no traceEvents array");
  }
  std::vector<SpanRecord> spans;
  spans.reserve(events->array.size());
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->string_value != "X") continue;
    const JsonValue* name = event.Find("name");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    const JsonValue* pid = event.Find("pid");
    const JsonValue* args = event.Find("args");
    if (name == nullptr || ts == nullptr || dur == nullptr || args == nullptr) {
      return Status::Corruption("span event missing fields");
    }
    const JsonValue* trace_id = args->Find("trace_id");
    const JsonValue* span_id = args->Find("span_id");
    const JsonValue* parent = args->Find("parent_span_id");
    if (trace_id == nullptr || span_id == nullptr || parent == nullptr) {
      return Status::Corruption("span event missing ids");
    }
    SpanRecord span;
    span.name = name->string_value;
    span.node = pid != nullptr ? static_cast<uint32_t>(pid->number) : 0;
    span.start_ns = std::llround(ts->number * 1000.0);
    span.end_ns = span.start_ns + std::llround(dur->number * 1000.0);
    span.trace_id = static_cast<uint64_t>(trace_id->number);
    span.span_id = static_cast<uint64_t>(span_id->number);
    span.parent_span_id = static_cast<uint64_t>(parent->number);
    spans.push_back(std::move(span));
  }
  return spans;
}

// --- critical-path breakdown --------------------------------------------

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kDispatch: return "dispatch";
    case Phase::kVmExec: return "vm_exec";
    case Phase::kWalSync: return "wal_sync";
    case Phase::kReplication: return "replication";
    case Phase::kStorage: return "storage_rpc";
    case Phase::kNetwork: return "network";
    case Phase::kOther: return "other";
    case Phase::kNumPhases: break;
  }
  return "unknown";
}

Phase PhaseForSpanName(std::string_view name) {
  auto starts_with = [&](std::string_view prefix) {
    return name.substr(0, prefix.size()) == prefix;
  };
  if (name == "dispatch") return Phase::kDispatch;
  if (name == "vm_exec") return Phase::kVmExec;
  if (name == "wal_sync") return Phase::kWalSync;
  // The commit span's self time is the replicated-commit machinery the
  // child spans don't cover: local apply and in-order queueing.
  if (name == "commit") return Phase::kReplication;
  // Server-side handler spans classify by their service name; their
  // self-time is server work not covered by a more specific child span.
  if (starts_with("srv.")) name.remove_prefix(4);
  if (starts_with("repl") || starts_with("rpc.repl") || starts_with("rpc.log") ||
      starts_with("log."))
    return Phase::kReplication;
  if (starts_with("kv") || starts_with("rpc.kv")) return Phase::kStorage;
  if (starts_with("rpc.")) return Phase::kNetwork;
  return Phase::kOther;
}

double TraceBreakdown::MeanShare(Phase phase) const {
  double total = total_us.sum();
  if (total <= 0) return 0;
  return phase_us[static_cast<size_t>(phase)].sum() / total;
}

std::string TraceBreakdown::Format() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "traces analyzed: %" PRIu64 " (incomplete dropped: %" PRIu64
                ", orphan spans: %" PRIu64 ")\n",
                traces, dropped_traces, orphan_spans);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-14s %10s %10s %10s %8s\n", "phase",
                "p50(ms)", "p99(ms)", "mean(ms)", "share");
  out += buf;
  double sum_p50 = 0;
  for (size_t i = 0; i < static_cast<size_t>(Phase::kNumPhases); i++) {
    const Histogram& h = phase_us[i];
    sum_p50 += static_cast<double>(h.Percentile(0.5)) / 1000.0;
    std::snprintf(buf, sizeof(buf), "%-14s %10.3f %10.3f %10.3f %7.1f%%\n",
                  PhaseName(static_cast<Phase>(i)),
                  static_cast<double>(h.Percentile(0.5)) / 1000.0,
                  static_cast<double>(h.Percentile(0.99)) / 1000.0,
                  h.Mean() / 1000.0, 100.0 * MeanShare(static_cast<Phase>(i)));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-14s %10.3f\n", "sum of p50s", sum_p50);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-14s %10.3f %10.3f %10.3f\n", "end-to-end",
                static_cast<double>(total_us.Percentile(0.5)) / 1000.0,
                static_cast<double>(total_us.Percentile(0.99)) / 1000.0,
                total_us.Mean() / 1000.0);
  out += buf;
  return out;
}

namespace {

/// A span pending attribution, clipped to its ancestors' windows.
struct ClippedSpan {
  const SpanRecord* span;
  int64_t lo;
  int64_t hi;
};

}  // namespace

TraceBreakdown ComputeBreakdown(const std::vector<SpanRecord>& spans) {
  TraceBreakdown result;
  std::map<uint64_t, std::vector<const SpanRecord*>> by_trace;
  for (const SpanRecord& span : spans) {
    by_trace[span.trace_id].push_back(&span);
  }
  for (auto& [trace_id, trace_spans] : by_trace) {
    const SpanRecord* root = nullptr;
    std::map<uint64_t, std::vector<const SpanRecord*>> children;
    for (const SpanRecord* span : trace_spans) {
      if (span->parent_span_id == 0) {
        root = span;
      } else {
        children[span->parent_span_id].push_back(span);
      }
    }
    if (root == nullptr) {
      result.dropped_traces++;
      continue;
    }
    // DFS from the root. Every span is clipped to the intersection of its
    // ancestors' windows, and overlapping siblings are resolved with a
    // cursor (concurrent time goes to the earliest active sibling), so
    // the windows attributed across the whole tree are pairwise disjoint
    // and sum exactly to the root's duration: parallel replication hops
    // and async work outliving its parent are never double counted.
    double phase_ns[static_cast<size_t>(Phase::kNumPhases)] = {};
    size_t reached = 0;
    std::vector<ClippedSpan> stack = {{root, root->start_ns, root->end_ns}};
    while (!stack.empty() && reached < trace_spans.size()) {
      ClippedSpan current = stack.back();
      stack.pop_back();
      reached++;
      int64_t covered = 0;
      auto it = children.find(current.span->span_id);
      if (it != children.end()) {
        std::vector<const SpanRecord*>& kids = it->second;
        std::sort(kids.begin(), kids.end(),
                  [](const SpanRecord* a, const SpanRecord* b) {
                    if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
                    return a->span_id < b->span_id;
                  });
        int64_t cursor = current.lo;
        for (const SpanRecord* child : kids) {
          int64_t s = std::max(child->start_ns, cursor);
          int64_t e = std::min(child->end_ns, current.hi);
          if (e <= s) {
            // Fully shadowed by an earlier sibling or outside the parent
            // window; still visit it so its subtree counts as reached,
            // with an empty window.
            stack.push_back({child, s, s});
            continue;
          }
          stack.push_back({child, s, e});
          covered += e - s;
          cursor = e;
        }
      }
      int64_t self = (current.hi - current.lo) - covered;
      phase_ns[static_cast<size_t>(PhaseForSpanName(current.span->name))] +=
          static_cast<double>(self);
    }
    result.orphan_spans += trace_spans.size() - reached;
    result.traces++;
    result.total_us.Record(root->duration_ns() / 1000);
    for (size_t i = 0; i < static_cast<size_t>(Phase::kNumPhases); i++) {
      result.phase_us[i].Record(static_cast<int64_t>(phase_ns[i] / 1000.0));
    }
  }
  return result;
}

}  // namespace lo::obs
