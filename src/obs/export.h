// Exporters and analysis over obs data:
//  - Chrome-trace-event (Perfetto-compatible) JSON for Tracer spans —
//    open the file in ui.perfetto.dev or chrome://tracing
//  - an aligned text table for MetricsRegistry snapshots
//  - a minimal JSON reader (enough for our own dumps), used by the
//    trace_report tool and by the exporter's validation tests
//  - the per-phase critical-path latency breakdown trace_report prints
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lo::obs {

/// Serializes spans as Chrome trace events: one "X" (complete) event per
/// span, ts/dur in microseconds, pid = node, tid = trace id; span ids
/// are carried in args for reconstruction.
std::string ExportChromeTrace(const std::vector<SpanRecord>& spans);

/// Human-readable aligned table of a metrics snapshot.
std::string MetricsTable(const MetricsRegistry& registry);

// --- minimal JSON reader -----------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document (objects, arrays, strings, numbers,
/// bools, null; \uXXXX escapes are passed through verbatim). Trailing
/// garbage is an error — this doubles as the validity check in tests.
Result<JsonValue> ParseJson(std::string_view text);

/// Reconstructs spans from an ExportChromeTrace document.
Result<std::vector<SpanRecord>> SpansFromChromeTrace(const JsonValue& doc);

// --- critical-path breakdown --------------------------------------------

/// Latency phases a span name maps onto. Self time (a span's duration
/// minus the union of its children's intervals) is attributed to the
/// span's own phase, so the per-trace phase sums partition the root
/// span's duration exactly — parallel replication hops are not double
/// counted.
enum class Phase : uint8_t {
  kDispatch,     // server-side request demux/scheduling
  kVmExec,       // sandbox instantiation + metered execution
  kWalSync,      // durability barrier before replication
  kReplication,  // commit + replication RPCs and in-order apply
  kStorage,      // raw kv round-trips (disaggregated baseline)
  kNetwork,      // wire time of invocation RPCs (self time of rpc.* spans)
  kOther,        // client-side residue, log append, untyped spans
  kNumPhases,
};

const char* PhaseName(Phase phase);
Phase PhaseForSpanName(std::string_view name);

struct TraceBreakdown {
  uint64_t traces = 0;            // complete traces analyzed
  uint64_t dropped_traces = 0;    // root span missing (ring overwrote it)
  uint64_t orphan_spans = 0;      // parent missing; excluded from totals
  Histogram total_us;             // end-to-end (root span) latency
  Histogram phase_us[static_cast<size_t>(Phase::kNumPhases)];
  /// Mean share of each phase in the root duration, in [0, 1].
  double MeanShare(Phase phase) const;

  std::string Format() const;
};

/// Groups spans by trace, computes per-phase self time per trace, and
/// aggregates into histograms (microseconds).
TraceBreakdown ComputeBreakdown(const std::vector<SpanRecord>& spans);

}  // namespace lo::obs
