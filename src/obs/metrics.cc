#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "common/log.h"

namespace lo::obs {
namespace {

const char* KindName(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter: return "counter";
    case MetricsRegistry::Kind::kGauge: return "gauge";
    case MetricsRegistry::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// %.17g keeps doubles round-trippable but prints integers as integers.
void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  *out += buf;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name, uint32_t node) {
  Entry& e = entries_[{std::string(name), node}];
  if (e.counter == nullptr) {
    LO_CHECK_MSG(e.external == nullptr && !e.callback && e.gauge == nullptr &&
                     e.histogram == nullptr,
                 "metric re-registered with a different kind: " + std::string(name));
    e.kind = Kind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, uint32_t node) {
  Entry& e = entries_[{std::string(name), node}];
  if (e.gauge == nullptr) {
    LO_CHECK_MSG(e.external == nullptr && !e.callback && e.counter == nullptr &&
                     e.histogram == nullptr,
                 "metric re-registered with a different kind: " + std::string(name));
    e.kind = Kind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name, uint32_t node) {
  Entry& e = entries_[{std::string(name), node}];
  if (e.histogram == nullptr) {
    LO_CHECK_MSG(e.external == nullptr && !e.callback && e.counter == nullptr &&
                     e.gauge == nullptr,
                 "metric re-registered with a different kind: " + std::string(name));
    e.kind = Kind::kHistogram;
    e.histogram = std::make_unique<Histogram>();
  }
  return e.histogram.get();
}

void MetricsRegistry::RegisterExternal(std::string_view name, uint32_t node,
                                       const uint64_t* value) {
  Entry& e = entries_[{std::string(name), node}];
  e.kind = Kind::kCounter;
  e.external = value;
}

void MetricsRegistry::RegisterCallback(std::string_view name, uint32_t node,
                                       std::function<double()> fn) {
  Entry& e = entries_[{std::string(name), node}];
  e.kind = Kind::kGauge;
  e.callback = std::move(fn);
}

void MetricsRegistry::UnregisterNode(uint32_t node) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.second == node) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    Sample s;
    s.name = key.first;
    s.node = key.second;
    s.kind = e.kind;
    if (e.external != nullptr) {
      s.value = static_cast<double>(*e.external);
    } else if (e.callback) {
      s.value = e.callback();
    } else if (e.counter != nullptr) {
      s.value = static_cast<double>(e.counter->value());
    } else if (e.gauge != nullptr) {
      s.value = e.gauge->value();
    } else if (e.histogram != nullptr) {
      s.value = e.histogram->Mean();
      s.count = e.histogram->count();
      s.p50 = e.histogram->Percentile(0.5);
      s.p99 = e.histogram->Percentile(0.99);
      s.max = e.histogram->Max();
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Sample& s : Snapshot()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, s.name);
    out += ",\"node\":";
    AppendJsonNumber(&out, s.node);
    out += ",\"kind\":";
    AppendJsonString(&out, KindName(s.kind));
    out += ",\"value\":";
    AppendJsonNumber(&out, s.value);
    if (s.kind == Kind::kHistogram) {
      out += ",\"count\":";
      AppendJsonNumber(&out, static_cast<double>(s.count));
      out += ",\"p50\":";
      AppendJsonNumber(&out, static_cast<double>(s.p50));
      out += ",\"p99\":";
      AppendJsonNumber(&out, static_cast<double>(s.p99));
      out += ",\"max\":";
      AppendJsonNumber(&out, static_cast<double>(s.max));
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::SnapshotCsv() const {
  std::string out = "name,node,kind,value,count,p50,p99,max\n";
  char buf[256];
  for (const Sample& s : Snapshot()) {
    std::snprintf(buf, sizeof(buf),
                  ",%u,%s,%.17g,%" PRIu64 ",%" PRId64 ",%" PRId64 ",%" PRId64 "\n",
                  s.node, KindName(s.kind), s.value, s.count, s.p50, s.p99, s.max);
    out += s.name;
    out += buf;
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace lo::obs
