// Process-wide metrics registry (the measurement substrate every perf PR
// reports against).
//
// Components publish named, node-labeled instruments:
//   Counter    monotonically increasing uint64 (hot path: one add)
//   Gauge      last-written double
//   Histogram  log-bucketed samples (common/histogram)
// plus two zero-cost migration paths for the pre-existing ad-hoc Metrics
// structs: RegisterExternal points the registry at a live uint64 field
// (the hot path stays a bare `++` on the struct), and RegisterCallback
// reads a value lazily at snapshot time.
//
// Snapshots are deterministic: entries are kept sorted by (name, node),
// so two runs of the same seeded simulation produce byte-identical
// JSON/CSV dumps — which is exactly what the determinism regression test
// asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace lo::obs {

class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// One metric's value at snapshot time. Histograms export summary
  /// statistics; counters/gauges export `value`.
  struct Sample {
    std::string name;
    uint32_t node = 0;
    Kind kind = Kind::kCounter;
    double value = 0;  // counter/gauge value; histogram mean
    // Histogram-only fields (zero otherwise).
    uint64_t count = 0;
    int64_t p50 = 0;
    int64_t p99 = 0;
    int64_t max = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the owned instrument for (name, node), creating it on first
  /// use. Pointers stay valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name, uint32_t node = 0);
  Gauge* GetGauge(std::string_view name, uint32_t node = 0);
  Histogram* GetHistogram(std::string_view name, uint32_t node = 0);

  /// Publishes a live uint64 owned elsewhere (an ad-hoc Metrics struct
  /// field). The pointer must outlive every later Snapshot call, or be
  /// removed with UnregisterNode first.
  void RegisterExternal(std::string_view name, uint32_t node,
                        const uint64_t* value);
  /// Publishes a value computed at snapshot time.
  void RegisterCallback(std::string_view name, uint32_t node,
                        std::function<double()> fn);

  /// Drops every metric labeled with `node` (external pointers included).
  /// Call before tearing down a component the registry outlives.
  void UnregisterNode(uint32_t node);

  /// All metrics, sorted by (name, node). Deterministic.
  std::vector<Sample> Snapshot() const;
  /// `{"metrics":[{"name":...,"node":...,"kind":...,...},...]}`.
  std::string SnapshotJson() const;
  /// Header + one row per metric: name,node,kind,value,count,p50,p99,max.
  std::string SnapshotCsv() const;

  size_t size() const { return entries_.size(); }

  /// Shared fallback registry for code without an injected one. Library
  /// components take a MetricsRegistry* and treat nullptr as "off";
  /// deployments default to nullptr so benchmarks and tests can use
  /// isolated registries.
  static MetricsRegistry& Default();

 private:
  struct Entry {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    const uint64_t* external = nullptr;
    std::function<double()> callback;
  };
  using Key = std::pair<std::string, uint32_t>;

  std::map<Key, Entry> entries_;
};

}  // namespace lo::obs
