#include "obs/trace.h"

namespace lo::obs {

Tracer::Tracer(TracerOptions options) : options_(options) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

TraceContext Tracer::StartTrace() {
  traces_started_++;
  if (options_.sample_every == 0 ||
      (traces_started_ - 1) % options_.sample_every != 0) {
    return {};
  }
  traces_sampled_++;
  TraceContext ctx;
  ctx.trace_id = traces_sampled_;
  ctx.span_id = next_span_id_++;
  ctx.parent_span_id = 0;
  return ctx;
}

TraceContext Tracer::Child(const TraceContext& parent) {
  if (!parent.sampled()) return {};
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = next_span_id_++;
  ctx.parent_span_id = parent.span_id;
  return ctx;
}

void Tracer::Record(const TraceContext& ctx, std::string_view name,
                    uint32_t node, int64_t start_ns, int64_t end_ns) {
  if (!ctx.sampled()) return;
  SpanRecord span;
  span.trace_id = ctx.trace_id;
  span.span_id = ctx.span_id;
  span.parent_span_id = ctx.parent_span_id;
  span.name = std::string(name);
  span.node = node;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  spans_recorded_++;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(span));
  } else {
    spans_dropped_++;
    ring_[ring_head_] = std::move(span);
    ring_head_ = (ring_head_ + 1) % ring_.size();
  }
}

void Tracer::RecordChild(const TraceContext& parent, std::string_view name,
                         uint32_t node, int64_t start_ns, int64_t end_ns) {
  if (!parent.sampled()) return;
  Record(Child(parent), name, node, start_ns, end_ns);
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); i++) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  ring_.clear();
  ring_head_ = 0;
}

}  // namespace lo::obs
