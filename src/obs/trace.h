// Span-based distributed tracing for the simulated cluster.
//
// A TraceContext (trace id / span id / parent span id) is minted at the
// request entry point, propagated through sim::RpcEndpoint frames and
// nested invocations, and used to record sim-time spans — dispatch, VM
// execution, commit, WAL sync, replication hops, memtable flush,
// compaction — into a bounded ring buffer. Sampling is counter-based
// (every Nth trace), not random, so seeded runs stay deterministic.
//
// The tracer carries no clock: callers pass sim timestamps explicitly
// (obs depends only on common, so the sim layer can depend on obs).
// An unsampled context has trace_id 0 and propagates as a no-op; span
// ids are assigned from a per-tracer counter, also deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lo::obs {

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = not sampled / no trace
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool sampled() const { return trace_id != 0; }
};

struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;
  uint32_t node = 0;      // the simulated node the span ran on
  int64_t start_ns = 0;   // sim time
  int64_t end_ns = 0;

  int64_t duration_ns() const { return end_ns - start_ns; }
};

struct TracerOptions {
  /// Sample every Nth root trace (1 = all). 0 disables sampling entirely.
  uint64_t sample_every = 1;
  /// Ring-buffer capacity in spans; the oldest spans are overwritten.
  size_t ring_capacity = 1 << 16;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Mints a root context; applies the sampling decision. Unsampled
  /// roots return a context with trace_id 0.
  TraceContext StartTrace();

  /// Mints a child context of `parent` (unsampled parent -> unsampled
  /// child; the no-op propagates).
  TraceContext Child(const TraceContext& parent);

  /// Records a finished span for a pre-minted context. No-op when the
  /// context is unsampled.
  void Record(const TraceContext& ctx, std::string_view name, uint32_t node,
              int64_t start_ns, int64_t end_ns);

  /// Child(parent) + Record in one call, for leaf spans.
  void RecordChild(const TraceContext& parent, std::string_view name,
                   uint32_t node, int64_t start_ns, int64_t end_ns);

  /// Ring contents, oldest first.
  std::vector<SpanRecord> Spans() const;

  void Clear();

  uint64_t traces_started() const { return traces_started_; }
  uint64_t traces_sampled() const { return traces_sampled_; }
  uint64_t spans_recorded() const { return spans_recorded_; }
  uint64_t spans_dropped() const { return spans_dropped_; }
  const TracerOptions& options() const { return options_; }

 private:
  TracerOptions options_;
  uint64_t traces_started_ = 0;
  uint64_t traces_sampled_ = 0;
  uint64_t next_span_id_ = 1;
  uint64_t spans_recorded_ = 0;
  uint64_t spans_dropped_ = 0;
  std::vector<SpanRecord> ring_;
  size_t ring_head_ = 0;  // next write position once the ring is full
};

/// True when spans should be recorded for this (tracer, context) pair —
/// the guard every instrumentation site uses.
inline bool Tracing(const Tracer* tracer, const TraceContext& ctx) {
  return tracer != nullptr && ctx.sampled();
}

}  // namespace lo::obs
