#include "replication/replicator.h"

#include <algorithm>

#include "common/coding.h"
#include "common/log.h"

namespace lo::replication {
namespace {

std::string EncodeShipment(ShardId shard, uint64_t epoch, uint64_t seq,
                           const std::string& rep) {
  std::string out;
  PutVarint32(&out, shard);
  PutVarint64(&out, epoch);
  PutVarint64(&out, seq);
  PutLengthPrefixed(&out, rep);
  return out;
}

Status DecodeShipment(std::string_view payload, ShardId* shard, uint64_t* epoch,
                      uint64_t* seq, storage::WriteBatch* batch) {
  Reader reader{payload};
  std::string_view rep;
  if (!reader.GetVarint32(shard) || !reader.GetVarint64(epoch) ||
      !reader.GetVarint64(seq) || !reader.GetLengthPrefixed(&rep)) {
    return Status::Corruption("bad replication shipment");
  }
  LO_ASSIGN_OR_RETURN(*batch, storage::WriteBatch::FromRep(std::string(rep)));
  return Status::OK();
}

// Backups ack a shipment with their applied sequence (varint64); the
// primary records it per peer so callers (checkers, obs) can see how far
// each backup trails. Chain acks aggregate the minimum down-chain.
std::string EncodeAck(uint64_t applied_seq) {
  std::string out;
  PutVarint64(&out, applied_seq);
  return out;
}

uint64_t DecodeAck(std::string_view payload) {
  Reader reader{payload};
  uint64_t applied = 0;
  reader.GetVarint64(&applied);
  return applied;
}

}  // namespace

ReadMode ParseReadMode(std::string_view name, ReadMode fallback) {
  if (name == "off" || name == "primary") return ReadMode::kPrimaryOnly;
  if (name == "strict") return ReadMode::kStrict;
  if (name == "bounded") return ReadMode::kBounded;
  if (name == "eventual") return ReadMode::kEventual;
  if (name == "tail") return ReadMode::kTail;
  return fallback;
}

std::string_view ReadModeName(ReadMode mode) {
  switch (mode) {
    case ReadMode::kPrimaryOnly: return "off";
    case ReadMode::kStrict: return "strict";
    case ReadMode::kBounded: return "bounded";
    case ReadMode::kEventual: return "eventual";
    case ReadMode::kTail: return "tail";
  }
  return "off";
}

std::string EncodeTokenWrapped(const EpochToken& token, std::string_view body) {
  std::string out;
  PutVarint64(&out, token.epoch);
  PutVarint64(&out, token.seq);
  PutLengthPrefixed(&out, body);
  return out;
}

bool DecodeTokenWrapped(std::string_view payload, EpochToken* token,
                        std::string_view* body) {
  Reader reader{payload};
  return reader.GetVarint64(&token->epoch) && reader.GetVarint64(&token->seq) &&
         reader.GetLengthPrefixed(body);
}

Replicator::Replicator(sim::RpcEndpoint* rpc, storage::DB* db, Mode mode)
    : rpc_(rpc), db_(db), mode_(mode) {
  rpc_->Handle("repl.apply", [this](sim::NodeId from, obs::TraceContext trace,
                                    std::string payload) {
    return HandleApply(from, trace, std::move(payload));
  });
  rpc_->Handle("repl.chain", [this](sim::NodeId from, obs::TraceContext trace,
                                    std::string payload) {
    return HandleChain(from, trace, std::move(payload));
  });
}

void Replicator::Configure(ShardId shard, uint64_t epoch, bool is_primary,
                           std::vector<sim::NodeId> peers) {
  ShardState& state = shards_[shard];
  bool promoted = is_primary && !state.is_primary && state.epoch > 0;
  if (promoted) {
    // Promotion: this backup takes over the shard. Its applied prefix is
    // exactly the acknowledged history (the old primary never acked a
    // batch before every backup applied it), so continuing from
    // applied_seq + 1 under the bumped epoch loses nothing committed.
    metrics_.promotions++;
  }
  state.epoch = epoch;
  state.is_primary = is_primary;
  state.peers = std::move(peers);
  // A new epoch continues sequencing from the successor's applied state.
  if (state.is_primary) state.next_seq = state.applied_seq + 1;
  // Buffered out-of-order batches from the dead epoch can never fill
  // their gap; the clients that sent them will retry under the new epoch.
  state.reorder_buffer.clear();
  // Ack bookkeeping from the old role is meaningless under the new one.
  state.peer_applied.clear();
  if (promoted && promotion_hook_) promotion_hook_(shard, epoch);
}

bool Replicator::is_primary(ShardId shard) const {
  auto it = shards_.find(shard);
  return it != shards_.end() && it->second.is_primary;
}

uint64_t Replicator::epoch(ShardId shard) const {
  auto it = shards_.find(shard);
  return it == shards_.end() ? 0 : it->second.epoch;
}

uint64_t Replicator::applied_seq(ShardId shard) const {
  auto it = shards_.find(shard);
  return it == shards_.end() ? 0 : it->second.applied_seq;
}

uint64_t Replicator::max_applied_seq() const {
  uint64_t max_seq = 0;
  for (const auto& [shard, state] : shards_) {
    max_seq = std::max(max_seq, state.applied_seq);
  }
  return max_seq;
}

EpochToken Replicator::ApplyToken(ShardId shard) const {
  auto it = shards_.find(shard);
  if (it == shards_.end()) return {};
  return {it->second.epoch, it->second.applied_seq};
}

uint64_t Replicator::backup_applied_seq(ShardId shard, sim::NodeId peer) const {
  auto it = shards_.find(shard);
  if (it == shards_.end()) return 0;
  auto peer_it = it->second.peer_applied.find(peer);
  return peer_it == it->second.peer_applied.end() ? 0 : peer_it->second;
}

bool Replicator::is_chain_tail(ShardId shard) const {
  if (mode_ != Mode::kChain) return false;
  auto it = shards_.find(shard);
  return it != shards_.end() && !it->second.is_primary &&
         it->second.peers.empty() && it->second.epoch > 0;
}

Status Replicator::CheckFollowerRead(ShardId shard, const EpochToken& token,
                                     ReadMode mode,
                                     uint64_t staleness_epochs) const {
  auto it = shards_.find(shard);
  const ShardState* state = it == shards_.end() ? nullptr : &it->second;
  if (state != nullptr && state->is_primary) return Status::OK();
  switch (mode) {
    case ReadMode::kPrimaryOnly:
      return Status::NotPrimary("follower reads disabled");
    case ReadMode::kEventual:
      return Status::OK();
    case ReadMode::kTail:
      // Chain commit = tail applied, so the tail serves unconditionally;
      // every other position bounces.
      if (is_chain_tail(shard)) return Status::OK();
      return Status::EpochBehind("not the chain tail");
    case ReadMode::kStrict:
    case ReadMode::kBounded: {
      if (token.epoch == 0) return Status::OK();  // client has seen nothing
      if (state == nullptr || token.epoch != state->epoch) {
        // Tokens from another configuration epoch — including one minted
        // by a primary that has since been deposed — never silently
        // serve: the sequence spaces are not comparable across epochs.
        return Status::EpochBehind("token from epoch " +
                                   std::to_string(token.epoch));
      }
      uint64_t slack = mode == ReadMode::kBounded ? staleness_epochs : 0;
      if (state->applied_seq + slack >= token.seq) return Status::OK();
      return Status::EpochBehind(
          "applied " + std::to_string(state->applied_seq) + " < token " +
          std::to_string(token.seq));
    }
  }
  return Status::EpochBehind("unknown read mode");
}

Status Replicator::ApplyLocal(const storage::WriteBatch& batch,
                              obs::TraceContext trace) {
  storage::WriteBatch copy = batch;
  LO_RETURN_IF_ERROR(db_->Write({.sync = true, .trace = trace}, &copy));
  metrics_.applied_batches++;
  if (apply_hook_) apply_hook_(batch);
  return Status::OK();
}

sim::Task<Status> Replicator::ReplicateAndApply(ShardId shard,
                                                storage::WriteBatch batch,
                                                obs::TraceContext trace) {
  auto it = shards_.find(shard);
  if (it == shards_.end() || !it->second.is_primary) {
    co_return Status::NotPrimary("replicate on non-primary");
  }
  ShardState& state = it->second;
  uint64_t seq = state.next_seq++;
  metrics_.replicated_batches++;

  // Apply locally first (synchronously, so the local apply order equals
  // the sequence order), then ship.
  LO_CO_RETURN_IF_ERROR(ApplyLocal(batch, trace));
  state.applied_seq = std::max(state.applied_seq, seq);

  if (state.peers.empty()) co_return Status::OK();
  std::string payload = EncodeShipment(shard, state.epoch, seq, batch.rep());

  if (mode_ == Mode::kChain) {
    // The write flows down the chain; the deepest ack unwinds back
    // through the nested RPCs, carrying the minimum applied seq of every
    // node below this one.
    auto ack = co_await rpc_->Call(
        state.peers.front(), "repl.chain", payload,
        ack_timeout * static_cast<int64_t>(state.peers.size()), trace);
    if (!ack.ok()) co_return ack.status();
    uint64_t& chain_applied = state.peer_applied[state.peers.front()];
    chain_applied = std::max(chain_applied, DecodeAck(*ack));
    co_return Status::OK();
  }

  // Primary-backup: fan out in parallel, await all acks. The peer list
  // is copied: a Configure arriving while acks are in flight must not
  // shift which node an ack is attributed to.
  std::vector<sim::NodeId> peers = state.peers;
  std::vector<sim::Future<Result<std::string>>> acks;
  acks.reserve(peers.size());
  for (sim::NodeId peer : peers) {
    acks.emplace_back(rpc_->Call(peer, "repl.apply", payload, ack_timeout, trace));
  }
  Status failure = Status::OK();
  for (size_t i = 0; i < acks.size(); i++) {
    auto reply = co_await acks[i].Wait();
    if (!reply.ok()) {
      metrics_.failed_peer_acks++;
      if (failure.ok()) failure = reply.status();
      continue;
    }
    uint64_t& peer_applied = state.peer_applied[peers[i]];
    peer_applied = std::max(peer_applied, DecodeAck(*reply));
  }
  if (!failure.ok()) {
    // A backup is unreachable: surface Unavailable so the client retries
    // after the coordinator reconfigures the replica set. The local
    // apply stands; the reconfigured epoch's primary has the data.
    co_return Status::Unavailable("backup unreachable: " + failure.ToString());
  }
  co_return Status::OK();
}

void Replicator::DrainReorderBuffer(ShardState& state) {
  auto it = state.reorder_buffer.begin();
  while (it != state.reorder_buffer.end() && it->first == state.applied_seq + 1) {
    if (!ApplyLocal(it->second).ok()) break;
    state.applied_seq = it->first;
    it = state.reorder_buffer.erase(it);
  }
}

sim::Task<Status> Replicator::AwaitInOrderApply(ShardState& state, uint64_t seq) {
  for (int spins = 0; state.applied_seq < seq; spins++) {
    DrainReorderBuffer(state);
    if (state.applied_seq >= seq) break;
    if (spins > 10'000) {
      // The gap never filled (lost predecessor); let the primary's
      // timeout machinery handle it rather than acking out of order.
      state.reorder_buffer.erase(seq);
      co_return Status::Timeout("replication gap never filled");
    }
    co_await rpc_->sim().Sleep(sim::Micros(20));
  }
  co_return Status::OK();
}

sim::Task<Result<std::string>> Replicator::HandleApply(sim::NodeId,
                                                       obs::TraceContext trace,
                                                       std::string payload) {
  ShardId shard = 0;
  uint64_t epoch = 0, seq = 0;
  storage::WriteBatch batch;
  LO_CO_RETURN_IF_ERROR(DecodeShipment(payload, &shard, &epoch, &seq, &batch));
  ShardState& state = shards_[shard];
  if (epoch < state.epoch) {
    metrics_.stale_epoch_rejections++;
    co_return Status::Aborted("stale epoch");
  }
  if (seq <= state.applied_seq) co_return EncodeAck(state.applied_seq);  // re-send
  if (seq != state.applied_seq + 1) {
    metrics_.reordered_arrivals++;
    state.reorder_buffer.emplace(seq, std::move(batch));
    LO_CO_RETURN_IF_ERROR(co_await AwaitInOrderApply(state, seq));
    co_return EncodeAck(state.applied_seq);
  }
  LO_CO_RETURN_IF_ERROR(ApplyLocal(batch, trace));
  state.applied_seq = seq;
  DrainReorderBuffer(state);
  co_return EncodeAck(state.applied_seq);
}

sim::Task<Result<std::string>> Replicator::HandleChain(sim::NodeId,
                                                       obs::TraceContext trace,
                                                       std::string payload) {
  ShardId shard = 0;
  uint64_t epoch = 0, seq = 0;
  storage::WriteBatch batch;
  LO_CO_RETURN_IF_ERROR(DecodeShipment(payload, &shard, &epoch, &seq, &batch));
  ShardState& state = shards_[shard];
  if (epoch < state.epoch) {
    metrics_.stale_epoch_rejections++;
    co_return Status::Aborted("stale epoch");
  }
  if (seq > state.applied_seq) {
    if (seq != state.applied_seq + 1) {
      metrics_.reordered_arrivals++;
      state.reorder_buffer.emplace(seq, std::move(batch));
      LO_CO_RETURN_IF_ERROR(co_await AwaitInOrderApply(state, seq));
    } else {
      LO_CO_RETURN_IF_ERROR(ApplyLocal(batch, trace));
      state.applied_seq = seq;
      DrainReorderBuffer(state);
    }
  }
  // Forward down the chain (peers holds this node's successors only).
  // The ack carries the minimum applied seq of this node and everything
  // below it, so the head learns how far the whole chain has applied.
  uint64_t chain_applied = state.applied_seq;
  if (!state.peers.empty()) {
    sim::NodeId successor = state.peers.front();
    auto ack = co_await rpc_->Call(
        successor, "repl.chain", payload,
        ack_timeout * static_cast<int64_t>(state.peers.size()), trace);
    if (!ack.ok()) co_return ack.status();
    uint64_t downstream = DecodeAck(*ack);
    uint64_t& recorded = state.peer_applied[successor];
    recorded = std::max(recorded, downstream);
    chain_applied = std::min(chain_applied, downstream);
  }
  co_return EncodeAck(chain_applied);
}

// ------------------------------------------------------------ ReplicatedLog

ReplicatedLog::ReplicatedLog(sim::RpcEndpoint* rpc, storage::DB* db)
    : rpc_(rpc), db_(db) {
  rpc_->Handle("log.replicate", [this](sim::NodeId from, std::string payload) {
    return HandleReplicate(from, std::move(payload));
  });
}

void ReplicatedLog::Configure(bool is_leader, std::vector<sim::NodeId> followers) {
  is_leader_ = is_leader;
  followers_ = std::move(followers);
}

std::string ReplicatedLog::IndexKey(uint64_t index) {
  std::string key = "rlog/";
  for (int i = 7; i >= 0; i--) {
    key.push_back(static_cast<char>((index >> (8 * i)) & 0xff));
  }
  return key;
}

sim::Task<Result<uint64_t>> ReplicatedLog::Append(std::string record,
                                                  obs::TraceContext trace) {
  if (!is_leader_) co_return Status::NotPrimary("append on follower");
  uint64_t index = next_index_++;
  LO_CO_RETURN_IF_ERROR(
      db_->Put({.sync = true, .trace = trace}, IndexKey(index), record));
  std::string payload;
  PutVarint64(&payload, index);
  PutLengthPrefixed(&payload, record);
  std::vector<sim::Future<Result<std::string>>> acks;
  acks.reserve(followers_.size());
  for (sim::NodeId follower : followers_) {
    acks.emplace_back(
        rpc_->Call(follower, "log.replicate", payload, sim::Millis(50), trace));
  }
  for (auto& ack : acks) {
    auto reply = co_await ack.Wait();
    if (!reply.ok()) co_return reply.status();
  }
  co_return index;
}

Result<std::string> ReplicatedLog::Read(uint64_t index) const {
  return db_->Get({}, IndexKey(index));
}

sim::Task<Result<std::string>> ReplicatedLog::HandleReplicate(sim::NodeId,
                                                              std::string payload) {
  Reader reader{payload};
  uint64_t index = 0;
  std::string_view record;
  if (!reader.GetVarint64(&index) || !reader.GetLengthPrefixed(&record)) {
    co_return Status::Corruption("bad log replicate");
  }
  LO_CO_RETURN_IF_ERROR(db_->Put({.sync = true}, IndexKey(index), record));
  if (index >= next_index_) next_index_ = index + 1;
  co_return std::string("ok");
}

}  // namespace lo::replication
