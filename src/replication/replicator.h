// Replication of LambdaStore write batches (paper §4.2.1).
//
// Primary-backup: a mutating invocation executes at the shard's primary;
// the resulting WriteBatch is applied locally, shipped to every backup,
// applied there in sequence order, and acknowledged — one network
// round-trip inside the replica set.
//
// Chain mode (the design the paper decided *against*, kept for the
// ablation benchmark): the batch hops head -> ... -> tail, each node
// applying before forwarding, and the ack travels back up the chain, so
// commit latency grows with chain length.
//
// A node may play different roles for different shards (it is typically
// primary for one shard and backup for its neighbours'), so all state is
// kept per shard.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "sim/rpc.h"
#include "storage/db.h"

namespace lo::replication {

enum class Mode { kPrimaryBackup, kChain };

using ShardId = uint32_t;

/// What a client has observed of a shard: the configuration epoch it last
/// talked to and the highest replication sequence it knows is applied.
/// Every token-wrapped write ack carries one; a follower read presents it
/// and the backup serves only if its own apply state covers the token
/// (read-your-writes). Ordered component-wise: a later config epoch
/// supersedes any sequence from an earlier one.
struct EpochToken {
  uint64_t epoch = 0;
  uint64_t seq = 0;
};

/// Staleness contract a follower read requests (LO_FOLLOWER_READS):
///   kPrimaryOnly  every read at the primary (the pre-follower baseline)
///   kStrict       backup serves iff apply-epoch >= the client's token
///                 (read-your-writes; bounces otherwise)
///   kBounded      backup may trail the token by <= staleness_epochs
///   kEventual     any replica serves unconditionally
///   kTail         chain-mode tail serves (linearizable: a chain commit
///                 implies the tail already applied it)
enum class ReadMode : uint8_t {
  kPrimaryOnly = 0,
  kStrict = 1,
  kBounded = 2,
  kEventual = 3,
  kTail = 4,
};

/// "strict" -> kStrict etc.; unknown strings return `fallback`.
ReadMode ParseReadMode(std::string_view name, ReadMode fallback);
std::string_view ReadModeName(ReadMode mode);

/// Wire helpers for token-wrapped responses (lambda.invoke2 /
/// lambda.create2 / lambda.read): varint64 epoch | varint64 seq |
/// length-prefixed body.
std::string EncodeTokenWrapped(const EpochToken& token, std::string_view body);
bool DecodeTokenWrapped(std::string_view payload, EpochToken* token,
                        std::string_view* body);

class Replicator {
 public:
  /// Registers the "repl.apply" / "repl.chain" services on `rpc`.
  Replicator(sim::RpcEndpoint* rpc, storage::DB* db, Mode mode = Mode::kPrimaryBackup);

  /// (Re)configures this node's role for one shard. `peers` excludes this
  /// node: the backups for a primary; the chain successors for kChain.
  void Configure(ShardId shard, uint64_t epoch, bool is_primary,
                 std::vector<sim::NodeId> peers);

  /// Primary path: apply locally, replicate to all peers, return once
  /// the batch is durable on every reachable replica. A sampled `trace`
  /// context rides along on every replication hop.
  sim::Task<Status> ReplicateAndApply(ShardId shard, storage::WriteBatch batch,
                                      obs::TraceContext trace = {});

  /// Called on every locally applied batch (primary and backups) —
  /// the runtime hooks cache invalidation here. Replicated batches carry
  /// the write set, so a backup invalidates result-cache entries exactly
  /// like the primary that executed the write.
  void SetApplyHook(std::function<void(const storage::WriteBatch&)> hook) {
    apply_hook_ = std::move(hook);
  }

  /// Called when Configure promotes this node (backup -> primary) for a
  /// shard, with the new epoch. The storage node hooks "drop every cached
  /// result from before the promotion" here: entries cached while backup
  /// were valid for the *old* primary's history, and serving them under
  /// the new epoch could leak results the failover rolled over.
  void SetPromotionHook(std::function<void(ShardId, uint64_t epoch)> hook) {
    promotion_hook_ = std::move(hook);
  }

  bool is_primary(ShardId shard) const;
  uint64_t epoch(ShardId shard) const;
  uint64_t applied_seq(ShardId shard) const;
  /// Highest applied sequence across every shard this node replicates —
  /// the node's apply-epoch, exported as repl.apply_epoch via obs.
  uint64_t max_applied_seq() const;

  /// This node's apply state for `shard`, in token form.
  EpochToken ApplyToken(ShardId shard) const;

  /// Last sequence `peer` acknowledged as applied for `shard` (0 if it
  /// never acked). In chain mode the direct successor's entry carries the
  /// minimum applied seq down the whole chain, since acks aggregate on
  /// the way back up.
  uint64_t backup_applied_seq(ShardId shard, sim::NodeId peer) const;

  /// True if this node is the tail of `shard`'s chain (chain mode, backup
  /// role, no successors). The tail applied every committed batch before
  /// the primary acked it, so tail reads are linearizable.
  bool is_chain_tail(ShardId shard) const;

  /// Gate for serving a read at this replica under `mode`. OK means this
  /// node's applied state satisfies the client's token (or the mode does
  /// not care); kEpochBehind means the caller should bounce the read to
  /// the primary. The primary always serves. A zero token (client that
  /// never wrote) is satisfied by any state.
  Status CheckFollowerRead(ShardId shard, const EpochToken& token,
                           ReadMode mode, uint64_t staleness_epochs) const;

  struct Metrics {
    uint64_t replicated_batches = 0;
    uint64_t applied_batches = 0;
    uint64_t reordered_arrivals = 0;
    uint64_t stale_epoch_rejections = 0;
    /// Replication acks that failed or timed out (degraded-mode signal:
    /// each one turns into an Unavailable surfaced to the client).
    uint64_t failed_peer_acks = 0;
    /// Backup→primary transitions observed via Configure (failovers).
    uint64_t promotions = 0;
  };
  const Metrics& metrics() const { return metrics_; }

  /// Ack timeout for one peer before the batch is considered failed
  /// (the coordinator will reconfigure; callers retry).
  sim::Duration ack_timeout = sim::Millis(50);

 private:
  struct ShardState {
    uint64_t epoch = 0;
    bool is_primary = false;
    std::vector<sim::NodeId> peers;
    uint64_t next_seq = 1;     // primary: next sequence to assign
    uint64_t applied_seq = 0;  // last applied in-order sequence
    std::map<uint64_t, storage::WriteBatch> reorder_buffer;
    /// Primary: last applied seq each peer reported in its ack.
    std::map<sim::NodeId, uint64_t> peer_applied;
  };

  sim::Task<Result<std::string>> HandleApply(sim::NodeId from,
                                             obs::TraceContext trace,
                                             std::string payload);
  sim::Task<Result<std::string>> HandleChain(sim::NodeId from,
                                             obs::TraceContext trace,
                                             std::string payload);
  Status ApplyLocal(const storage::WriteBatch& batch, obs::TraceContext trace = {});
  void DrainReorderBuffer(ShardState& state);
  /// Parks until `seq` has been applied in order (or times out).
  sim::Task<Status> AwaitInOrderApply(ShardState& state, uint64_t seq);

  sim::RpcEndpoint* rpc_;
  storage::DB* db_;
  Mode mode_;
  std::map<ShardId, ShardState> shards_;
  std::function<void(const storage::WriteBatch&)> apply_hook_;
  std::function<void(ShardId, uint64_t)> promotion_hook_;
  Metrics metrics_;
};

/// Durable, replicated append-only log — the OpenWhisk-style load
/// balancer's request log (paper §4.1: "implemented using Apache Kafka"
/// in OpenWhisk). The leader appends locally (synced WAL-backed DB) and
/// replicates each record to its followers before acknowledging.
class ReplicatedLog {
 public:
  ReplicatedLog(sim::RpcEndpoint* rpc, storage::DB* db);

  void Configure(bool is_leader, std::vector<sim::NodeId> followers);

  /// Appends a record; resolves once every follower acked. Returns the
  /// assigned log index.
  sim::Task<Result<uint64_t>> Append(std::string record,
                                     obs::TraceContext trace = {});

  /// Reads record `index` (for recovery/auditing).
  Result<std::string> Read(uint64_t index) const;
  uint64_t size() const { return next_index_; }

 private:
  sim::Task<Result<std::string>> HandleReplicate(sim::NodeId from,
                                                 std::string payload);
  static std::string IndexKey(uint64_t index);

  sim::RpcEndpoint* rpc_;
  storage::DB* db_;
  bool is_leader_ = false;
  std::vector<sim::NodeId> followers_;
  uint64_t next_index_ = 0;
};

}  // namespace lo::replication
