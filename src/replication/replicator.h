// Replication of LambdaStore write batches (paper §4.2.1).
//
// Primary-backup: a mutating invocation executes at the shard's primary;
// the resulting WriteBatch is applied locally, shipped to every backup,
// applied there in sequence order, and acknowledged — one network
// round-trip inside the replica set.
//
// Chain mode (the design the paper decided *against*, kept for the
// ablation benchmark): the batch hops head -> ... -> tail, each node
// applying before forwarding, and the ack travels back up the chain, so
// commit latency grows with chain length.
//
// A node may play different roles for different shards (it is typically
// primary for one shard and backup for its neighbours'), so all state is
// kept per shard.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "sim/rpc.h"
#include "storage/db.h"

namespace lo::replication {

enum class Mode { kPrimaryBackup, kChain };

using ShardId = uint32_t;

class Replicator {
 public:
  /// Registers the "repl.apply" / "repl.chain" services on `rpc`.
  Replicator(sim::RpcEndpoint* rpc, storage::DB* db, Mode mode = Mode::kPrimaryBackup);

  /// (Re)configures this node's role for one shard. `peers` excludes this
  /// node: the backups for a primary; the chain successors for kChain.
  void Configure(ShardId shard, uint64_t epoch, bool is_primary,
                 std::vector<sim::NodeId> peers);

  /// Primary path: apply locally, replicate to all peers, return once
  /// the batch is durable on every reachable replica. A sampled `trace`
  /// context rides along on every replication hop.
  sim::Task<Status> ReplicateAndApply(ShardId shard, storage::WriteBatch batch,
                                      obs::TraceContext trace = {});

  /// Called on every locally applied batch (primary and backups) —
  /// the runtime hooks cache invalidation here.
  void SetApplyHook(std::function<void(const storage::WriteBatch&)> hook) {
    apply_hook_ = std::move(hook);
  }

  bool is_primary(ShardId shard) const;
  uint64_t epoch(ShardId shard) const;
  uint64_t applied_seq(ShardId shard) const;

  struct Metrics {
    uint64_t replicated_batches = 0;
    uint64_t applied_batches = 0;
    uint64_t reordered_arrivals = 0;
    uint64_t stale_epoch_rejections = 0;
    /// Replication acks that failed or timed out (degraded-mode signal:
    /// each one turns into an Unavailable surfaced to the client).
    uint64_t failed_peer_acks = 0;
    /// Backup→primary transitions observed via Configure (failovers).
    uint64_t promotions = 0;
  };
  const Metrics& metrics() const { return metrics_; }

  /// Ack timeout for one peer before the batch is considered failed
  /// (the coordinator will reconfigure; callers retry).
  sim::Duration ack_timeout = sim::Millis(50);

 private:
  struct ShardState {
    uint64_t epoch = 0;
    bool is_primary = false;
    std::vector<sim::NodeId> peers;
    uint64_t next_seq = 1;     // primary: next sequence to assign
    uint64_t applied_seq = 0;  // last applied in-order sequence
    std::map<uint64_t, storage::WriteBatch> reorder_buffer;
  };

  sim::Task<Result<std::string>> HandleApply(sim::NodeId from,
                                             obs::TraceContext trace,
                                             std::string payload);
  sim::Task<Result<std::string>> HandleChain(sim::NodeId from,
                                             obs::TraceContext trace,
                                             std::string payload);
  Status ApplyLocal(const storage::WriteBatch& batch, obs::TraceContext trace = {});
  void DrainReorderBuffer(ShardState& state);
  /// Parks until `seq` has been applied in order (or times out).
  sim::Task<Status> AwaitInOrderApply(ShardState& state, uint64_t seq);

  sim::RpcEndpoint* rpc_;
  storage::DB* db_;
  Mode mode_;
  std::map<ShardId, ShardState> shards_;
  std::function<void(const storage::WriteBatch&)> apply_hook_;
  Metrics metrics_;
};

/// Durable, replicated append-only log — the OpenWhisk-style load
/// balancer's request log (paper §4.1: "implemented using Apache Kafka"
/// in OpenWhisk). The leader appends locally (synced WAL-backed DB) and
/// replicates each record to its followers before acknowledging.
class ReplicatedLog {
 public:
  ReplicatedLog(sim::RpcEndpoint* rpc, storage::DB* db);

  void Configure(bool is_leader, std::vector<sim::NodeId> followers);

  /// Appends a record; resolves once every follower acked. Returns the
  /// assigned log index.
  sim::Task<Result<uint64_t>> Append(std::string record,
                                     obs::TraceContext trace = {});

  /// Reads record `index` (for recovery/auditing).
  Result<std::string> Read(uint64_t index) const;
  uint64_t size() const { return next_index_; }

 private:
  sim::Task<Result<std::string>> HandleReplicate(sim::NodeId from,
                                                 std::string payload);
  static std::string IndexKey(uint64_t index);

  sim::RpcEndpoint* rpc_;
  storage::DB* db_;
  bool is_leader_ = false;
  std::vector<sim::NodeId> followers_;
  uint64_t next_index_ = 0;
};

}  // namespace lo::replication
