#include "retwis/driver.h"

#include "common/log.h"

namespace lo::retwis {
namespace {

OpType PickOp(const std::vector<std::pair<OpType, double>>& mix, Rng& rng) {
  if (mix.size() == 1) return mix.front().first;
  double total = 0;
  for (const auto& [op, weight] : mix) total += weight;
  double draw = rng.NextDouble() * total;
  for (const auto& [op, weight] : mix) {
    draw -= weight;
    if (draw <= 0) return op;
  }
  return mix.back().first;
}

}  // namespace

DriverResult RunClosedLoop(sim::Simulator& sim, const Workload& workload,
                           std::vector<Invoker> clients, DriverConfig config) {
  LO_CHECK(!clients.empty());
  LO_CHECK(!config.mix.empty());
  DriverResult result;
  sim::Time start = sim.Now();
  sim::Time measure_start = start + config.warmup;
  sim::Time end = measure_start + config.measure;
  size_t done = 0;

  for (size_t i = 0; i < clients.size(); i++) {
    auto loop = [](sim::Simulator* sim, const Workload* workload,
                   Invoker* invoker, DriverConfig* config, DriverResult* result,
                   sim::Time measure_start, sim::Time end, uint64_t seed,
                   size_t* done) -> sim::Task<void> {
      Rng rng(seed);
      while (sim->Now() < end) {
        OpType op = PickOp(config->mix, rng);
        Request request = workload->Next(op, rng);
        sim::Time issued = sim->Now();
        auto reply = co_await (*invoker)(request);
        sim::Time finished = sim->Now();
        if (finished >= measure_start && finished < end) {
          if (reply.ok()) {
            result->completed++;
            result->latency_us.Record(
                static_cast<int64_t>(sim::ToMicros(finished - issued)));
          } else {
            result->errors++;
          }
        }
      }
      (*done)++;
    };
    sim::Detach(loop(&sim, &workload, &clients[i], &config, &result,
                     measure_start, end, config.seed * 1000003 + i, &done));
  }

  // Deployments keep heartbeat loops alive forever, so drain by stepping
  // until every client loop exits rather than until the queue is empty.
  while (done < clients.size()) {
    LO_CHECK_MSG(sim.Step(), "driver deadlocked: no events but clients pending");
  }
  result.seconds = sim::ToSeconds(config.measure);
  return result;
}

DriverResult RunClosedLoop(sim::Simulator& sim, const Workload& workload,
                           OpType op, std::vector<Invoker> clients,
                           DriverConfig config) {
  config.mix = {{op, 1.0}};
  return RunClosedLoop(sim, workload, std::move(clients), std::move(config));
}

}  // namespace lo::retwis
