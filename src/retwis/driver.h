// Closed-loop workload driver: N concurrent clients, each issuing the
// next request as soon as the previous one completes (paper §5: "up to
// 100 concurrent client requests"). Latencies are recorded into a
// histogram after a warmup window; throughput = completions / measured
// virtual time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "retwis/workload.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace lo::retwis {

/// One client's way of issuing a request (cluster client, raw baseline
/// RPC, ...). Must be callable repeatedly.
using Invoker = std::function<sim::Task<Result<std::string>>(const Request&)>;

struct DriverConfig {
  sim::Duration warmup = sim::Millis(200);
  sim::Duration measure = sim::Seconds(2);
  uint64_t seed = 7;
  /// Mix of operations; single-op runs pass exactly one entry.
  std::vector<std::pair<OpType, double>> mix;
};

struct DriverResult {
  Histogram latency_us;   // request latency in microseconds
  uint64_t completed = 0; // completions inside the measure window
  uint64_t errors = 0;
  double seconds = 0;     // measured virtual seconds

  double Throughput() const {
    return seconds > 0 ? static_cast<double>(completed) / seconds : 0;
  }
};

/// Runs the closed loop; `clients[i]` is client i's invoker.
DriverResult RunClosedLoop(sim::Simulator& sim, const Workload& workload,
                           std::vector<Invoker> clients, DriverConfig config);

/// Convenience for a single-op run.
DriverResult RunClosedLoop(sim::Simulator& sim, const Workload& workload,
                           OpType op, std::vector<Invoker> clients,
                           DriverConfig config = {});

}  // namespace lo::retwis
