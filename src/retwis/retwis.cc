#include "retwis/retwis.h"

#include "common/coding.h"
#include "common/log.h"
#include "runtime/context.h"
#include "vm/assembler.h"

namespace lo::retwis {

std::string EncodeU64(uint64_t value) {
  std::string out;
  for (int i = 0; i < 8; i++) out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  return out;
}

std::string FollowerEntryKey(uint64_t index) { return "f" + EncodeU64(index); }
std::string TimelineEntryKey(uint64_t index) { return "t" + EncodeU64(index); }

std::string Post::Encode() const {
  LO_CHECK(author.size() <= 64);
  std::string out;
  out.push_back(static_cast<char>(author.size()));
  out += author;
  out += EncodeU64(time_ms);
  out += message;
  return out;
}

Result<Post> Post::Decode(std::string_view blob) {
  if (blob.empty()) return Status::Corruption("empty post");
  size_t name_len = static_cast<uint8_t>(blob[0]);
  if (blob.size() < 1 + name_len + 8) return Status::Corruption("short post");
  Post post;
  post.author.assign(blob.substr(1, name_len));
  post.time_ms = DecodeFixed64(blob.data() + 1 + name_len);
  post.message.assign(blob.substr(1 + name_len + 8));
  return post;
}

Result<std::vector<Post>> DecodeTimeline(std::string_view payload) {
  std::vector<Post> posts;
  size_t pos = 0;
  while (pos + 2 <= payload.size()) {
    size_t len = static_cast<uint8_t>(payload[pos]) |
                 (static_cast<size_t>(static_cast<uint8_t>(payload[pos + 1])) << 8);
    pos += 2;
    if (pos + len > payload.size()) return Status::Corruption("torn timeline");
    LO_ASSIGN_OR_RETURN(Post post, Post::Decode(payload.substr(pos, len)));
    posts.push_back(std::move(post));
    pos += len;
  }
  return posts;
}

// --------------------------------------------------------------- λasm

std::string_view UserAsmSource() {
  // Memory map: 0x40 scratch follower key, 0x50 scratch timeline key,
  // 0x80/0x90 counter buffers, 0x20 limit buffer, 0x200 argument,
  // 0x300 post blob, 0x600 own name, 0x700 follower oid, 0x800 misc,
  // 0x1000 message, 0x2000.. timeline output.
  static constexpr std::string_view kSource = R"(
memory 65536
data k_name 0x100 "name"
data k_fl 0x110 "fl"
data k_tl 0x118 "tl"
data s_store 0x120 "store_post"

;; ---- init(name): store the account name -------------------------------
func init export locals len
  push 0x200
  push 256
  arg
  local.set len
  push @k_name
  push #k_name
  push 0x200
  local.get len
  kv.put
  push 0x200
  local.get len
  ret
end

;; ---- u64 counter read: returns value of counter key, 0 if absent ------
;; params: kptr klen bufptr  -> result 1 (value)
func read_counter params kptr klen bufptr results 1 locals rc
  local.get kptr
  local.get klen
  local.get bufptr
  push 8
  kv.get
  local.set rc
  local.get rc
  push 0xffffffffffffffff
  eq
  br_if rc_fresh
  local.get bufptr
  load64
  return
rc_fresh:
  push 0
  return
end

;; ---- follow(follower_oid) ---------------------------------------------
func follow export locals n alen
  push 0x200
  push 256
  arg
  local.set alen
  push @k_fl
  push #k_fl
  push 0x80
  call read_counter
  local.set n
  ;; entry key 'f' + le64(n)
  push 0x40
  push 102
  store8
  push 0x41
  local.get n
  store64
  push 0x40
  push 9
  push 0x200
  local.get alen
  kv.put
  ;; counter = n + 1
  push 0x80
  local.get n
  push 1
  add
  store64
  push @k_fl
  push #k_fl
  push 0x80
  push 8
  kv.put
  push 0x80
  push 8
  ret
end

;; ---- timeline append helper: params bptr blen -------------------------
func tl_append params bptr blen locals m
  push @k_tl
  push #k_tl
  push 0x90
  call read_counter
  local.set m
  push 0x50
  push 116
  store8
  push 0x51
  local.get m
  store64
  push 0x50
  push 9
  local.get bptr
  local.get blen
  kv.put
  push 0x90
  local.get m
  push 1
  add
  store64
  push @k_tl
  push #k_tl
  push 0x90
  push 8
  kv.put
end

;; ---- store_post(blob): deliver a post into this timeline --------------
func store_post export locals alen
  push 0x200
  push 4096
  arg
  local.set alen
  push 0x200
  local.get alen
  call tl_append
  push 0
  push 0
  ret
end

;; ---- create_post(msg): post to own + every follower's timeline --------
func create_post export locals alen nlen blen n i olen rc
  push 0x1000
  push 2048
  arg
  local.set alen
  ;; own name (for the post blob)
  push @k_name
  push #k_name
  push 0x600
  push 64
  kv.get
  local.set rc
  local.get rc
  push 0xffffffffffffffff
  eq
  eqz
  br_if cp_has_name
  push 0
  local.set nlen
  br cp_name_done
cp_has_name:
  local.get rc
  local.set nlen
  local.get rc
  push 64
  le_u
  br_if cp_name_done
  push 64
  local.set nlen
cp_name_done:
  ;; blob at 0x300: nlen(1) name time(8) msg
  push 0x300
  local.get nlen
  store8
  push 0x301
  push 0x600
  local.get nlen
  mem.copy
  push 0x301
  local.get nlen
  add
  time
  store64
  push 0x309
  local.get nlen
  add
  push 0x1000
  local.get alen
  mem.copy
  push 9
  local.get nlen
  add
  local.get alen
  add
  local.set blen
  ;; own timeline first (Listing 1: self.store_post is a local call)
  push 0x300
  local.get blen
  call tl_append
  ;; fan out to followers
  push @k_fl
  push #k_fl
  push 0x80
  call read_counter
  local.set n
  push 0
  local.set i
cp_loop:
  local.get i
  local.get n
  ge_u
  br_if cp_done
  push 0x40
  push 102
  store8
  push 0x41
  local.get i
  store64
  push 0x40
  push 9
  push 0x700
  push 128
  kv.get
  local.set olen
  local.get olen
  push 128
  gt_u
  br_if cp_skip
  push 0x700
  local.get olen
  push @s_store
  push #s_store
  push 0x300
  local.get blen
  push 0x800
  push 16
  invoke
  drop
cp_skip:
  local.get i
  push 1
  add
  local.set i
  br cp_loop
cp_done:
  push 0x800
  local.get n
  store64
  push 0x800
  push 8
  ret
end

;; ---- get_timeline(limit?): newest posts, length-prefixed --------------
func get_timeline export locals limit m j rc out alen
  push 0x20
  push 8
  arg
  local.set alen
  push 10
  local.set limit
  local.get alen
  push 8
  eq
  eqz
  br_if gt_lim_done
  push 0x20
  load64
  local.set limit
gt_lim_done:
  push @k_tl
  push #k_tl
  push 0x90
  call read_counter
  local.set m
  local.get limit
  local.get m
  le_u
  br_if gt_min_done
  local.get m
  local.set limit
gt_min_done:
  push 0x2000
  local.set out
  push 0
  local.set j
gt_loop:
  local.get j
  local.get limit
  ge_u
  br_if gt_done
  push 0x50
  push 116
  store8
  push 0x51
  local.get m
  push 1
  sub
  local.get j
  sub
  store64
  push 0x50
  push 9
  local.get out
  push 2
  add
  push 4096
  kv.get
  local.set rc
  local.get rc
  push 4096
  gt_u
  br_if gt_skip
  local.get out
  local.get rc
  push 255
  and
  store8
  local.get out
  push 1
  add
  local.get rc
  push 8
  shr_u
  push 255
  and
  store8
  local.get out
  push 2
  add
  local.get rc
  add
  local.set out
gt_skip:
  local.get j
  push 1
  add
  local.set j
  br gt_loop
gt_done:
  push 0x2000
  local.get out
  push 0x2000
  sub
  ret
end
)";
  return kSource;
}

// ------------------------------------------------------------- native

namespace {

using runtime::InvocationContext;
using sim::Task;

Task<Result<uint64_t>> ReadCounter(InvocationContext& ctx, std::string_view key) {
  auto raw = co_await ctx.KvGet(key);
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) co_return uint64_t{0};
    co_return raw.status();
  }
  if (raw->size() != 8) co_return Status::Corruption("bad counter");
  co_return DecodeFixed64(raw->data());
}

Task<Status> WriteCounter(InvocationContext& ctx, std::string_view key,
                          uint64_t value) {
  co_return co_await ctx.KvPut(key, EncodeU64(value));
}

Task<Status> TimelineAppend(InvocationContext& ctx, std::string_view blob) {
  auto count = co_await ReadCounter(ctx, kTimelineCountKey);
  if (!count.ok()) co_return count.status();
  LO_CO_RETURN_IF_ERROR(co_await ctx.KvPut(TimelineEntryKey(*count), blob));
  co_return co_await WriteCounter(ctx, kTimelineCountKey, *count + 1);
}

Task<Result<std::string>> NativeInit(InvocationContext& ctx, std::string arg) {
  LO_CO_RETURN_IF_ERROR(co_await ctx.KvPut(kNameKey, arg));
  co_return arg;
}

Task<Result<std::string>> NativeFollow(InvocationContext& ctx, std::string arg) {
  auto count = co_await ReadCounter(ctx, kFollowerCountKey);
  if (!count.ok()) co_return count.status();
  LO_CO_RETURN_IF_ERROR(co_await ctx.KvPut(FollowerEntryKey(*count), arg));
  LO_CO_RETURN_IF_ERROR(co_await WriteCounter(ctx, kFollowerCountKey, *count + 1));
  co_return EncodeU64(*count + 1);
}

Task<Result<std::string>> NativeStorePost(InvocationContext& ctx, std::string arg) {
  LO_CO_RETURN_IF_ERROR(co_await TimelineAppend(ctx, arg));
  co_return std::string();
}

Task<Result<std::string>> NativeCreatePost(InvocationContext& ctx, std::string msg) {
  Post post;
  auto name = co_await ctx.KvGet(kNameKey);
  if (name.ok()) post.author = name->substr(0, 64);
  post.time_ms = ctx.TimeMillis();
  post.message = std::move(msg);
  std::string blob = post.Encode();
  LO_CO_RETURN_IF_ERROR(co_await TimelineAppend(ctx, blob));

  auto followers = co_await ReadCounter(ctx, kFollowerCountKey);
  if (!followers.ok()) co_return followers.status();
  for (uint64_t i = 0; i < *followers; i++) {
    auto follower = co_await ctx.KvGet(FollowerEntryKey(i));
    if (!follower.ok()) continue;  // torn graph entry (baseline semantics)
    auto delivered = co_await ctx.InvokeObject(*follower, "store_post", blob);
    if (!delivered.ok()) co_return delivered.status();
  }
  co_return EncodeU64(*followers);
}

Task<Result<std::string>> NativeGetTimeline(InvocationContext& ctx, std::string arg) {
  uint64_t limit = 10;
  if (arg.size() == 8) limit = DecodeFixed64(arg.data());
  auto count = co_await ReadCounter(ctx, kTimelineCountKey);
  if (!count.ok()) co_return count.status();
  uint64_t n = std::min(limit, *count);
  std::string out;
  for (uint64_t j = 0; j < n; j++) {
    auto entry = co_await ctx.KvGet(TimelineEntryKey(*count - 1 - j));
    if (!entry.ok()) continue;
    out.push_back(static_cast<char>(entry->size() & 0xff));
    out.push_back(static_cast<char>((entry->size() >> 8) & 0xff));
    out += *entry;
  }
  co_return out;
}

}  // namespace

Status RegisterUserType(runtime::TypeRegistry* registry, bool use_vm) {
  runtime::ObjectType type;
  type.name = "user";
  type.fields = {{"name", runtime::FieldKind::kValue},
                 {"followers", runtime::FieldKind::kList},
                 {"timeline", runtime::FieldKind::kList}};

  auto method = [&](std::string name, runtime::MethodKind kind, bool deterministic,
                    runtime::NativeMethod native) {
    runtime::MethodImpl impl;
    impl.kind = kind;
    impl.deterministic = deterministic;
    impl.native = std::move(native);
    type.methods[std::move(name)] = std::move(impl);
  };

  if (use_vm) {
    auto module = vm::Assemble(UserAsmSource());
    if (!module.ok()) return module.status();
    auto shared = std::make_shared<vm::Module>(std::move(*module));
    auto vm_method = [&](std::string name, runtime::MethodKind kind,
                         bool deterministic) {
      runtime::MethodImpl impl;
      impl.kind = kind;
      impl.deterministic = deterministic;
      impl.module = shared;
      type.methods[std::move(name)] = std::move(impl);
    };
    vm_method("init", runtime::MethodKind::kReadWrite, false);
    vm_method("follow", runtime::MethodKind::kReadWrite, false);
    vm_method("store_post", runtime::MethodKind::kReadWrite, false);
    vm_method("create_post", runtime::MethodKind::kReadWrite, false);
    vm_method("get_timeline", runtime::MethodKind::kReadOnly, true);
  } else {
    method("init", runtime::MethodKind::kReadWrite, false, NativeInit);
    method("follow", runtime::MethodKind::kReadWrite, false, NativeFollow);
    method("store_post", runtime::MethodKind::kReadWrite, false, NativeStorePost);
    method("create_post", runtime::MethodKind::kReadWrite, false, NativeCreatePost);
    method("get_timeline", runtime::MethodKind::kReadOnly, true, NativeGetTimeline);
  }
  return registry->Register(std::move(type));
}

}  // namespace lo::retwis
