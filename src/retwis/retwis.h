// ReTwis — the microblogging application of paper §3.2 (Listing 1).
//
// A User object holds: name (value), followers (counter "fl" + entries
// "f<le64 i>"), timeline (counter "tl" + entries "t<le64 i>"). Methods:
//   init(name)            set the account name
//   follow(oid)           append a follower
//   store_post(blob)      append a post blob to the timeline
//   create_post(msg)      build a post and deliver it to self + followers
//   get_timeline(limit)   newest `limit` posts (read-only, deterministic)
//
// Both implementations — LambdaVM bytecode (used in benchmarks, on both
// architectures, mirroring the paper's "WebAssembly on both sides") and
// native C++ — operate on the byte-identical key layout.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "runtime/object.h"

namespace lo::retwis {

/// Post blob layout: name_len(1) name time_ms(8, LE) message.
struct Post {
  std::string author;
  uint64_t time_ms = 0;
  std::string message;

  std::string Encode() const;
  static Result<Post> Decode(std::string_view blob);
};

/// Timeline wire format: repeated (len(2, LE) blob).
Result<std::vector<Post>> DecodeTimeline(std::string_view payload);

/// The λasm source of the User type (compiled once, shared).
std::string_view UserAsmSource();

/// Registers the "user" object type. `use_vm` selects bytecode methods
/// (benchmarks) or native ones (examples / debugging).
Status RegisterUserType(runtime::TypeRegistry* registry, bool use_vm);

// Raw keys used by the user object (shared with the seeding code).
inline constexpr std::string_view kNameKey = "name";
inline constexpr std::string_view kFollowerCountKey = "fl";
inline constexpr std::string_view kTimelineCountKey = "tl";
std::string FollowerEntryKey(uint64_t index);
std::string TimelineEntryKey(uint64_t index);
std::string EncodeU64(uint64_t value);  // 8-byte little-endian

}  // namespace lo::retwis
