#include "retwis/workload.h"

#include <algorithm>

#include "retwis/retwis.h"
#include "runtime/object.h"

namespace lo::retwis {

const char* OpName(OpType op) {
  switch (op) {
    case OpType::kPost: return "Post";
    case OpType::kGetTimeline: return "GetTimeline";
    case OpType::kFollow: return "Follow";
  }
  return "?";
}

Workload::Workload(WorkloadConfig config)
    : config_(config),
      request_zipf_(config.num_users, config.zipf_alpha) {
  followers_of_.resize(config_.num_users);
  Rng rng(config_.seed);
  ZipfGenerator zipf(config_.num_users, config_.zipf_alpha);
  uint64_t edges = config_.num_users * config_.avg_follows_per_user;
  for (uint64_t e = 0; e < edges; e++) {
    uint64_t follower = rng.Uniform(config_.num_users);
    uint64_t followee = zipf.Sample(rng);
    // A closed community follows itself (microsharding ablation: the
    // whole interaction graph of these users can be co-located).
    if (followee < config_.community_size) {
      follower = rng.Uniform(config_.community_size);
    }
    if (follower == followee) continue;
    followers_of_[followee].push_back(follower);
  }
}

uint64_t Workload::PickUser(OpType op, Rng& rng) const {
  if (config_.zipf_reads && op == OpType::kGetTimeline) {
    return request_zipf_.Sample(rng);
  }
  return rng.Uniform(config_.num_users);
}

std::string Workload::UserId(uint64_t index) const {
  return "user/" + std::to_string(index);
}

uint64_t Workload::FollowerCount(uint64_t index) const {
  return followers_of_[index].size();
}

uint64_t Workload::MaxFollowerCount() const {
  uint64_t max = 0;
  for (const auto& f : followers_of_) max = std::max<uint64_t>(max, f.size());
  return max;
}

double Workload::MeanFollowerCount() const {
  uint64_t total = 0;
  for (const auto& f : followers_of_) total += f.size();
  return static_cast<double>(total) / static_cast<double>(config_.num_users);
}

Status Workload::SeedDb(storage::DB* db) const {
  // Large batched writes; unsynced within the batch stream, one final
  // sync at the end (setup is not part of any measurement).
  storage::WriteBatch batch;
  auto flush = [&]() -> Status {
    if (batch.Count() == 0) return Status::OK();
    LO_RETURN_IF_ERROR(db->Write({.sync = false}, &batch));
    batch.Clear();
    return Status::OK();
  };
  for (uint64_t i = 0; i < config_.num_users; i++) {
    std::string oid = UserId(i);
    batch.Put(runtime::ObjectExistsKey(oid), "user");
    batch.Put(runtime::FieldKey(oid, kNameKey), "account-" + std::to_string(i));
    const auto& followers = followers_of_[i];
    batch.Put(runtime::FieldKey(oid, kFollowerCountKey),
              EncodeU64(followers.size()));
    for (uint64_t j = 0; j < followers.size(); j++) {
      batch.Put(runtime::FieldKey(oid, FollowerEntryKey(j)),
                UserId(followers[j]));
    }
    batch.Put(runtime::FieldKey(oid, kTimelineCountKey),
              EncodeU64(config_.initial_posts_per_user));
    for (uint64_t j = 0; j < config_.initial_posts_per_user; j++) {
      Post post;
      post.author = "account-" + std::to_string(i);
      post.time_ms = j;
      post.message = "seed-post-" + std::to_string(j);
      if (post.message.size() < config_.message_length) {
        post.message.append(config_.message_length - post.message.size(), 's');
      }
      batch.Put(runtime::FieldKey(oid, TimelineEntryKey(j)), post.Encode());
    }
    if (batch.ByteSize() > (1 << 20)) LO_RETURN_IF_ERROR(flush());
  }
  LO_RETURN_IF_ERROR(flush());
  storage::WriteBatch sync_marker;
  sync_marker.Put("seeded", "1");
  return db->Write({.sync = true}, &sync_marker);
}

Request Workload::Next(OpType op, Rng& rng) const {
  uint64_t user = PickUser(op, rng);
  switch (op) {
    case OpType::kPost: {
      std::string msg = "post-";
      msg += std::to_string(rng.Next());
      if (msg.size() < config_.message_length) {
        msg.append(config_.message_length - msg.size(), 'x');
      }
      return Request{UserId(user), "create_post", std::move(msg)};
    }
    case OpType::kGetTimeline:
      return Request{UserId(user), "get_timeline",
                     EncodeU64(config_.timeline_limit)};
    case OpType::kFollow: {
      uint64_t other = rng.Uniform(config_.num_users);
      return Request{UserId(user), "follow", UserId(other)};
    }
  }
  return {};
}

}  // namespace lo::retwis
