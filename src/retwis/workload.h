// ReTwis workload: Zipf social graph generation, direct storage seeding
// (identical bytes for both architectures), and request generation for
// the three workloads of paper §5 — Post, GetTimeline, Follow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/db.h"

namespace lo::retwis {

struct WorkloadConfig {
  uint64_t num_users = 10000;   // paper: "10,000 accounts"
  /// Average out-degree; followees drawn Zipf(alpha) so popular accounts
  /// accumulate large follower lists.
  uint64_t avg_follows_per_user = 16;
  double zipf_alpha = 0.8;
  size_t message_length = 96;
  uint64_t timeline_limit = 10;
  /// Posts pre-loaded into every timeline so GetTimeline reads real data.
  uint64_t initial_posts_per_user = 10;
  /// When > 0, users [0, community_size) form a closed community: their
  /// followers are drawn from within the community (ablation A3).
  uint64_t community_size = 0;
  /// When true, GetTimeline targets are drawn Zipf(zipf_alpha) instead
  /// of uniformly (hot-timeline read skew; ablation A2). Writes stay
  /// uniform so hot objects aren't serialized by their locks.
  bool zipf_reads = false;
  uint64_t seed = 42;
};

enum class OpType { kPost, kGetTimeline, kFollow };
const char* OpName(OpType op);

struct Request {
  std::string oid;
  std::string method;
  std::string argument;
};

class Workload {
 public:
  explicit Workload(WorkloadConfig config);

  const WorkloadConfig& config() const { return config_; }
  std::string UserId(uint64_t index) const;

  /// Writes every user object (name, follower list, empty timeline)
  /// directly into `db` — used to give the aggregated and disaggregated
  /// deployments byte-identical initial state without timing the setup.
  Status SeedDb(storage::DB* db) const;

  /// Number of followers of user `index` in the generated graph.
  uint64_t FollowerCount(uint64_t index) const;
  uint64_t MaxFollowerCount() const;
  double MeanFollowerCount() const;

  /// Generates the next request of the given type.
  Request Next(OpType op, Rng& rng) const;

 private:
  uint64_t PickUser(OpType op, Rng& rng) const;

  WorkloadConfig config_;
  ZipfGenerator request_zipf_;
  // followers_of[i] = accounts following user i (their timelines receive
  // user i's posts).
  std::vector<std::vector<uint64_t>> followers_of_;
};

}  // namespace lo::retwis
