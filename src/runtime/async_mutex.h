// FIFO mutex for coroutines. One per execution lane (objects are pinned
// to lanes by hash): LambdaStore "combines function scheduling and
// concurrency control" (paper §4.2) by never running two read-write
// invocations of the same object concurrently — same-object invocations
// share a lane, so the lane lock is the object lock.
#pragma once

#include <deque>
#include <memory>

#include "common/log.h"
#include "sim/task.h"

namespace lo::runtime {

class AsyncMutex {
 public:
  sim::Task<void> Lock() {
    if (!locked_) {
      locked_ = true;
      co_return;
    }
    auto slot = std::make_shared<sim::OneShot<bool>>();
    waiters_.push_back(slot);
    co_await slot->Wait();
    // Ownership was handed to us directly by Unlock().
  }

  void Unlock() {
    LO_CHECK_MSG(locked_, "unlock of unlocked AsyncMutex");
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    auto next = waiters_.front();
    waiters_.pop_front();
    next->Fulfill(true);  // lock stays held; ownership transfers FIFO
  }

  bool locked() const { return locked_; }
  size_t queue_length() const { return waiters_.size(); }

 private:
  bool locked_ = false;
  std::deque<std::shared_ptr<sim::OneShot<bool>>> waiters_;
};

}  // namespace lo::runtime
