// FIFO mutex for coroutines. One per execution lane (objects are pinned
// to lanes by hash): LambdaStore "combines function scheduling and
// concurrency control" (paper §4.2) by never running two read-write
// invocations of the same object concurrently — same-object invocations
// share a lane, so the lane lock is the object lock.
//
// Multi-tenant fairness: Lock() optionally carries a (tenant, weight)
// pair. Waiters are grouped per tenant and Unlock() hands ownership
// deficit-round-robin across the groups — a tenant with weight w gets w
// consecutive grants per rotation — so one tenant's queue depth cannot
// monopolize the lane. With a single tenant (the default, tenant 0) the
// grant order is exactly the old FIFO.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "common/log.h"
#include "sim/task.h"

namespace lo::runtime {

class AsyncMutex {
 public:
  sim::Task<void> Lock(uint32_t tenant = 0, uint32_t weight = 1) {
    if (!locked_ && waiters_ == 0) {
      locked_ = true;
      co_return;
    }
    auto slot = std::make_shared<sim::OneShot<bool>>();
    Group& group = groups_[tenant];
    group.weight = weight == 0 ? 1 : weight;
    group.slots.push_back(slot);
    if (!group.active) {
      group.active = true;
      rotation_.push_back(tenant);
    }
    waiters_++;
    co_await slot->Wait();
    // Ownership was handed to us directly by Unlock().
  }

  void Unlock() {
    LO_CHECK_MSG(locked_, "unlock of unlocked AsyncMutex");
    while (!rotation_.empty()) {
      uint32_t tenant = rotation_.front();
      Group& group = groups_[tenant];
      if (group.slots.empty()) {
        group.active = false;
        group.credits = 0;
        rotation_.pop_front();
        continue;
      }
      if (group.credits == 0) group.credits = group.weight;
      auto next = group.slots.front();
      group.slots.pop_front();
      group.credits--;
      waiters_--;
      if (group.credits == 0 || group.slots.empty()) {
        group.credits = 0;
        rotation_.pop_front();
        if (!group.slots.empty()) {
          rotation_.push_back(tenant);
        } else {
          group.active = false;
        }
      }
      next->Fulfill(true);  // lock stays held; ownership transfers DRR
      return;
    }
    locked_ = false;
  }

  bool locked() const { return locked_; }
  size_t queue_length() const { return waiters_; }

 private:
  struct Group {
    std::deque<std::shared_ptr<sim::OneShot<bool>>> slots;
    uint32_t weight = 1;
    uint32_t credits = 0;
    bool active = false;  // present in rotation_
  };

  bool locked_ = false;
  size_t waiters_ = 0;
  std::map<uint32_t, Group> groups_;
  std::deque<uint32_t> rotation_;
};

}  // namespace lo::runtime
