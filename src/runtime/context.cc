#include "runtime/context.h"

#include "common/coding.h"
#include "common/hash.h"
#include "common/log.h"
#include "runtime/runtime.h"

namespace lo::runtime {
namespace {

// Hash recorded in the read set; absence hashes differently from every
// present value.
uint64_t ValueHash(const Result<std::string>& value) {
  if (!value.ok()) return 0x9e3779b97f4a7c15ull;  // "absent"
  return Fnv1a64(*value) ^ 1;
}

}  // namespace

InvocationContext::InvocationContext(Runtime* runtime, ObjectId oid,
                                     MethodKind kind,
                                     const storage::Snapshot* snapshot)
    : runtime_(runtime), oid_(std::move(oid)), kind_(kind), snapshot_(snapshot) {}

Status InvocationContext::CheckWritable() const {
  if (kind_ != MethodKind::kReadWrite) {
    return Status::FailedPrecondition("read-only invocation cannot write");
  }
  return Status::OK();
}

sim::Task<Result<std::string>> InvocationContext::ReadKey(std::string key) {
  auto buffered = writes_.find(key);
  if (buffered != writes_.end()) {
    // Own uncommitted write; not part of the storage read set.
    if (!buffered->second.has_value()) co_return Status::NotFound("");
    co_return *buffered->second;
  }
  Result<std::string> value = runtime_->StorageRead(key, snapshot_);
  if (!value.ok() && !value.status().IsNotFound()) co_return value.status();
  read_set_.push_back(ReadSetEntry{std::move(key), ValueHash(value)});
  co_return value;
}

sim::Task<Status> InvocationContext::WriteKey(std::string key,
                                              std::optional<std::string> value) {
  LO_CO_RETURN_IF_ERROR(CheckWritable());
  writes_[std::move(key)] = std::move(value);
  co_return Status::OK();
}

// --- HostApi ------------------------------------------------------------

sim::Task<Result<std::string>> InvocationContext::KvGet(std::string_view key) {
  return ReadKey(FieldKey(oid_, key));
}

sim::Task<Status> InvocationContext::KvPut(std::string_view key,
                                           std::string_view value) {
  return WriteKey(FieldKey(oid_, key), std::string(value));
}

sim::Task<Status> InvocationContext::KvDelete(std::string_view key) {
  return WriteKey(FieldKey(oid_, key), std::nullopt);
}

sim::Task<Result<std::string>> InvocationContext::InvokeObject(
    std::string_view oid, std::string_view function, std::string_view argument) {
  return runtime_->NestedInvoke(*this, ObjectId(oid), std::string(function),
                                std::string(argument));
}

uint64_t InvocationContext::TimeMillis() { return runtime_->VirtualTimeMillis(); }

void InvocationContext::DebugLog(std::string_view message) {
  LO_DEBUG << "[" << oid_ << "] " << message;
}

// --- native field API -----------------------------------------------------

sim::Task<Result<std::string>> InvocationContext::Get(std::string_view field) {
  return ReadKey(FieldKey(oid_, field));
}

sim::Task<Status> InvocationContext::Set(std::string_view field,
                                         std::string_view value) {
  return WriteKey(FieldKey(oid_, field), std::string(value));
}

sim::Task<Status> InvocationContext::Unset(std::string_view field) {
  return WriteKey(FieldKey(oid_, field), std::nullopt);
}

sim::Task<Result<uint64_t>> InvocationContext::ListLen(std::string_view field) {
  auto raw = co_await ReadKey(ListLenKey(oid_, field));
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) co_return uint64_t{0};
    co_return raw.status();
  }
  if (raw->size() != 8) co_return Status::Corruption("bad list length");
  co_return DecodeFixed64(raw->data());
}

sim::Task<Status> InvocationContext::ListPush(std::string_view field,
                                              std::string_view value) {
  LO_CO_RETURN_IF_ERROR(CheckWritable());
  auto len = co_await ListLen(field);
  if (!len.ok()) co_return len.status();
  LO_CO_RETURN_IF_ERROR(co_await WriteKey(ListEntryKey(oid_, field, *len),
                                          std::string(value)));
  std::string encoded;
  PutFixed64(&encoded, *len + 1);
  co_return co_await WriteKey(ListLenKey(oid_, field), std::move(encoded));
}

sim::Task<Result<std::string>> InvocationContext::ListGet(std::string_view field,
                                                          uint64_t index) {
  return ReadKey(ListEntryKey(oid_, field, index));
}

sim::Task<Result<std::vector<std::string>>> InvocationContext::ListNewest(
    std::string_view field, uint64_t limit) {
  auto len = co_await ListLen(field);
  if (!len.ok()) co_return len.status();
  std::vector<std::string> result;
  uint64_t count = std::min(limit, *len);
  result.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    auto entry = co_await ListGet(field, *len - 1 - i);
    if (!entry.ok()) co_return entry.status();
    result.push_back(std::move(*entry));
  }
  co_return result;
}

sim::Task<Result<std::string>> InvocationContext::MapGet(std::string_view field,
                                                         std::string_view key) {
  return ReadKey(MapEntryKey(oid_, field, key));
}

sim::Task<Status> InvocationContext::MapSet(std::string_view field,
                                            std::string_view key,
                                            std::string_view value) {
  return WriteKey(MapEntryKey(oid_, field, key), std::string(value));
}

sim::Task<Status> InvocationContext::MapDelete(std::string_view field,
                                               std::string_view key) {
  return WriteKey(MapEntryKey(oid_, field, key), std::nullopt);
}

// --- runtime plumbing -----------------------------------------------------

storage::WriteBatch InvocationContext::TakeWriteBatch() {
  storage::WriteBatch batch;
  for (const auto& [key, value] : writes_) {
    if (value.has_value()) {
      batch.Put(key, *value);
    } else {
      batch.Delete(key);
    }
  }
  writes_.clear();
  return batch;
}

std::vector<std::string> InvocationContext::written_keys() const {
  std::vector<std::string> keys;
  keys.reserve(writes_.size());
  for (const auto& [key, value] : writes_) keys.push_back(key);
  return keys;
}

}  // namespace lo::runtime
