// InvocationContext: the world one method invocation sees.
//
// Reads go through the invocation's write buffer first, then a storage
// snapshot; writes are buffered and committed as one atomic WriteBatch
// when the invocation finishes (or before a nested call — paper §3.1).
// The context is simultaneously the VM's HostApi and the native-method
// API, so bytecode and native methods observe identical semantics.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "runtime/async_mutex.h"
#include "runtime/object.h"
#include "sim/task.h"
#include "storage/db.h"
#include "vm/interpreter.h"

namespace lo::runtime {

class Runtime;

/// One entry of the recorded read set: key plus a short hash of the
/// observed value ("absent" hashes distinctly), used by the result cache.
struct ReadSetEntry {
  std::string key;
  uint64_t value_hash;
};

class InvocationContext : public vm::HostApi {
 public:
  /// `snapshot` may be null (read latest). Runtime retains ownership of
  /// everything passed in.
  InvocationContext(Runtime* runtime, ObjectId oid, MethodKind kind,
                    const storage::Snapshot* snapshot);

  const ObjectId& oid() const { return oid_; }
  MethodKind kind() const { return kind_; }

  // --- vm::HostApi (raw keys are scoped to this object's value space) --
  sim::Task<Result<std::string>> KvGet(std::string_view key) override;
  sim::Task<Status> KvPut(std::string_view key, std::string_view value) override;
  sim::Task<Status> KvDelete(std::string_view key) override;
  sim::Task<Result<std::string>> InvokeObject(std::string_view oid,
                                              std::string_view function,
                                              std::string_view argument) override;
  uint64_t TimeMillis() override;
  void DebugLog(std::string_view message) override;

  // --- native-method field API ----------------------------------------
  /// Value fields. Get returns NotFound if never set.
  sim::Task<Result<std::string>> Get(std::string_view field);
  sim::Task<Status> Set(std::string_view field, std::string_view value);
  sim::Task<Status> Unset(std::string_view field);

  /// List fields (append-only).
  sim::Task<Result<uint64_t>> ListLen(std::string_view field);
  sim::Task<Status> ListPush(std::string_view field, std::string_view value);
  sim::Task<Result<std::string>> ListGet(std::string_view field, uint64_t index);
  /// Newest entries first, at most `limit` (the timeline read pattern).
  sim::Task<Result<std::vector<std::string>>> ListNewest(std::string_view field,
                                                         uint64_t limit);

  /// Map fields.
  sim::Task<Result<std::string>> MapGet(std::string_view field, std::string_view key);
  sim::Task<Status> MapSet(std::string_view field, std::string_view key,
                           std::string_view value);
  sim::Task<Status> MapDelete(std::string_view field, std::string_view key);

  // --- used by the Runtime ---------------------------------------------
  /// Drains buffered writes into a WriteBatch (empty batch if clean).
  storage::WriteBatch TakeWriteBatch();
  bool has_writes() const { return !writes_.empty(); }
  const std::vector<ReadSetEntry>& read_set() const { return read_set_; }
  /// Keys written so far (cache invalidation).
  std::vector<std::string> written_keys() const;
  void set_snapshot(const storage::Snapshot* snapshot) { snapshot_ = snapshot; }
  /// The object lock held by this (read-write) invocation; the runtime
  /// releases it around nested calls (paper §3.1: the parts before and
  /// after a nested call are separate invocations).
  void set_object_lock(AsyncMutex* lock) { lock_ = lock; }
  AsyncMutex* object_lock() const { return lock_; }
  /// Trace context of this invocation; nested calls and commits inherit it.
  void set_trace(obs::TraceContext trace) { trace_ = trace; }
  const obs::TraceContext& trace() const { return trace_; }
  /// Client-minted idempotency token, stable across retries of the same
  /// logical request (empty = dedup off). Each CommitContext call of this
  /// invocation consumes the next commit index, so multi-commit
  /// invocations (nested calls commit early) dedup per commit point.
  void set_idempotency_token(std::string token) {
    idempotency_token_ = std::move(token);
  }
  const std::string& idempotency_token() const { return idempotency_token_; }
  uint64_t NextCommitIndex() { return commit_index_++; }

 private:
  /// Buffer-then-snapshot read of an absolute storage key.
  sim::Task<Result<std::string>> ReadKey(std::string key);
  sim::Task<Status> WriteKey(std::string key, std::optional<std::string> value);
  Status CheckWritable() const;

  Runtime* runtime_;
  ObjectId oid_;
  MethodKind kind_;
  const storage::Snapshot* snapshot_;
  AsyncMutex* lock_ = nullptr;
  obs::TraceContext trace_;
  // nullopt value = pending delete.
  std::map<std::string, std::optional<std::string>> writes_;
  std::vector<ReadSetEntry> read_set_;
  std::string idempotency_token_;
  uint64_t commit_index_ = 0;
};

}  // namespace lo::runtime
