#include "runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/hash.h"

namespace lo::runtime {

ParallelNode::ParallelNode(storage::DB* db, const TypeRegistry* types,
                           ParallelNodeOptions options)
    : db_(db), types_(types), options_(options) {
  // Wrap the group-commit hook: advance this node's apply-epoch to the
  // group's sequence first (so it is visible before any waiter of that
  // group unblocks — the committer calls on_commit before releasing
  // waiters), then chain whatever hook the embedder installed (the
  // replication shipper).
  storage::GroupCommitterOptions gc = options_.group_commit;
  gc.on_commit = [this, user_hook = gc.on_commit](
                     uint64_t seq, const storage::WriteBatch& batch) {
    uint64_t cur = apply_epoch_.load(std::memory_order_relaxed);
    while (seq > cur && !apply_epoch_.compare_exchange_weak(
                            cur, seq, std::memory_order_release,
                            std::memory_order_relaxed)) {
    }
    if (user_hook) user_hook(seq, batch);
  };
  committer_ = std::make_unique<storage::GroupCommitter>(db, gc);
  size_t lane_count = std::max<size_t>(1, options_.lanes);
  lanes_.reserve(lane_count);
  for (size_t i = 0; i < lane_count; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->sim = std::make_unique<sim::Simulator>();
    RuntimeOptions rt_options = options_.runtime;
    rt_options.lanes = 1;  // one worker thread == one internal lane
    rt_options.tenants = options_.tenants;  // per-tenant VM fuel accounting
    lane->runtime = std::make_unique<Runtime>(lane->sim.get(), db_, types, rt_options);
    // All lanes commit through the shared group committer: the worker
    // thread blocks inside Commit() until its batch's shared fsync lands.
    lane->runtime->SetCommitSink(
        [this](const ObjectId&, storage::WriteBatch batch,
               obs::TraceContext) -> sim::Task<Status> {
          co_return committer_->Commit(std::move(batch));
        });
    // Same-lane nested targets recurse directly (the runtime released
    // its lane lock first, so the recursive Invoke acquires it without
    // suspending); cross-lane targets hand off to the target lane's
    // worker while this one helps with its own queue (see header).
    Runtime* rt = lane->runtime.get();
    lane->runtime->SetRemoteInvoker(
        [this, i, rt](ObjectId oid, std::string method, std::string argument,
                      obs::TraceContext trace) -> sim::Task<Result<std::string>> {
          // Objects owned by a peer node leave the process entirely;
          // peer_is_local_/peer_invoke_ are installed before serving
          // starts (SetPeerInvoker), so reading them unlocked is safe.
          if (peer_is_local_ && !peer_is_local_(oid)) {
            co_return HelpingWait(
                i, [this, oid = std::move(oid), method = std::move(method),
                    argument = std::move(argument)](Callback done) mutable {
                  peer_invoke_(std::move(oid), std::move(method),
                               std::move(argument), std::move(done));
                });
          }
          size_t target = LaneFor(oid);
          if (target != i) {
            co_return CrossLaneNestedInvoke(i, target, std::move(oid),
                                            std::move(method),
                                            std::move(argument), trace);
          }
          co_return co_await rt->Invoke(std::move(oid), std::move(method),
                                        std::move(argument), trace);
        });
    lane->worker = std::thread([this, raw = lane.get()] { WorkerLoop(raw); });
    lanes_.push_back(std::move(lane));
  }
}

ParallelNode::~ParallelNode() {
  for (auto& lane : lanes_) {
    {
      std::unique_lock<std::mutex> lock(lane->mu);
      lane->stop = true;
    }
    lane->work_cv.notify_all();
  }
  for (auto& lane : lanes_) lane->worker.join();
  // committer_ destructor drains whatever the lanes submitted last.
}

size_t ParallelNode::LaneFor(const ObjectId& oid) const {
  return static_cast<size_t>(Fnv1a64(oid) % lanes_.size());
}

uint64_t ParallelNode::lane_executed(size_t lane) const {
  std::unique_lock<std::mutex> lock(lanes_[lane]->mu);
  return lanes_[lane]->executed;
}

Result<std::string> ParallelNode::CrossLaneNestedInvoke(
    size_t caller_lane, size_t target_lane, ObjectId oid, std::string method,
    std::string argument, obs::TraceContext trace) {
  Runtime* target_rt = lanes_[target_lane]->runtime.get();
  return HelpingWait(
      caller_lane,
      [this, target_lane, target_rt, oid = std::move(oid),
       method = std::move(method), argument = std::move(argument),
       trace](Callback done) mutable {
        Enqueue(target_lane, [target_rt, oid = std::move(oid),
                              method = std::move(method),
                              argument = std::move(argument), trace,
                              done = std::move(done)]() mutable {
          done(RunSync(target_rt->Invoke(std::move(oid), std::move(method),
                                         std::move(argument), trace)));
        });
      });
}

Result<std::string> ParallelNode::HelpingWait(
    size_t caller_lane, std::function<void(Callback)> start) {
  struct CallState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<std::string> result{Status::Aborted("nested call never ran")};
  };
  auto call = std::make_shared<CallState>();
  start([call](Result<std::string> result) {
    {
      std::lock_guard<std::mutex> lock(call->mu);
      call->result = std::move(result);
      call->done = true;
    }
    call->cv.notify_all();
  });
  // Wait, helping: whenever this lane's lock is free (read-write callers
  // committed + unlocked before nesting), run jobs from our own queue so
  // a nested call another blocked lane parked here still executes. The
  // 1ms poll only bounds how long a *helpable* job waits; the common
  // case wakes on cv immediately.
  Lane& self = *lanes_[caller_lane];
  while (true) {
    {
      std::unique_lock<std::mutex> lock(call->mu);
      if (call->cv.wait_for(lock, std::chrono::milliseconds(1),
                            [&] { return call->done; })) {
        return std::move(call->result);
      }
    }
    if (self.runtime->LaneLock(0).locked()) continue;  // read-only caller
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(self.mu);
      PopJob(&self, &job);
    }
    if (job) {
      job();
      std::unique_lock<std::mutex> lock(self.mu);
      self.executed++;
    }
  }
}

void ParallelNode::SetPeerInvoker(PeerLocalFn is_local, PeerInvokeFn invoke) {
  peer_is_local_ = std::move(is_local);
  peer_invoke_ = std::move(invoke);
}

void ParallelNode::RunOnLane(const ObjectId& oid,
                             std::function<void(Runtime&)> job,
                             tenant::TenantId tenant) {
  size_t lane_index = LaneFor(oid);
  Runtime* rt = lanes_[lane_index]->runtime.get();
  Enqueue(lane_index, [rt, job = std::move(job)] { job(*rt); }, tenant);
}

void ParallelNode::Enqueue(size_t lane_index, std::function<void()> job,
                           tenant::TenantId tenant) {
  Lane& lane = *lanes_[lane_index];
  uint32_t weight =
      options_.tenants != nullptr ? options_.tenants->WeightFor(tenant) : 1;
  int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  {
    std::unique_lock<std::mutex> lock(lane.mu);
    lane.queue.Push(std::move(job), tenant, weight, now_us);
  }
  lane.work_cv.notify_one();
}

bool ParallelNode::PopJob(Lane* lane, std::function<void()>* job) {
  tenant::FairQueue::Item item;
  if (!lane->queue.Pop(&item)) return false;
  if (options_.tenants != nullptr) {
    int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
    options_.tenants->RecordQueueWait(item.tenant,
                                      std::max<int64_t>(0, now_us - item.enqueued_us));
  }
  *job = std::move(item.job);
  return true;
}

void ParallelNode::InvokeAsync(ObjectId oid, std::string method,
                               std::string argument, std::string token,
                               Callback done, std::function<bool()> shed,
                               tenant::TenantId tenant) {
  size_t lane_index = LaneFor(oid);
  Runtime* rt = lanes_[lane_index]->runtime.get();
  Enqueue(lane_index,
          [rt, oid = std::move(oid), method = std::move(method),
           argument = std::move(argument), token = std::move(token),
           done = std::move(done), shed = std::move(shed), tenant]() mutable {
            // Shed decision happens here — at execution time, not enqueue
            // time — because the interesting case is a deadline that
            // expired while the job sat behind a busy lane.
            if (shed && shed()) {
              done(Status::Timeout("deadline expired before execution"));
              return;
            }
            done(RunSync(rt->Invoke(std::move(oid), std::move(method),
                                    std::move(argument), {}, std::move(token),
                                    tenant)));
          },
          tenant);
}

void ParallelNode::CreateObjectAsync(ObjectId oid, std::string type_name,
                                     std::string token, Callback done,
                                     std::function<bool()> shed,
                                     tenant::TenantId tenant) {
  size_t lane_index = LaneFor(oid);
  Runtime* rt = lanes_[lane_index]->runtime.get();
  Enqueue(lane_index,
          [rt, oid = std::move(oid), type_name = std::move(type_name),
           token = std::move(token), done = std::move(done),
           shed = std::move(shed)]() mutable {
            if (shed && shed()) {
              done(Status::Timeout("deadline expired before execution"));
              return;
            }
            done(RunSync(rt->CreateObject(std::move(oid), std::move(type_name),
                                          std::move(token))));
          },
          tenant);
}

std::future<Result<std::string>> ParallelNode::Invoke(ObjectId oid,
                                                      std::string method,
                                                      std::string argument,
                                                      std::string token,
                                                      tenant::TenantId tenant) {
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  auto future = promise->get_future();
  InvokeAsync(std::move(oid), std::move(method), std::move(argument),
              std::move(token),
              [promise](Result<std::string> result) {
                promise->set_value(std::move(result));
              },
              {}, tenant);
  return future;
}

std::future<Result<std::string>> ParallelNode::CreateObject(
    ObjectId oid, std::string type_name, std::string token,
    tenant::TenantId tenant) {
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  auto future = promise->get_future();
  CreateObjectAsync(std::move(oid), std::move(type_name), std::move(token),
                    [promise](Result<std::string> result) {
                      promise->set_value(std::move(result));
                    },
                    {}, tenant);
  return future;
}

Status ParallelNode::ApplyReplicated(storage::WriteBatch batch, uint64_t epoch) {
  storage::WriteOptions write_opts;
  write_opts.sync = true;
  Status status = db_->Write(write_opts, &batch);
  if (!status.ok()) return status;
  // Invalidation barrier: every lane must drop result-cache entries whose
  // read set the batch wrote before the epoch advances — once it does,
  // the gate admits reads that rely on those entries being gone. The
  // batch lives on this frame; the barrier keeps it alive past the jobs.
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
  } barrier{.pending = lanes_.size()};
  for (size_t i = 0; i < lanes_.size(); ++i) {
    Runtime* rt = lanes_[i]->runtime.get();
    Enqueue(i, [rt, &batch, &barrier] {
      rt->OnExternalCommit(batch);
      std::lock_guard<std::mutex> lock(barrier.mu);
      if (--barrier.pending == 0) barrier.cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(barrier.mu);
    barrier.cv.wait(lock, [&] { return barrier.pending == 0; });
  }
  uint64_t cur = apply_epoch_.load(std::memory_order_relaxed);
  while (epoch > cur && !apply_epoch_.compare_exchange_weak(
                            cur, epoch, std::memory_order_release,
                            std::memory_order_relaxed)) {
  }
  return Status::OK();
}

std::future<Result<std::string>> ParallelNode::InvokeRead(
    ObjectId oid, std::string method, std::string argument, uint64_t min_epoch,
    tenant::TenantId tenant) {
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  auto future = promise->get_future();
  size_t lane_index = LaneFor(oid);
  Runtime* rt = lanes_[lane_index]->runtime.get();
  Enqueue(lane_index, [this, rt, oid = std::move(oid),
                       method = std::move(method),
                       argument = std::move(argument), min_epoch, tenant,
                       promise]() mutable {
    uint64_t applied = apply_epoch_.load(std::memory_order_acquire);
    if (applied < min_epoch) {
      promise->set_value(Status::EpochBehind(
          "applied " + std::to_string(applied) + " < required " +
          std::to_string(min_epoch)));
      return;
    }
    // Only registered read-only methods may run through the gated path —
    // a mutating method on a backup would fork history.
    auto type_name = db_->Get({}, ObjectExistsKey(oid));
    if (!type_name.ok()) {
      promise->set_value(type_name.status());
      return;
    }
    const ObjectType* type = types_->Find(*type_name);
    const MethodImpl* impl =
        type == nullptr ? nullptr : type->FindMethod(method);
    if (impl == nullptr || impl->kind != MethodKind::kReadOnly) {
      promise->set_value(Status::NotPrimary("not a read-only method"));
      return;
    }
    promise->set_value(RunSync(rt->Invoke(std::move(oid), std::move(method),
                                          std::move(argument), {}, {},
                                          tenant)));
  });
  return future;
}

void ParallelNode::Drain() {
  for (auto& lane : lanes_) {
    std::unique_lock<std::mutex> lock(lane->mu);
    lane->idle_cv.wait(lock, [&] { return lane->queue.empty() && !lane->busy; });
  }
  committer_->Drain();
}

void ParallelNode::WorkerLoop(Lane* lane) {
  std::unique_lock<std::mutex> lock(lane->mu);
  while (true) {
    lane->work_cv.wait(lock, [&] { return lane->stop || !lane->queue.empty(); });
    if (lane->queue.empty()) {
      if (lane->stop) return;
      continue;
    }
    std::function<void()> job;
    if (!PopJob(lane, &job)) continue;
    lane->busy = true;
    lock.unlock();
    job();
    lock.lock();
    lane->executed++;
    lane->busy = false;
    lane->idle_cv.notify_all();
    if (lane->stop && lane->queue.empty()) return;  // drained
  }
}

}  // namespace lo::runtime
