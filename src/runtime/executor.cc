#include "runtime/executor.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"

namespace lo::runtime {

ParallelNode::ParallelNode(storage::DB* db, const TypeRegistry* types,
                           ParallelNodeOptions options)
    : db_(db),
      options_(options),
      committer_(std::make_unique<storage::GroupCommitter>(db, options.group_commit)) {
  size_t lane_count = std::max<size_t>(1, options_.lanes);
  lanes_.reserve(lane_count);
  for (size_t i = 0; i < lane_count; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->sim = std::make_unique<sim::Simulator>();
    RuntimeOptions rt_options = options_.runtime;
    rt_options.lanes = 1;  // one worker thread == one internal lane
    lane->runtime = std::make_unique<Runtime>(lane->sim.get(), db_, types, rt_options);
    // All lanes commit through the shared group committer: the worker
    // thread blocks inside Commit() until its batch's shared fsync lands.
    lane->runtime->SetCommitSink(
        [this](const ObjectId&, storage::WriteBatch batch,
               obs::TraceContext) -> sim::Task<Status> {
          co_return committer_->Commit(std::move(batch));
        });
    // Nested invocations stay on-lane (see header). Same-lane targets
    // recurse directly; the runtime released its lane lock first, so the
    // recursive Invoke acquires it without suspending.
    Runtime* rt = lane->runtime.get();
    lane->runtime->SetRemoteInvoker(
        [this, i, rt](ObjectId oid, std::string method, std::string argument,
                      obs::TraceContext trace) -> sim::Task<Result<std::string>> {
          if (LaneFor(oid) != i) {
            co_return Status::FailedPrecondition(
                "cross-lane nested invocation (object " + oid +
                " is pinned to another lane)");
          }
          co_return co_await rt->Invoke(std::move(oid), std::move(method),
                                        std::move(argument), trace);
        });
    lane->worker = std::thread([this, raw = lane.get()] { WorkerLoop(raw); });
    lanes_.push_back(std::move(lane));
  }
}

ParallelNode::~ParallelNode() {
  for (auto& lane : lanes_) {
    {
      std::unique_lock<std::mutex> lock(lane->mu);
      lane->stop = true;
    }
    lane->work_cv.notify_all();
  }
  for (auto& lane : lanes_) lane->worker.join();
  // committer_ destructor drains whatever the lanes submitted last.
}

size_t ParallelNode::LaneFor(const ObjectId& oid) const {
  return static_cast<size_t>(Fnv1a64(oid) % lanes_.size());
}

uint64_t ParallelNode::lane_executed(size_t lane) const {
  std::unique_lock<std::mutex> lock(lanes_[lane]->mu);
  return lanes_[lane]->executed;
}

void ParallelNode::Enqueue(size_t lane_index, std::function<void()> job) {
  Lane& lane = *lanes_[lane_index];
  {
    std::unique_lock<std::mutex> lock(lane.mu);
    lane.queue.push_back(std::move(job));
  }
  lane.work_cv.notify_one();
}

std::future<Result<std::string>> ParallelNode::Invoke(ObjectId oid,
                                                      std::string method,
                                                      std::string argument,
                                                      std::string token) {
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  auto future = promise->get_future();
  size_t lane_index = LaneFor(oid);
  Runtime* rt = lanes_[lane_index]->runtime.get();
  Enqueue(lane_index, [rt, promise, oid = std::move(oid),
                       method = std::move(method), argument = std::move(argument),
                       token = std::move(token)]() mutable {
    promise->set_value(RunSync(rt->Invoke(std::move(oid), std::move(method),
                                          std::move(argument), {},
                                          std::move(token))));
  });
  return future;
}

std::future<Result<std::string>> ParallelNode::CreateObject(ObjectId oid,
                                                            std::string type_name,
                                                            std::string token) {
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  auto future = promise->get_future();
  size_t lane_index = LaneFor(oid);
  Runtime* rt = lanes_[lane_index]->runtime.get();
  Enqueue(lane_index, [rt, promise, oid = std::move(oid),
                       type_name = std::move(type_name),
                       token = std::move(token)]() mutable {
    promise->set_value(RunSync(
        rt->CreateObject(std::move(oid), std::move(type_name), std::move(token))));
  });
  return future;
}

void ParallelNode::Drain() {
  for (auto& lane : lanes_) {
    std::unique_lock<std::mutex> lock(lane->mu);
    lane->idle_cv.wait(lock, [&] { return lane->queue.empty() && !lane->busy; });
  }
  committer_->Drain();
}

void ParallelNode::WorkerLoop(Lane* lane) {
  std::unique_lock<std::mutex> lock(lane->mu);
  while (true) {
    lane->work_cv.wait(lock, [&] { return lane->stop || !lane->queue.empty(); });
    if (lane->queue.empty()) {
      if (lane->stop) return;
      continue;
    }
    std::function<void()> job = std::move(lane->queue.front());
    lane->queue.pop_front();
    lane->busy = true;
    lock.unlock();
    job();
    lock.lock();
    lane->executed++;
    lane->busy = false;
    lane->idle_cv.notify_all();
    if (lane->stop && lane->queue.empty()) return;  // drained
  }
}

}  // namespace lo::runtime
