// Real-threaded sharded executor: the OS-thread counterpart of the
// simulated execution lanes in runtime.h, used by the model-checked
// concurrency tests (and usable standalone).
//
// A ParallelNode owns `lanes` worker threads. Every invocation is pinned
// to lane `hash(object_id) % lanes`: distinct objects run concurrently on
// distinct threads, same-object invocations land in one lane's FIFO queue
// and can never reorder — per-object linearizability by construction.
// Each lane holds its own runtime::Runtime (method dispatch, VM
// instances, result cache); lane-affinity is what keeps the per-lane
// caches consistent, since every commit touching an object passes through
// that object's lane. All lanes share one MiniLSM DB (opened with
// Options::serialize_access) and one storage::GroupCommitter, so commits
// issued concurrently from several lanes coalesce into shared fsyncs.
//
// The runtime is coroutine-based but none of its awaits suspends on an
// external event when driven this way (the lane's internal AsyncMutex is
// always free — the worker thread is the only entrant — and the commit
// sink blocks the worker thread inside GroupCommitter::Commit instead of
// suspending). RunSync exploits that: it starts the coroutine and
// requires it to finish in one go.
//
// Nested invocations (`ctx.Invoke`) may cross lanes: the call is
// enqueued on the target object's lane and the calling worker blocks for
// the result. While blocked, the caller *helps* — it drains jobs from
// its own lane's queue (only while its runtime's lane lock is free,
// i.e. the blocked invocation was read-write and committed + unlocked
// before nesting, per Runtime::NestedInvoke) — so a cycle of lanes
// waiting on each other always makes progress: some blocked worker runs
// the nested call parked in its queue. Read-only nested callers hold
// the lane lock across the call and cannot help; a *cycle* of read-only
// nesters would deadlock, exactly as it would under the sim runtime's
// AsyncMutex, so the same "don't nest cyclically from read-only
// methods" rule applies to both engines.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/status.h"
#include "runtime/object.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "storage/db.h"
#include "storage/group_commit.h"
#include "tenant/tenant.h"

namespace lo::runtime {

/// Runs a coroutine that never suspends on an external event and returns
/// its value. Aborts if the task parks (that would mean an await with no
/// one left to resume it — a bug in how the runtime was wired).
template <typename T>
T RunSync(sim::Task<T> task) {
  std::optional<T> out;
  sim::Detach([](sim::Task<T> t, std::optional<T>* out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), &out));
  LO_CHECK_MSG(out.has_value(), "coroutine suspended under RunSync");
  return std::move(*out);
}

struct ParallelNodeOptions {
  /// Worker threads; objects are pinned by hash(object_id) % lanes.
  size_t lanes = 8;
  /// Per-lane runtime configuration (its `lanes` field is overridden
  /// to 1 — threading is this executor's job, not the lane runtime's).
  RuntimeOptions runtime;
  storage::GroupCommitterOptions group_commit;
  /// Optional multi-tenant QoS (not owned; must outlive the node). When
  /// set, each lane's queue becomes a deficit-round-robin FairQueue over
  /// the tenant ids submitted with each job, queue waits are recorded
  /// per tenant, and the per-lane runtimes charge VM fuel to it. With
  /// only tenant 0 traffic the lanes behave exactly like the old FIFO.
  tenant::TenantRegistry* tenants = nullptr;
};

class ParallelNode {
 public:
  /// `db` must be opened with Options::serialize_access and outlive this
  /// node (not owned — tests close/reopen it across crashes). `types`
  /// must also outlive the node.
  ParallelNode(storage::DB* db, const TypeRegistry* types,
               ParallelNodeOptions options = {});
  /// Drains every queued invocation and pending group commit, then joins.
  ~ParallelNode();

  ParallelNode(const ParallelNode&) = delete;
  ParallelNode& operator=(const ParallelNode&) = delete;

  /// Thread-safe. Enqueues on the object's lane; the future resolves when
  /// the invocation has executed and its writes (if any) are durable.
  /// Submission order from one thread = execution order on the lane.
  /// `tenant` attributes the work for QoS (DRR share, queue-wait metric,
  /// VM fuel); 0 = unattributed, always plain FIFO behavior.
  std::future<Result<std::string>> Invoke(ObjectId oid, std::string method,
                                          std::string argument,
                                          std::string token = {},
                                          tenant::TenantId tenant = 0);
  std::future<Result<std::string>> CreateObject(ObjectId oid,
                                                std::string type_name,
                                                std::string token = {},
                                                tenant::TenantId tenant = 0);

  using Callback = std::function<void(Result<std::string>)>;
  /// Callback-style Invoke for async servers (net::RpcServer handlers):
  /// `done` runs on the lane thread once the invocation is durable, so
  /// the caller's thread never blocks on a future. If `shed` is set it is
  /// checked on the lane thread just before execution; returning true
  /// skips the work and completes with Status::Timeout — how a server
  /// drops queued requests whose client deadline expired while they
  /// waited behind a busy lane.
  void InvokeAsync(ObjectId oid, std::string method, std::string argument,
                   std::string token, Callback done,
                   std::function<bool()> shed = {},
                   tenant::TenantId tenant = 0);
  void CreateObjectAsync(ObjectId oid, std::string type_name, std::string token,
                         Callback done, std::function<bool()> shed = {},
                         tenant::TenantId tenant = 0);

  /// True if this node should execute `oid` itself; false routes the
  /// nested invocation to `invoke` (an async peer call, e.g. RPC to the
  /// owning server). Install before serving traffic. While a worker
  /// waits on a peer call it helps with its own lane's queue, exactly as
  /// for cross-lane nesting, so cross-node call cycles keep making
  /// progress as long as the remote side eventually answers.
  using PeerLocalFn = std::function<bool(const ObjectId&)>;
  using PeerInvokeFn = std::function<void(ObjectId oid, std::string method,
                                          std::string argument, Callback done)>;
  void SetPeerInvoker(PeerLocalFn is_local, PeerInvokeFn invoke);

  /// Thread-safe. Runs `job` on the object's lane thread, serialized
  /// behind every invocation of that object already queued — the hook
  /// microshard migration uses to extract an object only after its
  /// in-flight work drained. Returns immediately.
  void RunOnLane(const ObjectId& oid, std::function<void(Runtime&)> job,
                 tenant::TenantId tenant = 0);

  /// Applies a replicated batch (shipped from a primary's group-commit
  /// stream) and stamps this node's apply-epoch to `epoch` — the
  /// shipping primary's commit sequence. Writes the batch to the DB,
  /// then invalidates every lane's result cache (blocking until each
  /// lane ran its invalidation job) *before* advancing the epoch, so a
  /// read admitted by the epoch gate can never hit an entry cached
  /// against pre-batch state. Call from the (single, ordered)
  /// replication-apply thread — never from a lane worker.
  Status ApplyReplicated(storage::WriteBatch batch, uint64_t epoch);

  /// This node's apply-epoch: the last group-commit sequence it has
  /// locally committed (primary) or applied via ApplyReplicated (backup).
  /// Advances before any waiter of that commit unblocks, so a client
  /// that saw a write ack reads apply_epoch() >= that write's sequence.
  uint64_t apply_epoch() const {
    return apply_epoch_.load(std::memory_order_acquire);
  }

  /// Epoch-gated follower read: runs `method` (which must be registered
  /// read-only) on the object's lane iff apply_epoch() >= min_epoch at
  /// execution time; resolves with kEpochBehind otherwise. The gate is
  /// checked on the lane thread, after any invalidation job already
  /// barriered through the lane, so an admitted read observes
  /// post-invalidation cache state.
  std::future<Result<std::string>> InvokeRead(ObjectId oid, std::string method,
                                              std::string argument,
                                              uint64_t min_epoch,
                                              tenant::TenantId tenant = 0);

  /// Blocks until all lanes are idle and all group commits resolved.
  void Drain();

  size_t lanes() const { return lanes_.size(); }
  size_t LaneFor(const ObjectId& oid) const;
  /// Invocations executed by `lane` so far.
  uint64_t lane_executed(size_t lane) const;
  const storage::GroupCommitter& committer() const { return *committer_; }
  storage::GroupCommitter& committer() { return *committer_; }
  /// The lane's runtime — only safe to inspect while the node is idle.
  const Runtime& lane_runtime(size_t lane) const { return *lanes_[lane]->runtime; }

 private:
  struct Lane {
    // Never stepped: it only supplies the runtime's virtual clock; every
    // coroutine this lane drives completes synchronously (see header).
    std::unique_ptr<sim::Simulator> sim;
    std::unique_ptr<Runtime> runtime;
    std::mutex mu;
    std::condition_variable work_cv;
    std::condition_variable idle_cv;
    /// DRR multi-queue guarded by mu; pure FIFO when only tenant 0 is
    /// active, so single-tenant ordering is byte-identical to the old
    /// std::deque.
    tenant::FairQueue queue;
    bool busy = false;
    bool stop = false;
    uint64_t executed = 0;
    std::thread worker;  // last: started after the fields it reads
  };

  void WorkerLoop(Lane* lane);
  void Enqueue(size_t lane_index, std::function<void()> job,
               tenant::TenantId tenant = 0);
  /// Pops per DRR under the caller's lock and records the job's queue
  /// wait against its tenant.
  bool PopJob(Lane* lane, std::function<void()>* job);
  /// Runs a nested invocation pinned to another lane. Blocks the calling
  /// worker thread, helping with its own lane's queued jobs while it
  /// waits (see the header's deadlock note). Runs on lane worker threads
  /// only.
  Result<std::string> CrossLaneNestedInvoke(size_t caller_lane,
                                            size_t target_lane, ObjectId oid,
                                            std::string method,
                                            std::string argument,
                                            obs::TraceContext trace);
  /// Starts an async operation via `start` and blocks the calling worker
  /// until its completion callback fires, helping with the caller's own
  /// lane queue while waiting (the shared engine behind cross-lane and
  /// cross-node nested invocations).
  Result<std::string> HelpingWait(size_t caller_lane,
                                  std::function<void(Callback)> start);

  storage::DB* db_;
  const TypeRegistry* types_;
  ParallelNodeOptions options_;
  /// Last commit sequence locally durable / applied (see apply_epoch()).
  std::atomic<uint64_t> apply_epoch_{0};
  /// Constructed in the ctor body: its on_commit hook (which advances
  /// apply_epoch_ and chains any user hook) captures `this`.
  std::unique_ptr<storage::GroupCommitter> committer_;
  PeerLocalFn peer_is_local_;
  PeerInvokeFn peer_invoke_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace lo::runtime
