#include "runtime/object.h"

#include "common/coding.h"

namespace lo::runtime {

Status TypeRegistry::Register(ObjectType type) {
  if (type.name.empty()) return Status::InvalidArgument("type name empty");
  for (const auto& [name, method] : type.methods) {
    bool has_native = static_cast<bool>(method.native);
    bool has_module = method.module != nullptr;
    if (has_native == has_module) {
      return Status::InvalidArgument("method " + name +
                                     ": exactly one of native/module required");
    }
    if (has_module && !method.module->FindExport(name).ok()) {
      return Status::InvalidArgument("method " + name +
                                     ": module does not export it");
    }
    if (method.deterministic && method.kind != MethodKind::kReadOnly) {
      return Status::InvalidArgument("method " + name +
                                     ": only read-only methods can be deterministic");
    }
  }
  auto [it, inserted] = types_.emplace(type.name, std::move(type));
  if (!inserted) return Status::InvalidArgument("duplicate type: " + it->first);
  return Status::OK();
}

const ObjectType* TypeRegistry::Find(std::string_view name) const {
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

std::vector<std::string> TypeRegistry::TypeNames() const {
  std::vector<std::string> names;
  names.reserve(types_.size());
  for (const auto& [name, type] : types_) names.push_back(name);
  return names;
}

namespace {
constexpr char kSep = '\0';
}  // namespace

std::string ObjectExistsKey(std::string_view oid) {
  std::string key("o");
  key.push_back(kSep);
  key.append(oid);
  return key;
}

std::string FieldKey(std::string_view oid, std::string_view field) {
  std::string key("f");
  key.push_back(kSep);
  key.append(oid);
  key.push_back(kSep);
  key.append(field);
  return key;
}

std::string ListLenKey(std::string_view oid, std::string_view field) {
  std::string key = FieldKey(oid, field);
  key.push_back(kSep);
  key.append("len");
  return key;
}

std::string ListEntryKey(std::string_view oid, std::string_view field,
                         uint64_t index) {
  std::string key = FieldKey(oid, field);
  key.push_back(kSep);
  key.push_back('e');
  // Big-endian so lexicographic order == numeric order.
  for (int i = 7; i >= 0; i--) key.push_back(static_cast<char>((index >> (8 * i)) & 0xff));
  return key;
}

std::string MapEntryKey(std::string_view oid, std::string_view field,
                        std::string_view map_key) {
  std::string key = FieldKey(oid, field);
  key.push_back(kSep);
  key.push_back('m');
  key.append(map_key);
  return key;
}

std::string AppliedMarkerKey(std::string_view oid, std::string_view token,
                             uint64_t commit_index) {
  std::string key = FieldKey(oid, "\x01idem");
  key.push_back(kSep);
  key.append(token);
  key.push_back(kSep);
  PutVarint64(&key, commit_index);
  return key;
}

}  // namespace lo::runtime
