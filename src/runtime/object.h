// The LambdaObjects data model (paper §3).
//
// An *object type* declares fields (a single opaque value, or a
// collection indexed by key) and methods (native C++ or LambdaVM
// bytecode). Objects are instantiated from types and addressed by an
// ObjectId. A method can only touch its own object's data, which is what
// lets LambdaStore schedule per-object and shard per-object.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sim/task.h"
#include "vm/module.h"

namespace lo::runtime {

/// Object identity, e.g. "user/alice". Must not contain NUL bytes (NUL
/// separates id from field in the key layout).
using ObjectId = std::string;

enum class FieldKind : uint8_t {
  kValue,  // single opaque value
  kList,   // append-only collection, indexed 0..len-1
  kMap,    // collection indexed by string key
};

struct FieldSchema {
  std::string name;
  FieldKind kind = FieldKind::kValue;
};

enum class MethodKind : uint8_t {
  kReadWrite,  // exclusive per object; commits a write batch
  kReadOnly,   // runs on a snapshot; may run concurrently / on replicas
};

class InvocationContext;

/// Native method body. The context provides the same ABI the VM sees.
using NativeMethod = std::function<sim::Task<Result<std::string>>(
    InvocationContext& ctx, std::string argument)>;

struct MethodImpl {
  MethodKind kind = MethodKind::kReadWrite;
  /// Only deterministic read-only methods are result-cacheable (§4.2.2).
  bool deterministic = false;
  /// Exactly one of `native` / `module` is set. VM methods call the
  /// module's export named after the method.
  NativeMethod native;
  std::shared_ptr<const vm::Module> module;
};

struct ObjectType {
  std::string name;
  std::vector<FieldSchema> fields;
  std::map<std::string, MethodImpl, std::less<>> methods;

  const MethodImpl* FindMethod(std::string_view method) const {
    auto it = methods.find(method);
    return it == methods.end() ? nullptr : &it->second;
  }
};

/// Process-wide catalog of uploaded object types.
class TypeRegistry {
 public:
  Status Register(ObjectType type);
  const ObjectType* Find(std::string_view name) const;
  std::vector<std::string> TypeNames() const;

 private:
  std::map<std::string, ObjectType, std::less<>> types_;
};

// ----------------------------------------------------------------------
// Key layout over the node-local KV store. NUL separates components so
// ids containing '/' (e.g. "user/alice") cannot collide across objects.
//
//   o\0<oid>                      -> type name            (existence)
//   f\0<oid>\0<field>             -> value field / VM raw key
//   f\0<oid>\0<field>\0len        -> list length (fixed64)
//   f\0<oid>\0<field>\0e<be64 i>  -> list entry i
//   f\0<oid>\0<field>\0m<key>     -> map entry
//   f\0<oid>\0\x01idem\0<tok>\0<i> -> applied-invocation marker (reserved
//                                    field "\x01idem"; see AppliedMarkerKey)
// ----------------------------------------------------------------------

std::string ObjectExistsKey(std::string_view oid);
std::string FieldKey(std::string_view oid, std::string_view field);
std::string ListLenKey(std::string_view oid, std::string_view field);
std::string ListEntryKey(std::string_view oid, std::string_view field, uint64_t index);
std::string MapEntryKey(std::string_view oid, std::string_view field,
                        std::string_view key);
/// Idempotency marker for commit number `commit_index` of the invocation
/// identified by `token`. Lives in the object's field namespace (reserved
/// field name "\x01idem") so it routes to the owning shard, replicates
/// inside the commit batch it guards, and migrates with the object.
std::string AppliedMarkerKey(std::string_view oid, std::string_view token,
                             uint64_t commit_index);

}  // namespace lo::runtime
