#include "runtime/result_cache.h"

#include "common/sha256.h"

namespace lo::runtime {

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::string ResultCache::MakeKey(std::string_view oid, std::string_view method,
                                 std::string_view argument) {
  std::string key;
  key.append(oid);
  key.push_back('\0');
  key.append(method);
  key.push_back('\0');
  // Hash the argument: cache keys stay small regardless of input size.
  key += Sha256Hex(argument);
  return key;
}

std::optional<std::string> ResultCache::Lookup(const std::string& cache_key) {
  auto it = entries_.find(cache_key);
  if (it == entries_.end()) {
    stats_.misses++;
    return std::nullopt;
  }
  stats_.hits++;
  // Refresh LRU position.
  lru_.erase(it->second.lru_pos);
  lru_.push_back(cache_key);
  it->second.lru_pos = std::prev(lru_.end());
  return it->second.output;
}

void ResultCache::Insert(const std::string& cache_key, std::string output,
                         std::vector<ReadSetEntry> reads) {
  Erase(cache_key);  // replace any stale entry
  Entry entry;
  entry.output = std::move(output);
  entry.read_keys.reserve(reads.size());
  for (auto& read : reads) {
    by_read_key_.emplace(read.key, cache_key);
    entry.read_keys.push_back(std::move(read.key));
  }
  lru_.push_back(cache_key);
  entry.lru_pos = std::prev(lru_.end());
  entries_.emplace(cache_key, std::move(entry));
  stats_.insertions++;
  while (entries_.size() > capacity_) {
    stats_.evictions++;
    Erase(lru_.front());
  }
}

void ResultCache::InvalidateWrites(std::span<const std::string> written_keys,
                                   bool remote) {
  for (const auto& key : written_keys) {
    auto [begin, end] = by_read_key_.equal_range(key);
    // Collect first: Erase mutates by_read_key_.
    std::vector<std::string> victims;
    for (auto it = begin; it != end; ++it) victims.push_back(it->second);
    for (const auto& victim : victims) {
      if (entries_.contains(victim)) {
        stats_.invalidations++;
        if (remote) stats_.remote_invalidations++;
        Erase(victim);
      }
    }
  }
}

void ResultCache::Erase(const std::string& cache_key) {
  auto it = entries_.find(cache_key);
  if (it == entries_.end()) return;
  for (const auto& read_key : it->second.read_keys) {
    auto [begin, end] = by_read_key_.equal_range(read_key);
    for (auto dep = begin; dep != end; ++dep) {
      if (dep->second == cache_key) {
        by_read_key_.erase(dep);
        break;
      }
    }
  }
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void ResultCache::Clear() {
  entries_.clear();
  by_read_key_.clear();
  lru_.clear();
}

}  // namespace lo::runtime
