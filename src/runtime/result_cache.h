// Consistent result cache for deterministic read-only methods (§4.2.2).
//
// Because storage and execution are co-located, the storage node sees
// every committed write, so it can invalidate cached function results
// precisely: each entry records the invocation's read set (keys + value
// hashes); committing a batch drops every entry whose read set overlaps
// the batch's write keys. Entries therefore never serve stale data.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "runtime/context.h"

namespace lo::runtime {

class ResultCache {
 public:
  explicit ResultCache(size_t capacity = 4096);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidations = 0;  // entries dropped by writes
    uint64_t evictions = 0;      // entries dropped by capacity
    /// Subset of `invalidations` triggered by *replicated* batches —
    /// writes that executed on another node and arrived over the
    /// replication stream (a backup keeping its cache consistent).
    uint64_t remote_invalidations = 0;
  };

  /// Cache key for (object, method, argument).
  static std::string MakeKey(std::string_view oid, std::string_view method,
                             std::string_view argument);

  /// Returns the cached output, or nullopt on miss.
  std::optional<std::string> Lookup(const std::string& cache_key);

  void Insert(const std::string& cache_key, std::string output,
              std::vector<ReadSetEntry> reads);

  /// Drops every entry that read one of these storage keys. `remote`
  /// marks the write as having arrived via replication rather than a
  /// local commit (counted separately in stats).
  void InvalidateWrites(std::span<const std::string> written_keys,
                        bool remote = false);

  void Clear();
  size_t size() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string output;
    std::vector<std::string> read_keys;
    std::list<std::string>::iterator lru_pos;
  };
  void Erase(const std::string& cache_key);

  size_t capacity_;
  std::map<std::string, Entry> entries_;
  // read key -> cache keys depending on it.
  std::multimap<std::string, std::string> by_read_key_;
  std::list<std::string> lru_;  // front = least recently used
  Stats stats_;
};

}  // namespace lo::runtime
