#include "runtime/runtime.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/log.h"

namespace lo::runtime {

Runtime::Runtime(sim::Simulator* sim, storage::DB* db, const TypeRegistry* types,
                 RuntimeOptions options)
    : sim_(sim),
      db_(db),
      types_(types),
      options_(options),
      cache_(options.result_cache_capacity) {
  size_t lanes = std::max<size_t>(1, options_.lanes);
  lanes_.reserve(lanes);
  for (size_t i = 0; i < lanes; ++i) lanes_.push_back(std::make_unique<AsyncMutex>());
  lane_acquisitions_.assign(lanes, 0);
  // Default commit sink: local durable write.
  commit_sink_ = [this](const ObjectId&, storage::WriteBatch batch,
                        obs::TraceContext trace) -> sim::Task<Status> {
    co_return db_->Write({.sync = true, .trace = trace}, &batch);
  };
  // Default remote invoker: every object is local.
  remote_invoker_ = [this](ObjectId oid, std::string method,
                           std::string argument,
                           obs::TraceContext trace) -> sim::Task<Result<std::string>> {
    return Invoke(std::move(oid), std::move(method), std::move(argument), trace);
  };
}

uint64_t Runtime::VirtualTimeMillis() const {
  return static_cast<uint64_t>(sim_->Now() / 1'000'000);
}

Result<std::string> Runtime::StorageRead(const std::string& key,
                                         const storage::Snapshot* snapshot) {
  storage::ReadOptions opts;
  opts.snapshot = snapshot;
  return db_->Get(opts, key);
}

Result<std::string> Runtime::TypeOf(const ObjectId& oid) {
  return db_->Get({}, ObjectExistsKey(oid));
}

size_t Runtime::LaneIndexFor(const ObjectId& oid) const {
  return static_cast<size_t>(Fnv1a64(oid) % lanes_.size());
}

AsyncMutex& Runtime::LockFor(const ObjectId& oid) {
  return *lanes_[LaneIndexFor(oid)];
}

size_t Runtime::BusyLanes() const {
  size_t busy = 0;
  for (const auto& lane : lanes_) busy += lane->locked() ? 1 : 0;
  return busy;
}

sim::Task<void> Runtime::AcquireLane(size_t lane, tenant::TenantId tenant) {
  AsyncMutex& lock = *lanes_[lane];
  if (lock.locked()) metrics_.lock_waits++;
  uint32_t weight =
      options_.tenants != nullptr ? options_.tenants->WeightFor(tenant) : 1;
  co_await lock.Lock(tenant, weight);
  lane_acquisitions_[lane]++;
  size_t busy = BusyLanes();
  if (busy > metrics_.max_busy_lanes) metrics_.max_busy_lanes = busy;
}

sim::Task<Result<std::string>> Runtime::CreateObject(ObjectId oid,
                                                     std::string type_name,
                                                     std::string token) {
  if (oid.empty() || oid.find('\0') != std::string::npos) {
    co_return Status::InvalidArgument("invalid object id");
  }
  if (types_->Find(type_name) == nullptr) {
    co_return Status::NotFound("unknown object type: " + type_name);
  }
  size_t lane = LaneIndexFor(oid);
  AsyncMutex& lock = *lanes_[lane];
  co_await AcquireLane(lane);
  Result<std::string> existing = TypeOf(oid);
  if (existing.ok()) {
    // "Already exists" from our own earlier attempt (create committed,
    // ack lost, client retried) is success, not a conflict.
    bool own_retry = !token.empty() &&
                     db_->Get({}, AppliedMarkerKey(oid, token, 0)).ok();
    lock.Unlock();
    if (own_retry) {
      metrics_.dedup_commit_skips++;
      co_return oid;
    }
    co_return Status::FailedPrecondition("object already exists: " + oid);
  }
  storage::WriteBatch batch;
  batch.Put(ObjectExistsKey(oid), type_name);
  if (!token.empty()) batch.Put(AppliedMarkerKey(oid, token, 0), "");
  Status s = co_await commit_sink_(oid, std::move(batch), {});
  metrics_.commits++;
  lock.Unlock();
  if (!s.ok()) co_return s;
  co_return oid;
}

sim::Task<Result<std::string>> Runtime::Invoke(ObjectId oid, std::string method,
                                               std::string argument,
                                               obs::TraceContext trace,
                                               std::string token,
                                               tenant::TenantId tenant) {
  metrics_.invocations++;
  Result<std::string> type_name = TypeOf(oid);
  if (!type_name.ok()) {
    co_return Status::NotFound("no such object: " + oid);
  }
  const ObjectType* type = types_->Find(*type_name);
  if (type == nullptr) {
    co_return Status::Corruption("object has unregistered type: " + *type_name);
  }
  const MethodImpl* impl = type->FindMethod(method);
  if (impl == nullptr) {
    co_return Status::NotFound("no method " + method + " on type " + *type_name);
  }

  if (impl->kind == MethodKind::kReadOnly) {
    metrics_.read_only_invocations++;
    // Consistent cache: co-location means every commit passed through
    // this node, so a surviving entry is exact.
    std::string cache_key;
    if (impl->deterministic && options_.enable_result_cache) {
      cache_key = ResultCache::MakeKey(oid, method, argument);
      if (auto cached = cache_.Lookup(cache_key)) {
        co_return std::move(*cached);
      }
    }
    const storage::Snapshot* snapshot = db_->GetSnapshot();
    InvocationContext ctx(this, oid, MethodKind::kReadOnly, snapshot);
    ctx.set_trace(trace);
    uint64_t fuel = 0;
    auto result =
        co_await RunMethod(*impl, method, ctx, std::move(argument), &fuel, tenant);
    db_->ReleaseSnapshot(snapshot);
    if (cpu_charger_) {
      sim::Time exec_started = sim_->Now();
      co_await cpu_charger_(fuel);
      if (obs::Tracing(options_.tracer, trace)) {
        options_.tracer->RecordChild(trace, "vm_exec", options_.node_label,
                                     exec_started, sim_->Now());
      }
    }
    if (result.ok() && !cache_key.empty()) {
      cache_.Insert(cache_key, *result,
                    std::vector<ReadSetEntry>(ctx.read_set().begin(),
                                              ctx.read_set().end()));
    }
    co_return result;
  }

  // Read-write: exclusive per lane. Same-object invocations share a lane
  // (FIFO — per-object linearizability); distinct objects usually land on
  // different lanes and run concurrently.
  size_t lane = LaneIndexFor(oid);
  AsyncMutex& lock = *lanes_[lane];
  co_await AcquireLane(lane, tenant);
  InvocationContext ctx(this, oid, MethodKind::kReadWrite, /*snapshot=*/nullptr);
  ctx.set_object_lock(&lock);
  ctx.set_trace(trace);
  ctx.set_idempotency_token(std::move(token));
  uint64_t fuel = 0;
  auto result =
      co_await RunMethod(*impl, method, ctx, std::move(argument), &fuel, tenant);
  if (result.ok()) {
    sim::Time commit_started = sim_->Now();
    bool had_writes = ctx.has_writes();
    Status commit = co_await CommitContext(ctx);
    if (had_writes && obs::Tracing(options_.tracer, trace)) {
      options_.tracer->RecordChild(trace, "commit", options_.node_label,
                                   commit_started, sim_->Now());
    }
    if (!commit.ok()) {
      metrics_.aborts++;
      result = commit;
    }
  } else {
    // Trap or error: buffered writes are discarded — atomicity.
    metrics_.aborts++;
  }
  lock.Unlock();
  if (cpu_charger_) {
    sim::Time exec_started = sim_->Now();
    co_await cpu_charger_(fuel);
    if (obs::Tracing(options_.tracer, trace)) {
      options_.tracer->RecordChild(trace, "vm_exec", options_.node_label,
                                   exec_started, sim_->Now());
    }
  }
  co_return result;
}

sim::Task<Result<std::string>> Runtime::RunMethod(const MethodImpl& impl,
                                                  std::string_view method_name,
                                                  InvocationContext& ctx,
                                                  std::string argument,
                                                  uint64_t* fuel,
                                                  tenant::TenantId tenant) {
  tenant::TenantRegistry* tenants =
      tenant != 0 ? options_.tenants : nullptr;
  if (impl.native) {
    *fuel = options_.native_fuel_estimate;
    metrics_.fuel_executed += *fuel;
    if (tenants != nullptr) {
      // Native methods are not metered instruction-by-instruction; charge
      // the flat estimate up front and refuse to run on a dry window.
      Status charged = tenants->ChargeFuel(tenant, *fuel);
      if (!charged.ok()) co_return charged;
    }
    co_return co_await impl.native(ctx, std::move(argument));
  }
  vm::VmLimits limits = options_.vm_limits;
  if (tenants != nullptr) {
    // Debit the tenant's window as the VM burns fuel: a mid-invocation
    // exhaustion traps the invocation (buffered writes are discarded by
    // the abort path in Invoke) with the throttle status.
    limits.fuel_tap = [tenants, tenant](uint64_t spent) {
      return tenants->ChargeFuel(tenant, spent);
    };
  }
  vm::Instance instance(impl.module.get(), limits);
  auto result =
      co_await instance.Invoke(method_name, std::move(argument), &ctx);
  *fuel = instance.metrics().fuel_used;
  metrics_.fuel_executed += *fuel;
  co_return result;
}

sim::Task<Status> Runtime::CommitContext(InvocationContext& ctx) {
  if (!ctx.has_writes()) co_return Status::OK();
  std::vector<std::string> written = ctx.written_keys();
  storage::WriteBatch batch = ctx.TakeWriteBatch();
  if (!ctx.idempotency_token().empty()) {
    std::string marker =
        AppliedMarkerKey(ctx.oid(), ctx.idempotency_token(), ctx.NextCommitIndex());
    if (db_->Get({}, marker).ok()) {
      // This commit already applied durably — the client's earlier attempt
      // got this far but its ack was lost (crash, partition, failover; the
      // marker replicates inside the batch, so a promoted backup sees it
      // too). The retry's re-execution may have buffered slightly
      // different bytes (it read post-commit state), but the committed
      // effect it represents is already in, so applying again would
      // double-apply. Report success and drop the buffer.
      metrics_.dedup_commit_skips++;
      co_return Status::OK();
    }
    // Marker rides in the same atomic batch as the writes it guards.
    batch.Put(marker, "");
  }
  Status s = co_await commit_sink_(ctx.oid(), std::move(batch), ctx.trace());
  if (s.ok()) {
    metrics_.commits++;
    cache_.InvalidateWrites(written);
  }
  co_return s;
}

sim::Task<Result<std::string>> Runtime::NestedInvoke(InvocationContext& caller,
                                                     ObjectId oid,
                                                     std::string method,
                                                     std::string argument) {
  metrics_.nested_invocations++;
  // Paper §3.1: the caller's guarantees do not span the nested call —
  // its writes commit first and its object lock is *released* for the
  // duration of the call, so cyclic invocation patterns (A posts to B
  // while B posts to A) cannot deadlock; the caller then continues as a
  // logically separate invocation. Self-invocation works for the same
  // reason.
  AsyncMutex* lock = caller.object_lock();
  if (caller.kind() == MethodKind::kReadWrite) {
    if (caller.has_writes()) {
      Status s = co_await CommitContext(caller);
      if (!s.ok()) co_return s;
    }
    if (lock != nullptr) lock->Unlock();
  }
  auto result = co_await remote_invoker_(std::move(oid), std::move(method),
                                         std::move(argument), caller.trace());
  if (caller.kind() == MethodKind::kReadWrite && lock != nullptr) {
    co_await lock->Lock();
  }
  co_return result;
}

sim::Task<Status> Runtime::CommitBatchForTransaction(
    const ObjectId& routing_oid, storage::WriteBatch batch,
    const std::vector<std::string>& written_keys) {
  Status s = co_await commit_sink_(routing_oid, std::move(batch), {});
  if (s.ok()) {
    metrics_.commits++;
    cache_.InvalidateWrites(written_keys);
  }
  co_return s;
}

void Runtime::OnExternalCommit(const storage::WriteBatch& batch) {
  struct Collector : storage::WriteBatch::Handler {
    std::vector<std::string> keys;
    void Put(std::string_view key, std::string_view) override {
      keys.emplace_back(key);
    }
    void Delete(std::string_view key) override { keys.emplace_back(key); }
  } collector;
  batch.Iterate(&collector).ok();
  cache_.InvalidateWrites(collector.keys, /*remote=*/true);
}

void Runtime::ClearResultCache() { cache_.Clear(); }

}  // namespace lo::runtime
