// The LambdaObjects runtime living inside one storage node: method
// dispatch, invocation linearizability, commit routing, result caching.
//
// Pluggable seams let the cluster layer reuse this runtime unchanged:
//  - CommitSink     where atomic write batches go (local DB by default;
//                   the primary replica replaces it with "replicate to
//                   backups, then apply locally")
//  - RemoteInvoker  how `invoke` on another object is carried out
//                   (local recursion by default; the cluster routes it
//                   to the owning node)
//  - CpuCharger     charges simulated CPU time for executed fuel
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "runtime/async_mutex.h"
#include "runtime/context.h"
#include "runtime/object.h"
#include "runtime/result_cache.h"
#include "sim/simulator.h"
#include "storage/db.h"
#include "tenant/tenant.h"

namespace lo::runtime {

struct RuntimeOptions {
  vm::VmLimits vm_limits;
  /// Execution lanes: invocations are scheduled on lane
  /// `hash(object_id) % lanes`. Distinct objects run concurrently (up to
  /// `lanes` at once, modeling a bounded worker pool), while same-object
  /// invocations always collide on one lane and stay FIFO — per-object
  /// linearizability is the lane-affinity invariant. 1 restores the
  /// fully serial runtime.
  size_t lanes = 8;
  bool enable_result_cache = true;
  size_t result_cache_capacity = 4096;
  /// Fuel equivalent charged for native methods (they are not metered).
  uint64_t native_fuel_estimate = 2000;
  /// Span recorder for vm_exec / commit phases; nullptr disables tracing.
  obs::Tracer* tracer = nullptr;
  /// Node label stamped on recorded spans (the hosting node's id).
  uint32_t node_label = 0;
  /// Optional multi-tenant QoS registry (not owned). When set, an
  /// invocation carrying a nonzero tenant id debits that tenant's fuel
  /// window as the VM runs (VmLimits::fuel_tap) — an exhausted window
  /// traps the invocation with kTenantThrottled — and lane-lock waits
  /// are granted deficit-round-robin by tenant weight.
  tenant::TenantRegistry* tenants = nullptr;
};

class Runtime {
 public:
  using CommitSink = std::function<sim::Task<Status>(
      const ObjectId& oid, storage::WriteBatch batch, obs::TraceContext trace)>;
  using RemoteInvoker = std::function<sim::Task<Result<std::string>>(
      ObjectId oid, std::string method, std::string argument,
      obs::TraceContext trace)>;
  using CpuCharger = std::function<sim::Task<void>(uint64_t fuel)>;

  Runtime(sim::Simulator* sim, storage::DB* db, const TypeRegistry* types,
          RuntimeOptions options = {});

  /// Instantiates an object of `type_name`. Fails if it already exists —
  /// except when a non-empty `token` matches the marker of an earlier
  /// create of the same object, i.e. this is a retry whose ack was lost;
  /// that returns success so retried creates are idempotent.
  sim::Task<Result<std::string>> CreateObject(ObjectId oid, std::string type_name,
                                              std::string token = {});

  /// Invokes `method` on `oid` with invocation linearizability. A sampled
  /// `trace` context parents the vm_exec/commit spans this records. A
  /// non-empty `token` (stable across client retries) makes the commits
  /// idempotent: a commit whose marker is already present is skipped, so
  /// a retry after a lost ack or a failover never double-applies.
  /// A nonzero `tenant` attributes the invocation for QoS: DRR lane-lock
  /// scheduling and per-tenant fuel-window accounting (see
  /// RuntimeOptions::tenants).
  sim::Task<Result<std::string>> Invoke(ObjectId oid, std::string method,
                                        std::string argument,
                                        obs::TraceContext trace = {},
                                        std::string token = {},
                                        tenant::TenantId tenant = 0);

  /// Type name of an existing object (NotFound otherwise).
  Result<std::string> TypeOf(const ObjectId& oid);

  void SetCommitSink(CommitSink sink) { commit_sink_ = std::move(sink); }
  void SetRemoteInvoker(RemoteInvoker invoker) { remote_invoker_ = std::move(invoker); }
  void SetCpuCharger(CpuCharger charger) { cpu_charger_ = std::move(charger); }

  /// Cache invalidation hook for writes that bypass this runtime (e.g.
  /// replicated batches applied on a backup). Counted as remote
  /// invalidations in cache stats.
  void OnExternalCommit(const storage::WriteBatch& batch);

  /// Drops every cached result. Called on promotion (backup -> primary):
  /// entries cached while backup reflect the old primary's history and
  /// must not survive into the new epoch.
  void ClearResultCache();
  size_t result_cache_size() const { return cache_.size(); }

  struct Metrics {
    uint64_t invocations = 0;
    uint64_t read_only_invocations = 0;
    uint64_t nested_invocations = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t lock_waits = 0;  // invocations that queued behind their lane
    uint64_t max_busy_lanes = 0;  // high-water mark of concurrently held lanes
    uint64_t fuel_executed = 0;
    /// Commits skipped because their idempotency marker was already
    /// durable (a retried invocation that had in fact applied).
    uint64_t dedup_commit_skips = 0;
  };
  const Metrics& metrics() const { return metrics_; }
  const ResultCache::Stats& cache_stats() const { return cache_.stats(); }

  // --- internal API used by InvocationContext --------------------------
  /// Commits the context's buffered writes through the sink and
  /// invalidates overlapping cache entries. No-op on an empty buffer.
  sim::Task<Status> CommitContext(InvocationContext& ctx);
  /// Snapshot-or-latest read from the local store.
  Result<std::string> StorageRead(const std::string& key,
                                  const storage::Snapshot* snapshot);
  sim::Task<Result<std::string>> NestedInvoke(InvocationContext& caller,
                                              ObjectId oid, std::string method,
                                              std::string argument);
  uint64_t VirtualTimeMillis() const;
  sim::Simulator* sim() { return sim_; }
  storage::DB* db() { return db_; }

  // --- lane introspection (obs export, tests, Transaction) -------------
  size_t lanes() const { return lanes_.size(); }
  /// The lane an object's invocations are pinned to.
  size_t LaneIndexFor(const ObjectId& oid) const;
  /// The lane's scheduling lock. Transactions lock several lanes: they
  /// must dedupe indices (two objects can share a lane) and lock in
  /// ascending index order to stay deadlock-free.
  AsyncMutex& LaneLock(size_t lane) { return *lanes_[lane]; }
  /// Lanes whose lock is currently held (instantaneous occupancy).
  size_t BusyLanes() const;
  /// Invocations scheduled on `lane` so far.
  uint64_t lane_acquisitions(size_t lane) const { return lane_acquisitions_[lane]; }

  // --- internal API used by Transaction (runtime/transaction.h) --------
  /// The scheduling lock for an object's lane (kept for tests).
  AsyncMutex& LockForTesting(const ObjectId& oid) { return LockFor(oid); }
  /// Commits a cross-object batch through the sink + cache invalidation.
  sim::Task<Status> CommitBatchForTransaction(
      const ObjectId& routing_oid, storage::WriteBatch batch,
      const std::vector<std::string>& written_keys);

 private:
  sim::Task<Result<std::string>> RunMethod(const MethodImpl& method,
                                           std::string_view method_name,
                                           InvocationContext& ctx,
                                           std::string argument, uint64_t* fuel,
                                           tenant::TenantId tenant = 0);
  AsyncMutex& LockFor(const ObjectId& oid);
  /// Awaits the lane lock and updates wait/occupancy metrics. The tenant
  /// id selects the DRR grant group (see async_mutex.h).
  sim::Task<void> AcquireLane(size_t lane, tenant::TenantId tenant = 0);

  sim::Simulator* sim_;
  storage::DB* db_;
  const TypeRegistry* types_;
  RuntimeOptions options_;
  CommitSink commit_sink_;
  RemoteInvoker remote_invoker_;
  CpuCharger cpu_charger_;
  std::vector<std::unique_ptr<AsyncMutex>> lanes_;
  std::vector<uint64_t> lane_acquisitions_;
  ResultCache cache_;
  Metrics metrics_;
};

}  // namespace lo::runtime
