#include "runtime/transaction.h"

#include <set>

#include "common/hash.h"
#include "common/log.h"

namespace lo::runtime {
namespace {

uint64_t HashObserved(const Result<std::string>& value) {
  if (!value.ok()) return 0x9e3779b97f4a7c15ull;  // "absent"
  return Fnv1a64(*value) ^ 1;
}

}  // namespace

Transaction::Transaction(Runtime* runtime) : runtime_(runtime) {}

Transaction::~Transaction() {
  LO_CHECK_MSG(finished_ || writes_.empty(),
               "transaction with writes destroyed without Commit/Abort");
}

sim::Task<Result<std::string>> Transaction::ReadKey(const std::string& key) {
  auto buffered = writes_.find(key);
  if (buffered != writes_.end()) {
    if (!buffered->second.has_value()) co_return Status::NotFound("");
    co_return *buffered->second;
  }
  Result<std::string> value = runtime_->StorageRead(key, nullptr);
  if (!value.ok() && !value.status().IsNotFound()) co_return value.status();
  // First read of a key pins its observed version for validation.
  read_hashes_.emplace(key, HashObserved(value));
  co_return value;
}

sim::Task<Result<std::string>> Transaction::Get(const ObjectId& oid,
                                                std::string_view field) {
  co_return co_await ReadKey(FieldKey(oid, field));
}

void Transaction::Set(const ObjectId& oid, std::string_view field,
                      std::string_view value) {
  LO_CHECK_MSG(!finished_, "write on finished transaction");
  writes_[FieldKey(oid, field)] = std::string(value);
  write_objects_[oid] = true;
}

void Transaction::Unset(const ObjectId& oid, std::string_view field) {
  LO_CHECK_MSG(!finished_, "write on finished transaction");
  writes_[FieldKey(oid, field)] = std::nullopt;
  write_objects_[oid] = true;
}

void Transaction::Abort() {
  writes_.clear();
  read_hashes_.clear();
  write_objects_.clear();
  finished_ = true;
}

sim::Task<Status> Transaction::Commit() {
  LO_CHECK_MSG(!finished_, "double Commit/Abort");
  finished_ = true;
  if (writes_.empty() && read_hashes_.empty()) {
    committed_ = true;
    co_return Status::OK();
  }

  // Lock phase: objects map to execution lanes, and two write objects can
  // share a lane — locking per object would self-deadlock on the second
  // acquire. Dedupe to lane indices and lock in ascending index order
  // (canonical across transactions), so neither self- nor cross-deadlock
  // is possible.
  std::set<size_t> lanes;
  for (const auto& [oid, unused] : write_objects_) {
    lanes.insert(runtime_->LaneIndexFor(oid));
  }
  std::vector<AsyncMutex*> held;
  for (size_t lane : lanes) {
    AsyncMutex& lock = runtime_->LaneLock(lane);
    co_await lock.Lock();
    held.push_back(&lock);
  }
  auto unlock_all = [&held] {
    for (auto it = held.rbegin(); it != held.rend(); ++it) (*it)->Unlock();
  };

  // Validation phase: every read must still see the version it observed.
  for (const auto& [key, hash] : read_hashes_) {
    Result<std::string> current = runtime_->StorageRead(key, nullptr);
    if (!current.ok() && !current.status().IsNotFound()) {
      unlock_all();
      co_return current.status();
    }
    if (HashObserved(current) != hash) {
      unlock_all();
      co_return Status::Aborted("transaction read set is stale");
    }
  }

  // Write phase: one atomic batch (all objects are node-local; see the
  // header's scope note). Routed through the commit sink with the first
  // written object's id, which also replicates it.
  storage::WriteBatch batch;
  for (const auto& [key, value] : writes_) {
    if (value.has_value()) {
      batch.Put(key, *value);
    } else {
      batch.Delete(key);
    }
  }
  std::vector<std::string> written_keys;
  written_keys.reserve(writes_.size());
  for (const auto& [key, value] : writes_) written_keys.push_back(key);

  Status s = co_await runtime_->CommitBatchForTransaction(
      write_objects_.begin()->first, std::move(batch), written_keys);
  unlock_all();
  if (s.ok()) committed_ = true;
  co_return s;
}

}  // namespace lo::runtime
