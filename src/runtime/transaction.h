// Multi-object transactions — the paper's future work (§7: "one will
// need to add consistency guarantees for transactions spanning multiple
// function calls"; §3.1 envisions "serializable transactions"), built as
// the paper suggests: "embedding execution into the database itself
// allows using proven transaction processing protocols".
//
// Protocol: optimistic concurrency control with lock-ordered commit.
//  1. Execution phase — the transaction invokes read-only methods and
//     buffers cross-object writes; every storage read records a
//     (key, value-hash) pair.
//  2. Commit phase — the objects' locks are taken in canonical (sorted)
//     order, the read set is validated against current storage, and on
//     success all buffered writes commit as one atomic WriteBatch
//     through the node's commit sink. Validation failure aborts with
//     Status::Aborted; the caller retries.
//
// Scope (documented limitation): a transaction's objects must live on
// one node — the atomic batch is node-local. Cross-shard transactions
// would need two-phase commit on top; the hooks (per-object buffers,
// read validation) are already shaped for it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runtime/runtime.h"

namespace lo::runtime {

class Transaction {
 public:
  explicit Transaction(Runtime* runtime);
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Transactional field reads (any object, recorded in the read set).
  sim::Task<Result<std::string>> Get(const ObjectId& oid, std::string_view field);
  /// Buffered writes; visible to this transaction's own reads only.
  void Set(const ObjectId& oid, std::string_view field, std::string_view value);
  void Unset(const ObjectId& oid, std::string_view field);

  /// Validates and atomically commits everything.
  /// Status::Aborted = read set went stale (retry); other codes = error.
  sim::Task<Status> Commit();
  /// Discards all buffered state (automatic on destruction).
  void Abort();

  bool committed() const { return committed_; }
  size_t num_writes() const { return writes_.size(); }

 private:
  sim::Task<Result<std::string>> ReadKey(const std::string& key);

  Runtime* runtime_;
  // key -> observed value hash (absence hashes distinctly).
  std::map<std::string, uint64_t> read_hashes_;
  // key -> buffered write (nullopt = delete).
  std::map<std::string, std::optional<std::string>> writes_;
  // object ids touched by writes (locked in sorted order at commit).
  std::map<ObjectId, bool> write_objects_;
  bool committed_ = false;
  bool finished_ = false;
};

}  // namespace lo::runtime
