#include "sim/cpu.h"

#include "common/log.h"

namespace lo::sim {

CpuModel::CpuModel(Simulator& sim, int cores) : sim_(sim), cores_(cores) {
  LO_CHECK(cores > 0);
}

Task<void> CpuModel::Execute(Duration work) {
  if (work < 0) work = 0;
  while (busy_ >= cores_) {
    auto slot = std::make_shared<OneShot<bool>>();
    waiters_.push_back(slot);
    co_await slot->Wait();
    // Loop: another task may have grabbed the freed core first.
  }
  busy_++;
  busy_core_ns_ += work;
  co_await sim_.Sleep(work);
  busy_--;
  if (!waiters_.empty() && busy_ < cores_) {
    auto next = waiters_.front();
    waiters_.pop_front();
    next->Fulfill(true);
  }
}

}  // namespace lo::sim
