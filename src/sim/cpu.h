// CPU contention model. Each simulated machine has a fixed number of
// worker cores (CloudLab nodes: 20 physical cores); executing a function
// occupies one core for its modeled duration, and excess work queues FIFO.
// This is what makes throughput saturate instead of scaling with client
// count forever.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"

namespace lo::sim {

class CpuModel {
 public:
  CpuModel(Simulator& sim, int cores);

  /// Occupies one core for `work` ns, queueing first if all are busy.
  Task<void> Execute(Duration work);

  int cores() const { return cores_; }
  int busy() const { return busy_; }
  size_t queued() const { return waiters_.size(); }
  /// Total core-nanoseconds of work executed (for utilization metrics).
  Duration busy_core_ns() const { return busy_core_ns_; }

 private:
  Simulator& sim_;
  int cores_;
  int busy_ = 0;
  Duration busy_core_ns_ = 0;
  std::deque<std::shared_ptr<OneShot<bool>>> waiters_;
};

}  // namespace lo::sim
