#include "sim/network.h"

#include <utility>

#include "common/log.h"

namespace lo::sim {
namespace {

std::pair<NodeId, NodeId> Ordered(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Network::Network(Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config) {}

void Network::Register(NodeId node,
                       std::function<void(NodeId, std::string)> handler) {
  handlers_[node] = std::move(handler);
}

Duration Network::SampleLatency() {
  Duration jitter = 0;
  if (config_.jitter_mean > 0) {
    jitter = static_cast<Duration>(
        sim_.rng().Exponential(static_cast<double>(config_.jitter_mean)));
  }
  return config_.one_way_latency + config_.per_message_overhead + jitter;
}

void Network::Send(NodeId from, NodeId to, std::string payload) {
  messages_sent_++;
  bytes_sent_ += payload.size();
  // Fault state is evaluated when the packet enters the wire.
  if (down_nodes_.contains(from) || down_nodes_.contains(to) ||
      partitions_.contains(Ordered(from, to)) ||
      one_way_partitions_.contains({from, to}) ||
      (config_.drop_probability > 0 &&
       sim_.rng().Bernoulli(config_.drop_probability)) ||
      (faults_.drop_probability > 0 &&
       sim_.rng().Bernoulli(faults_.drop_probability))) {
    messages_dropped_++;
    fault_drops_++;
    return;
  }
  Duration latency = SampleLatency();
  if (faults_.spike_probability > 0 &&
      sim_.rng().Bernoulli(faults_.spike_probability)) {
    delay_spikes_++;
    latency += static_cast<Duration>(
        sim_.rng().Exponential(static_cast<double>(faults_.spike_mean)));
  }
  sim_.After(latency, [this, from, to, payload = std::move(payload)]() mutable {
    // Receiver may have crashed while the packet was in flight.
    if (down_nodes_.contains(to)) {
      messages_dropped_++;
      return;
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      messages_dropped_++;
      return;
    }
    it->second(from, std::move(payload));
  });
}

void Network::SetNodeUp(NodeId node, bool up) {
  if (up) {
    down_nodes_.erase(node);
  } else {
    down_nodes_.insert(node);
  }
}

bool Network::IsNodeUp(NodeId node) const { return !down_nodes_.contains(node); }

void Network::Partition(NodeId a, NodeId b) { partitions_.insert(Ordered(a, b)); }

void Network::PartitionOneWay(NodeId from, NodeId to) {
  one_way_partitions_.insert({from, to});
}

void Network::Heal(NodeId a, NodeId b) {
  partitions_.erase(Ordered(a, b));
  one_way_partitions_.erase({a, b});
  one_way_partitions_.erase({b, a});
}

void Network::HealAll() {
  partitions_.clear();
  one_way_partitions_.clear();
}

}  // namespace lo::sim
