// Simulated datacenter network: point-to-point messages with calibrated
// latency + jitter, optional drops, pairwise partitions, and node
// up/down state for failure-injection tests.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace lo::sim {

using NodeId = uint32_t;

struct NetworkConfig {
  Duration one_way_latency = Micros(60);  // same-rack LAN
  Duration jitter_mean = Micros(20);      // exponential tail on top
  Duration per_message_overhead = Micros(5);
  double drop_probability = 0.0;
};

/// Runtime-adjustable fault plan, sampled from the seeded sim RNG at
/// send time so a given seed replays the same failure schedule.
struct NetworkFaults {
  /// Per-message loss on top of NetworkConfig::drop_probability.
  double drop_probability = 0.0;
  /// With `spike_probability`, a message's latency gains an extra
  /// exponential delay of mean `spike_mean` (models congestion /
  /// incast; messages may overtake each other, like UDP).
  double spike_probability = 0.0;
  Duration spike_mean = Millis(2);
};

class Network {
 public:
  Network(Simulator& sim, NetworkConfig config);

  /// Installs the receive handler for a node. One handler per node.
  void Register(NodeId node,
                std::function<void(NodeId from, std::string payload)> handler);

  /// Queues a payload for delivery; latency and fault state are applied
  /// at send time, so later Heal()s do not resurrect in-flight drops.
  void Send(NodeId from, NodeId to, std::string payload);

  // --- fault injection ------------------------------------------------
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;
  /// Cuts both directions between a and b.
  void Partition(NodeId a, NodeId b);
  /// Cuts only from→to (asymmetric failure: `from` can be heard but not
  /// hear back — the classic one-way partition that confuses failure
  /// detectors).
  void PartitionOneWay(NodeId from, NodeId to);
  void Heal(NodeId a, NodeId b);
  void HealAll();
  /// Installs / replaces the RNG-driven fault plan ({} clears it).
  void SetFaults(NetworkFaults faults) { faults_ = faults; }
  const NetworkFaults& faults() const { return faults_; }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  /// Drops attributable to injected faults (partitions, down nodes,
  /// random loss) — a subset of messages_dropped().
  uint64_t fault_drops() const { return fault_drops_; }
  uint64_t delay_spikes() const { return delay_spikes_; }
  Simulator& sim() { return sim_; }
  const NetworkConfig& config() const { return config_; }

 private:
  Duration SampleLatency();

  Simulator& sim_;
  NetworkConfig config_;
  std::unordered_map<NodeId, std::function<void(NodeId, std::string)>> handlers_;
  std::set<NodeId> down_nodes_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // symmetric, ordered
  std::set<std::pair<NodeId, NodeId>> one_way_partitions_;  // directed
  NetworkFaults faults_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t fault_drops_ = 0;
  uint64_t delay_spikes_ = 0;
};

}  // namespace lo::sim
