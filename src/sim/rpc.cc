#include "sim/rpc.h"

#include <utility>

#include "common/coding.h"
#include "common/log.h"

namespace lo::sim {
namespace {

constexpr uint8_t kRequest = 0;
constexpr uint8_t kResponse = 1;

std::string EncodeRequest(uint64_t rpc_id, std::string_view service,
                          std::string_view payload) {
  std::string out;
  out.push_back(static_cast<char>(kRequest));
  PutVarint64(&out, rpc_id);
  PutLengthPrefixed(&out, service);
  PutLengthPrefixed(&out, payload);
  return out;
}

std::string EncodeResponse(uint64_t rpc_id, const Result<std::string>& result) {
  std::string out;
  out.push_back(static_cast<char>(kResponse));
  PutVarint64(&out, rpc_id);
  if (result.ok()) {
    out.push_back(static_cast<char>(StatusCode::kOk));
    PutLengthPrefixed(&out, result.value());
  } else {
    out.push_back(static_cast<char>(result.status().code()));
    PutLengthPrefixed(&out, result.status().message());
  }
  return out;
}

}  // namespace

RpcEndpoint::RpcEndpoint(Network& net, NodeId node) : net_(net), node_(node) {
  net_.Register(node, [this](NodeId from, std::string payload) {
    OnMessage(from, std::move(payload));
  });
}

void RpcEndpoint::Handle(std::string service, Handler handler) {
  handlers_[std::move(service)] = std::move(handler);
}

Task<Result<std::string>> RpcEndpoint::Call(NodeId to, std::string service,
                                            std::string payload,
                                            Duration timeout) {
  calls_started_++;
  uint64_t rpc_id = next_rpc_id_++;
  auto slot = std::make_shared<OneShot<Result<std::string>>>();
  pending_[rpc_id] = slot;
  net_.Send(node_, to, EncodeRequest(rpc_id, service, payload));
  if (timeout > 0) {
    sim().After(timeout, [this, rpc_id, slot] {
      if (slot->Fulfill(Status::Timeout("rpc timeout"))) {
        timeouts_++;
        pending_.erase(rpc_id);
      }
    });
  }
  Result<std::string> result = co_await slot->Wait();
  pending_.erase(rpc_id);
  co_return result;
}

void RpcEndpoint::OnMessage(NodeId from, std::string raw) {
  Reader reader{raw};
  std::string_view kind_bytes;
  uint64_t rpc_id = 0;
  if (!reader.GetBytes(1, &kind_bytes) || !reader.GetVarint64(&rpc_id)) {
    LO_WARN << "malformed rpc frame from node " << from;
    return;
  }
  uint8_t kind = static_cast<uint8_t>(kind_bytes[0]);
  if (kind == kRequest) {
    std::string_view service, payload;
    if (!reader.GetLengthPrefixed(&service) || !reader.GetLengthPrefixed(&payload)) {
      LO_WARN << "malformed rpc request from node " << from;
      return;
    }
    DispatchRequest(from, rpc_id, std::string(service), std::string(payload));
  } else if (kind == kResponse) {
    std::string_view code_bytes, body;
    if (!reader.GetBytes(1, &code_bytes) || !reader.GetLengthPrefixed(&body)) {
      LO_WARN << "malformed rpc response from node " << from;
      return;
    }
    auto it = pending_.find(rpc_id);
    if (it == pending_.end()) return;  // late response after timeout
    auto slot = it->second;
    auto code = static_cast<StatusCode>(static_cast<uint8_t>(code_bytes[0]));
    if (code == StatusCode::kOk) {
      slot->Fulfill(std::string(body));
    } else {
      slot->Fulfill(Status(code, std::string(body)));
    }
  }
}

void RpcEndpoint::DispatchRequest(NodeId from, uint64_t rpc_id,
                                  std::string service, std::string payload) {
  auto it = handlers_.find(service);
  if (it == handlers_.end()) {
    net_.Send(node_, from,
              EncodeResponse(rpc_id, Status::NotFound("no such service: " + service)));
    return;
  }
  // Run the handler as a detached coroutine; it may itself await RPCs.
  Detach([](RpcEndpoint* self, Handler* handler, NodeId from, uint64_t rpc_id,
            std::string payload) -> Task<void> {
    Result<std::string> result = co_await (*handler)(from, std::move(payload));
    self->net_.Send(self->node_, from, EncodeResponse(rpc_id, result));
  }(this, &it->second, from, rpc_id, std::move(payload)));
}

}  // namespace lo::sim
