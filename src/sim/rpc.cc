#include "sim/rpc.h"

#include <utility>

#include "common/coding.h"
#include "common/log.h"

namespace lo::sim {
namespace {

constexpr uint8_t kRequest = 0;
constexpr uint8_t kResponse = 1;

std::string EncodeRequest(uint64_t rpc_id, const obs::TraceContext& trace,
                          std::string_view service, std::string_view payload) {
  std::string out;
  out.push_back(static_cast<char>(kRequest));
  PutVarint64(&out, rpc_id);
  // Trace propagation: the callee parents its spans under this rpc span.
  PutVarint64(&out, trace.trace_id);
  PutVarint64(&out, trace.span_id);
  PutLengthPrefixed(&out, service);
  PutLengthPrefixed(&out, payload);
  return out;
}

std::string EncodeResponse(uint64_t rpc_id, const Result<std::string>& result) {
  std::string out;
  out.push_back(static_cast<char>(kResponse));
  PutVarint64(&out, rpc_id);
  if (result.ok()) {
    out.push_back(static_cast<char>(StatusCode::kOk));
    PutLengthPrefixed(&out, result.value());
  } else {
    out.push_back(static_cast<char>(result.status().code()));
    PutLengthPrefixed(&out, result.status().message());
  }
  return out;
}

}  // namespace

RpcEndpoint::RpcEndpoint(Network& net, NodeId node) : net_(net), node_(node) {
  net_.Register(node, [this](NodeId from, std::string payload) {
    OnMessage(from, std::move(payload));
  });
}

void RpcEndpoint::Handle(std::string service, Handler handler) {
  handlers_[std::move(service)] =
      [handler = std::move(handler)](NodeId from, obs::TraceContext,
                                     std::string payload) {
        return handler(from, std::move(payload));
      };
}

void RpcEndpoint::Handle(std::string service, TracedHandler handler) {
  handlers_[std::move(service)] = std::move(handler);
}

Task<Result<std::string>> RpcEndpoint::Call(NodeId to, std::string service,
                                            std::string payload,
                                            Duration timeout,
                                            obs::TraceContext trace) {
  calls_started_++;
  uint64_t rpc_id = next_rpc_id_++;
  // The rpc itself is a span: its wire context is a child of the
  // caller's, and the callee parents its spans underneath it.
  obs::TraceContext span_ctx =
      obs::Tracing(tracer_, trace) ? tracer_->Child(trace) : obs::TraceContext{};
  Time started = sim().Now();
  auto slot = std::make_shared<OneShot<Result<std::string>>>();
  pending_[rpc_id] = slot;
  net_.Send(node_, to, EncodeRequest(rpc_id, span_ctx, service, payload));
  if (timeout > 0) {
    sim().After(timeout, [this, rpc_id, slot] {
      if (slot->Fulfill(Status::Timeout("rpc timeout"))) {
        timeouts_++;
        pending_.erase(rpc_id);
      }
    });
  }
  Result<std::string> result = co_await slot->Wait();
  pending_.erase(rpc_id);
  if (span_ctx.sampled()) {
    tracer_->Record(span_ctx, "rpc." + service, node_, started, sim().Now());
  }
  co_return result;
}

void RpcEndpoint::OnMessage(NodeId from, std::string raw) {
  Reader reader{raw};
  std::string_view kind_bytes;
  uint64_t rpc_id = 0;
  if (!reader.GetBytes(1, &kind_bytes) || !reader.GetVarint64(&rpc_id)) {
    LO_WARN << "malformed rpc frame from node " << from;
    return;
  }
  uint8_t kind = static_cast<uint8_t>(kind_bytes[0]);
  if (kind == kRequest) {
    uint64_t trace_id = 0, span_id = 0;
    std::string_view service, payload;
    if (!reader.GetVarint64(&trace_id) || !reader.GetVarint64(&span_id) ||
        !reader.GetLengthPrefixed(&service) || !reader.GetLengthPrefixed(&payload)) {
      LO_WARN << "malformed rpc request from node " << from;
      return;
    }
    obs::TraceContext trace;
    trace.trace_id = trace_id;
    trace.span_id = span_id;
    DispatchRequest(from, rpc_id, trace, std::string(service), std::string(payload));
  } else if (kind == kResponse) {
    std::string_view code_bytes, body;
    if (!reader.GetBytes(1, &code_bytes) || !reader.GetLengthPrefixed(&body)) {
      LO_WARN << "malformed rpc response from node " << from;
      return;
    }
    auto it = pending_.find(rpc_id);
    if (it == pending_.end()) return;  // late response after timeout
    auto slot = it->second;
    auto code = static_cast<StatusCode>(static_cast<uint8_t>(code_bytes[0]));
    if (code == StatusCode::kOk) {
      slot->Fulfill(std::string(body));
    } else {
      slot->Fulfill(Status(code, std::string(body)));
    }
  }
}

void RpcEndpoint::DispatchRequest(NodeId from, uint64_t rpc_id,
                                  obs::TraceContext trace, std::string service,
                                  std::string payload) {
  auto it = handlers_.find(service);
  if (it == handlers_.end()) {
    net_.Send(node_, from,
              EncodeResponse(rpc_id, Status::NotFound("no such service: " + service)));
    return;
  }
  // Run the handler as a detached coroutine; it may itself await RPCs.
  Detach([](RpcEndpoint* self, TracedHandler* handler, NodeId from,
            uint64_t rpc_id, obs::TraceContext trace, std::string service,
            std::string payload) -> Task<void> {
    // Server-side span: handler time, recorded as "srv.<service>" under
    // the caller's rpc span; the handler parents its own spans under it.
    obs::TraceContext server_ctx = obs::Tracing(self->tracer_, trace)
                                       ? self->tracer_->Child(trace)
                                       : obs::TraceContext{};
    Time started = self->sim().Now();
    Result<std::string> result = co_await (*handler)(
        from, server_ctx.sampled() ? server_ctx : trace, std::move(payload));
    if (server_ctx.sampled()) {
      self->tracer_->Record(server_ctx, "srv." + service, self->node_, started,
                            self->sim().Now());
    }
    self->net_.Send(self->node_, from, EncodeResponse(rpc_id, result));
  }(this, &it->second, from, rpc_id, trace, service, std::move(payload)));
}

}  // namespace lo::sim
