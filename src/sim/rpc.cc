#include "sim/rpc.h"

#include <utility>

#include "common/log.h"

namespace lo::sim {

RpcEndpoint::RpcEndpoint(Network& net, NodeId node) : net_(net), node_(node) {
  net_.Register(node, [this](NodeId from, std::string payload) {
    OnMessage(from, std::move(payload));
  });
}

void RpcEndpoint::Handle(std::string service, Handler handler) {
  handlers_[std::move(service)] =
      [handler = std::move(handler)](RequestMeta meta, std::string payload) {
        return handler(meta.from, std::move(payload));
      };
}

void RpcEndpoint::Handle(std::string service, TracedHandler handler) {
  handlers_[std::move(service)] =
      [handler = std::move(handler)](RequestMeta meta, std::string payload) {
        return handler(meta.from, meta.trace, std::move(payload));
      };
}

void RpcEndpoint::Handle(std::string service, MetaHandler handler) {
  handlers_[std::move(service)] = std::move(handler);
}

Task<Result<std::string>> RpcEndpoint::Call(NodeId to, std::string service,
                                            std::string payload,
                                            Duration timeout,
                                            obs::TraceContext trace,
                                            uint32_t tenant) {
  calls_started_++;
  uint64_t rpc_id = next_rpc_id_++;
  // The rpc itself is a span: its wire context is a child of the
  // caller's, and the callee parents its spans underneath it.
  obs::TraceContext span_ctx =
      obs::Tracing(tracer_, trace) ? tracer_->Child(trace) : obs::TraceContext{};
  Time started = sim().Now();
  auto slot = std::make_shared<OneShot<Result<std::string>>>();
  pending_[rpc_id] = slot;
  net::RequestFrame frame;
  frame.rpc_id = rpc_id;
  frame.trace_id = span_ctx.trace_id;
  frame.span_id = span_ctx.span_id;
  // Absolute sim-time deadline: the server sheds this request if it is
  // still undelivered/undispatched when the caller has already given up.
  frame.deadline_us = timeout > 0 ? (started + timeout) / 1000 : 0;
  frame.tenant = tenant;
  frame.service = service;
  frame.payload = payload;
  net_.Send(node_, to, net::EncodeRequest(frame));
  if (timeout > 0) {
    sim().After(timeout, [this, rpc_id, slot] {
      if (slot->Fulfill(Status::Timeout("rpc timeout"))) {
        timeouts_++;
        pending_.erase(rpc_id);
      }
    });
  }
  Result<std::string> result = co_await slot->Wait();
  pending_.erase(rpc_id);
  if (span_ctx.sampled()) {
    tracer_->Record(span_ctx, "rpc." + service, node_, started, sim().Now());
  }
  co_return result;
}

void RpcEndpoint::OnMessage(NodeId from, std::string raw) {
  // The sim network delivers whole datagrams, so each message is exactly
  // one frame. A partial frame here means truncation in flight — on this
  // transport that is corruption, same as a CRC mismatch.
  size_t consumed = 0;
  std::string_view body;
  net::DecodeResult frame_result =
      net::TryDecodeFrame(raw, &consumed, &body, &frame_stats_);
  if (frame_result == net::DecodeResult::kNeedMore) {
    frame_stats_.crc_rejects.fetch_add(1, std::memory_order_relaxed);
    LO_WARN << "truncated rpc frame from node " << from;
    return;
  }
  if (frame_result != net::DecodeResult::kOk) {
    LO_WARN << "corrupt rpc frame from node " << from;
    return;
  }
  net::Message message;
  if (!net::DecodeMessage(body, &message, &frame_stats_)) {
    LO_WARN << "malformed rpc body from node " << from;
    return;
  }
  if (message.kind == net::MessageKind::kRequest) {
    const net::RequestFrame& request = message.request;
    RequestMeta meta;
    meta.from = from;
    meta.trace.trace_id = request.trace_id;
    meta.trace.span_id = request.span_id;
    meta.tenant = request.tenant;
    meta.deadline_us = request.deadline_us;
    DispatchRequest(meta, request.rpc_id, std::string(request.service),
                    std::string(request.payload));
  } else {
    const net::ResponseFrame& response = message.response;
    auto it = pending_.find(response.rpc_id);
    if (it == pending_.end()) return;  // late response after timeout
    auto slot = it->second;
    if (response.code == StatusCode::kOk) {
      slot->Fulfill(std::string(response.body));
    } else {
      slot->Fulfill(Status(response.code, std::string(response.body)));
    }
  }
}

void RpcEndpoint::DispatchRequest(RequestMeta meta, uint64_t rpc_id,
                                  std::string service, std::string payload) {
  if (meta.deadline_us != 0 && sim().Now() / 1000 > meta.deadline_us) {
    // The caller's deadline passed while this request sat in the network
    // or a queue: the response would be ignored, so don't do the work.
    // (The reply still goes out — on the sim transport it documents the
    // shed; the caller's OneShot has already been fulfilled by timeout.)
    deadline_sheds_++;
    net_.Send(node_, meta.from,
              net::EncodeResponse(
                  rpc_id, Status::Timeout("deadline expired at server")));
    return;
  }
  auto it = handlers_.find(service);
  if (it == handlers_.end()) {
    net_.Send(node_, meta.from,
              net::EncodeResponse(
                  rpc_id, Status::NotFound("no such service: " + service)));
    return;
  }
  // Run the handler as a detached coroutine; it may itself await RPCs.
  Detach([](RpcEndpoint* self, MetaHandler* handler, RequestMeta meta,
            uint64_t rpc_id, std::string service,
            std::string payload) -> Task<void> {
    // Server-side span: handler time, recorded as "srv.<service>" under
    // the caller's rpc span; the handler parents its own spans under it.
    obs::TraceContext server_ctx = obs::Tracing(self->tracer_, meta.trace)
                                       ? self->tracer_->Child(meta.trace)
                                       : obs::TraceContext{};
    NodeId from = meta.from;
    if (server_ctx.sampled()) meta.trace = server_ctx;
    Time started = self->sim().Now();
    Result<std::string> result =
        co_await (*handler)(std::move(meta), std::move(payload));
    if (server_ctx.sampled()) {
      self->tracer_->Record(server_ctx, "srv." + service, self->node_, started,
                            self->sim().Now());
    }
    self->net_.Send(self->node_, from, net::EncodeResponse(rpc_id, result));
  }(this, &it->second, std::move(meta), rpc_id, service, std::move(payload)));
}

}  // namespace lo::sim
