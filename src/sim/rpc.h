// Request/response RPC over the simulated network.
//
// Each node owns an RpcEndpoint. Services are named strings ("kv.get",
// "lambda.invoke", ...) whose handlers are coroutines; Call() suspends the
// caller until the response arrives or the timeout fires. Undeliverable
// messages simply never produce a response — exactly how a real datagram
// loss behaves — so callers see Status::Timeout.
//
// The wire format is net/frame.h — the same CRC32C-checked frames the
// TCP transport uses — so both transports reject corrupt payloads
// identically (frame_rejects()) and both carry an absolute deadline that
// lets the server shed requests that expired in flight (deadline_sheds()).
// Deadlines on this transport are sim-time microseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "net/frame.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/task.h"

namespace lo::sim {

class RpcEndpoint {
 public:
  using Handler =
      std::function<Task<Result<std::string>>(NodeId from, std::string payload)>;
  /// Handler that also receives the caller's trace context (decoded from
  /// the request frame) for span recording and further propagation.
  using TracedHandler = std::function<Task<Result<std::string>>(
      NodeId from, obs::TraceContext trace, std::string payload)>;
  /// Everything decoded from a request frame besides the payload. Only
  /// tenant-aware services need this; the simpler handler shapes above
  /// adapt into it internally.
  struct RequestMeta {
    NodeId from = 0;
    obs::TraceContext trace;
    uint32_t tenant = 0;     // QoS identity from the frame; 0 = unattributed
    int64_t deadline_us = 0; // absolute sim-time deadline; 0 = none
  };
  using MetaHandler = std::function<Task<Result<std::string>>(
      RequestMeta meta, std::string payload)>;

  /// Registers this endpoint as `node`'s receive handler on `net`.
  /// The endpoint must outlive all scheduled simulator events.
  RpcEndpoint(Network& net, NodeId node);

  NodeId node() const { return node_; }
  Network& network() { return net_; }
  Simulator& sim() { return net_.sim(); }

  /// Tracer used for client-side rpc spans; also handed to traced
  /// handlers via the decoded context. nullptr (default) disables.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Installs the handler for `service`. Replaces any previous handler.
  void Handle(std::string service, Handler handler);
  void Handle(std::string service, TracedHandler handler);
  void Handle(std::string service, MetaHandler handler);

  /// Sends a request and suspends until response or timeout.
  /// Errors returned by the remote handler come back as their Status.
  /// A sampled `trace` context travels in the frame; the call itself is
  /// recorded as an "rpc.<service>" span on this endpoint's tracer.
  /// `tenant` rides in the frame for server-side QoS (0 = unattributed).
  Task<Result<std::string>> Call(NodeId to, std::string service,
                                 std::string payload, Duration timeout,
                                 obs::TraceContext trace = {},
                                 uint32_t tenant = 0);

  uint64_t calls_started() const { return calls_started_; }
  uint64_t timeouts() const { return timeouts_; }
  /// Frames dropped for failed CRC / truncation / undecodable body.
  uint64_t frame_rejects() const { return frame_stats_.rejects(); }
  /// Requests answered Timeout without running the handler because their
  /// frame deadline had already passed on arrival.
  uint64_t deadline_sheds() const { return deadline_sheds_; }

 private:
  void OnMessage(NodeId from, std::string raw);
  void DispatchRequest(RequestMeta meta, uint64_t rpc_id, std::string service,
                       std::string payload);

  Network& net_;
  NodeId node_;
  obs::Tracer* tracer_ = nullptr;
  uint64_t next_rpc_id_ = 1;
  uint64_t calls_started_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t deadline_sheds_ = 0;
  net::FrameStats frame_stats_;
  std::unordered_map<std::string, MetaHandler> handlers_;
  std::unordered_map<uint64_t, std::shared_ptr<OneShot<Result<std::string>>>> pending_;
};

}  // namespace lo::sim
