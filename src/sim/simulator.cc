#include "sim/simulator.h"

#include <utility>

#include "common/log.h"

namespace lo::sim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

void Simulator::At(Time t, std::function<void()> fn) {
  LO_CHECK_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::After(Duration d, std::function<void()> fn) {
  LO_CHECK_MSG(d >= 0, "negative delay");
  At(now_ + d, std::move(fn));
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // Move the event out before running it: the handler may schedule more
  // events and mutate the queue.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  executed_++;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    Step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace lo::sim
