// Deterministic discrete-event simulator: a virtual clock plus an event
// queue. Ties are broken by insertion order, so a given seed replays the
// whole cluster bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "sim/task.h"
#include "sim/time.h"

namespace lo::sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 42);

  Time Now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  /// Schedules fn at absolute time t (>= Now()).
  void At(Time t, std::function<void()> fn);
  /// Schedules fn after delay d (>= 0).
  void After(Duration d, std::function<void()> fn);

  /// Runs one event; returns false when the queue is empty.
  bool Step();
  /// Runs until the queue drains.
  void Run();
  /// Runs events with timestamp <= t, then advances the clock to t.
  void RunUntil(Time t);
  void RunFor(Duration d) { RunUntil(now_ + d); }

  /// Awaitable pause of the current coroutine for d virtual nanoseconds.
  auto Sleep(Duration d) {
    struct Awaiter {
      Simulator* sim;
      Duration d;
      bool await_ready() const noexcept { return d <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->After(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Reschedules the current coroutine at the back of the now-queue
  /// (breaks deep synchronous recursion; acts like a yield).
  auto Yield() { return Sleep(0); }

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time t;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace lo::sim
