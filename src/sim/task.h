// C++20 coroutine plumbing for the simulator.
//
// Task<T> is a lazy coroutine: nothing runs until it is awaited (or
// detached with Detach()). A task completes by returning a value, which
// resumes its awaiter. Protocol code reads like blocking code:
//
//   Task<Result<std::string>> Client::Fetch(ObjectId id) {
//     auto reply = co_await rpc_.Call(node, "kv.get", Encode(id), kTimeout);
//     ...
//   }
//
// Lifetime rule: a started task must run to completion before its Task
// handle is destroyed. Helpers here (Detach, OneShot-based select) are
// structured so that rule holds without caller effort.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/log.h"

namespace lo::sim {

template <typename T>
class Task;

namespace internal {

template <typename T>
struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<T> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace internal

/// Lazy coroutine returning T. Move-only; owns the coroutine frame.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase<promise_type> {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const noexcept { return handle_ != nullptr; }
  bool done() const noexcept { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // start (or resume into) the child
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Task<void> specialization (no value channel).
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::PromiseBase<promise_type> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool valid() const noexcept { return handle_ != nullptr; }
  bool done() const noexcept { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{handle_};
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

namespace internal {

// Self-owning eager wrapper used by Detach(); frees itself on completion.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

}  // namespace internal

/// Starts `task` now and lets it run to completion in the background.
/// Uncaught exceptions in detached tasks terminate (they have no awaiter
/// to propagate to) — detached protocol loops must handle their errors.
inline internal::DetachedTask Detach(Task<void> task) {
  co_await std::move(task);
}

/// One-shot rendezvous: one awaiter, one Fulfill (declared below; needed
/// by Future).
template <typename T>
class OneShot;

/// Eager handle on a Task<T>: the task starts running the moment the
/// Future is constructed, so several Futures run concurrently and can be
/// awaited later — the fan-out pattern (Task alone is lazy and would
/// serialize). Await with `co_await future.Wait()` exactly once.
template <typename T>
class Future {
 public:
  explicit Future(Task<T> task);
  Future(Future&&) noexcept = default;
  Future& operator=(Future&&) noexcept = default;

  auto Wait() { return slot_->Wait(); }
  bool ready() const { return slot_->fulfilled(); }

 private:
  std::shared_ptr<OneShot<T>> slot_;
};

/// One-shot rendezvous: one awaiter, one Fulfill. Later Fulfills are
/// ignored, which is exactly the semantics a "response vs. timeout" race
/// needs. Heap-allocate (shared_ptr) when producer may outlive consumer.
template <typename T>
class OneShot {
 public:
  bool fulfilled() const noexcept { return value_.has_value(); }

  /// Delivers the value; resumes the awaiter if one is parked.
  /// Returns false if already fulfilled (value dropped).
  bool Fulfill(T value) {
    if (value_.has_value()) return false;
    value_ = std::move(value);
    if (waiter_) {
      auto w = std::exchange(waiter_, nullptr);
      w.resume();
    }
    return true;
  }

  auto Wait() {
    struct Awaiter {
      OneShot* self;
      bool await_ready() const noexcept { return self->value_.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        LO_CHECK_MSG(self->waiter_ == nullptr, "OneShot supports one awaiter");
        self->waiter_ = h;
      }
      T await_resume() { return std::move(*self->value_); }
    };
    return Awaiter{this};
  }

 private:
  std::optional<T> value_;
  std::coroutine_handle<> waiter_;
};

template <typename T>
Future<T>::Future(Task<T> task) : slot_(std::make_shared<OneShot<T>>()) {
  Detach([](Task<T> task, std::shared_ptr<OneShot<T>> slot) -> Task<void> {
    slot->Fulfill(co_await std::move(task));
  }(std::move(task), slot_));
}

}  // namespace lo::sim
