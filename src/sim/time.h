// Virtual time. The whole cluster runs on a deterministic simulated clock;
// all durations are int64 nanoseconds.
#pragma once

#include <cstdint>

namespace lo::sim {

using Time = int64_t;      // absolute virtual time, ns since simulation start
using Duration = int64_t;  // ns

constexpr Duration Nanos(int64_t n) { return n; }
constexpr Duration Micros(int64_t n) { return n * 1000; }
constexpr Duration Millis(int64_t n) { return n * 1000 * 1000; }
constexpr Duration Seconds(int64_t n) { return n * 1000 * 1000 * 1000; }

constexpr double ToMicros(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }

}  // namespace lo::sim
