// Bump allocator backing one memtable. All nodes and entries die together
// when the memtable is flushed, so individual frees are never needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace lo::storage {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    if (bytes <= remaining_) {
      char* result = ptr_;
      ptr_ += bytes;
      remaining_ -= bytes;
      return result;
    }
    return AllocateFallback(bytes);
  }

  /// Aligned for pointer-sized objects (skiplist nodes).
  char* AllocateAligned(size_t bytes) {
    constexpr size_t kAlign = alignof(void*);
    size_t mod = reinterpret_cast<uintptr_t>(ptr_) & (kAlign - 1);
    size_t slop = mod == 0 ? 0 : kAlign - mod;
    if (bytes + slop <= remaining_) {
      char* result = ptr_ + slop;
      ptr_ += bytes + slop;
      remaining_ -= bytes + slop;
      return result;
    }
    return AllocateFallback(bytes);  // fresh blocks are max-aligned
  }

  size_t MemoryUsage() const { return memory_usage_; }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes) {
    size_t block_size = bytes > kBlockSize / 4 ? bytes : kBlockSize;
    blocks_.push_back(std::make_unique<char[]>(block_size));
    memory_usage_ += block_size + sizeof(blocks_.back());
    char* block = blocks_.back().get();
    if (block_size == kBlockSize) {
      // Keep the remainder for future small allocations.
      ptr_ = block + bytes;
      remaining_ = block_size - bytes;
    }
    return block;
  }

  char* ptr_ = nullptr;
  size_t remaining_ = 0;
  size_t memory_usage_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace lo::storage
