#include "storage/block.h"

#include "common/coding.h"
#include "common/log.h"

namespace lo::storage {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval), restarts_{0} {
  LO_CHECK(restart_interval >= 1);
}

void BlockBuilder::Add(std::string_view key, std::string_view value) {
  LO_CHECK(!finished_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) shared++;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  size_t non_shared = key.size() - shared;
  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());
  last_key_.assign(key.data(), key.size());
  counter_++;
}

std::string_view BlockBuilder::Finish() {
  LO_CHECK(!finished_);
  for (uint32_t restart : restarts_) PutFixed32(&buffer_, restart);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return buffer_;
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.assign(1, 0);
  counter_ = 0;
  last_key_.clear();
  finished_ = false;
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * 4 + 4;
}

Block::Block(std::string data, uint32_t num_restarts)
    : data_(std::move(data)),
      num_restarts_(num_restarts),
      restart_offset_(data_.size() - 4 - 4 * static_cast<size_t>(num_restarts)) {}

Result<std::unique_ptr<Block>> Block::Parse(std::string contents) {
  if (contents.size() < 4) return Status::Corruption("block too small");
  uint32_t num_restarts = DecodeFixed32(contents.data() + contents.size() - 4);
  size_t trailer = 4 + 4 * static_cast<size_t>(num_restarts);
  if (num_restarts == 0 || contents.size() < trailer) {
    return Status::Corruption("bad restart array");
  }
  return std::unique_ptr<Block>(new Block(std::move(contents), num_restarts));
}

namespace {

class BlockIterator : public Iterator {
 public:
  BlockIterator(const InternalKeyComparator* cmp, std::string_view data,
                size_t restart_offset, uint32_t num_restarts)
      : cmp_(cmp),
        data_(data),
        restart_offset_(restart_offset),
        num_restarts_(num_restarts),
        current_(restart_offset) {}

  bool Valid() const override { return current_ < restart_offset_; }

  void SeekToFirst() override {
    SeekToRestart(0);
    ParseCurrent();
  }

  void Seek(std::string_view target) override {
    // Binary search restart points for the last full key < target.
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
      uint32_t mid = (left + right + 1) / 2;
      std::string_view key = FullKeyAtRestart(mid);
      if (cmp_->Compare(key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestart(left);
    // Linear scan within the restart run.
    while (ParseCurrent()) {
      if (cmp_->Compare(key_, target) >= 0) return;
      Advance();
    }
  }

  void Next() override {
    Advance();
    ParseCurrent();
  }

  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  uint32_t RestartPoint(uint32_t index) const {
    return DecodeFixed32(data_.data() + restart_offset_ + 4 * index);
  }

  void SeekToRestart(uint32_t index) {
    current_ = RestartPoint(index);
    key_.clear();
  }

  std::string_view FullKeyAtRestart(uint32_t index) {
    const char* p = data_.data() + RestartPoint(index);
    const char* limit = data_.data() + restart_offset_;
    uint32_t shared, non_shared, value_len;
    p = GetVarint32Ptr(p, limit, &shared);
    p = GetVarint32Ptr(p, limit, &non_shared);
    p = GetVarint32Ptr(p, limit, &value_len);
    // At a restart, shared == 0, so the key is stored whole.
    return {p, non_shared};
  }

  void Advance() { current_ = next_entry_; }

  // Decodes the entry at current_ into key_/value_; false past the end.
  bool ParseCurrent() {
    if (current_ >= restart_offset_) {
      key_.clear();
      return false;
    }
    const char* p = data_.data() + current_;
    const char* limit = data_.data() + restart_offset_;
    uint32_t shared, non_shared, value_len;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p != nullptr) p = GetVarint32Ptr(p, limit, &non_shared);
    if (p != nullptr) p = GetVarint32Ptr(p, limit, &value_len);
    if (p == nullptr || p + non_shared + value_len > limit || shared > key_.size()) {
      status_ = Status::Corruption("bad block entry");
      current_ = restart_offset_;
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = std::string_view(p + non_shared, value_len);
    next_entry_ = static_cast<size_t>(p + non_shared + value_len - data_.data());
    return true;
  }

  const InternalKeyComparator* cmp_;
  std::string_view data_;
  size_t restart_offset_;
  uint32_t num_restarts_;
  size_t current_;
  size_t next_entry_ = 0;
  std::string key_;
  std::string_view value_;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> Block::NewIterator(const InternalKeyComparator* cmp) const {
  return std::make_unique<BlockIterator>(cmp, data_, restart_offset_, num_restarts_);
}

}  // namespace lo::storage
