// SSTable block format (LevelDB-style):
//
//   entry*   : varint32 shared | varint32 non_shared | varint32 value_len
//              | key_delta | value
//   trailer  : fixed32 restart_offset*  fixed32 num_restarts
//
// Keys are prefix-compressed against their predecessor; every
// `restart_interval` entries a full key is stored and its offset recorded
// so Seek can binary-search the restart array.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "storage/dbformat.h"
#include "storage/iterator.h"

namespace lo::storage {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  /// Keys must be added in strictly increasing internal-key order.
  void Add(std::string_view key, std::string_view value);
  /// Appends the restart trailer and returns the finished block contents.
  std::string_view Finish();
  void Reset();

  size_t CurrentSizeEstimate() const;
  bool empty() const { return counter_ == 0 && restarts_.size() == 1; }

 private:
  int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  std::string last_key_;
  bool finished_ = false;
};

/// Immutable parsed block; owns its bytes.
class Block {
 public:
  /// Validates the trailer; returns Corruption on malformed input.
  static Result<std::unique_ptr<Block>> Parse(std::string contents);

  std::unique_ptr<Iterator> NewIterator(const InternalKeyComparator* cmp) const;
  size_t size() const { return data_.size(); }

 private:
  Block(std::string data, uint32_t num_restarts);

  std::string data_;
  uint32_t num_restarts_;
  size_t restart_offset_;  // where the restart array begins
};

}  // namespace lo::storage
