#include "storage/bloom.h"

#include <algorithm>

#include "common/hash.h"

namespace lo::storage {
namespace {

// Double hashing: h1 + i*h2 simulates k independent hash functions.
uint32_t BloomHash(std::string_view key) { return Fnv1a32(key); }

}  // namespace

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {}

void BloomFilterBuilder::AddKey(std::string_view user_key) {
  hashes_.push_back(BloomHash(user_key));
}

std::string BloomFilterBuilder::Finish() {
  // k = bits_per_key * ln2, clamped to [1, 30].
  int k = static_cast<int>(bits_per_key_ * 0.69);
  k = std::clamp(k, 1, 30);

  size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
  bits = std::max<size_t>(bits, 64);
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  for (uint32_t h : hashes_) {
    uint32_t delta = (h >> 17) | (h << 15);
    for (int j = 0; j < k; j++) {
      uint32_t bitpos = h % static_cast<uint32_t>(bits);
      filter[bitpos / 8] |= static_cast<char>(1 << (bitpos % 8));
      h += delta;
    }
  }
  filter.push_back(static_cast<char>(k));
  return filter;
}

bool BloomFilterMayContain(std::string_view filter, std::string_view user_key) {
  if (filter.size() < 2) return true;
  size_t bytes = filter.size() - 1;
  size_t bits = bytes * 8;
  int k = static_cast<uint8_t>(filter[bytes]);
  if (k > 30 || k < 1) return true;  // reserved / malformed: don't reject

  uint32_t h = BloomHash(user_key);
  uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    uint32_t bitpos = h % static_cast<uint32_t>(bits);
    if ((filter[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace lo::storage
