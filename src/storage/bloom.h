// Bloom filter over the user keys of one SSTable; read paths consult it
// before touching the index to skip tables that cannot contain a key.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lo::storage {

class BloomFilterBuilder {
 public:
  /// bits_per_key ~ 10 gives ~1% false positives.
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void AddKey(std::string_view user_key);
  /// Serializes the filter (bit array + k).
  std::string Finish();
  size_t num_keys() const { return hashes_.size(); }

 private:
  int bits_per_key_;
  std::vector<uint32_t> hashes_;
};

/// Returns true if the filter *may* contain the key; false means
/// definitely absent. A malformed filter conservatively returns true.
bool BloomFilterMayContain(std::string_view filter, std::string_view user_key);

}  // namespace lo::storage
