#include "storage/cache.h"

#include "common/hash.h"
#include "common/log.h"

namespace lo::storage {

// One cache entry. Heap-allocated and address-stable, so the shard table
// keys string_views into `key` and handles are just pointers to this.
//
// Reference counting: the cache itself holds one reference while the
// entry is attached (`in_cache`); every outstanding Handle holds one
// more. Detaching (eviction / Erase / replacement) drops the cache's
// reference; the entry is destroyed when the count reaches zero, which
// is what makes pin-while-evicted safe.
struct Cache::Entry {
  std::string key;
  void* value = nullptr;
  Deleter deleter = nullptr;
  size_t charge = 0;
  uint32_t refs = 0;
  bool in_cache = false;
  // LRU list links. Only attached, unpinned entries sit in the list
  // (pinned entries are unevictable, so keeping them out of the list
  // makes the eviction scan O(victims), never O(pins)).
  Entry* prev = nullptr;
  Entry* next = nullptr;
};

struct Cache::Shard {
  mutable std::mutex mu;
  size_t capacity = 0;
  size_t usage = 0;  // total charge of attached entries
  // lru.next is the least recently used entry, lru.prev the most recent.
  Entry lru;
  std::unordered_map<std::string_view, Entry*> table;
  // Counters (guarded by mu; snapshotted by GetStats).
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;

  Shard() {
    lru.next = &lru;
    lru.prev = &lru;
  }
};

namespace {

void ListRemoveImpl(Cache::Entry* e) {
  e->next->prev = e->prev;
  e->prev->next = e->next;
  e->next = nullptr;
  e->prev = nullptr;
}

void ListAppend(Cache::Entry* list, Cache::Entry* e) {
  // Insert at the MRU end (list->prev).
  e->next = list;
  e->prev = list->prev;
  e->prev->next = e;
  e->next->prev = e;
}

}  // namespace

Cache::Cache(size_t capacity, int shard_bits)
    : capacity_(capacity),
      num_shards_(size_t{1} << (shard_bits < 0 ? 0 : shard_bits)),
      shards_(new Shard[num_shards_]) {
  size_t per_shard = (capacity + num_shards_ - 1) / num_shards_;
  for (size_t i = 0; i < num_shards_; i++) shards_[i].capacity = per_shard;
}

Cache::~Cache() {
  for (size_t i = 0; i < num_shards_; i++) {
    Shard& shard = shards_[i];
    // Every handle must have been released by now; attached entries hold
    // exactly the cache's own reference.
    for (auto& [key, e] : shard.table) {
      LO_CHECK_MSG(e->refs == 1, "cache destroyed with pinned entries");
      if (e->deleter != nullptr) e->deleter(e->key, e->value);
      delete e;
    }
  }
}

uint32_t Cache::ShardOf(std::string_view key) const {
  // Upper hash bits pick the shard so the table (which consumes the low
  // bits) stays decorrelated from the shard choice.
  return static_cast<uint32_t>((Fnv1a64(key) >> 48) & (num_shards_ - 1));
}

uint64_t Cache::NewId() {
  std::lock_guard<std::mutex> lock(id_mu_);
  return next_id_++;
}

Cache::Handle* Cache::Insert(std::string_view key, void* value, size_t charge,
                             Deleter deleter) {
  Shard& shard = shards_[ShardOf(key)];
  auto* e = new Entry();
  e->key.assign(key);
  e->value = value;
  e->deleter = deleter;
  e->charge = charge;
  e->refs = 2;  // the cache + the returned handle
  e->in_cache = true;

  std::vector<Entry*> dead;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inserts++;
    // Replace an existing entry for this key: detach it (outstanding
    // pins, if any, keep the old value alive until released).
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      Entry* old = it->second;
      shard.table.erase(it);
      shard.usage -= old->charge;
      old->in_cache = false;
      if (old->prev != nullptr) ListRemoveImpl(old);
      if (--old->refs == 0) dead.push_back(old);
    }
    shard.table.emplace(std::string_view(e->key), e);
    shard.usage += charge;
    // Evict from the cold end until back under capacity. Pinned entries
    // are not in the list, so a fully-pinned shard may exceed capacity —
    // the overage drains as pins are released and entries re-enter the
    // list (checked again on the next insert).
    while (shard.usage > shard.capacity && shard.lru.next != &shard.lru) {
      Entry* victim = shard.lru.next;
      ListRemoveImpl(victim);
      shard.table.erase(std::string_view(victim->key));
      shard.usage -= victim->charge;
      victim->in_cache = false;
      shard.evictions++;
      if (--victim->refs == 0) dead.push_back(victim);
    }
  }
  for (Entry* d : dead) {
    if (d->deleter != nullptr) d->deleter(d->key, d->value);
    delete d;
  }
  return reinterpret_cast<Handle*>(e);
}

Cache::Handle* Cache::Lookup(std::string_view key) {
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) {
    shard.misses++;
    return nullptr;
  }
  shard.hits++;
  Entry* e = it->second;
  if (e->prev != nullptr) ListRemoveImpl(e);  // now pinned: off the LRU list
  e->refs++;
  return reinterpret_cast<Handle*>(e);
}

void Cache::Release(Handle* handle) {
  auto* e = reinterpret_cast<Entry*>(handle);
  LO_CHECK(e != nullptr);
  Shard& shard = shards_[ShardOf(e->key)];
  std::vector<Entry*> dead;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    LO_CHECK(e->refs > 0);
    if (--e->refs == 0) {
      dead.push_back(e);  // was already detached; last pin just went away
    } else if (e->refs == 1 && e->in_cache) {
      // Only the cache's reference remains: back onto the LRU list (MRU
      // end — it was just in use) and drain any overage accumulated while
      // entries were pinned (Insert cannot evict pinned entries). The
      // entry just released is the freshest by definition and is never
      // its own victim; a lone over-capacity entry stays until a later
      // Insert displaces it.
      ListAppend(&shard.lru, e);
      while (shard.usage > shard.capacity && shard.lru.next != e) {
        Entry* victim = shard.lru.next;
        ListRemoveImpl(victim);
        shard.table.erase(std::string_view(victim->key));
        shard.usage -= victim->charge;
        victim->in_cache = false;
        shard.evictions++;
        if (--victim->refs == 0) dead.push_back(victim);
      }
    }
  }
  for (Entry* d : dead) {
    if (d->deleter != nullptr) d->deleter(d->key, d->value);
    delete d;
  }
}

void* Cache::Value(Handle* handle) {
  return reinterpret_cast<Entry*>(handle)->value;
}

void Cache::Erase(std::string_view key) {
  Shard& shard = shards_[ShardOf(key)];
  Entry* dead = nullptr;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.table.find(key);
    if (it == shard.table.end()) return;
    Entry* e = it->second;
    shard.table.erase(it);
    shard.usage -= e->charge;
    e->in_cache = false;
    if (e->prev != nullptr) ListRemoveImpl(e);
    if (--e->refs == 0) dead = e;
  }
  if (dead != nullptr) {
    if (dead->deleter != nullptr) dead->deleter(dead->key, dead->value);
    delete dead;
  }
}

Cache::Stats Cache::GetStats() const {
  Stats stats;
  for (size_t i = 0; i < num_shards_; i++) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.evictions += shard.evictions;
    stats.charge += shard.usage;
    stats.entries += shard.table.size();
    for (auto& [key, e] : shard.table) {
      if (e->refs > 1) stats.pinned++;
    }
  }
  return stats;
}

}  // namespace lo::storage
