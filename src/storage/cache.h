// Sharded LRU cache (LevelDB-shaped): the shared caching substrate of the
// storage layer. The block cache and the table cache both sit on this
// core, and later layers (object/snapshot caching in the runtime) are
// expected to reuse it.
//
//   - charge-based: every entry carries an explicit cost (bytes for
//     blocks, 1 for table handles) and the cache holds total charge at or
//     under its capacity by evicting least-recently-used entries;
//   - sharded: entries hash onto 2^shard_bits independent shards, each
//     with its own mutex, so lane workers hitting disjoint blocks never
//     contend on one lock;
//   - handle-based: Lookup/Insert return a pinned Handle. A pinned entry
//     is never destroyed — eviction and Erase only *detach* it from the
//     cache; the value is freed when the last pin is released. Iterators
//     rely on this to keep their current block alive across evictions.
//
// Thread safe. All operations are O(1) amortized.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lo::storage {

class Cache {
 public:
  /// Opaque pin on one entry. Obtained from Insert/Lookup, returned via
  /// Release exactly once.
  struct Handle;
  /// Implementation detail (cache.cc); declared here so it is nameable.
  struct Entry;

  /// Called once per entry, when the last pin on a detached entry goes
  /// away (eviction, Erase, or cache destruction — whichever comes last).
  using Deleter = void (*)(std::string_view key, void* value);

  /// `capacity` is total charge across all shards; each of the
  /// 2^shard_bits shards gets an equal slice.
  explicit Cache(size_t capacity, int shard_bits = 4);
  ~Cache();

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Inserts (replacing any entry with the same key) and returns a pinned
  /// handle to the new entry. Charge is accounted immediately; the
  /// eviction pass runs before returning.
  Handle* Insert(std::string_view key, void* value, size_t charge,
                 Deleter deleter);

  /// Returns a pinned handle, or nullptr on miss.
  Handle* Lookup(std::string_view key);

  /// Drops one pin. The handle is invalid afterwards.
  void Release(Handle* handle);

  /// The value Insert stored. Valid while the handle is pinned.
  static void* Value(Handle* handle);

  /// Detaches the entry with `key`, if any: future Lookups miss, and the
  /// value dies once the last outstanding pin is released.
  void Erase(std::string_view key);

  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(num_shards_); }
  /// Which shard a key lands on (tests craft per-shard keys with this).
  uint32_t ShardOf(std::string_view key) const;

  /// Monotonic id source for keyspace partitioning: components sharing
  /// one cache prefix their keys with a NewId() so they never collide.
  uint64_t NewId();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;   // capacity-driven detaches only
    uint64_t charge = 0;      // total charge currently attached
    uint64_t entries = 0;     // entries currently attached
    uint64_t pinned = 0;      // attached entries with outstanding pins
  };
  /// Sums every shard. Counters are cumulative; charge/entries/pinned are
  /// instantaneous.
  Stats GetStats() const;

 private:
  struct Shard;

  size_t capacity_;
  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::mutex id_mu_;
  uint64_t next_id_ = 1;
};

}  // namespace lo::storage
