#include "storage/db.h"

#include <algorithm>

#include "common/log.h"
#include "storage/filename.h"

namespace lo::storage {
namespace {

/// Keeps the Table shared_ptr alive for as long as its iterator.
class OwningTableIterator : public Iterator {
 public:
  explicit OwningTableIterator(std::shared_ptr<Table> table, bool fill_cache = true)
      : table_(std::move(table)), iter_(table_->NewIterator(fill_cache)) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(std::string_view target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  std::string_view key() const override { return iter_->key(); }
  std::string_view value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<Table> table_;
  std::unique_ptr<Iterator> iter_;
};

/// Concatenation over the sorted, non-overlapping files of one level >= 1.
class LevelIterator : public Iterator {
 public:
  LevelIterator(TableCache* cache, std::vector<FileMetaData> files)
      : cache_(cache), files_(std::move(files)) {}

  bool Valid() const override { return current_ != nullptr && current_->Valid(); }

  void SeekToFirst() override {
    index_ = 0;
    OpenCurrent();
    if (current_ != nullptr) current_->SeekToFirst();
    SkipExhausted();
  }

  void Seek(std::string_view target) override {
    // First file whose largest key >= target.
    index_ = files_.size();
    for (size_t i = 0; i < files_.size(); i++) {
      if (icmp_.Compare(files_[i].largest, target) >= 0) {
        index_ = i;
        break;
      }
    }
    OpenCurrent();
    if (current_ != nullptr) current_->Seek(target);
    SkipExhausted();
  }

  void Next() override {
    current_->Next();
    SkipExhausted();
  }

  std::string_view key() const override { return current_->key(); }
  std::string_view value() const override { return current_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return current_ != nullptr ? current_->status() : Status::OK();
  }

 private:
  void OpenCurrent() {
    current_.reset();
    if (index_ >= files_.size()) return;
    auto table = cache_->Get(files_[index_].number);
    if (!table.ok()) {
      status_ = table.status();
      return;
    }
    current_ = std::make_unique<OwningTableIterator>(std::move(table).value());
  }

  void SkipExhausted() {
    while (current_ != nullptr && !current_->Valid() && status_.ok()) {
      index_++;
      OpenCurrent();
      if (current_ != nullptr) current_->SeekToFirst();
    }
  }

  TableCache* cache_;
  std::vector<FileMetaData> files_;
  size_t index_ = 0;
  std::unique_ptr<Iterator> current_;
  InternalKeyComparator icmp_;
  Status status_;
};

/// User-facing iterator: resolves versions and tombstones at a snapshot.
class DBIter : public Iterator {
 public:
  DBIter(std::unique_ptr<Iterator> internal, SequenceNumber sequence)
      : internal_(std::move(internal)), sequence_(sequence) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    internal_->SeekToFirst();
    FindNextUserEntry(/*skipping=*/false);
  }

  void Seek(std::string_view target) override {
    internal_->Seek(MakeInternalKey(target, sequence_, kValueTypeForSeek));
    FindNextUserEntry(/*skipping=*/false);
  }

  void Next() override {
    LO_CHECK(valid_);
    skip_key_ = key_;
    internal_->Next();
    FindNextUserEntry(/*skipping=*/true);
  }

  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }
  Status status() const override { return internal_->status(); }

 private:
  // Advances to the newest visible, non-deleted version of the next user
  // key. If `skipping`, entries equal to skip_key_ are passed over.
  void FindNextUserEntry(bool skipping) {
    valid_ = false;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) {
        internal_->Next();
        continue;
      }
      if (parsed.sequence > sequence_ ||
          (skipping && parsed.user_key == skip_key_)) {
        internal_->Next();
        continue;
      }
      if (parsed.type == ValueType::kDeletion) {
        // Tombstone shadows all older versions of this key.
        skip_key_.assign(parsed.user_key);
        skipping = true;
        internal_->Next();
        continue;
      }
      key_.assign(parsed.user_key);
      value_.assign(internal_->value());
      valid_ = true;
      return;
    }
  }

  std::unique_ptr<Iterator> internal_;
  SequenceNumber sequence_;
  bool valid_ = false;
  std::string key_;
  std::string value_;
  std::string skip_key_;
};

}  // namespace

DB::DB(Options options, std::string name)
    : options_(options),
      name_(std::move(name)),
      block_cache_(options.block_cache_bytes > 0
                       ? std::make_unique<Cache>(options.block_cache_bytes,
                                                 options.block_cache_shard_bits)
                       : nullptr),
      table_cache_(options.env, name_, block_cache_.get()),
      versions_(std::make_unique<VersionSet>(options.env, name_, &table_cache_)) {}

DB::~DB() = default;

Result<std::unique_ptr<DB>> DB::Open(const Options& options, std::string name) {
  LO_CHECK_MSG(options.env != nullptr, "Options::env is required");
  std::unique_ptr<DB> db(new DB(options, std::move(name)));
  LO_RETURN_IF_ERROR(db->Initialize());
  return db;
}

Status DB::Initialize() {
  Env* env = options_.env;
  LO_RETURN_IF_ERROR(env->CreateDir(name_));
  mem_ = std::make_unique<MemTable>();

  if (env->FileExists(CurrentFileName(name_))) {
    stats_.recoveries++;
    LO_RETURN_IF_ERROR(versions_->Recover());
    if (versions_->recovered_torn_manifest_tail()) stats_.manifest_torn_tails++;
    // WAL files written after the last manifest record may carry numbers
    // the manifest never learned about; never reuse them.
    LO_ASSIGN_OR_RETURN(auto names, env->ListDir(name_));
    for (const auto& n : names) {
      uint64_t number = 0;
      if (ParseFileName(n, &number) != FileKind::kUnknown) {
        versions_->EnsureFileNumberAbove(number);
      }
    }
    LO_RETURN_IF_ERROR(versions_->WriteSnapshot());  // opens manifest writer
    LO_RETURN_IF_ERROR(RecoverWal());
  } else if (!options_.create_if_missing) {
    return Status::NotFound("db does not exist: " + name_);
  } else {
    LO_RETURN_IF_ERROR(versions_->WriteSnapshot());
  }
  LO_RETURN_IF_ERROR(NewWal());
  VersionEdit edit;
  edit.SetLogNumber(wal_number_);
  LO_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  return DeleteObsoleteFiles();
}

Status DB::RecoverWal() {
  Env* env = options_.env;
  LO_ASSIGN_OR_RETURN(auto names, env->ListDir(name_));
  std::vector<uint64_t> logs;
  for (const auto& n : names) {
    uint64_t number = 0;
    if (ParseFileName(n, &number) == FileKind::kWal &&
        number >= versions_->log_number()) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());
  bool saw_torn_tail = false;
  for (uint64_t log : logs) {
    LO_ASSIGN_OR_RETURN(auto file, env->NewSequentialFile(WalFileName(name_, log)));
    wal::LogReader reader(std::move(file));
    std::string record;
    while (reader.ReadRecord(&record)) {
      if (saw_torn_tail) {
        // Records after a torn tail in an *earlier* log would replay
        // out of commit order. The log floor makes this unreachable
        // (a later log only gets records once a flush advanced the
        // floor past the earlier one), so reaching here means the
        // directory is inconsistent, not crashed.
        return Status::Corruption("WAL records follow a torn tail");
      }
      auto batch = WriteBatch::FromRep(record);
      if (!batch.ok()) {
        // CRC-valid but undecodable: torn writes never pass the
        // checksum, so this is real corruption, not a crash point.
        return Status::Corruption("undecodable WAL record in log " +
                                  std::to_string(log));
      }
      stats_.wal_records_replayed++;
      SequenceNumber base = batch->sequence();
      LO_RETURN_IF_ERROR(batch->InsertInto(base, mem_.get()));
      SequenceNumber last = base + batch->Count() - 1;
      if (last > versions_->last_sequence()) versions_->SetLastSequence(last);
      if (mem_->ApproximateMemoryUsage() > options_.write_buffer_size) {
        LO_RETURN_IF_ERROR(FlushMemTable());
      }
    }
    if (reader.hit_corruption()) {
      // A torn tail marks the crash point: the batch it held was never
      // acknowledged (AddRecord+Sync had not returned), so truncating
      // the replay here loses nothing that was committed.
      stats_.wal_torn_tails++;
      saw_torn_tail = true;
    }
  }
  if (mem_->entries() > 0) {
    LO_RETURN_IF_ERROR(FlushMemTable());
  }
  return Status::OK();
}

Status DB::NewWal() {
  wal_number_ = versions_->NewFileNumber();
  LO_ASSIGN_OR_RETURN(auto file,
                      options_.env->NewWritableFile(WalFileName(name_, wal_number_)));
  wal_ = std::make_unique<wal::Writer>(std::move(file));
  // Everything at or below wal_number_ - 1 is captured by SSTables after
  // the next flush; record the log floor now.
  return Status::OK();
}

Status DB::RotateWal() {
  if (mem_->entries() > 0) {
    // The memtable holds exactly the acknowledged (fully-logged) prefix;
    // flushing it persists that prefix and rotates to a fresh WAL.
    return FlushMemTable();
  }
  uint64_t old_wal = wal_number_;
  LO_RETURN_IF_ERROR(NewWal());
  VersionEdit edit;
  edit.SetLogNumber(wal_number_);
  LO_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  // Best effort: a leftover log below the floor is ignored by recovery
  // and reaped by the next DeleteObsoleteFiles pass.
  options_.env->DeleteFile(WalFileName(name_, old_wal)).ok();
  return Status::OK();
}

Status DB::Put(const WriteOptions& opts, std::string_view key, std::string_view value) {
  auto guard = Guard();
  stats_.puts++;
  WriteBatch batch;
  batch.Put(key, value);
  return WriteLocked(opts, &batch);
}

Status DB::Delete(const WriteOptions& opts, std::string_view key) {
  auto guard = Guard();
  stats_.deletes++;
  WriteBatch batch;
  batch.Delete(key);
  return WriteLocked(opts, &batch);
}

Status DB::Write(const WriteOptions& opts, WriteBatch* batch) {
  auto guard = Guard();
  return WriteLocked(opts, batch);
}

Status DB::WriteLocked(const WriteOptions& opts, WriteBatch* batch) {
  if (batch->Count() == 0) return Status::OK();
  if (wal_failed_) {
    // The live WAL tail may be torn by the earlier failure; appending to
    // it would corrupt replay. Rotate first, fail the write if we can't.
    LO_RETURN_IF_ERROR(RotateWal());
    wal_failed_ = false;
    stats_.wal_rotations_after_error++;
  }
  SequenceNumber base = versions_->last_sequence() + 1;
  batch->SetSequence(base);
  Status wal_status = wal_->AddRecord(batch->rep());
  if (wal_status.ok() && opts.sync) {
    wal_status = wal_->Sync();
    if (wal_status.ok()) stats_.wal_syncs++;
  }
  if (!wal_status.ok()) {
    // Surface the failure to the commit caller — the batch is NOT
    // applied (not in the memtable), so the acknowledged state and the
    // recoverable state stay identical.
    stats_.wal_write_failures++;
    wal_failed_ = true;
    return wal_status;
  }
  LO_RETURN_IF_ERROR(batch->InsertInto(base, mem_.get()));
  versions_->SetLastSequence(base + batch->Count() - 1);
  if (mem_->ApproximateMemoryUsage() > options_.write_buffer_size) {
    write_trace_ = opts.trace;
    Status s = FlushMemTable();
    if (s.ok()) s = MaybeCompact();
    write_trace_ = {};
    LO_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Result<std::string> DB::Get(const ReadOptions& opts, std::string_view key) {
  auto guard = Guard();
  stats_.gets++;
  SequenceNumber seq =
      opts.snapshot != nullptr ? opts.snapshot->sequence() : versions_->last_sequence();

  std::string value;
  Status s;
  if (mem_->Get(key, seq, &value, &s)) {
    if (s.ok()) return value;
    return s;  // NotFound tombstone (or corruption)
  }

  std::string lookup = MakeInternalKey(key, seq, kValueTypeForSeek);
  // L0: newest file first; deeper levels: at most one candidate by range.
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& meta : versions_->files(level)) {
      if (key < ExtractUserKey(meta.smallest) || key > ExtractUserKey(meta.largest)) {
        continue;
      }
      LO_ASSIGN_OR_RETURN(auto table, table_cache_.Get(meta.number));
      bool found = false;
      bool deleted = false;
      LO_RETURN_IF_ERROR(table->InternalGet(
          lookup, [&](std::string_view ikey, std::string_view v) {
            ParsedInternalKey parsed;
            if (!ParseInternalKey(ikey, &parsed)) return;
            if (parsed.user_key != key) return;
            found = true;
            if (parsed.type == ValueType::kDeletion) {
              deleted = true;
            } else {
              value.assign(v);
            }
          }));
      if (found) {
        if (deleted) return Status::NotFound("");
        return value;
      }
    }
  }
  return Status::NotFound("");
}

std::unique_ptr<Iterator> DB::NewIterator(const ReadOptions& opts) {
  auto guard = Guard();
  SequenceNumber seq =
      opts.snapshot != nullptr ? opts.snapshot->sequence() : versions_->last_sequence();
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem_->NewIterator());
  for (const auto& meta : versions_->files(0)) {
    auto table = table_cache_.Get(meta.number);
    if (!table.ok()) return NewEmptyIterator(table.status());
    children.push_back(std::make_unique<OwningTableIterator>(std::move(table).value()));
  }
  for (int level = 1; level < kNumLevels; level++) {
    if (versions_->NumLevelFiles(level) == 0) continue;
    children.push_back(
        std::make_unique<LevelIterator>(&table_cache_, versions_->files(level)));
  }
  auto merged = NewMergingIterator(icmp_, std::move(children));
  return std::make_unique<DBIter>(std::move(merged), seq);
}

const Snapshot* DB::GetSnapshot() {
  auto guard = Guard();
  auto* snapshot = new Snapshot(versions_->last_sequence());
  snapshots_.insert(snapshot->sequence());
  return snapshot;
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  auto guard = Guard();
  auto it = snapshots_.find(snapshot->sequence());
  LO_CHECK_MSG(it != snapshots_.end(), "double snapshot release");
  snapshots_.erase(it);
  delete snapshot;
}

SequenceNumber DB::SmallestSnapshot() const {
  return snapshots_.empty() ? versions_->last_sequence() : *snapshots_.begin();
}

void DB::RecordInstantSpan(const char* name) {
  if (!obs::Tracing(options_.tracer, write_trace_) || !options_.clock) return;
  int64_t now = options_.clock();
  options_.tracer->RecordChild(write_trace_, name, options_.node_label, now, now);
}

Status DB::FlushMemTable() {
  if (mem_->entries() == 0) return Status::OK();
  stats_.flushes++;
  RecordInstantSpan("memtable_flush");
  uint64_t number = versions_->NewFileNumber();
  std::string path = TableFileName(name_, number);
  LO_ASSIGN_OR_RETURN(auto file, options_.env->NewWritableFile(path));
  TableBuilder builder(options_.table, std::move(file));
  auto iter = mem_->NewIterator();
  FileMetaData meta;
  meta.number = number;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (meta.smallest.empty()) meta.smallest.assign(iter->key());
    meta.largest.assign(iter->key());
    builder.Add(iter->key(), iter->value());
  }
  LO_RETURN_IF_ERROR(builder.Finish());
  meta.file_size = builder.file_size();

  uint64_t old_wal = wal_number_;
  LO_RETURN_IF_ERROR(NewWal());
  VersionEdit edit;
  edit.AddFile(0, std::move(meta));
  edit.SetLogNumber(wal_number_);
  LO_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  mem_ = std::make_unique<MemTable>();
  // Best effort: the old log is below the floor recorded above, so
  // recovery ignores it and DeleteObsoleteFiles reaps it later. Nothing
  // user-visible depends on this delete succeeding — unlike the WAL and
  // manifest writes above, whose failures all propagate.
  options_.env->DeleteFile(WalFileName(name_, old_wal)).ok();
  return Status::OK();
}

Status DB::MaybeCompact() {
  while (versions_->NeedsCompaction()) {
    LO_RETURN_IF_ERROR(DoCompaction(versions_->PickCompaction()));
  }
  return Status::OK();
}

Status DB::DoCompaction(const VersionSet::CompactionPick& pick) {
  if (pick.level < 0) return Status::OK();
  stats_.compactions++;
  RecordInstantSpan("compaction");
  int output_level = pick.level + 1;
  SequenceNumber smallest_snapshot = SmallestSnapshot();

  std::vector<std::unique_ptr<Iterator>> inputs;
  auto add_input = [&](const FileMetaData& meta) -> Status {
    LO_ASSIGN_OR_RETURN(auto table, table_cache_.Get(meta.number));
    // fill_cache=false: a compaction reads each input block exactly once;
    // inserting them would evict the read path's hot set for nothing.
    inputs.push_back(
        std::make_unique<OwningTableIterator>(std::move(table), /*fill_cache=*/false));
    stats_.compaction_bytes_read += meta.file_size;
    return Status::OK();
  };
  for (const auto& meta : pick.inputs) LO_RETURN_IF_ERROR(add_input(meta));
  for (const auto& meta : pick.next_inputs) LO_RETURN_IF_ERROR(add_input(meta));
  auto merged = NewMergingIterator(icmp_, std::move(inputs));

  VersionEdit edit;
  std::unique_ptr<TableBuilder> builder;
  FileMetaData out_meta;
  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    LO_RETURN_IF_ERROR(builder->Finish());
    out_meta.file_size = builder->file_size();
    stats_.compaction_bytes_written += out_meta.file_size;
    edit.AddFile(output_level, out_meta);
    builder.reset();
    return Status::OK();
  };

  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    std::string_view ikey = merged->key();
    ParsedInternalKey parsed;
    bool drop = false;
    if (!ParseInternalKey(ikey, &parsed)) {
      // Keep unparseable entries verbatim; surface them to reads.
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    } else {
      if (!has_current_user_key || parsed.user_key != current_user_key) {
        current_user_key.assign(parsed.user_key);
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }
      if (last_sequence_for_key <= smallest_snapshot) {
        // Shadowed by a newer entry that every snapshot already sees.
        drop = true;
      } else if (parsed.type == ValueType::kDeletion &&
                 parsed.sequence <= smallest_snapshot &&
                 versions_->IsBaseLevelForKey(output_level, parsed.user_key)) {
        // Tombstone with nothing underneath it to shadow.
        drop = true;
      }
      last_sequence_for_key = parsed.sequence;
    }

    if (drop) continue;
    if (builder == nullptr) {
      out_meta = FileMetaData{};
      out_meta.number = versions_->NewFileNumber();
      LO_ASSIGN_OR_RETURN(
          auto file, options_.env->NewWritableFile(TableFileName(name_, out_meta.number)));
      builder = std::make_unique<TableBuilder>(options_.table, std::move(file));
      out_meta.smallest.assign(ikey);
    }
    out_meta.largest.assign(ikey);
    builder->Add(ikey, merged->value());
    if (builder->file_size() >= options_.max_output_file_bytes) {
      LO_RETURN_IF_ERROR(finish_output());
    }
  }
  LO_RETURN_IF_ERROR(merged->status());
  LO_RETURN_IF_ERROR(finish_output());

  for (const auto& meta : pick.inputs) edit.DeleteFile(pick.level, meta.number);
  for (const auto& meta : pick.next_inputs) edit.DeleteFile(output_level, meta.number);
  LO_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  // The inputs are dead the moment the edit commits: evict them now so
  // they stop pinning open file handles and metadata blocks even if the
  // directory sweep below cannot delete them yet.
  for (const auto& meta : pick.inputs) table_cache_.Evict(meta.number);
  for (const auto& meta : pick.next_inputs) table_cache_.Evict(meta.number);
  return DeleteObsoleteFiles();
}

Status DB::DeleteObsoleteFiles() {
  Env* env = options_.env;
  auto live_vec = versions_->LiveFiles();
  std::set<uint64_t> live(live_vec.begin(), live_vec.end());
  LO_ASSIGN_OR_RETURN(auto names, env->ListDir(name_));
  for (const auto& n : names) {
    uint64_t number = 0;
    switch (ParseFileName(n, &number)) {
      case FileKind::kTable:
        if (!live.contains(number)) {
          table_cache_.Evict(number);
          env->DeleteFile(name_ + "/" + n).ok();
        }
        break;
      case FileKind::kWal:
        if (number < versions_->log_number() && number != wal_number_) {
          env->DeleteFile(name_ + "/" + n).ok();
        }
        break;
      default:
        break;  // CURRENT, manifests, unknown: kept
    }
  }
  return Status::OK();
}

Status DB::CompactAll() {
  auto guard = Guard();
  LO_RETURN_IF_ERROR(FlushMemTable());
  for (int level = 0; level < kNumLevels - 1; level++) {
    while (versions_->NumLevelFiles(level) > 0) {
      VersionSet::CompactionPick pick;
      pick.level = level;
      pick.inputs = versions_->files(level);
      std::string smallest, largest;
      for (const auto& f : pick.inputs) {
        if (smallest.empty() || icmp_.Compare(f.smallest, smallest) < 0) {
          smallest = f.smallest;
        }
        if (largest.empty() || icmp_.Compare(f.largest, largest) > 0) {
          largest = f.largest;
        }
      }
      pick.next_inputs = versions_->OverlappingFiles(
          level + 1, ExtractUserKey(smallest), ExtractUserKey(largest));
      LO_RETURN_IF_ERROR(DoCompaction(pick));
    }
  }
  return Status::OK();
}

DB::Stats DB::GetStats() const {
  auto guard = Guard();
  Stats stats = stats_;
  if (block_cache_ != nullptr) {
    Cache::Stats cache = block_cache_->GetStats();
    stats.block_cache_hits = cache.hits;
    stats.block_cache_misses = cache.misses;
    stats.block_cache_evictions = cache.evictions;
    stats.block_cache_inserts = cache.inserts;
    stats.block_cache_bytes = cache.charge;
  }
  Cache::Stats tables = table_cache_.GetStats();
  stats.table_cache_hits = tables.hits;
  stats.table_cache_misses = tables.misses;
  for (int level = 0; level < kNumLevels; level++) {
    stats.files_per_level[level] = versions_->NumLevelFiles(level);
    stats.bytes_per_level[level] = versions_->LevelBytes(level);
  }
  stats.memtable_bytes = mem_->ApproximateMemoryUsage();
  return stats;
}

}  // namespace lo::storage
