#include "storage/db.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"
#include "storage/filename.h"

namespace lo::storage {
namespace {

uint64_t SteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Keeps the memtable alive for as long as its iterator (a flush may
/// retire the memtable while a DB iterator still walks it).
class OwningMemIterator : public Iterator {
 public:
  explicit OwningMemIterator(std::shared_ptr<ShardedMemTable> mem)
      : mem_(std::move(mem)), iter_(mem_->NewIterator()) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(std::string_view target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  std::string_view key() const override { return iter_->key(); }
  std::string_view value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<ShardedMemTable> mem_;
  std::unique_ptr<Iterator> iter_;
};

/// Keeps the Table shared_ptr alive for as long as its iterator.
class OwningTableIterator : public Iterator {
 public:
  explicit OwningTableIterator(std::shared_ptr<Table> table, bool fill_cache = true)
      : table_(std::move(table)), iter_(table_->NewIterator(fill_cache)) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(std::string_view target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  std::string_view key() const override { return iter_->key(); }
  std::string_view value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<Table> table_;
  std::unique_ptr<Iterator> iter_;
};

/// Concatenation over the sorted, non-overlapping files of one level >= 1.
class LevelIterator : public Iterator {
 public:
  LevelIterator(TableCache* cache, std::vector<FileMetaData> files)
      : cache_(cache), files_(std::move(files)) {}

  bool Valid() const override { return current_ != nullptr && current_->Valid(); }

  void SeekToFirst() override {
    index_ = 0;
    OpenCurrent();
    if (current_ != nullptr) current_->SeekToFirst();
    SkipExhausted();
  }

  void Seek(std::string_view target) override {
    // First file whose largest key >= target.
    index_ = files_.size();
    for (size_t i = 0; i < files_.size(); i++) {
      if (icmp_.Compare(files_[i].largest, target) >= 0) {
        index_ = i;
        break;
      }
    }
    OpenCurrent();
    if (current_ != nullptr) current_->Seek(target);
    SkipExhausted();
  }

  void Next() override {
    current_->Next();
    SkipExhausted();
  }

  std::string_view key() const override { return current_->key(); }
  std::string_view value() const override { return current_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return current_ != nullptr ? current_->status() : Status::OK();
  }

 private:
  void OpenCurrent() {
    current_.reset();
    if (index_ >= files_.size()) return;
    auto table = cache_->Get(files_[index_].number);
    if (!table.ok()) {
      status_ = table.status();
      return;
    }
    current_ = std::make_unique<OwningTableIterator>(std::move(table).value());
  }

  void SkipExhausted() {
    while (current_ != nullptr && !current_->Valid() && status_.ok()) {
      index_++;
      OpenCurrent();
      if (current_ != nullptr) current_->SeekToFirst();
    }
  }

  TableCache* cache_;
  std::vector<FileMetaData> files_;
  size_t index_ = 0;
  std::unique_ptr<Iterator> current_;
  InternalKeyComparator icmp_;
  Status status_;
};

/// User-facing iterator: resolves versions and tombstones at a snapshot.
class DBIter : public Iterator {
 public:
  DBIter(std::unique_ptr<Iterator> internal, SequenceNumber sequence)
      : internal_(std::move(internal)), sequence_(sequence) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    internal_->SeekToFirst();
    FindNextUserEntry(/*skipping=*/false);
  }

  void Seek(std::string_view target) override {
    internal_->Seek(MakeInternalKey(target, sequence_, kValueTypeForSeek));
    FindNextUserEntry(/*skipping=*/false);
  }

  void Next() override {
    LO_CHECK(valid_);
    skip_key_ = key_;
    internal_->Next();
    FindNextUserEntry(/*skipping=*/true);
  }

  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }
  Status status() const override { return internal_->status(); }

 private:
  // Advances to the newest visible, non-deleted version of the next user
  // key. If `skipping`, entries equal to skip_key_ are passed over.
  void FindNextUserEntry(bool skipping) {
    valid_ = false;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) {
        internal_->Next();
        continue;
      }
      if (parsed.sequence > sequence_ ||
          (skipping && parsed.user_key == skip_key_)) {
        internal_->Next();
        continue;
      }
      if (parsed.type == ValueType::kDeletion) {
        // Tombstone shadows all older versions of this key.
        skip_key_.assign(parsed.user_key);
        skipping = true;
        internal_->Next();
        continue;
      }
      key_.assign(parsed.user_key);
      value_.assign(internal_->value());
      valid_ = true;
      return;
    }
  }

  std::unique_ptr<Iterator> internal_;
  SequenceNumber sequence_;
  bool valid_ = false;
  std::string key_;
  std::string value_;
  std::string skip_key_;
};

}  // namespace

DB::DB(Options options, std::string name)
    : options_(options),
      name_(std::move(name)),
      block_cache_(options.block_cache_bytes > 0
                       ? std::make_unique<Cache>(options.block_cache_bytes,
                                                 options.block_cache_shard_bits)
                       : nullptr),
      table_cache_(options.env, name_, block_cache_.get()),
      versions_(std::make_unique<VersionSet>(options.env, name_, &table_cache_)) {}

DB::~DB() {
  if (bg_thread_.joinable()) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      bg_stop_ = true;
    }
    bg_work_cv_.notify_all();
    bg_thread_.join();
    // Unflushed imm contents are covered by their WALs (the log floor
    // never advanced past them), so recovery replays them on reopen.
  }
}

Result<std::unique_ptr<DB>> DB::Open(const Options& options, std::string name) {
  LO_CHECK_MSG(options.env != nullptr, "Options::env is required");
  LO_CHECK_MSG(!options.background_maintenance || options.serialize_access,
               "background_maintenance requires serialize_access");
  std::unique_ptr<DB> db(new DB(options, std::move(name)));
  LO_RETURN_IF_ERROR(db->Initialize());
  return db;
}

Status DB::Initialize() {
  Env* env = options_.env;
  LO_RETURN_IF_ERROR(env->CreateDir(name_));
  mem_ = std::make_shared<ShardedMemTable>(options_.memtable_shards);
  stats_.memtable_shards = mem_->shard_count();

  // Resolve the L0 tier ladder. Each flush emits up to one file per
  // shard, so the auto trigger scales with the shard count to keep the
  // trigger at ~4 flushes regardless of sharding.
  int trigger = options_.l0_compaction_trigger > 0
                    ? options_.l0_compaction_trigger
                    : 4 * mem_->shard_count();
  versions_->SetL0CompactionTrigger(trigger);
  l0_slowdown_trigger_ = options_.l0_slowdown_trigger > 0
                             ? options_.l0_slowdown_trigger
                             : 2 * trigger;
  l0_stop_trigger_ =
      options_.l0_stop_trigger > 0 ? options_.l0_stop_trigger : 3 * trigger;

  if (options_.compaction_rate_bytes_per_sec > 0) {
    rate_limiter_ =
        std::make_unique<RateLimiter>(options_.compaction_rate_bytes_per_sec);
  }
  int parallelism = std::max(options_.subcompactions, mem_->shard_count() > 1
                                                          ? std::min(mem_->shard_count(), 4)
                                                          : 1);
  if (parallelism > 1) {
    // Workers beyond the calling thread (RunAll participates).
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(parallelism - 1));
  }

  if (env->FileExists(CurrentFileName(name_))) {
    stats_.recoveries++;
    LO_RETURN_IF_ERROR(versions_->Recover());
    if (versions_->recovered_torn_manifest_tail()) stats_.manifest_torn_tails++;
    // WAL files written after the last manifest record may carry numbers
    // the manifest never learned about; never reuse them.
    LO_ASSIGN_OR_RETURN(auto names, env->ListDir(name_));
    for (const auto& n : names) {
      uint64_t number = 0;
      FileKind kind = ParseFileName(n, &number);
      if (kind != FileKind::kUnknown) {
        versions_->EnsureFileNumberAbove(number);
      }
      if (kind == FileKind::kWalPool) {
        if (options_.wal_recycle) {
          wal_pool_.push_back(number);  // adopt parked WALs across restarts
        } else {
          env->DeleteFile(name_ + "/" + n).ok();
        }
      }
    }
    LO_RETURN_IF_ERROR(versions_->WriteSnapshot());  // opens manifest writer
    LO_RETURN_IF_ERROR(RecoverWal());
  } else if (!options_.create_if_missing) {
    return Status::NotFound("db does not exist: " + name_);
  } else {
    LO_RETURN_IF_ERROR(versions_->WriteSnapshot());
  }
  LO_RETURN_IF_ERROR(NewWal());
  VersionEdit edit;
  edit.SetLogNumber(wal_number_);
  LO_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  LO_RETURN_IF_ERROR(DeleteObsoleteFiles());
  if (options_.background_maintenance) {
    bg_thread_ = std::thread([this] { BackgroundLoop(); });
  }
  return Status::OK();
}

Status DB::RecoverWal() {
  Env* env = options_.env;
  LO_ASSIGN_OR_RETURN(auto names, env->ListDir(name_));
  std::vector<uint64_t> logs;
  for (const auto& n : names) {
    uint64_t number = 0;
    if (ParseFileName(n, &number) == FileKind::kWal &&
        number >= versions_->log_number()) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());
  bool saw_torn_tail = false;
  for (uint64_t log : logs) {
    LO_ASSIGN_OR_RETURN(auto file, env->NewSequentialFile(WalFileName(name_, log)));
    wal::LogReader reader(std::move(file));
    std::string record;
    while (reader.ReadRecord(&record)) {
      if (saw_torn_tail) {
        // Records after a torn tail in an *earlier* log would replay
        // out of commit order. The log floor makes this unreachable
        // (a later log only gets records once a flush advanced the
        // floor past the earlier one), so reaching here means the
        // directory is inconsistent, not crashed.
        return Status::Corruption("WAL records follow a torn tail");
      }
      auto batch = WriteBatch::FromRep(record);
      if (!batch.ok()) {
        // CRC-valid but undecodable: torn writes never pass the
        // checksum, so this is real corruption, not a crash point.
        return Status::Corruption("undecodable WAL record in log " +
                                  std::to_string(log));
      }
      stats_.wal_records_replayed++;
      SequenceNumber base = batch->sequence();
      LO_RETURN_IF_ERROR(batch->InsertInto(base, mem_.get()));
      SequenceNumber last = base + batch->Count() - 1;
      if (last > versions_->last_sequence()) versions_->SetLastSequence(last);
      if (mem_->ApproximateMemoryUsage() > options_.write_buffer_size) {
        LO_RETURN_IF_ERROR(FlushMemTable());
      }
    }
    if (reader.hit_corruption()) {
      // A torn tail marks the crash point: the batch it held was never
      // acknowledged (AddRecord+Sync had not returned), so truncating
      // the replay here loses nothing that was committed.
      stats_.wal_torn_tails++;
      saw_torn_tail = true;
    }
  }
  if (mem_->entries() > 0) {
    LO_RETURN_IF_ERROR(FlushMemTable());
  }
  return Status::OK();
}

Status DB::NewWal() {
  wal_number_ = versions_->NewFileNumber();
  std::string path = WalFileName(name_, wal_number_);
  WritableFileOptions wfo;
  wfo.preallocate_bytes = options_.wal_preallocate_bytes;
  std::unique_ptr<WritableFile> file;
  if (options_.wal_recycle && !wal_pool_.empty()) {
    // Adopt a parked (logically empty, see RetireWal) pool file so the
    // new WAL inherits its allocation instead of growing from zero.
    uint64_t pooled = wal_pool_.back();
    Status renamed =
        options_.env->RenameFile(WalPoolFileName(name_, pooled), path);
    if (renamed.ok()) {
      wal_pool_.pop_back();
      wfo.reuse = true;
      LO_ASSIGN_OR_RETURN(file, options_.env->NewWritableFile(path, wfo));
      stats_.wal_recycles++;
    }
  }
  if (file == nullptr) {
    LO_ASSIGN_OR_RETURN(file, options_.env->NewWritableFile(path, wfo));
    if (wfo.preallocate_bytes > 0) stats_.wal_preallocations++;
  }
  wal_ = std::make_unique<wal::Writer>(std::move(file));
  // Everything at or below wal_number_ - 1 is captured by SSTables after
  // the next flush; record the log floor now.
  return Status::OK();
}

void DB::RetireWal(uint64_t number) {
  // All best-effort: a leftover log below the floor is ignored by
  // recovery and reaped by the next DeleteObsoleteFiles pass.
  std::string path = WalFileName(name_, number);
  if (options_.wal_recycle && wal_pool_.size() < 2) {
    // Truncate the logical content *before* parking so a pool file can
    // never carry stale records into a future WAL — a crash between
    // these steps leaves either an empty .log below the floor or an
    // empty POOL file, both harmless to replay.
    WritableFileOptions wfo;
    wfo.reuse = true;
    auto cleared = options_.env->NewWritableFile(path, wfo);
    if (cleared.ok()) {
      (*cleared)->Sync().ok();
      (*cleared)->Close().ok();
      if (options_.env->RenameFile(path, WalPoolFileName(name_, number)).ok()) {
        wal_pool_.push_back(number);
        return;
      }
    }
  }
  options_.env->DeleteFile(path).ok();
}

Status DB::RotateWal() {
  if (mem_->entries() > 0) {
    if (options_.background_maintenance) {
      // The memtable holds exactly the acknowledged prefix; hand it to
      // the maintenance thread (its WAL — the torn one — stays until
      // that flush lands, and a crash before then replays its intact
      // prefix).
      LO_RETURN_IF_ERROR(SwitchMemTable());
      bg_work_cv_.notify_one();
      return Status::OK();
    }
    // Inline mode: flushing persists the acknowledged prefix and
    // rotates to a fresh WAL.
    return FlushMemTable();
  }
  uint64_t old_wal = wal_number_;
  LO_RETURN_IF_ERROR(NewWal());
  if (imm_.empty()) {
    // With unflushed imms the log floor must stay at the oldest imm's
    // WAL; their flushes will advance it.
    VersionEdit edit;
    edit.SetLogNumber(wal_number_);
    LO_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  }
  // The abandoned WAL's tail may be torn — delete, never recycle.
  options_.env->DeleteFile(WalFileName(name_, old_wal)).ok();
  return Status::OK();
}

Status DB::Put(const WriteOptions& opts, std::string_view key, std::string_view value) {
  auto guard = Guard();
  stats_.puts++;
  WriteBatch batch;
  batch.Put(key, value);
  return WriteLocked(opts, &batch, guard);
}

Status DB::Delete(const WriteOptions& opts, std::string_view key) {
  auto guard = Guard();
  stats_.deletes++;
  WriteBatch batch;
  batch.Delete(key);
  return WriteLocked(opts, &batch, guard);
}

Status DB::Write(const WriteOptions& opts, WriteBatch* batch) {
  auto guard = Guard();
  return WriteLocked(opts, batch, guard);
}

Status DB::StallIfNeeded(std::unique_lock<std::mutex>& guard) {
  // Tier ladder (background mode only):
  //   L0 < slowdown                  -> free flow
  //   slowdown <= L0 < stop          -> one delayed write (soft tier)
  //   L0 >= stop or imm backlog full -> block until maintenance catches up
  bool took_soft_delay = false;
  for (;;) {
    if (!bg_error_.ok()) return bg_error_;
    int l0 = versions_->NumLevelFiles(0);
    if (l0 >= l0_stop_trigger_ || imm_.size() >= 2) {
      stats_.stall_hard++;
      uint64_t start = SteadyMicros();
      bg_work_cv_.notify_one();
      bg_done_cv_.wait(guard);
      stats_.stall_us += SteadyMicros() - start;
      continue;  // re-evaluate from the top
    }
    if (!took_soft_delay && l0 >= l0_slowdown_trigger_) {
      // Cede the mutex for one bounded delay so compaction gains ground
      // gradually instead of every writer slamming into the hard stop.
      stats_.stall_soft++;
      took_soft_delay = true;
      uint64_t start = SteadyMicros();
      guard.unlock();
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.slowdown_delay_us));
      guard.lock();
      stats_.stall_us += SteadyMicros() - start;
      continue;  // state may have moved while unlocked
    }
    return Status::OK();
  }
}

Status DB::SwitchMemTable() {
  ImmMemTable imm;
  imm.mem = std::move(mem_);
  imm.wal_number = wal_number_;
  mem_ = std::make_shared<ShardedMemTable>(options_.memtable_shards);
  Status s = NewWal();
  if (!s.ok()) {
    // Roll back so the DB keeps accepting writes against the old state.
    mem_ = std::move(imm.mem);
    wal_number_ = imm.wal_number;
    return s;
  }
  imm_.push_back(std::move(imm));
  return Status::OK();
}

Status DB::WriteLocked(const WriteOptions& opts, WriteBatch* batch,
                       std::unique_lock<std::mutex>& guard) {
  if (batch->Count() == 0) return Status::OK();
  if (options_.background_maintenance) {
    LO_RETURN_IF_ERROR(StallIfNeeded(guard));
  }
  if (wal_failed_) {
    // The live WAL tail may be torn by the earlier failure; appending to
    // it would corrupt replay. Rotate first, fail the write if we can't.
    LO_RETURN_IF_ERROR(RotateWal());
    wal_failed_ = false;
    stats_.wal_rotations_after_error++;
  }
  SequenceNumber base = versions_->last_sequence() + 1;
  batch->SetSequence(base);
  Status wal_status = wal_->AddRecord(batch->rep());
  if (wal_status.ok() && opts.sync) {
    wal_status = wal_->Sync();
    if (wal_status.ok()) stats_.wal_syncs++;
  }
  if (!wal_status.ok()) {
    // Surface the failure to the commit caller — the batch is NOT
    // applied (not in the memtable), so the acknowledged state and the
    // recoverable state stay identical.
    stats_.wal_write_failures++;
    wal_failed_ = true;
    return wal_status;
  }
  LO_RETURN_IF_ERROR(batch->InsertInto(base, mem_.get()));
  versions_->SetLastSequence(base + batch->Count() - 1);
  if (mem_->ApproximateMemoryUsage() > options_.write_buffer_size) {
    if (options_.background_maintenance) {
      // Hand the full memtable to the maintenance thread; the stall
      // tiers above bound how far writes can outrun it.
      LO_RETURN_IF_ERROR(SwitchMemTable());
      bg_work_cv_.notify_one();
    } else {
      write_trace_ = opts.trace;
      Status s = FlushMemTable();
      if (s.ok()) s = MaybeCompact();
      write_trace_ = {};
      LO_RETURN_IF_ERROR(s);
    }
  }
  return Status::OK();
}

Result<std::string> DB::Get(const ReadOptions& opts, std::string_view key) {
  auto guard = Guard();
  stats_.gets++;
  SequenceNumber seq =
      opts.snapshot != nullptr ? opts.snapshot->sequence() : versions_->last_sequence();

  std::string value;
  Status s;
  if (mem_->Get(key, seq, &value, &s)) {
    if (s.ok()) return value;
    return s;  // NotFound tombstone (or corruption)
  }
  // Unflushed imms, newest first (each one is older than the active
  // memtable but newer than anything on disk).
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {
    if (it->mem->Get(key, seq, &value, &s)) {
      if (s.ok()) return value;
      return s;
    }
  }

  std::string lookup = MakeInternalKey(key, seq, kValueTypeForSeek);
  // L0: newest file first; deeper levels: at most one candidate by range.
  for (int level = 0; level < kNumLevels; level++) {
    for (const auto& meta : versions_->files(level)) {
      if (key < ExtractUserKey(meta.smallest) || key > ExtractUserKey(meta.largest)) {
        continue;
      }
      LO_ASSIGN_OR_RETURN(auto table, table_cache_.Get(meta.number));
      bool found = false;
      bool deleted = false;
      LO_RETURN_IF_ERROR(table->InternalGet(
          lookup, [&](std::string_view ikey, std::string_view v) {
            ParsedInternalKey parsed;
            if (!ParseInternalKey(ikey, &parsed)) return;
            if (parsed.user_key != key) return;
            found = true;
            if (parsed.type == ValueType::kDeletion) {
              deleted = true;
            } else {
              value.assign(v);
            }
          }));
      if (found) {
        if (deleted) return Status::NotFound("");
        return value;
      }
    }
  }
  return Status::NotFound("");
}

std::unique_ptr<Iterator> DB::NewIterator(const ReadOptions& opts) {
  auto guard = Guard();
  SequenceNumber seq =
      opts.snapshot != nullptr ? opts.snapshot->sequence() : versions_->last_sequence();
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<OwningMemIterator>(mem_));
  for (const auto& imm : imm_) {
    children.push_back(std::make_unique<OwningMemIterator>(imm.mem));
  }
  for (const auto& meta : versions_->files(0)) {
    auto table = table_cache_.Get(meta.number);
    if (!table.ok()) return NewEmptyIterator(table.status());
    children.push_back(std::make_unique<OwningTableIterator>(std::move(table).value()));
  }
  for (int level = 1; level < kNumLevels; level++) {
    if (versions_->NumLevelFiles(level) == 0) continue;
    children.push_back(
        std::make_unique<LevelIterator>(&table_cache_, versions_->files(level)));
  }
  auto merged = NewMergingIterator(icmp_, std::move(children));
  return std::make_unique<DBIter>(std::move(merged), seq);
}

const Snapshot* DB::GetSnapshot() {
  auto guard = Guard();
  auto* snapshot = new Snapshot(versions_->last_sequence());
  snapshots_.insert(snapshot->sequence());
  return snapshot;
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  auto guard = Guard();
  auto it = snapshots_.find(snapshot->sequence());
  LO_CHECK_MSG(it != snapshots_.end(), "double snapshot release");
  snapshots_.erase(it);
  delete snapshot;
}

SequenceNumber DB::SmallestSnapshot() const {
  return snapshots_.empty() ? versions_->last_sequence() : *snapshots_.begin();
}

void DB::RecordInstantSpan(const char* name) {
  if (!obs::Tracing(options_.tracer, write_trace_) || !options_.clock) return;
  int64_t now = options_.clock();
  options_.tracer->RecordChild(write_trace_, name, options_.node_label, now, now);
}

Status DB::BuildL0Files(const ShardedMemTable& mem, std::vector<FileMetaData>* files) {
  std::vector<int> shards;
  for (int i = 0; i < mem.shard_count(); i++) {
    if (mem.shard(i).entries() > 0) shards.push_back(i);
  }
  files->assign(shards.size(), FileMetaData{});
  // Mint file numbers in shard order up front so output numbering stays
  // deterministic even when the builds below run in parallel.
  for (auto& meta : *files) meta.number = versions_->NewFileNumber();

  std::vector<Status> statuses(shards.size());
  auto build = [&](size_t i) {
    const MemTable& shard = mem.shard(shards[i]);
    FileMetaData& meta = (*files)[i];
    auto file = options_.env->NewWritableFile(TableFileName(name_, meta.number));
    if (!file.ok()) {
      statuses[i] = file.status();
      return;
    }
    TableBuilder builder(options_.table, std::move(file).value());
    auto iter = shard.NewIterator();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      if (meta.smallest.empty()) meta.smallest.assign(iter->key());
      meta.largest.assign(iter->key());
      builder.Add(iter->key(), iter->value());
    }
    statuses[i] = builder.Finish();
    meta.file_size = builder.file_size();
  };
  if (pool_ != nullptr && shards.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards.size());
    for (size_t i = 0; i < shards.size(); i++) tasks.push_back([&, i] { build(i); });
    pool_->RunAll(std::move(tasks));
  } else {
    for (size_t i = 0; i < shards.size(); i++) build(i);
  }
  for (const auto& s : statuses) LO_RETURN_IF_ERROR(s);
  return Status::OK();
}

Status DB::FlushMemTable() {
  if (mem_->entries() == 0) return Status::OK();
  stats_.flushes++;
  RecordInstantSpan("memtable_flush");
  std::vector<FileMetaData> files;
  LO_RETURN_IF_ERROR(BuildL0Files(*mem_, &files));

  uint64_t old_wal = wal_number_;
  LO_RETURN_IF_ERROR(NewWal());
  VersionEdit edit;
  stats_.flush_output_files += files.size();
  for (auto& meta : files) edit.AddFile(0, std::move(meta));
  edit.SetLogNumber(wal_number_);
  LO_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  mem_ = std::make_shared<ShardedMemTable>(options_.memtable_shards);
  // Best effort: the old log is below the floor recorded above, so
  // recovery ignores it; RetireWal recycles or deletes it. Nothing
  // user-visible depends on that succeeding — unlike the WAL and
  // manifest writes above, whose failures all propagate.
  RetireWal(old_wal);
  return Status::OK();
}

Status DB::FlushOldestImm(std::unique_lock<std::mutex>& lock) {
  LO_CHECK(!imm_.empty());
  // The shared_ptr keeps the memtable alive while the lock is dropped;
  // it is immutable from the moment it left the write path.
  std::shared_ptr<ShardedMemTable> mem = imm_.front().mem;
  uint64_t imm_wal = imm_.front().wal_number;
  stats_.flushes++;

  lock.unlock();
  std::vector<FileMetaData> files;
  Status build = BuildL0Files(*mem, &files);
  lock.lock();
  LO_RETURN_IF_ERROR(build);

  VersionEdit edit;
  stats_.flush_output_files += files.size();
  for (auto& meta : files) edit.AddFile(0, std::move(meta));
  // The log floor advances to the next unflushed imm's WAL (everything
  // below it is now in L0), or to the live WAL when the queue drains.
  edit.SetLogNumber(imm_.size() > 1 ? imm_[1].wal_number : wal_number_);
  LO_RETURN_IF_ERROR(versions_->LogAndApply(&edit));
  imm_.pop_front();
  RetireWal(imm_wal);
  return DeleteObsoleteFiles();
}

void DB::BackgroundLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    bg_work_cv_.wait(lock, [this] {
      return bg_stop_ || (bg_error_.ok() &&
                          (!imm_.empty() || versions_->NeedsCompaction()));
    });
    if (bg_stop_) return;
    bg_busy_ = true;
    // Flushes before compactions: the imm backlog gates writers harder
    // (two pending imms is a hard stall) than L0 depth does.
    Status s = !imm_.empty() ? FlushOldestImm(lock)
                             : DoCompaction(versions_->PickCompaction(), &lock);
    bg_busy_ = false;
    if (!s.ok()) bg_error_ = s;
    bg_done_cv_.notify_all();
  }
}

Status DB::MaybeCompact() {
  while (versions_->NeedsCompaction()) {
    LO_RETURN_IF_ERROR(DoCompaction(versions_->PickCompaction(), nullptr));
  }
  return Status::OK();
}

Status DB::SubCompact(const std::vector<FileMetaData>& input_metas,
                      std::string_view begin, std::string_view end,
                      SequenceNumber smallest_snapshot, int output_level,
                      std::vector<FileMetaData>* outputs, uint64_t* bytes_written) {
  std::vector<std::unique_ptr<Iterator>> inputs;
  for (const auto& meta : input_metas) {
    // Files entirely outside [begin, end) contribute nothing to this
    // sub-range; skip opening an iterator over them.
    if (!end.empty() && ExtractUserKey(meta.smallest) >= end) continue;
    if (!begin.empty() && ExtractUserKey(meta.largest) < begin) continue;
    LO_ASSIGN_OR_RETURN(auto table, table_cache_.Get(meta.number));
    // fill_cache=false: a compaction reads each input block exactly once;
    // inserting them would evict the read path's hot set for nothing.
    inputs.push_back(
        std::make_unique<OwningTableIterator>(std::move(table), /*fill_cache=*/false));
  }
  auto merged = NewMergingIterator(icmp_, std::move(inputs));
  if (begin.empty()) {
    merged->SeekToFirst();
  } else {
    // kMaxSequenceNumber sorts first within a user key, so this lands on
    // the newest entry of `begin` — the sub-range owns the key's entire
    // version history.
    merged->Seek(MakeInternalKey(begin, kMaxSequenceNumber, kValueTypeForSeek));
  }

  std::unique_ptr<TableBuilder> builder;
  FileMetaData out_meta;
  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    LO_RETURN_IF_ERROR(builder->Finish());
    out_meta.file_size = builder->file_size();
    *bytes_written += out_meta.file_size;
    outputs->push_back(out_meta);
    builder.reset();
    return Status::OK();
  };

  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  uint64_t uncharged_bytes = 0;

  for (; merged->Valid(); merged->Next()) {
    std::string_view ikey = merged->key();
    ParsedInternalKey parsed;
    bool drop = false;
    if (!ParseInternalKey(ikey, &parsed)) {
      // Keep unparseable entries verbatim; surface them to reads.
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    } else {
      if (!end.empty() && parsed.user_key >= end) break;  // next sub-range's keys
      if (!has_current_user_key || parsed.user_key != current_user_key) {
        current_user_key.assign(parsed.user_key);
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }
      if (last_sequence_for_key <= smallest_snapshot) {
        // Shadowed by a newer entry that every snapshot already sees.
        drop = true;
      } else if (parsed.type == ValueType::kDeletion &&
                 parsed.sequence <= smallest_snapshot &&
                 versions_->IsBaseLevelForKey(output_level, parsed.user_key)) {
        // Tombstone with nothing underneath it to shadow.
        drop = true;
      }
      last_sequence_for_key = parsed.sequence;
    }

    // Rate limiting charges processed bytes (kept or dropped — both cost
    // I/O) in coarse chunks so the token bucket isn't hammered per key.
    uncharged_bytes += ikey.size() + merged->value().size();
    if (rate_limiter_ != nullptr && uncharged_bytes >= 128 * 1024) {
      rate_limiter_->Request(uncharged_bytes);
      uncharged_bytes = 0;
    }

    if (drop) continue;
    if (builder == nullptr) {
      out_meta = FileMetaData{};
      out_meta.number = versions_->NewFileNumber();
      LO_ASSIGN_OR_RETURN(
          auto file, options_.env->NewWritableFile(TableFileName(name_, out_meta.number)));
      builder = std::make_unique<TableBuilder>(options_.table, std::move(file));
      out_meta.smallest.assign(ikey);
    }
    out_meta.largest.assign(ikey);
    builder->Add(ikey, merged->value());
    if (builder->file_size() >= options_.max_output_file_bytes) {
      LO_RETURN_IF_ERROR(finish_output());
    }
  }
  LO_RETURN_IF_ERROR(merged->status());
  if (rate_limiter_ != nullptr && uncharged_bytes > 0) {
    rate_limiter_->Request(uncharged_bytes);
  }
  return finish_output();
}

Status DB::DoCompaction(const VersionSet::CompactionPick& pick,
                        std::unique_lock<std::mutex>* lock) {
  if (pick.level < 0) return Status::OK();
  stats_.compactions++;
  stats_.compactions_inflight++;
  RecordInstantSpan("compaction");
  int output_level = pick.level + 1;
  SequenceNumber smallest_snapshot = SmallestSnapshot();

  std::vector<FileMetaData> input_metas;
  input_metas.reserve(pick.inputs.size() + pick.next_inputs.size());
  for (const auto& meta : pick.inputs) input_metas.push_back(meta);
  for (const auto& meta : pick.next_inputs) input_metas.push_back(meta);
  for (const auto& meta : input_metas) stats_.compaction_bytes_read += meta.file_size;

  // Partition the input key space into disjoint sub-ranges along file
  // boundary user keys. Splitting on user keys (never inside one) keeps
  // each key's whole version history in a single sub-range, so the
  // per-range shadowing/tombstone logic sees exactly what a
  // single-threaded pass would.
  std::vector<std::string> splits;
  int want = (pool_ != nullptr && options_.subcompactions > 1)
                 ? std::min<int>(options_.subcompactions,
                                 static_cast<int>(input_metas.size()))
                 : 1;
  if (want > 1) {
    std::vector<std::string> keys;
    keys.reserve(input_metas.size() * 2);
    for (const auto& meta : input_metas) {
      keys.emplace_back(ExtractUserKey(meta.smallest));
      keys.emplace_back(ExtractUserKey(meta.largest));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    // Interior boundaries only: keys[0] would make sub-range 0 empty.
    for (int i = 1; i < want; i++) {
      const std::string& k = keys[i * keys.size() / want];
      if (k != keys.front() && (splits.empty() || k > splits.back())) {
        splits.push_back(k);
      }
    }
  }
  size_t n_ranges = splits.size() + 1;

  struct SubResult {
    std::vector<FileMetaData> outputs;
    uint64_t bytes = 0;
    Status status;
  };
  std::vector<SubResult> results(n_ranges);
  auto run_range = [&](size_t i) {
    std::string_view begin = (i == 0) ? std::string_view() : std::string_view(splits[i - 1]);
    std::string_view end =
        (i == splits.size()) ? std::string_view() : std::string_view(splits[i]);
    results[i].status = SubCompact(input_metas, begin, end, smallest_snapshot,
                                   output_level, &results[i].outputs, &results[i].bytes);
  };

  // The workers read versions_ and table_cache_ without the DB mutex;
  // safe under the single-maintenance-executor invariant (no concurrent
  // version mutation while a compaction is in flight).
  if (lock != nullptr) lock->unlock();
  if (n_ranges > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n_ranges);
    for (size_t i = 0; i < n_ranges; i++) tasks.push_back([&, i] { run_range(i); });
    pool_->RunAll(std::move(tasks));
  } else {
    run_range(0);
  }
  if (lock != nullptr) lock->lock();
  if (n_ranges > 1) stats_.subcompactions_run += n_ranges;

  VersionEdit edit;
  Status s;
  for (auto& r : results) {
    if (!r.status.ok() && s.ok()) s = r.status;
    stats_.compaction_bytes_written += r.bytes;
    // Sub-ranges are disjoint and processed in key order, so appending
    // their outputs in range order keeps level files sorted.
    for (auto& meta : r.outputs) edit.AddFile(output_level, std::move(meta));
  }
  if (!s.ok()) {
    stats_.compactions_inflight--;
    return s;
  }

  for (const auto& meta : pick.inputs) edit.DeleteFile(pick.level, meta.number);
  for (const auto& meta : pick.next_inputs) edit.DeleteFile(output_level, meta.number);
  s = versions_->LogAndApply(&edit);
  stats_.compactions_inflight--;
  LO_RETURN_IF_ERROR(s);
  // The inputs are dead the moment the edit commits: evict them now so
  // they stop pinning open file handles and metadata blocks even if the
  // directory sweep below cannot delete them yet.
  for (const auto& meta : pick.inputs) table_cache_.Evict(meta.number);
  for (const auto& meta : pick.next_inputs) table_cache_.Evict(meta.number);
  return DeleteObsoleteFiles();
}

Status DB::DeleteObsoleteFiles() {
  Env* env = options_.env;
  auto live_vec = versions_->LiveFiles();
  std::set<uint64_t> live(live_vec.begin(), live_vec.end());
  LO_ASSIGN_OR_RETURN(auto names, env->ListDir(name_));
  for (const auto& n : names) {
    uint64_t number = 0;
    switch (ParseFileName(n, &number)) {
      case FileKind::kTable:
        if (!live.contains(number)) {
          table_cache_.Evict(number);
          env->DeleteFile(name_ + "/" + n).ok();
        }
        break;
      case FileKind::kWal: {
        // WALs backing unflushed imms are at or above the manifest log
        // floor, but guard explicitly anyway — losing one loses writes.
        bool backs_imm = false;
        for (const auto& imm : imm_) backs_imm |= (imm.wal_number == number);
        if (number < versions_->log_number() && number != wal_number_ && !backs_imm) {
          env->DeleteFile(name_ + "/" + n).ok();
        }
        break;
      }
      case FileKind::kWalPool:
        // Parked recycled WALs; kept while recycling is on. Initialize
        // already reaped them when it is off.
        if (!options_.wal_recycle) env->DeleteFile(name_ + "/" + n).ok();
        break;
      default:
        break;  // CURRENT, manifests, unknown: kept
    }
  }
  return Status::OK();
}

Status DB::CompactAll() {
  auto guard = Guard();
  if (options_.background_maintenance) {
    // Hand the memtable to the maintenance thread and wait until it has
    // drained every imm and every pending compaction; from then on this
    // thread is the sole maintenance executor (the bg thread has nothing
    // left to pick up while we hold the mutex).
    if (mem_->entries() > 0) LO_RETURN_IF_ERROR(SwitchMemTable());
    bg_work_cv_.notify_all();
    bg_done_cv_.wait(guard, [this] {
      return !bg_error_.ok() ||
             (!bg_busy_ && imm_.empty() && !versions_->NeedsCompaction());
    });
    LO_RETURN_IF_ERROR(bg_error_);
  } else {
    LO_RETURN_IF_ERROR(FlushMemTable());
  }
  for (int level = 0; level < kNumLevels - 1; level++) {
    while (versions_->NumLevelFiles(level) > 0) {
      VersionSet::CompactionPick pick;
      pick.level = level;
      pick.inputs = versions_->files(level);
      std::string smallest, largest;
      for (const auto& f : pick.inputs) {
        if (smallest.empty() || icmp_.Compare(f.smallest, smallest) < 0) {
          smallest = f.smallest;
        }
        if (largest.empty() || icmp_.Compare(f.largest, largest) > 0) {
          largest = f.largest;
        }
      }
      pick.next_inputs = versions_->OverlappingFiles(
          level + 1, ExtractUserKey(smallest), ExtractUserKey(largest));
      LO_RETURN_IF_ERROR(DoCompaction(pick, nullptr));
    }
  }
  return Status::OK();
}

DB::Stats DB::GetStats() const {
  auto guard = Guard();
  Stats stats = stats_;
  if (block_cache_ != nullptr) {
    Cache::Stats cache = block_cache_->GetStats();
    stats.block_cache_hits = cache.hits;
    stats.block_cache_misses = cache.misses;
    stats.block_cache_evictions = cache.evictions;
    stats.block_cache_inserts = cache.inserts;
    stats.block_cache_bytes = cache.charge;
  }
  Cache::Stats tables = table_cache_.GetStats();
  stats.table_cache_hits = tables.hits;
  stats.table_cache_misses = tables.misses;
  for (int level = 0; level < kNumLevels; level++) {
    stats.files_per_level[level] = versions_->NumLevelFiles(level);
    stats.bytes_per_level[level] = versions_->LevelBytes(level);
  }
  stats.memtable_bytes = mem_->ApproximateMemoryUsage();
  for (const auto& imm : imm_) stats.memtable_bytes += imm.mem->ApproximateMemoryUsage();
  if (rate_limiter_ != nullptr) {
    stats.compaction_throttle_us = rate_limiter_->throttled_us();
  }
  return stats;
}

}  // namespace lo::storage
