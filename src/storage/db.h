// MiniLSM public API — the persistence substrate of LambdaStore (the
// paper uses LevelDB in this role).
//
// Single-threaded by default: each simulated storage node owns one DB and
// the simulator serializes all access on a node. Flushes and compactions
// run synchronously (deterministically) inside the write path. The
// real-threaded execution path (runtime/executor.h + GroupCommitter)
// instead opens the DB with Options::serialize_access, which guards every
// public entry point with an internal mutex, and usually also with
// Options::background_maintenance, which moves flushes and compactions
// off the commit path onto a maintenance thread with soft-slowdown /
// hard-stop write shaping (see docs/minilsm.md "The write path").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"
#include "storage/rate_limiter.h"
#include "storage/version.h"
#include "storage/write_batch.h"

namespace lo::storage {

struct Options {
  Env* env = nullptr;  // required; not owned
  /// Memtable size that triggers a flush to L0.
  size_t write_buffer_size = 1 << 20;
  /// Max bytes of one compaction output file.
  uint64_t max_output_file_bytes = 2 << 20;
  TableOptions table;
  /// SSTable block cache (sharded LRU, charge = block bytes), shared by
  /// every table of this DB. Point reads and iterator seeks consult it
  /// before touching the Env; compaction reads bypass *insertion* so bulk
  /// scans don't flush the hot set. 0 disables caching entirely.
  size_t block_cache_bytes = 8 << 20;
  /// log2(shards) of the block cache: single-threaded sim nodes can set 0
  /// to spare the per-shard overhead; real-threaded nodes keep the
  /// default so lanes don't serialize on one mutex.
  int block_cache_shard_bits = 4;
  /// If false, Open fails when the DB does not exist yet.
  bool create_if_missing = true;
  /// Guards every public DB entry point with an internal mutex so real
  /// threads (execution lanes + the group-commit thread) can share one
  /// DB. Off by default: simulated nodes are single-threaded and skip
  /// the locking entirely.
  bool serialize_access = false;
  /// Memtable shards (rounded up to a power of two). Keys route by
  /// FNV-1a over the user key — the same hash family as execution-lane
  /// pinning — so each lane's working set concentrates in few shards.
  /// Shards flush in parallel (one L0 file per non-empty shard) and keep
  /// the per-shard skiplists shallow. 1 keeps the single-arena behavior.
  int memtable_shards = 1;
  /// Max parallel sub-compactions per compaction: the input key range is
  /// partitioned into up to this many disjoint sub-ranges, each merged
  /// by its own worker, all feeding one VersionEdit. 1 = sequential.
  int subcompactions = 1;
  /// Token-bucket limit on compaction bytes (read+write combined);
  /// spreads compaction I/O in time so foreground p99 stops spiking when
  /// a compaction kicks in. 0 = unlimited.
  uint64_t compaction_rate_bytes_per_sec = 0;
  /// Runs flushes and compactions on a dedicated maintenance thread
  /// instead of inline in the write path; commits only block when the L0
  /// stall tiers engage. Requires serialize_access (real threads). Off by
  /// default: inline maintenance keeps simulated nodes deterministic.
  bool background_maintenance = false;
  /// L0 file count where compaction starts. 0 = auto: 4 flushes' worth
  /// of files (4 * memtable_shards, since each flush writes one file per
  /// non-empty shard).
  int l0_compaction_trigger = 0;
  /// L0 file count where writes start taking one soft-slowdown delay
  /// each, giving compaction room before the hard stop. 0 = auto (2x the
  /// compaction trigger). Only meaningful with background_maintenance.
  int l0_slowdown_trigger = 0;
  /// L0 file count where writes block until compaction catches up.
  /// 0 = auto (3x the compaction trigger).
  int l0_stop_trigger = 0;
  /// Delay one write takes when the soft-slowdown tier is engaged.
  uint64_t slowdown_delay_us = 1000;
  /// Preallocation hint for new WAL files; kills the allocate-on-append
  /// metadata fsyncs on real filesystems. 0 = no preallocation.
  uint64_t wal_preallocate_bytes = 0;
  /// Park retired WAL files in a small pool (POOL-<n>) and recycle their
  /// allocation for future WALs instead of creating fresh files.
  bool wal_recycle = false;
  /// Records instant memtable_flush / compaction spans; nullptr disables.
  obs::Tracer* tracer = nullptr;
  /// Clock for span timestamps (storage has no sim dependency, so the
  /// owning node injects `[&sim]{ return sim.Now(); }`). Required if
  /// `tracer` is set.
  std::function<int64_t()> clock;
  /// Node label stamped on recorded spans.
  uint32_t node_label = 0;
};

/// A read view at a fixed sequence number. Obtained from DB::GetSnapshot.
class Snapshot {
 public:
  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class DB;
  explicit Snapshot(SequenceNumber seq) : sequence_(seq) {}
  SequenceNumber sequence_;
};

struct ReadOptions {
  /// nullptr reads the latest committed state.
  const Snapshot* snapshot = nullptr;
};

struct WriteOptions {
  /// Sync the WAL before acknowledging (durability barrier).
  bool sync = true;
  /// Sampled trace context; flush/compaction spans triggered by this
  /// write are parented under it.
  obs::TraceContext trace{};
};

class DB {
 public:
  /// Opens (and if needed creates) the database under `name`, replaying
  /// any WAL left by a crash.
  static Result<std::unique_ptr<DB>> Open(const Options& options, std::string name);

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;
  ~DB();

  Status Put(const WriteOptions& opts, std::string_view key, std::string_view value);
  Status Delete(const WriteOptions& opts, std::string_view key);
  /// Atomically applies the batch; stamps its sequence number.
  Status Write(const WriteOptions& opts, WriteBatch* batch);

  /// Returns NotFound for missing or deleted keys.
  Result<std::string> Get(const ReadOptions& opts, std::string_view key);

  /// Forward iterator over live user keys/values at the read snapshot.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& opts);

  /// Pins the current state; must be released.
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);

  /// Flushes the memtable and fully compacts every level (tests/tools).
  Status CompactAll();

  SequenceNumber LastSequence() const {
    auto guard = Guard();
    return versions_->last_sequence();
  }

  struct Stats {
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t gets = 0;
    uint64_t wal_syncs = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t compaction_bytes_read = 0;
    uint64_t compaction_bytes_written = 0;
    // Recovery phases (DB::Open on an existing directory) and write-path
    // fault handling — the obs registry exports these so degraded-mode
    // runs are diagnosable.
    uint64_t recoveries = 0;
    uint64_t wal_records_replayed = 0;
    uint64_t wal_torn_tails = 0;
    uint64_t manifest_torn_tails = 0;
    uint64_t wal_write_failures = 0;
    uint64_t wal_rotations_after_error = 0;
    // Read-path caches (block cache counters are cumulative; bytes is the
    // attached charge at snapshot time).
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
    uint64_t block_cache_evictions = 0;
    uint64_t block_cache_inserts = 0;
    uint64_t block_cache_bytes = 0;
    uint64_t table_cache_hits = 0;
    uint64_t table_cache_misses = 0;
    // Write-path shaping (background_maintenance mode).
    uint64_t stall_soft = 0;      // writes that took a soft-slowdown delay
    uint64_t stall_hard = 0;      // writes that hit the hard L0/imm stop
    uint64_t stall_us = 0;        // total stalled microseconds
    uint64_t subcompactions_run = 0;     // partitioned sub-compaction tasks
    uint64_t compaction_throttle_us = 0; // rate-limiter sleep time
    uint64_t compactions_inflight = 0;   // gauge: compactions in progress
    uint64_t flush_output_files = 0;     // L0 files written by flushes
    uint64_t wal_preallocations = 0;
    uint64_t wal_recycles = 0;
    int memtable_shards = 1;  // effective (power-of-two) shard count
    int files_per_level[kNumLevels] = {};
    uint64_t bytes_per_level[kNumLevels] = {};
    size_t memtable_bytes = 0;
  };
  Stats GetStats() const;

 private:
  DB(Options options, std::string name);

  /// Serialization of real-threaded callers (no-op unless
  /// Options::serialize_access): every public entry point takes this
  /// before touching DB state.
  std::unique_lock<std::mutex> Guard() const {
    return options_.serialize_access ? std::unique_lock<std::mutex>(mu_)
                                     : std::unique_lock<std::mutex>();
  }

  /// Write body; the caller holds `guard` (Put/Delete funnel here). The
  /// guard is threaded through so the stall tiers can drop the mutex
  /// while a write waits for background maintenance.
  Status WriteLocked(const WriteOptions& opts, WriteBatch* batch,
                     std::unique_lock<std::mutex>& guard);
  /// Applies the L0 stall tiers (background_maintenance only): one soft-
  /// slowdown delay per write past the slowdown trigger, blocking wait
  /// past the stop trigger or when the imm backlog is full.
  Status StallIfNeeded(std::unique_lock<std::mutex>& guard);

  Status Initialize();
  Status RecoverWal();
  Status NewWal();
  /// Abandons a WAL whose tail may be torn (a failed Append/Sync):
  /// flushes the memtable — whose contents are exactly the acknowledged
  /// prefix — and rotates to a fresh log, restoring the invariant that
  /// the live WAL tail is well-formed.
  Status RotateWal();
  /// Retires a fully-flushed WAL: recycles it into the POOL when
  /// wal_recycle is on (content truncated first, so a recycled file can
  /// never replay stale records), else deletes it.
  void RetireWal(uint64_t number);
  /// Moves the active memtable onto the imm queue (with the WAL that
  /// covers it) and opens a fresh WAL. Background mode only.
  Status SwitchMemTable();
  /// Builds one L0 table per non-empty shard of `mem` (in parallel on
  /// the pool when available). Called with the DB mutex held (inline
  /// mode) or from the maintenance thread with it released; touches only
  /// thread-safe state (env, table builder, atomic file numbers).
  Status BuildL0Files(const ShardedMemTable& mem, std::vector<FileMetaData>* files);
  /// Inline flush of the active memtable (sim mode / recovery / tools).
  Status FlushMemTable();
  /// Flushes imm_.front() from the maintenance thread, dropping `lock`
  /// during the build.
  Status FlushOldestImm(std::unique_lock<std::mutex>& lock);
  Status MaybeCompact();
  /// Zero-duration span under the write that triggered the maintenance.
  void RecordInstantSpan(const char* name);
  /// Runs one compaction. `lock` is non-null on the maintenance thread,
  /// which releases it during the merge so commits keep flowing; inline
  /// callers pass nullptr and keep the DB mutex the whole time.
  Status DoCompaction(const VersionSet::CompactionPick& pick,
                      std::unique_lock<std::mutex>* lock);
  /// One sub-compaction worker: merges input files over the user-key
  /// range [begin, end) (empty = unbounded) into output tables. Reads
  /// only immutable inputs and thread-safe state, so workers run
  /// concurrently; each key's whole version history stays inside one
  /// sub-range because splits are user-key boundaries.
  Status SubCompact(const std::vector<FileMetaData>& input_metas,
                    std::string_view begin, std::string_view end,
                    SequenceNumber smallest_snapshot, int output_level,
                    std::vector<FileMetaData>* outputs, uint64_t* bytes_written);
  void BackgroundLoop();
  Status DeleteObsoleteFiles();
  SequenceNumber SmallestSnapshot() const;

  Options options_;
  std::string name_;
  mutable std::mutex mu_;  // taken only when options_.serialize_access
  /// Declared before table_cache_: tables hold a raw pointer into it.
  std::unique_ptr<Cache> block_cache_;
  TableCache table_cache_;
  std::unique_ptr<VersionSet> versions_;
  /// shared_ptr: open DB iterators keep their memtable snapshot alive
  /// after a flush retires it (same pattern as Table ownership).
  std::shared_ptr<ShardedMemTable> mem_;
  /// Immutable memtables awaiting background flush, oldest first, each
  /// with the WAL that covers it (the manifest log floor stays at the
  /// oldest entry's WAL until it flushes).
  struct ImmMemTable {
    std::shared_ptr<ShardedMemTable> mem;
    uint64_t wal_number = 0;
  };
  std::deque<ImmMemTable> imm_;
  /// Workers for sub-compactions and per-shard flush builds; null unless
  /// the options ask for parallelism.
  std::unique_ptr<ThreadPool> pool_;
  /// Compaction byte throttle; null when unlimited.
  std::unique_ptr<RateLimiter> rate_limiter_;
  std::unique_ptr<wal::Writer> wal_;
  uint64_t wal_number_ = 0;
  /// Retired-but-parked WAL numbers (POOL-<n> files) for recycling.
  std::vector<uint64_t> wal_pool_;
  /// Set when a WAL append/sync failed; the next write rotates the WAL
  /// before proceeding (the torn tail must never be appended to).
  bool wal_failed_ = false;
  // Effective (resolved) knobs.
  int l0_slowdown_trigger_ = 0;
  int l0_stop_trigger_ = 0;
  // Background maintenance thread state (all guarded by mu_).
  std::thread bg_thread_;
  std::condition_variable bg_work_cv_;  // maintenance thread: work arrived
  std::condition_variable bg_done_cv_;  // writers/CompactAll: progress made
  bool bg_stop_ = false;
  bool bg_busy_ = false;  // maintenance thread is mid-unit (lock dropped)
  Status bg_error_;       // first background failure; surfaces to writes
  std::multiset<SequenceNumber> snapshots_;
  InternalKeyComparator icmp_;
  /// Trace context of the write currently being applied (empty outside
  /// Write); flushes/compactions it triggers parent their spans here.
  obs::TraceContext write_trace_;

  mutable Stats stats_;
};

}  // namespace lo::storage
