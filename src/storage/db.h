// MiniLSM public API — the persistence substrate of LambdaStore (the
// paper uses LevelDB in this role).
//
// Single-threaded by default: each simulated storage node owns one DB and
// the simulator serializes all access on a node. Flushes and compactions
// run synchronously (deterministically) inside the write path. The
// real-threaded execution path (runtime/executor.h + GroupCommitter)
// instead opens the DB with Options::serialize_access, which guards every
// public entry point with an internal mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "obs/trace.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"
#include "storage/version.h"
#include "storage/write_batch.h"

namespace lo::storage {

struct Options {
  Env* env = nullptr;  // required; not owned
  /// Memtable size that triggers a flush to L0.
  size_t write_buffer_size = 1 << 20;
  /// Max bytes of one compaction output file.
  uint64_t max_output_file_bytes = 2 << 20;
  TableOptions table;
  /// SSTable block cache (sharded LRU, charge = block bytes), shared by
  /// every table of this DB. Point reads and iterator seeks consult it
  /// before touching the Env; compaction reads bypass *insertion* so bulk
  /// scans don't flush the hot set. 0 disables caching entirely.
  size_t block_cache_bytes = 8 << 20;
  /// log2(shards) of the block cache: single-threaded sim nodes can set 0
  /// to spare the per-shard overhead; real-threaded nodes keep the
  /// default so lanes don't serialize on one mutex.
  int block_cache_shard_bits = 4;
  /// If false, Open fails when the DB does not exist yet.
  bool create_if_missing = true;
  /// Guards every public DB entry point with an internal mutex so real
  /// threads (execution lanes + the group-commit thread) can share one
  /// DB. Off by default: simulated nodes are single-threaded and skip
  /// the locking entirely.
  bool serialize_access = false;
  /// Records instant memtable_flush / compaction spans; nullptr disables.
  obs::Tracer* tracer = nullptr;
  /// Clock for span timestamps (storage has no sim dependency, so the
  /// owning node injects `[&sim]{ return sim.Now(); }`). Required if
  /// `tracer` is set.
  std::function<int64_t()> clock;
  /// Node label stamped on recorded spans.
  uint32_t node_label = 0;
};

/// A read view at a fixed sequence number. Obtained from DB::GetSnapshot.
class Snapshot {
 public:
  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class DB;
  explicit Snapshot(SequenceNumber seq) : sequence_(seq) {}
  SequenceNumber sequence_;
};

struct ReadOptions {
  /// nullptr reads the latest committed state.
  const Snapshot* snapshot = nullptr;
};

struct WriteOptions {
  /// Sync the WAL before acknowledging (durability barrier).
  bool sync = true;
  /// Sampled trace context; flush/compaction spans triggered by this
  /// write are parented under it.
  obs::TraceContext trace{};
};

class DB {
 public:
  /// Opens (and if needed creates) the database under `name`, replaying
  /// any WAL left by a crash.
  static Result<std::unique_ptr<DB>> Open(const Options& options, std::string name);

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;
  ~DB();

  Status Put(const WriteOptions& opts, std::string_view key, std::string_view value);
  Status Delete(const WriteOptions& opts, std::string_view key);
  /// Atomically applies the batch; stamps its sequence number.
  Status Write(const WriteOptions& opts, WriteBatch* batch);

  /// Returns NotFound for missing or deleted keys.
  Result<std::string> Get(const ReadOptions& opts, std::string_view key);

  /// Forward iterator over live user keys/values at the read snapshot.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& opts);

  /// Pins the current state; must be released.
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);

  /// Flushes the memtable and fully compacts every level (tests/tools).
  Status CompactAll();

  SequenceNumber LastSequence() const {
    auto guard = Guard();
    return versions_->last_sequence();
  }

  struct Stats {
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t gets = 0;
    uint64_t wal_syncs = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t compaction_bytes_read = 0;
    uint64_t compaction_bytes_written = 0;
    // Recovery phases (DB::Open on an existing directory) and write-path
    // fault handling — the obs registry exports these so degraded-mode
    // runs are diagnosable.
    uint64_t recoveries = 0;
    uint64_t wal_records_replayed = 0;
    uint64_t wal_torn_tails = 0;
    uint64_t manifest_torn_tails = 0;
    uint64_t wal_write_failures = 0;
    uint64_t wal_rotations_after_error = 0;
    // Read-path caches (block cache counters are cumulative; bytes is the
    // attached charge at snapshot time).
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
    uint64_t block_cache_evictions = 0;
    uint64_t block_cache_inserts = 0;
    uint64_t block_cache_bytes = 0;
    uint64_t table_cache_hits = 0;
    uint64_t table_cache_misses = 0;
    int files_per_level[kNumLevels] = {};
    uint64_t bytes_per_level[kNumLevels] = {};
    size_t memtable_bytes = 0;
  };
  Stats GetStats() const;

 private:
  DB(Options options, std::string name);

  /// Serialization of real-threaded callers (no-op unless
  /// Options::serialize_access): every public entry point takes this
  /// before touching DB state.
  std::unique_lock<std::mutex> Guard() const {
    return options_.serialize_access ? std::unique_lock<std::mutex>(mu_)
                                     : std::unique_lock<std::mutex>();
  }

  /// Write body; the caller holds the guard (Put/Delete funnel here).
  Status WriteLocked(const WriteOptions& opts, WriteBatch* batch);

  Status Initialize();
  Status RecoverWal();
  Status NewWal();
  /// Abandons a WAL whose tail may be torn (a failed Append/Sync):
  /// flushes the memtable — whose contents are exactly the acknowledged
  /// prefix — and rotates to a fresh log, restoring the invariant that
  /// the live WAL tail is well-formed.
  Status RotateWal();
  Status FlushMemTable();
  Status MaybeCompact();
  /// Zero-duration span under the write that triggered the maintenance.
  void RecordInstantSpan(const char* name);
  Status DoCompaction(const VersionSet::CompactionPick& pick);
  Status DeleteObsoleteFiles();
  SequenceNumber SmallestSnapshot() const;

  Options options_;
  std::string name_;
  mutable std::mutex mu_;  // taken only when options_.serialize_access
  /// Declared before table_cache_: tables hold a raw pointer into it.
  std::unique_ptr<Cache> block_cache_;
  TableCache table_cache_;
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<MemTable> mem_;
  std::unique_ptr<wal::Writer> wal_;
  uint64_t wal_number_ = 0;
  /// Set when a WAL append/sync failed; the next write rotates the WAL
  /// before proceeding (the torn tail must never be appended to).
  bool wal_failed_ = false;
  std::multiset<SequenceNumber> snapshots_;
  InternalKeyComparator icmp_;
  /// Trace context of the write currently being applied (empty outside
  /// Write); flushes/compactions it triggers parent their spans here.
  obs::TraceContext write_trace_;

  mutable Stats stats_;
};

}  // namespace lo::storage
