// Internal key format of MiniLSM.
//
// An internal key is `user_key . fixed64(seq << 8 | type)`. Ordering:
// user keys ascending (bytewise), then sequence numbers *descending*, so
// a scan positioned at (key, snapshot_seq) lands on the newest version
// visible to that snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/coding.h"

namespace lo::storage {

using SequenceNumber = uint64_t;

// Sequence numbers are packed with a type tag into 64 bits.
constexpr SequenceNumber kMaxSequenceNumber = (1ull << 56) - 1;

enum class ValueType : uint8_t {
  kDeletion = 0,
  kValue = 1,
};

// When seeking, we want the newest entry with seq <= snapshot; kValue
// sorts before kDeletion at equal seq is irrelevant because seq is unique,
// so the seek tag just uses the largest type.
constexpr ValueType kValueTypeForSeek = ValueType::kValue;

inline uint64_t PackSeqAndType(SequenceNumber seq, ValueType type) {
  return (seq << 8) | static_cast<uint64_t>(type);
}

/// Appends the internal key for (user_key, seq, type) to *dst.
inline void AppendInternalKey(std::string* dst, std::string_view user_key,
                              SequenceNumber seq, ValueType type) {
  dst->append(user_key);
  PutFixed64(dst, PackSeqAndType(seq, type));
}

inline std::string MakeInternalKey(std::string_view user_key, SequenceNumber seq,
                                   ValueType type) {
  std::string out;
  AppendInternalKey(&out, user_key, seq, type);
  return out;
}

/// Decomposed view of an internal key.
struct ParsedInternalKey {
  std::string_view user_key;
  SequenceNumber sequence = 0;
  ValueType type = ValueType::kValue;
};

/// Returns false if ikey is too short or has an invalid type tag.
inline bool ParseInternalKey(std::string_view ikey, ParsedInternalKey* out) {
  if (ikey.size() < 8) return false;
  uint64_t packed = DecodeFixed64(ikey.data() + ikey.size() - 8);
  uint8_t type = packed & 0xff;
  if (type > static_cast<uint8_t>(ValueType::kValue)) return false;
  out->user_key = ikey.substr(0, ikey.size() - 8);
  out->sequence = packed >> 8;
  out->type = static_cast<ValueType>(type);
  return true;
}

inline std::string_view ExtractUserKey(std::string_view ikey) {
  return ikey.substr(0, ikey.size() - 8);
}

/// Total order over internal keys (see file comment).
struct InternalKeyComparator {
  /// <0, 0, >0 like memcmp.
  int Compare(std::string_view a, std::string_view b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    uint64_t pa = DecodeFixed64(a.data() + a.size() - 8);
    uint64_t pb = DecodeFixed64(b.data() + b.size() - 8);
    // Bigger (seq,type) sorts first.
    if (pa > pb) return -1;
    if (pa < pb) return 1;
    return 0;
  }
  bool operator()(std::string_view a, std::string_view b) const {
    return Compare(a, b) < 0;
  }
};

}  // namespace lo::storage
