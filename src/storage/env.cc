#include "storage/env.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#ifdef __linux__
#include <fcntl.h>
#include <stdio.h>
#endif

namespace lo::storage {

Result<std::string> Env::ReadFileToString(const std::string& path) {
  LO_ASSIGN_OR_RETURN(auto file, NewSequentialFile(path));
  std::string out, chunk;
  for (;;) {
    LO_RETURN_IF_ERROR(file->Read(64 * 1024, &chunk));
    if (chunk.empty()) break;
    out += chunk;
  }
  return out;
}

Status Env::WriteStringToFile(const std::string& path, std::string_view data,
                              bool sync) {
  LO_ASSIGN_OR_RETURN(auto file, NewWritableFile(path));
  LO_RETURN_IF_ERROR(file->Append(data));
  if (sync) LO_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

// ---------------------------------------------------------------- MemEnv

namespace {

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<MemEnv::FileState> state)
      : state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    state_->data.append(data);
    return Status::OK();
  }
  Status Sync() override {
    state_->synced_length = state_->data.size();
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<MemEnv::FileState> state_;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<MemEnv::FileState> state)
      : state_(std::move(state)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->clear();
    const std::string& data = state_->data;
    if (offset >= data.size()) return Status::OK();  // EOF: empty read
    size_t take = std::min<size_t>(n, data.size() - offset);
    out->assign(data, offset, take);
    return Status::OK();
  }
  uint64_t Size() const override { return state_->data.size(); }

 private:
  std::shared_ptr<MemEnv::FileState> state_;
};

class MemSequentialFile : public SequentialFile {
 public:
  explicit MemSequentialFile(std::shared_ptr<MemEnv::FileState> state)
      : state_(std::move(state)) {}

  Status Read(size_t n, std::string* out) override {
    out->clear();
    const std::string& data = state_->data;
    if (pos_ >= data.size()) return Status::OK();
    size_t take = std::min<size_t>(n, data.size() - pos_);
    out->assign(data, pos_, take);
    pos_ += take;
    return Status::OK();
  }
  Status Skip(uint64_t n) override {
    pos_ = std::min<uint64_t>(pos_ + n, state_->data.size());
    return Status::OK();
  }

 private:
  std::shared_ptr<MemEnv::FileState> state_;
  uint64_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<WritableFile>> MemEnv::NewWritableFile(const std::string& path) {
  return NewWritableFile(path, WritableFileOptions{});
}

Result<std::unique_ptr<WritableFile>> MemEnv::NewWritableFile(
    const std::string& path, const WritableFileOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<FileState> state;
  auto it = files_.find(path);
  if (opts.reuse && it != files_.end()) {
    // Recycle the existing buffer: clear() keeps the string's capacity,
    // so appends into a recycled WAL never reallocate.
    state = it->second;
    state->data.clear();
    state->synced_length = 0;
  } else {
    state = std::make_shared<FileState>();
    files_[path] = state;  // truncates any existing file
  }
  if (opts.preallocate_bytes > 0) state->data.reserve(opts.preallocate_bytes);
  return std::unique_ptr<WritableFile>(new MemWritableFile(std::move(state)));
}

Result<std::unique_ptr<RandomAccessFile>> MemEnv::NewRandomAccessFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  return std::unique_ptr<RandomAccessFile>(new MemRandomAccessFile(it->second));
}

Result<std::unique_ptr<SequentialFile>> MemEnv::NewSequentialFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  return std::unique_ptr<SequentialFile>(new MemSequentialFile(it->second));
}

bool MemEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.contains(path);
}

Result<uint64_t> MemEnv::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  return static_cast<uint64_t>(it->second->data.size());
}

Status MemEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) return Status::NotFound(path);
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound(from);
  files_[to] = it->second;
  files_.erase(from);
  return Status::OK();
}

Status MemEnv::CreateDir(const std::string&) { return Status::OK(); }

Result<std::vector<std::string>> MemEnv::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [path, state] : files_) {
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0) {
      std::string rest = path.substr(prefix.size());
      if (rest.find('/') == std::string::npos) names.push_back(rest);
    }
  }
  return names;
}

void MemEnv::DropUnsyncedData() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, state] : files_) {
    state->data.resize(state->synced_length);
  }
}

uint64_t MemEnv::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, state] : files_) total += state->data.size();
  return total;
}

// --------------------------------------------------------------- PosixEnv

namespace {

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(std::FILE* f) : f_(f) {}
  ~PosixWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }
  Status Append(std::string_view data) override {
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return Status::IOError("fwrite failed");
    }
    return Status::OK();
  }
  Status Sync() override {
    if (std::fflush(f_) != 0) return Status::IOError("fflush failed");
    return Status::OK();
  }
  Status Close() override {
    int rc = std::fclose(f_);
    f_ = nullptr;
    return rc == 0 ? Status::OK() : Status::IOError("fclose failed");
  }

 private:
  std::FILE* f_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::FILE* f, uint64_t size) : f_(f), size_(size) {}
  ~PosixRandomAccessFile() override { std::fclose(f_); }
  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->resize(n);
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError("fseek failed");
    }
    size_t got = std::fread(out->data(), 1, n, f_);
    out->resize(got);
    return Status::OK();
  }
  uint64_t Size() const override { return size_; }

 private:
  std::FILE* f_;
  uint64_t size_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  explicit PosixSequentialFile(std::FILE* f) : f_(f) {}
  ~PosixSequentialFile() override { std::fclose(f_); }
  Status Read(size_t n, std::string* out) override {
    out->resize(n);
    size_t got = std::fread(out->data(), 1, n, f_);
    out->resize(got);
    return Status::OK();
  }
  Status Skip(uint64_t n) override {
    return std::fseek(f_, static_cast<long>(n), SEEK_CUR) == 0
               ? Status::OK()
               : Status::IOError("fseek failed");
  }

 private:
  std::FILE* f_;
};

}  // namespace

Result<std::unique_ptr<WritableFile>> PosixEnv::NewWritableFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("open for write: " + path);
  return std::unique_ptr<WritableFile>(new PosixWritableFile(f));
}

Result<std::unique_ptr<WritableFile>> PosixEnv::NewWritableFile(
    const std::string& path, const WritableFileOptions& opts) {
  // reuse: "wb" already truncates logical content while the filesystem
  // tends to keep the inode; the reservation below restores the extent.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("open for write: " + path);
#ifdef __linux__
  if (opts.preallocate_bytes > 0) {
    // Best-effort: not every filesystem supports fallocate.
    (void)posix_fallocate(fileno(f), 0,
                          static_cast<off_t>(opts.preallocate_bytes));
  }
#endif
  return std::unique_ptr<WritableFile>(new PosixWritableFile(f));
}

Result<std::unique_ptr<RandomAccessFile>> PosixEnv::NewRandomAccessFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound(path);
  std::fseek(f, 0, SEEK_END);
  auto size = static_cast<uint64_t>(std::ftell(f));
  return std::unique_ptr<RandomAccessFile>(new PosixRandomAccessFile(f, size));
}

Result<std::unique_ptr<SequentialFile>> PosixEnv::NewSequentialFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound(path);
  return std::unique_ptr<SequentialFile>(new PosixSequentialFile(f));
}

bool PosixEnv::FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Result<uint64_t> PosixEnv::FileSize(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound(path);
  return static_cast<uint64_t>(size);
}

Status PosixEnv::DeleteFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::remove(path, ec) || ec) return Status::NotFound(path);
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) return Status::IOError("rename " + from + " -> " + to);
  return Status::OK();
}

Status PosixEnv::CreateDir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir " + path);
  return Status::OK();
}

Result<std::vector<std::string>> PosixEnv::ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) return Status::IOError("listdir " + dir);
  return names;
}

}  // namespace lo::storage
