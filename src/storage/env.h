// Filesystem abstraction for MiniLSM (LevelDB-style Env).
//
// Storage nodes in the simulated cluster run on MemEnv — an in-process
// filesystem — so a whole cluster's disks live inside one deterministic
// process; I/O *latency* is charged by the node model, not here.
// PosixEnv is provided for examples/tools that want real files.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace lo::storage {

/// Creation hints for NewWritableFile. Both are best-effort: an Env that
/// cannot honor them falls back to a plain create-and-truncate.
struct WritableFileOptions {
  /// Reserve this much space up front so appends never pay an
  /// allocate-then-fsync metadata round trip (WAL preallocation).
  uint64_t preallocate_bytes = 0;
  /// Recycle an existing file's allocation instead of creating a fresh
  /// one. Logical content is always truncated to empty — readers never
  /// see stale records — only the underlying allocation is kept.
  bool reuse = false;
};

/// Append-only file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Durability point; the WAL calls this on every commit.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Positional-read file handle (SSTables).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to n bytes at offset into *out (short read at EOF is OK).
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
  virtual uint64_t Size() const = 0;
};

/// Streaming-read file handle (WAL replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, std::string* out) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(const std::string& path) = 0;
  /// Overload with creation hints; the default ignores them.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, const WritableFileOptions& opts) {
    (void)opts;
    return NewWritableFile(path);
  }
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(const std::string& path) = 0;
  virtual Result<std::unique_ptr<SequentialFile>> NewSequentialFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  /// Atomic replace (used for CURRENT).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status CreateDir(const std::string& path) = 0;
  /// Names (not paths) of children of dir.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// Convenience: read an entire file / atomically write an entire file.
  Result<std::string> ReadFileToString(const std::string& path);
  Status WriteStringToFile(const std::string& path, std::string_view data, bool sync);
};

/// In-memory filesystem. Also a fault-injection point: sync failures and
/// torn tail writes (crash simulation) can be enabled per instance.
///
/// The namespace (create/open/delete/rename/list) is thread-safe so
/// parallel sub-compaction workers can open inputs and create outputs
/// concurrently. Individual file *contents* follow POSIX rules: one
/// writer per file, readers only after the writer finalized it.
class MemEnv : public Env {
 public:
  using Env::NewWritableFile;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, const WritableFileOptions& opts) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(const std::string& path) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

  /// Crash simulation: truncates every file to its last Sync()ed length,
  /// as if the machine lost power (unsynced page cache discarded).
  void DropUnsyncedData();

  /// Total bytes across all files (space-usage metrics).
  uint64_t TotalBytes() const;

  // Exposed for the file-handle implementations in env.cc.
  struct FileState {
    std::string data;
    uint64_t synced_length = 0;
  };

 private:
  // Guards the files_ map (namespace operations), not file contents.
  mutable std::mutex mu_;
  // shared_ptr: open handles stay valid across DeleteFile (POSIX unlink
  // semantics), which compaction relies on.
  std::unordered_map<std::string, std::shared_ptr<FileState>> files_;
};

/// Real-filesystem Env for tools and examples.
class PosixEnv : public Env {
 public:
  using Env::NewWritableFile;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, const WritableFileOptions& opts) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(const std::string& path) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
};

}  // namespace lo::storage
