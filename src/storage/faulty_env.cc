#include "storage/faulty_env.h"

#include <utility>

namespace lo::storage {

namespace {

Status Crashed() { return Status::IOError("crashed"); }

}  // namespace

/// Write handle that routes every Append/Sync through the env's fault
/// countdown. A crashing Append may leave a seeded prefix of the data in
/// the file (torn write); the wrapped MemEnv then models power loss via
/// DropUnsyncedData() as usual.
class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultyEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    size_t torn = 0;
    if (!env_->ChargeAppend(data.size(), &torn)) {
      if (torn > 0) {
        // A prefix of the write had already been flushed to the platter
        // when the lights went out (disks persist in page-sized units,
        // not record-sized ones). Sync it so the wrapped MemEnv's
        // DropUnsyncedData keeps exactly this torn tail — the case WAL /
        // manifest recovery must detect via the per-record CRC.
        base_->Append(data.substr(0, torn)).ok();
        base_->Sync().ok();
      }
      return Crashed();
    }
    return base_->Append(data);
  }

  Status Sync() override {
    if (env_->SyncShouldFail()) {
      return Status::IOError("injected sync failure");
    }
    if (!env_->ChargeWriteOp()) return Crashed();
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultyEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

FaultyEnv::FaultyEnv(Env* base, uint64_t seed) : base_(base), rng_(seed) {}

bool FaultyEnv::ChargeWriteOp() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return ChargeWriteOpLocked();
}

bool FaultyEnv::ChargeWriteOpLocked() {
  write_ops_++;
  if (crashed_) {
    stats_.failed_ops_while_crashed++;
    return false;
  }
  if (countdown_ > 0 && --countdown_ == 0) {
    crashed_ = true;
    stats_.injected_crashes++;
    return false;
  }
  return true;
}

bool FaultyEnv::ChargeAppend(size_t data_size, size_t* torn) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  *torn = 0;
  if (ChargeWriteOpLocked()) return true;
  *torn = static_cast<size_t>(rng_.Uniform(data_size + 1));
  if (*torn > 0) stats_.torn_appends++;
  return false;
}

bool FaultyEnv::SyncShouldFail() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (!fail_syncs_) return false;
  stats_.injected_sync_failures++;
  return true;
}

void FaultyEnv::CrashAfterWriteOps(uint64_t n) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  countdown_ = n;
  if (n > 0) crashed_ = false;
}

void FaultyEnv::Revive() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  crashed_ = false;
  countdown_ = 0;
}

Result<std::unique_ptr<WritableFile>> FaultyEnv::NewWritableFile(
    const std::string& path) {
  return NewWritableFile(path, WritableFileOptions{});
}

Result<std::unique_ptr<WritableFile>> FaultyEnv::NewWritableFile(
    const std::string& path, const WritableFileOptions& opts) {
  if (!ChargeWriteOp()) return Crashed();
  LO_ASSIGN_OR_RETURN(auto file, base_->NewWritableFile(path, opts));
  return std::unique_ptr<WritableFile>(
      new FaultyWritableFile(this, std::move(file)));
}

Result<std::unique_ptr<RandomAccessFile>> FaultyEnv::NewRandomAccessFile(
    const std::string& path) {
  return base_->NewRandomAccessFile(path);
}

Result<std::unique_ptr<SequentialFile>> FaultyEnv::NewSequentialFile(
    const std::string& path) {
  return base_->NewSequentialFile(path);
}

bool FaultyEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultyEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultyEnv::DeleteFile(const std::string& path) {
  if (!ChargeWriteOp()) return Crashed();
  return base_->DeleteFile(path);
}

Status FaultyEnv::RenameFile(const std::string& from, const std::string& to) {
  if (!ChargeWriteOp()) return Crashed();
  return base_->RenameFile(from, to);
}

Status FaultyEnv::CreateDir(const std::string& path) {
  // Not charged: directory creation happens once per DB::Open and is not
  // a fault point of interest (the matrix targets the commit path).
  if (crashed_) return Crashed();
  return base_->CreateDir(path);
}

Result<std::vector<std::string>> FaultyEnv::ListDir(const std::string& dir) {
  return base_->ListDir(dir);
}

}  // namespace lo::storage
