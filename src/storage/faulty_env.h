// Deterministic fault injection for the storage write path.
//
// FaultyEnv wraps any Env and injects the failures a real disk stack can
// produce, at exactly reproducible points:
//
//   - crash points:   every write-side operation (Append / Sync / file
//                     create / rename / delete) decrements a countdown;
//                     when it reaches zero the "machine" loses power —
//                     the op fails, unsynced bytes are torn, and every
//                     later mutation fails with IOError("crashed") until
//                     the env is revived.
//   - torn writes:    the Append that triggers the crash may land
//                     partially (a prefix of the data), reproducing a
//                     torn WAL/manifest tail.
//   - sync failures:  Sync() can be forced to fail (fsync returning
//                     EIO) without crashing, to test that the error
//                     surfaces to the commit caller instead of being
//                     dropped.
//
// All randomness comes from an injected seed (torn-write lengths), so a
// fault schedule replays bit-identically — the crash-recovery matrix in
// tests/storage_test.cpp sweeps the countdown over every write op of a
// workload. See docs/minilsm.md ("Crash recovery & failure model").
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "storage/env.h"

namespace lo::storage {

class FaultyEnv : public Env {
 public:
  /// Wraps `base` (not owned). `seed` drives torn-write lengths.
  explicit FaultyEnv(Env* base, uint64_t seed = 42);

  using Env::NewWritableFile;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, const WritableFileOptions& opts) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(const std::string& path) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

  // --- fault programming ----------------------------------------------
  /// Crash after `n` more write-side ops (0 disables the countdown). The
  /// n-th op fails; if it is an Append, a seeded prefix of the data may
  /// still reach the file (torn write).
  void CrashAfterWriteOps(uint64_t n);
  /// Clears the crashed state so the env accepts writes again (the
  /// "reboot" before recovery). The countdown stays disabled.
  void Revive();
  bool crashed() const {
    std::lock_guard<std::mutex> lock(fault_mu_);
    return crashed_;
  }

  /// Forces every Sync() to fail with IOError until cleared. The data is
  /// still buffered (no crash) — models fsync returning EIO.
  void FailSyncs(bool fail) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    fail_syncs_ = fail;
  }

  /// Write-side ops observed so far (sizing the crash matrix: run the
  /// workload once fault-free, read this, then sweep 1..count).
  uint64_t write_ops() const {
    std::lock_guard<std::mutex> lock(fault_mu_);
    return write_ops_;
  }

  struct Stats {
    uint64_t injected_crashes = 0;
    uint64_t injected_sync_failures = 0;
    uint64_t torn_appends = 0;
    uint64_t failed_ops_while_crashed = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(fault_mu_);
    return stats_;
  }

 private:
  friend class FaultyWritableFile;
  /// Charges one write-side op; returns false if this op must fail
  /// (countdown hit zero or already crashed).
  bool ChargeWriteOp();
  bool ChargeWriteOpLocked();
  /// Append variant: on failure also draws the seeded torn-prefix length
  /// into *torn under the same lock (concurrent appenders stay seeded
  /// deterministically with respect to op order).
  bool ChargeAppend(size_t data_size, size_t* torn);
  bool SyncShouldFail();

  Env* base_;
  // Fault state is shared by every file handle; parallel sub-compaction
  // workers append through this env concurrently.
  mutable std::mutex fault_mu_;
  Rng rng_;                 // guarded by fault_mu_
  uint64_t countdown_ = 0;  // 0 = disabled; guarded by fault_mu_
  bool crashed_ = false;    // guarded by fault_mu_
  bool fail_syncs_ = false; // guarded by fault_mu_
  uint64_t write_ops_ = 0;  // guarded by fault_mu_
  Stats stats_;             // guarded by fault_mu_
};

}  // namespace lo::storage
