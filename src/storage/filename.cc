#include "storage/filename.h"

#include <cinttypes>
#include <cstdio>

namespace lo::storage {
namespace {

std::string NumberedName(const std::string& dbname, uint64_t number,
                         const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06" PRIu64 "%s", number, suffix);
  return dbname + buf;
}

}  // namespace

std::string CurrentFileName(const std::string& dbname) { return dbname + "/CURRENT"; }

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06" PRIu64, number);
  return dbname + buf;
}

std::string WalFileName(const std::string& dbname, uint64_t number) {
  return NumberedName(dbname, number, ".log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return NumberedName(dbname, number, ".ldb");
}

std::string WalPoolFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/POOL-%06" PRIu64, number);
  return dbname + buf;
}

FileKind ParseFileName(std::string_view name, uint64_t* number) {
  if (name == "CURRENT") return FileKind::kCurrent;
  if (name.rfind("MANIFEST-", 0) == 0) {
    *number = std::strtoull(std::string(name.substr(9)).c_str(), nullptr, 10);
    return FileKind::kManifest;
  }
  if (name.rfind("POOL-", 0) == 0) {
    *number = std::strtoull(std::string(name.substr(5)).c_str(), nullptr, 10);
    return FileKind::kWalPool;
  }
  size_t dot = name.find('.');
  if (dot == std::string_view::npos) return FileKind::kUnknown;
  std::string digits(name.substr(0, dot));
  if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
    return FileKind::kUnknown;
  }
  *number = std::strtoull(digits.c_str(), nullptr, 10);
  std::string_view suffix = name.substr(dot);
  if (suffix == ".log") return FileKind::kWal;
  if (suffix == ".ldb") return FileKind::kTable;
  return FileKind::kUnknown;
}

}  // namespace lo::storage
