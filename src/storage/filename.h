// File naming inside a DB directory:
//   CURRENT            -> name of the live manifest
//   MANIFEST-<num>     -> version-edit log
//   <num>.log          -> WAL
//   <num>.ldb          -> SSTable
//   POOL-<num>         -> retired WAL parked for recycling (wal_recycle)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace lo::storage {

enum class FileKind { kCurrent, kManifest, kWal, kTable, kWalPool, kUnknown };

std::string CurrentFileName(const std::string& dbname);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string WalFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string WalPoolFileName(const std::string& dbname, uint64_t number);

/// Parses a file *name* (no directory); number is set for numbered kinds.
FileKind ParseFileName(std::string_view name, uint64_t* number);

}  // namespace lo::storage
