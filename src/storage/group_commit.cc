#include "storage/group_commit.h"

#include <chrono>
#include <utility>
#include <vector>

namespace lo::storage {

GroupCommitter::GroupCommitter(DB* db, GroupCommitterOptions options)
    : db_(db), options_(options), committer_([this] { CommitterLoop(); }) {}

GroupCommitter::~GroupCommitter() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  committer_.join();
  // The loop drains waiters still queued at shutdown before exiting, so
  // every Commit() caller has been released by the time join returns.
}

Status GroupCommitter::Commit(WriteBatch batch) {
  if (batch.Count() == 0) return Status();
  Waiter waiter;
  waiter.batch = std::move(batch);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return Status::Unavailable("group committer shut down");
    queue_.push_back(&waiter);
    work_cv_.notify_one();
    done_cv_.wait(lock, [&] { return waiter.done; });
  }
  return waiter.status;
}

void GroupCommitter::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

GroupCommitter::Stats GroupCommitter::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

void GroupCommitter::CommitterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    if (options_.max_batch_delay_us > 0) {
      // Hold the window open so commits arriving just behind us ride the
      // same fsync. Sealed early once the group would overflow.
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(options_.max_batch_delay_us);
      size_t queued = 0;
      work_cv_.wait_until(lock, deadline, [&] {
        queued = 0;
        for (const Waiter* w : queue_) queued += w->batch.ByteSize();
        return stop_ || queued >= options_.max_batch_bytes;
      });
    }

    // Seal the group: everything queued, up to max_batch_bytes (always at
    // least one member so an oversized single batch still commits).
    std::vector<Waiter*> group;
    size_t group_bytes = 0;
    while (!queue_.empty()) {
      Waiter* w = queue_.front();
      if (!group.empty() && group_bytes + w->batch.ByteSize() > options_.max_batch_bytes) {
        break;
      }
      group_bytes += w->batch.ByteSize();
      group.push_back(w);
      queue_.pop_front();
    }
    in_flight_ += group.size();

    WriteBatch combined = std::move(group.front()->batch);
    for (size_t i = 1; i < group.size(); ++i) combined.Append(group[i]->batch);

    lock.unlock();
    WriteOptions write_opts;
    write_opts.sync = true;
    Status status = db_->Write(write_opts, &combined);
    // Listener-before-ack: a successful group is handed to on_commit
    // before any of its waiters unblock, so an acked write has already
    // been seen by the shipping hook. commit_seq_ is committer-thread
    // private and needs no lock.
    if (status.ok() && options_.on_commit) {
      options_.on_commit(++commit_seq_, combined);
    }
    lock.lock();

    stats_.commits += group.size();
    stats_.groups += 1;
    stats_.coalesced_bytes += group_bytes;
    if (group.size() > stats_.max_group_commits) {
      stats_.max_group_commits = group.size();
    }
    if (!status.ok()) stats_.sync_failures += 1;
    for (Waiter* w : group) {
      w->status = status;
      w->done = true;
    }
    in_flight_ -= group.size();
    done_cv_.notify_all();

    if (stop_ && queue_.empty()) {
      return;  // drained everything submitted before shutdown
    }
    if (stop_) continue;  // keep draining; Commit() rejects new arrivals
  }
}

}  // namespace lo::storage
