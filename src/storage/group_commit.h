// WAL group commit for real-threaded committers (LevelDB's writer queue
// recast with a dedicated committer thread).
//
// Execution lanes commit concurrently; each Commit() call blocks its
// calling thread until its batch is durable (or failed). The committer
// thread coalesces every batch queued within one commit window — bounded
// by `max_batch_bytes` and `max_batch_delay_us` — into a single combined
// WriteBatch, hands it to DB::Write once (one WAL append + one fsync),
// and propagates the resulting status to exactly the waiters whose
// batches rode in that group. A sync failure therefore fails precisely
// the commits whose bytes were at risk; later groups go through the DB's
// WAL-rotation recovery path untouched. Idempotency markers ride inside
// each member batch and are preserved verbatim by the coalescing
// (WriteBatch::Append concatenates records).
//
// The DB must be opened with Options::serialize_access so the committer
// thread and concurrent readers can share it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "storage/db.h"
#include "storage/write_batch.h"

namespace lo::storage {

struct GroupCommitterOptions {
  /// A group is sealed once its combined payload reaches this size.
  size_t max_batch_bytes = 1 << 20;
  /// How long the committer waits for more batches to join an open
  /// group before syncing it. 0 = sync whatever is queued immediately
  /// (grouping then comes purely from backpressure while a sync is in
  /// flight, which is the LevelDB behavior).
  int64_t max_batch_delay_us = 0;
  /// Invoked on the committer thread after each group's DB::Write
  /// succeeds, with the group's commit sequence (1, 2, ...) and the
  /// combined batch — *before* the group's waiters are released, so by
  /// the time a Commit() caller observes its ack, every listener has
  /// seen the batch (replication shipping hooks here). Runs unlocked;
  /// must not re-enter the committer.
  std::function<void(uint64_t seq, const WriteBatch& batch)> on_commit;
};

class GroupCommitter {
 public:
  /// `db` is not owned and must outlive this committer.
  explicit GroupCommitter(DB* db, GroupCommitterOptions options = {});
  /// Drains every commit already queued, then joins. Commits submitted
  /// after shutdown begins fail with Unavailable.
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Thread-safe. Blocks until the batch is durable in the WAL (shared
  /// fsync) or its group's write failed. Empty batches return OK
  /// immediately.
  Status Commit(WriteBatch batch);

  /// Blocks until every commit submitted before this call has resolved.
  void Drain();

  struct Stats {
    uint64_t commits = 0;          // Commit() calls that reached the WAL path
    uint64_t groups = 0;           // DB::Write calls (== fsyncs while healthy)
    uint64_t coalesced_bytes = 0;  // payload bytes across all groups
    uint64_t max_group_commits = 0;
    uint64_t sync_failures = 0;    // groups whose write/sync failed
  };
  Stats stats() const;

 private:
  struct Waiter {
    WriteBatch batch;
    Status status;
    bool done = false;
  };

  void CommitterLoop();

  DB* db_;
  GroupCommitterOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // committer: queue became non-empty
  std::condition_variable done_cv_;  // waiters: some group resolved
  std::deque<Waiter*> queue_;
  uint64_t in_flight_ = 0;  // waiters taken off the queue, not yet resolved
  uint64_t commit_seq_ = 0;  // committer-thread-only: groups written so far
  bool stop_ = false;
  Stats stats_;
  std::thread committer_;  // last member: started after everything above
};

}  // namespace lo::storage
