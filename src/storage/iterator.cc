#include "storage/iterator.h"

namespace lo::storage {
namespace {

class EmptyIterator : public Iterator {
 public:
  explicit EmptyIterator(Status status) : status_(std::move(status)) {}
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(std::string_view) override {}
  void Next() override {}
  std::string_view key() const override { return {}; }
  std::string_view value() const override { return {}; }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> NewEmptyIterator(Status status) {
  return std::make_unique<EmptyIterator>(std::move(status));
}

}  // namespace lo::storage
