// Forward iterator interface shared by memtables, blocks, tables, levels
// and the DB facade. MiniLSM iterators are forward-only: the runtime's
// collection scans encode their order into the key (e.g. timelines store
// a descending index), so reverse iteration is not needed.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lo::storage {

class Iterator {
 public:
  Iterator() = default;
  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(std::string_view target) = 0;
  /// Precondition: Valid().
  virtual void Next() = 0;
  /// Precondition: Valid().
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
  /// Non-OK if the iterator encountered corruption.
  virtual Status status() const = 0;
};

/// Always-invalid iterator (empty tables, error paths).
std::unique_ptr<Iterator> NewEmptyIterator(Status status = Status::OK());

/// K-way merge over children, smallest key first per `cmp` (an
/// InternalKeyComparator-like object with Compare(a, b)).
template <typename Cmp>
std::unique_ptr<Iterator> NewMergingIterator(
    Cmp cmp, std::vector<std::unique_ptr<Iterator>> children);

namespace internal {

template <typename Cmp>
class MergingIterator : public Iterator {
 public:
  MergingIterator(Cmp cmp, std::vector<std::unique_ptr<Iterator>> children)
      : cmp_(cmp), children_(std::move(children)) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(std::string_view target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    current_->Next();
    FindSmallest();
  }

  std::string_view key() const override { return current_->key(); }
  std::string_view value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    current_ = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (current_ == nullptr || cmp_.Compare(child->key(), current_->key()) < 0) {
        current_ = child.get();
      }
    }
  }

  Cmp cmp_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
};

}  // namespace internal

template <typename Cmp>
std::unique_ptr<Iterator> NewMergingIterator(
    Cmp cmp, std::vector<std::unique_ptr<Iterator>> children) {
  if (children.empty()) return NewEmptyIterator();
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<internal::MergingIterator<Cmp>>(cmp, std::move(children));
}

}  // namespace lo::storage
