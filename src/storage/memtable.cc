#include "storage/memtable.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "common/hash.h"
#include "common/log.h"

namespace lo::storage {
namespace {

// Decodes the length-prefixed internal key at p.
std::string_view GetLengthPrefixedAt(const char* p) {
  uint32_t len = 0;
  const char* data = GetVarint32Ptr(p, p + 5, &len);
  LO_CHECK(data != nullptr);
  return {data, len};
}

}  // namespace

int MemTable::KeyComparator::Compare(const char* a, const char* b) const {
  return icmp.Compare(GetLengthPrefixedAt(a), GetLengthPrefixedAt(b));
}

MemTable::MemTable() : table_(KeyComparator{}, &arena_) {}

void MemTable::Add(SequenceNumber seq, ValueType type, std::string_view user_key,
                   std::string_view value) {
  size_t ikey_size = user_key.size() + 8;
  std::string scratch;
  PutVarint32(&scratch, static_cast<uint32_t>(ikey_size));
  size_t header = scratch.size();
  size_t total = header + ikey_size;
  std::string vheader;
  PutVarint32(&vheader, static_cast<uint32_t>(value.size()));
  total += vheader.size() + value.size();

  char* buf = arena_.Allocate(total);
  char* p = buf;
  std::memcpy(p, scratch.data(), header);
  p += header;
  std::memcpy(p, user_key.data(), user_key.size());
  p += user_key.size();
  uint64_t packed = PackSeqAndType(seq, type);
  for (int i = 0; i < 8; i++) *p++ = static_cast<char>((packed >> (8 * i)) & 0xff);
  std::memcpy(p, vheader.data(), vheader.size());
  p += vheader.size();
  // Deletes carry an empty value whose data() may be null.
  if (!value.empty()) std::memcpy(p, value.data(), value.size());
  table_.Insert(buf);
  entries_++;
}

bool MemTable::Get(std::string_view user_key, SequenceNumber seq,
                   std::string* value, Status* s) const {
  std::string lookup = MakeInternalKey(user_key, seq, kValueTypeForSeek);
  std::string entry;
  PutVarint32(&entry, static_cast<uint32_t>(lookup.size()));
  entry += lookup;
  Table::Iterator iter(&table_);
  iter.Seek(entry.data());
  if (!iter.Valid()) return false;
  std::string_view ikey = GetLengthPrefixedAt(iter.key());
  ParsedInternalKey parsed;
  if (!ParseInternalKey(ikey, &parsed)) {
    *s = Status::Corruption("bad memtable key");
    return true;
  }
  if (parsed.user_key != user_key) return false;
  if (parsed.type == ValueType::kDeletion) {
    *s = Status::NotFound("");
    return true;
  }
  const char* value_ptr = ikey.data() + ikey.size();
  uint32_t vlen = 0;
  const char* vdata = GetVarint32Ptr(value_ptr, value_ptr + 5, &vlen);
  LO_CHECK(vdata != nullptr);
  value->assign(vdata, vlen);
  *s = Status::OK();
  return true;
}

namespace {

class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(const SkipList<const char*, MemTable::KeyComparator>* table)
      : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Seek(std::string_view target) override {
    scratch_.clear();
    PutVarint32(&scratch_, static_cast<uint32_t>(target.size()));
    scratch_.append(target);
    iter_.Seek(scratch_.data());
  }
  void Next() override { iter_.Next(); }
  std::string_view key() const override { return GetLengthPrefixedAt(iter_.key()); }
  std::string_view value() const override {
    std::string_view k = GetLengthPrefixedAt(iter_.key());
    const char* p = k.data() + k.size();
    uint32_t vlen = 0;
    const char* vdata = GetVarint32Ptr(p, p + 5, &vlen);
    LO_CHECK(vdata != nullptr);
    return {vdata, vlen};
  }
  Status status() const override { return Status::OK(); }

 private:
  SkipList<const char*, MemTable::KeyComparator>::Iterator iter_;
  std::string scratch_;
};

}  // namespace

std::unique_ptr<Iterator> MemTable::NewIterator() const {
  return std::make_unique<MemTableIterator>(&table_);
}

// -------------------------------------------------------- ShardedMemTable

ShardedMemTable::ShardedMemTable(int shards) {
  size_t n = 1;
  while (n < static_cast<size_t>(std::max(shards, 1))) n <<= 1;
  mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; i++) shards_.push_back(std::make_unique<MemTable>());
}

int ShardedMemTable::ShardFor(std::string_view user_key) const {
  return static_cast<int>(Fnv1a64(user_key) & mask_);
}

void ShardedMemTable::Add(SequenceNumber seq, ValueType type,
                          std::string_view user_key, std::string_view value) {
  shards_[static_cast<size_t>(ShardFor(user_key))]->Add(seq, type, user_key, value);
}

bool ShardedMemTable::Get(std::string_view user_key, SequenceNumber seq,
                          std::string* value, Status* s) const {
  return shards_[static_cast<size_t>(ShardFor(user_key))]->Get(user_key, seq, value, s);
}

std::unique_ptr<Iterator> ShardedMemTable::NewIterator() const {
  if (shards_.size() == 1) return shards_[0]->NewIterator();
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(shards_.size());
  for (const auto& shard : shards_) children.push_back(shard->NewIterator());
  return NewMergingIterator(InternalKeyComparator{}, std::move(children));
}

size_t ShardedMemTable::ApproximateMemoryUsage() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->ApproximateMemoryUsage();
  return total;
}

uint64_t ShardedMemTable::entries() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->entries();
  return total;
}

}  // namespace lo::storage
