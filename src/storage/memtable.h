// In-memory write buffer: an arena-backed skiplist over internal keys.
// Entries are encoded as  varint32(ikey_len) ikey varint32(val_len) val
// and owned by the arena until the memtable is flushed to an SSTable.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/arena.h"
#include "storage/dbformat.h"
#include "storage/iterator.h"
#include "storage/skiplist.h"

namespace lo::storage {

class MemTable {
 public:
  MemTable();
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, std::string_view user_key,
           std::string_view value);

  /// Looks up user_key at or below `seq`. Returns:
  ///  - true, *found_value filled, s=OK        -> live value
  ///  - true, s=NotFound                       -> deletion tombstone
  ///  - false                                  -> key not in this memtable
  bool Get(std::string_view user_key, SequenceNumber seq, std::string* value,
           Status* s) const;

  /// Iterator over internal keys (used for flush and reads).
  std::unique_ptr<Iterator> NewIterator() const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t entries() const { return entries_; }

  // Public so the iterator implementation in memtable.cc can name the
  // skiplist type; not part of the DB-facing API.
  struct KeyComparator {
    InternalKeyComparator icmp;
    int Compare(const char* a, const char* b) const;
  };
  using Table = SkipList<const char*, KeyComparator>;

 private:

  Arena arena_;
  Table table_;
  uint64_t entries_ = 0;
};

/// 2^k MemTable shards routed by FNV-1a over the user key — the same
/// hash family the runtime uses to pin objects to execution lanes
/// (runtime/executor.cc LaneFor), so with shards >= lanes two lanes
/// rarely contend on one arena. With 1 shard this degenerates to the
/// single-memtable behavior bit-for-bit (every key routes to shard 0).
///
/// Thread safety matches MemTable: Add for one shard must be externally
/// serialized (the DB mutex or per-lane pinning provides this); reads
/// may race with writes only in the way the skiplist already allows
/// (single writer, concurrent readers are NOT supported — the DB mutex
/// still covers Get/iterate in serialize_access mode).
class ShardedMemTable {
 public:
  /// `shards` is rounded up to a power of two and clamped to >= 1.
  explicit ShardedMemTable(int shards);
  ShardedMemTable(const ShardedMemTable&) = delete;
  ShardedMemTable& operator=(const ShardedMemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, std::string_view user_key,
           std::string_view value);
  /// Same contract as MemTable::Get; consults only the owning shard.
  bool Get(std::string_view user_key, SequenceNumber seq, std::string* value,
           Status* s) const;

  /// Merged iterator over all shards in internal-key order — reads see
  /// one logical memtable regardless of the shard count.
  std::unique_ptr<Iterator> NewIterator() const;

  /// Total across shards.
  size_t ApproximateMemoryUsage() const;
  uint64_t entries() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// Which shard a user key routes to (exposed for tests).
  int ShardFor(std::string_view user_key) const;
  const MemTable& shard(int i) const { return *shards_[i]; }

 private:
  std::vector<std::unique_ptr<MemTable>> shards_;
  uint64_t mask_;
};

}  // namespace lo::storage
