// In-memory write buffer: an arena-backed skiplist over internal keys.
// Entries are encoded as  varint32(ikey_len) ikey varint32(val_len) val
// and owned by the arena until the memtable is flushed to an SSTable.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "storage/arena.h"
#include "storage/dbformat.h"
#include "storage/iterator.h"
#include "storage/skiplist.h"

namespace lo::storage {

class MemTable {
 public:
  MemTable();
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, std::string_view user_key,
           std::string_view value);

  /// Looks up user_key at or below `seq`. Returns:
  ///  - true, *found_value filled, s=OK        -> live value
  ///  - true, s=NotFound                       -> deletion tombstone
  ///  - false                                  -> key not in this memtable
  bool Get(std::string_view user_key, SequenceNumber seq, std::string* value,
           Status* s) const;

  /// Iterator over internal keys (used for flush and reads).
  std::unique_ptr<Iterator> NewIterator() const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t entries() const { return entries_; }

  // Public so the iterator implementation in memtable.cc can name the
  // skiplist type; not part of the DB-facing API.
  struct KeyComparator {
    InternalKeyComparator icmp;
    int Compare(const char* a, const char* b) const;
  };
  using Table = SkipList<const char*, KeyComparator>;

 private:

  Arena arena_;
  Table table_;
  uint64_t entries_ = 0;
};

}  // namespace lo::storage
