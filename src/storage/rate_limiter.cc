#include "storage/rate_limiter.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace lo {
namespace storage {

namespace {
uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

RateLimiter::RateLimiter(uint64_t bytes_per_sec)
    : bytes_per_sec_(bytes_per_sec),
      burst_bytes_(std::max<uint64_t>(bytes_per_sec / 4, 64 * 1024)) {
  if (enabled()) {
    tokens_ = burst_bytes_;
    last_refill_us_ = NowMicros();
  }
}

void RateLimiter::Refill(uint64_t now_us) {
  if (now_us <= last_refill_us_) return;
  uint64_t elapsed = now_us - last_refill_us_;
  uint64_t add = elapsed * bytes_per_sec_ / 1000000;
  if (add == 0) return;  // keep the remainder accruing in elapsed time
  tokens_ = std::min(burst_bytes_, tokens_ + add);
  last_refill_us_ = now_us;
}

void RateLimiter::Request(uint64_t bytes) {
  if (!enabled() || bytes == 0) return;
  // Oversized single requests are clamped to the burst so they can
  // ever be satisfied; they still pay the full wait for one burst.
  uint64_t need = std::min(bytes, burst_bytes_);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Refill(NowMicros());
    if (tokens_ >= need) {
      tokens_ -= need;
      return;
    }
    uint64_t deficit = need - tokens_;
    uint64_t wait_us = deficit * 1000000 / bytes_per_sec_ + 1;
    throttled_us_ += wait_us;
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
    lock.lock();
  }
}

uint64_t RateLimiter::throttled_us() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  return throttled_us_;
}

}  // namespace storage
}  // namespace lo
