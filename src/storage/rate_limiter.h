// Token-bucket byte limiter for compaction I/O. Compaction threads
// call Request(bytes) before reading or writing; when the bucket is
// empty the caller sleeps until enough tokens accrue, which spreads
// compaction I/O out in time so foreground commits see steady latency
// instead of bursts. A rate of 0 disables limiting entirely (Request
// returns immediately), which keeps the deterministic simulation path
// free of wall-clock dependence.
#pragma once

#include <cstdint>
#include <mutex>

namespace lo {
namespace storage {

class RateLimiter {
 public:
  /// bytes_per_sec == 0 disables the limiter. Burst capacity is ~250ms
  /// worth of rate so small compactions pass through without sleeping.
  explicit RateLimiter(uint64_t bytes_per_sec);

  /// Takes `bytes` tokens, sleeping if the bucket is short. Safe to
  /// call from multiple compaction workers concurrently.
  void Request(uint64_t bytes);

  uint64_t bytes_per_sec() const { return bytes_per_sec_; }
  bool enabled() const { return bytes_per_sec_ != 0; }
  /// Total microseconds spent sleeping in Request across all callers.
  uint64_t throttled_us() const;

 private:
  void Refill(uint64_t now_us);

  const uint64_t bytes_per_sec_;
  const uint64_t burst_bytes_;
  std::mutex mu_;
  uint64_t tokens_ = 0;         // guarded by mu_
  uint64_t last_refill_us_ = 0; // guarded by mu_
  uint64_t throttled_us_ = 0;   // guarded by mu_
};

}  // namespace storage
}  // namespace lo
