// Skiplist keyed by arena-owned byte strings; the memtable's core index.
// Single-writer discipline (the whole node is single-threaded inside the
// simulator), so no atomics are needed; the structure still never moves
// or deletes nodes, which keeps iterators stable across inserts.
#pragma once

#include <cstdint>

#include "common/log.h"
#include "common/rng.h"
#include "storage/arena.h"

namespace lo::storage {

/// Key is an opaque `const char*` interpreted by Comparator (which must
/// provide `int Compare(const char* a, const char* b) const`).
template <typename Key, typename Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena, uint64_t seed = 0xdecafbad)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(Key(), kMaxHeight)),
        rng_(seed) {
    for (int i = 0; i < kMaxHeight; i++) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key. Precondition: nothing equal to key is in the list
  /// (internal keys embed a unique sequence number).
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    LO_CHECK_MSG(x == nullptr || !Equal(key, x->key), "duplicate skiplist key");
    int height = RandomHeight();
    if (height > max_height_) {
      for (int i = max_height_; i < height; i++) prev[i] = head_;
      max_height_ = height;
    }
    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      x->SetNext(i, prev[i]->Next(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list) {}
    bool Valid() const { return node_ != nullptr; }
    const Key& key() const { return node_->key; }
    void Next() { node_ = node_->Next(0); }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_ = nullptr;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    Key key;
    Node* Next(int level) { return next_[level]; }
    void SetNext(int level, Node* node) { next_[level] = node; }
    // Over-allocated flexible tail; next_[h-1] is the last valid slot.
    Node* next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(sizeof(Node) +
                                        sizeof(Node*) * (static_cast<size_t>(height) - 1));
    Node* node = new (mem) Node();
    node->key = key;
    return node;
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rng_.Uniform(kBranching) == 0) height++;
    return height;
  }

  bool Equal(const Key& a, const Key& b) const { return compare_.Compare(a, b) == 0; }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = max_height_ - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_.Compare(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  Rng rng_;
  int max_height_ = 1;
};

}  // namespace lo::storage
