#include "storage/sstable.h"

#include <functional>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/log.h"

namespace lo::storage {
namespace {

constexpr uint64_t kTableMagic = 0x4c414d424441544full;  // "LAMBDATO"
constexpr size_t kBlockTrailerSize = 5;                  // type + crc32
constexpr size_t kFooterSize = 48;

}  // namespace

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

bool BlockHandle::DecodeFrom(Reader* reader, BlockHandle* out) {
  return reader->GetVarint64(&out->offset) && reader->GetVarint64(&out->size);
}

// ------------------------------------------------------------ TableBuilder

TableBuilder::TableBuilder(TableOptions options, std::unique_ptr<WritableFile> file)
    : options_(options),
      file_(std::move(file)),
      data_block_(options.restart_interval),
      index_block_(1),
      filter_(options.bloom_bits_per_key) {}

void TableBuilder::Add(std::string_view ikey, std::string_view value) {
  LO_CHECK(!finished_);
  if (!status_.ok()) return;
  data_block_.Add(ikey, value);
  filter_.AddKey(ExtractUserKey(ikey));
  last_key_.assign(ikey.data(), ikey.size());
  num_entries_++;
  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return;
  BlockHandle handle;
  status_ = WriteRawBlock(data_block_.Finish(), &handle);
  data_block_.Reset();
  if (status_.ok()) pending_index_.emplace_back(last_key_, handle);
}

Status TableBuilder::WriteRawBlock(std::string_view contents, BlockHandle* handle) {
  handle->offset = offset_;
  handle->size = contents.size();
  LO_RETURN_IF_ERROR(file_->Append(contents));
  char trailer[kBlockTrailerSize];
  trailer[0] = 0;  // kNoCompression
  uint32_t crc = crc32c::Extend(0, contents.data(), contents.size());
  crc = crc32c::Mask(crc32c::Extend(crc, trailer, 1));
  for (int i = 0; i < 4; i++) trailer[1 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  LO_RETURN_IF_ERROR(file_->Append(std::string_view(trailer, kBlockTrailerSize)));
  offset_ += contents.size() + kBlockTrailerSize;
  return Status::OK();
}

Status TableBuilder::Finish() {
  LO_CHECK(!finished_);
  finished_ = true;
  FlushDataBlock();
  LO_RETURN_IF_ERROR(status_);

  // Bloom filter block.
  BlockHandle filter_handle;
  std::string filter = filter_.Finish();
  LO_RETURN_IF_ERROR(WriteRawBlock(filter, &filter_handle));

  // Index block: last key of each data block -> handle.
  for (const auto& [key, handle] : pending_index_) {
    std::string encoded;
    handle.EncodeTo(&encoded);
    index_block_.Add(key, encoded);
  }
  BlockHandle index_handle;
  LO_RETURN_IF_ERROR(WriteRawBlock(index_block_.Finish(), &index_handle));

  // Footer, padded to fixed size.
  std::string footer;
  filter_handle.EncodeTo(&footer);
  index_handle.EncodeTo(&footer);
  footer.resize(kFooterSize - 8);
  PutFixed64(&footer, kTableMagic);
  LO_RETURN_IF_ERROR(file_->Append(footer));
  offset_ += footer.size();
  LO_RETURN_IF_ERROR(file_->Sync());
  return file_->Close();
}

// ------------------------------------------------------------------ Table

Table::Table(std::shared_ptr<RandomAccessFile> file, std::unique_ptr<Block> index,
             std::string filter, Cache* block_cache, uint64_t cache_id)
    : file_(std::move(file)),
      index_(std::move(index)),
      filter_(std::move(filter)),
      block_cache_(block_cache),
      cache_id_(cache_id) {}

Result<std::shared_ptr<Table>> Table::Open(std::shared_ptr<RandomAccessFile> file,
                                           Cache* block_cache, uint64_t cache_id) {
  uint64_t size = file->Size();
  if (size < kFooterSize) return Status::Corruption("table too small");
  std::string footer;
  LO_RETURN_IF_ERROR(file->Read(size - kFooterSize, kFooterSize, &footer));
  if (footer.size() != kFooterSize ||
      DecodeFixed64(footer.data() + kFooterSize - 8) != kTableMagic) {
    return Status::Corruption("bad table magic");
  }
  Reader reader{std::string_view(footer).substr(0, kFooterSize - 8)};
  BlockHandle filter_handle, index_handle;
  if (!BlockHandle::DecodeFrom(&reader, &filter_handle) ||
      !BlockHandle::DecodeFrom(&reader, &index_handle)) {
    return Status::Corruption("bad footer handles");
  }

  // Read + verify the two metadata blocks.
  auto read_verified = [&](const BlockHandle& handle) -> Result<std::string> {
    std::string raw;
    LO_RETURN_IF_ERROR(file->Read(handle.offset, handle.size + kBlockTrailerSize, &raw));
    if (raw.size() != handle.size + kBlockTrailerSize) {
      return Status::Corruption("truncated block");
    }
    uint32_t expected = crc32c::Unmask(DecodeFixed32(raw.data() + handle.size + 1));
    uint32_t actual = crc32c::Extend(0, raw.data(), handle.size + 1);
    if (expected != actual) return Status::Corruption("block checksum mismatch");
    raw.resize(handle.size);
    return raw;
  };

  LO_ASSIGN_OR_RETURN(std::string filter, read_verified(filter_handle));
  LO_ASSIGN_OR_RETURN(std::string index_raw, read_verified(index_handle));
  LO_ASSIGN_OR_RETURN(auto index, Block::Parse(std::move(index_raw)));
  return std::shared_ptr<Table>(new Table(std::move(file), std::move(index),
                                          std::move(filter), block_cache, cache_id));
}

namespace {

/// Block-cache key: (cache_id, block_offset), fixed-width so distinct
/// files / offsets can never collide byte-wise.
std::string BlockCacheKey(uint64_t cache_id, uint64_t offset) {
  std::string key;
  key.reserve(16);
  PutFixed64(&key, cache_id);
  PutFixed64(&key, offset);
  return key;
}

void DeleteCachedBlock(std::string_view, void* value) {
  delete static_cast<Block*>(value);
}

}  // namespace

Result<BlockRef> Table::ReadBlock(const BlockHandle& handle, bool fill_cache) const {
  std::string cache_key;
  if (block_cache_ != nullptr) {
    cache_key = BlockCacheKey(cache_id_, handle.offset);
    if (Cache::Handle* cached = block_cache_->Lookup(cache_key)) {
      return BlockRef(block_cache_, cached);
    }
  }
  std::string raw;
  LO_RETURN_IF_ERROR(file_->Read(handle.offset, handle.size + kBlockTrailerSize, &raw));
  if (raw.size() != handle.size + kBlockTrailerSize) {
    return Status::Corruption("truncated data block");
  }
  uint32_t expected = crc32c::Unmask(DecodeFixed32(raw.data() + handle.size + 1));
  uint32_t actual = crc32c::Extend(0, raw.data(), handle.size + 1);
  if (expected != actual) return Status::Corruption("data block checksum mismatch");
  raw.resize(handle.size);
  LO_ASSIGN_OR_RETURN(auto block, Block::Parse(std::move(raw)));
  if (block_cache_ != nullptr && fill_cache) {
    size_t charge = block->size() + sizeof(Block);
    Block* released = block.release();
    return BlockRef(block_cache_, block_cache_->Insert(cache_key, released, charge,
                                                       &DeleteCachedBlock));
  }
  return BlockRef(std::move(block));
}

Status Table::InternalGet(
    std::string_view ikey,
    const std::function<void(std::string_view, std::string_view)>& yield) {
  if (!BloomFilterMayContain(filter_, ExtractUserKey(ikey))) {
    return Status::OK();  // definitely absent
  }
  auto index_iter = index_->NewIterator(&icmp_);
  index_iter->Seek(ikey);
  if (!index_iter->Valid()) return index_iter->status();
  Reader handle_reader{index_iter->value()};
  BlockHandle handle;
  if (!BlockHandle::DecodeFrom(&handle_reader, &handle)) {
    return Status::Corruption("bad index entry");
  }
  LO_ASSIGN_OR_RETURN(BlockRef block, ReadBlock(handle));
  auto block_iter = block->NewIterator(&icmp_);
  block_iter->Seek(ikey);
  if (block_iter->Valid()) {
    yield(block_iter->key(), block_iter->value());
  }
  return block_iter->status();
}

namespace {

/// Index-then-data two-level iterator. Holds its current data block via
/// a cache pin (BlockRef) and reuses it when consecutive seeks land on
/// the same block, so a seek-heavy scan parses each block at most once.
class TableIteratorImpl : public Iterator {
 public:
  TableIteratorImpl(const Table* table, std::unique_ptr<Iterator> index_iter,
                    const InternalKeyComparator* cmp, bool fill_cache)
      : table_(table),
        index_iter_(std::move(index_iter)),
        cmp_(cmp),
        fill_cache_(fill_cache) {}

  bool Valid() const override { return data_iter_ != nullptr && data_iter_->Valid(); }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyBlocksForward();
  }

  void Seek(std::string_view target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyBlocksForward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyBlocksForward();
  }

  std::string_view key() const override { return data_iter_->key(); }
  std::string_view value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (data_iter_ != nullptr) return data_iter_->status();
    return Status::OK();
  }

 private:
  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      data_iter_.reset();
      block_.Reset();
      block_offset_ = kNoBlock;
      return;
    }
    Reader handle_reader{index_iter_->value()};
    BlockHandle handle;
    if (!BlockHandle::DecodeFrom(&handle_reader, &handle)) {
      data_iter_.reset();
      block_.Reset();
      block_offset_ = kNoBlock;
      status_ = Status::Corruption("bad index entry");
      return;
    }
    // Same block as the one already pinned: keep it (the caller re-seeks
    // the data iterator, so no fresh read or parse is needed).
    if (block_ && handle.offset == block_offset_) return;
    data_iter_.reset();
    block_.Reset();
    block_offset_ = kNoBlock;
    auto block = table_->ReadBlock(handle, fill_cache_);
    if (!block.ok()) {
      status_ = block.status();
      return;
    }
    block_ = std::move(block).value();
    block_offset_ = handle.offset;
    data_iter_ = block_->NewIterator(cmp_);
  }

  void SkipEmptyBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  static constexpr uint64_t kNoBlock = ~0ull;

  const Table* table_;
  std::unique_ptr<Iterator> index_iter_;
  const InternalKeyComparator* cmp_;
  bool fill_cache_;
  // block_ must outlive data_iter_ (the iterator points into its bytes);
  // declaration order gives reverse destruction order.
  BlockRef block_;
  uint64_t block_offset_ = kNoBlock;
  std::unique_ptr<Iterator> data_iter_;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> Table::NewIterator(bool fill_cache) const {
  return std::make_unique<TableIteratorImpl>(this, index_->NewIterator(&icmp_),
                                             &icmp_, fill_cache);
}

uint64_t Table::ApproximateEntryCount() const {
  // The bloom filter records one hash per key.
  return filter_.empty() ? 0 : (filter_.size() - 1) * 8 / 10;
}

}  // namespace lo::storage
