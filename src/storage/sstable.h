// SSTable: the immutable on-disk sorted run.
//
// Layout:
//   [data block + trailer]*        trailer = type(1) + masked crc32c(4)
//   [bloom filter block + trailer]
//   [index block + trailer]        entry: last key of block -> BlockHandle
//   footer (fixed 48 bytes): filter handle, index handle, magic
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "storage/block.h"
#include "storage/bloom.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/iterator.h"

namespace lo::storage {

struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Reader* reader, BlockHandle* out);
};

struct TableOptions {
  size_t block_size = 4096;
  int restart_interval = 16;
  int bloom_bits_per_key = 10;
};

/// Writes one SSTable; keys must arrive in increasing internal-key order.
class TableBuilder {
 public:
  TableBuilder(TableOptions options, std::unique_ptr<WritableFile> file);

  void Add(std::string_view ikey, std::string_view value);
  /// Writes filter, index and footer. No Adds after this.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_size() const { return offset_; }
  Status status() const { return status_; }

 private:
  void FlushDataBlock();
  Status WriteRawBlock(std::string_view contents, BlockHandle* handle);

  TableOptions options_;
  std::unique_ptr<WritableFile> file_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder filter_;
  std::string last_key_;
  std::vector<std::pair<std::string, BlockHandle>> pending_index_;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  Status status_;
  bool finished_ = false;
};

/// Reader over one SSTable file.
class Table {
 public:
  static Result<std::shared_ptr<Table>> Open(std::shared_ptr<RandomAccessFile> file);

  /// Point lookup for the entry the iterator would land on at `ikey`.
  /// Calls yield(found_ikey, value) if the seek lands on an entry whose
  /// user key *may* match; callers apply seq/type logic.
  Status InternalGet(std::string_view ikey,
                     const std::function<void(std::string_view, std::string_view)>& yield);

  /// Two-level iterator (index block -> data blocks).
  std::unique_ptr<Iterator> NewIterator() const;

  uint64_t ApproximateEntryCount() const;

  /// Reads and checksum-verifies one block (used by the iterator impl).
  Result<std::unique_ptr<Block>> ReadBlock(const BlockHandle& handle) const;

 private:
  Table(std::shared_ptr<RandomAccessFile> file, std::unique_ptr<Block> index,
        std::string filter);

  std::shared_ptr<RandomAccessFile> file_;
  std::unique_ptr<Block> index_;
  std::string filter_;
  InternalKeyComparator icmp_;
};

}  // namespace lo::storage
