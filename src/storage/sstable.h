// SSTable: the immutable on-disk sorted run.
//
// Layout:
//   [data block + trailer]*        trailer = type(1) + masked crc32c(4)
//   [bloom filter block + trailer]
//   [index block + trailer]        entry: last key of block -> BlockHandle
//   footer (fixed 48 bytes): filter handle, index handle, magic
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "storage/block.h"
#include "storage/bloom.h"
#include "storage/cache.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/iterator.h"

namespace lo::storage {

struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Reader* reader, BlockHandle* out);
};

struct TableOptions {
  size_t block_size = 4096;
  int restart_interval = 16;
  int bloom_bits_per_key = 10;
};

/// Writes one SSTable; keys must arrive in increasing internal-key order.
class TableBuilder {
 public:
  TableBuilder(TableOptions options, std::unique_ptr<WritableFile> file);

  void Add(std::string_view ikey, std::string_view value);
  /// Writes filter, index and footer. No Adds after this.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_size() const { return offset_; }
  Status status() const { return status_; }

 private:
  void FlushDataBlock();
  Status WriteRawBlock(std::string_view contents, BlockHandle* handle);

  TableOptions options_;
  std::unique_ptr<WritableFile> file_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder filter_;
  std::string last_key_;
  std::vector<std::pair<std::string, BlockHandle>> pending_index_;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  Status status_;
  bool finished_ = false;
};

/// A pinned, parsed data block: either a handle into the block cache
/// (released on destruction, so the block outlives eviction while any
/// iterator still points into it) or, with caching off or bypassed, a
/// uniquely-owned block. Move-only RAII.
class BlockRef {
 public:
  BlockRef() = default;
  /// Pins `handle` (whose value is a Block*) until destruction.
  BlockRef(Cache* cache, Cache::Handle* handle)
      : cache_(cache), handle_(handle),
        block_(static_cast<const Block*>(Cache::Value(handle))) {}
  /// Uncached: owns the block outright.
  explicit BlockRef(std::unique_ptr<Block> owned)
      : owned_(std::move(owned)), block_(owned_.get()) {}

  BlockRef(BlockRef&& other) noexcept { *this = std::move(other); }
  BlockRef& operator=(BlockRef&& other) noexcept {
    Reset();
    cache_ = other.cache_;
    handle_ = other.handle_;
    owned_ = std::move(other.owned_);
    block_ = other.block_;
    other.cache_ = nullptr;
    other.handle_ = nullptr;
    other.block_ = nullptr;
    return *this;
  }
  BlockRef(const BlockRef&) = delete;
  BlockRef& operator=(const BlockRef&) = delete;
  ~BlockRef() { Reset(); }

  void Reset() {
    if (handle_ != nullptr) cache_->Release(handle_);
    cache_ = nullptr;
    handle_ = nullptr;
    owned_.reset();
    block_ = nullptr;
  }

  const Block* get() const { return block_; }
  const Block* operator->() const { return block_; }
  explicit operator bool() const { return block_ != nullptr; }

 private:
  Cache* cache_ = nullptr;
  Cache::Handle* handle_ = nullptr;
  std::unique_ptr<Block> owned_;
  const Block* block_ = nullptr;
};

/// Reader over one SSTable file.
///
/// The index and bloom filter blocks are read, verified and *pinned* at
/// Open — they live exactly as long as the Table and never touch the Env
/// again. Data blocks go through the optional block cache, keyed by
/// (cache_id, block_offset); cache_id is the file number (never reused
/// within a DB — see VersionSet::EnsureFileNumberAbove), so a key can
/// never alias a different file's block.
class Table {
 public:
  /// `block_cache` may be nullptr (every read hits the Env). `cache_id`
  /// must be unique per cached file, typically the file number.
  static Result<std::shared_ptr<Table>> Open(std::shared_ptr<RandomAccessFile> file,
                                             Cache* block_cache = nullptr,
                                             uint64_t cache_id = 0);

  /// Point lookup for the entry the iterator would land on at `ikey`.
  /// Calls yield(found_ikey, value) if the seek lands on an entry whose
  /// user key *may* match; callers apply seq/type logic.
  Status InternalGet(std::string_view ikey,
                     const std::function<void(std::string_view, std::string_view)>& yield);

  /// Two-level iterator (index block -> data blocks). `fill_cache=false`
  /// still *reads* through the cache but never populates it — compaction
  /// uses it so one-shot bulk scans don't flush the hot set (LevelDB's
  /// ReadOptions::fill_cache).
  std::unique_ptr<Iterator> NewIterator(bool fill_cache = true) const;

  uint64_t ApproximateEntryCount() const;

  /// Size of the pinned metadata (index + filter) in bytes.
  size_t pinned_bytes() const { return index_->size() + filter_.size(); }

  /// Reads one block: block cache first, then the Env (checksum-verified,
  /// inserted on miss unless `fill_cache` is false).
  Result<BlockRef> ReadBlock(const BlockHandle& handle, bool fill_cache = true) const;

 private:
  Table(std::shared_ptr<RandomAccessFile> file, std::unique_ptr<Block> index,
        std::string filter, Cache* block_cache, uint64_t cache_id);

  std::shared_ptr<RandomAccessFile> file_;
  std::unique_ptr<Block> index_;
  std::string filter_;
  Cache* block_cache_;
  uint64_t cache_id_;
  InternalKeyComparator icmp_;
};

}  // namespace lo::storage
